package repro_test

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/gallery"
	"repro/internal/machine"
	"repro/internal/wave5"
)

// Parallel-engine benchmarks measure what the machine.Parallel knob buys
// in host wall-clock time. The knob is semantically inert — parallel and
// serial runs are bit-identical (TestParallelEngineEngagesAndMatchesSerial,
// the parallel fastpath modes, and the randomized twins) — so the ratio
// of these benchmarks is pure simulator speedup from running the
// simulated processors on host goroutines. BENCH_parallel.json records
// representative numbers and spells out where the engine cannot engage.

// parallelBenchModes names the knob settings for sub-benchmarks.
var parallelBenchModes = []struct {
	name string
	par  machine.Parallel
}{
	{"serial", machine.ParallelOff},
	{"parallel", machine.ParallelOn},
}

// BenchmarkParallelDense is the engine's intended case, shaped like the
// paper's Figure 6 sweep point at its best chunk size: a dense streaming
// cascade over 8 simulated PentiumPro processors. 24 bytes per iteration
// on 32-byte lines means a chunk size that is a multiple of 96 bytes
// keeps every chunk boundary line-aligned, so the footprint predicate
// admits every chunk and all 8 simulated processors run concurrently.
func BenchmarkParallelDense(b *testing.B) {
	const (
		n          = 1 << 19
		chunkBytes = 96 * 256 // 24 KB, line-aligned boundaries
	)
	triad, err := gallery.Lookup("triad")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range parallelBenchModes {
		b.Run(mode.name, func(b *testing.B) {
			cfg := machine.PentiumPro(8).WithParallel(mode.par)
			var cycles int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				space, l, err := triad.Build(n)
				if err != nil {
					b.Fatal(err)
				}
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				opts, err := cascade.NewOptions(
					cascade.WithHelper(cascade.HelperPrefetch),
					cascade.WithSpace(space),
					cascade.WithChunkBytes(chunkBytes),
					cascade.WithPriorParallel(false),
				)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := cascade.Run(m, l, opts)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles/op")
		})
	}
}

// BenchmarkParallelPARMVR runs the full PARMVR mover cascade under both
// knob settings — the honest companion to the dense case. Most of the
// mover cannot be host-parallelized: the six indirect loops get
// whole-array write footprints (every chunk conflicts, so chunks run
// solo), and the affine loops' boundaries are not line-aligned at this
// chunk size. Expect a ratio near 1.0; the point of the row is that the
// knob never makes a workload slower than noise even when it cannot
// help, because non-admissible chunks run through the identical serial
// body.
func BenchmarkParallelPARMVR(b *testing.B) {
	for _, mode := range parallelBenchModes {
		b.Run(mode.name, func(b *testing.B) {
			cfg := machine.PentiumPro(8).WithParallel(mode.par)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := wave5.MustBuild(benchParams())
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				opts, err := cascade.NewOptions(
					cascade.WithHelper(cascade.HelperRestructure),
					cascade.WithSpace(w.Space),
					cascade.WithPriorParallel(false),
				)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, l := range w.Loops {
					if _, err := cascade.Run(m, l, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
