// Package synthetic provides the future-machine microbenchmark of §3.4:
//
//	do i = 1, n, k
//	   X(IJ(i)) = X(IJ(i)) + A(i) + B(i)
//	end do
//
// All operands are 4-byte integers and IJ is the identity vector 1..n, so
// the loop is trivially memory-bound: the higher ratio of memory access to
// computation stands in for future machines whose memory latency has grown
// relative to execution rate. The "dense" variant steps by k=1; the
// "sparse" variant steps by k=8 — one element per 32-byte L1 line on both
// simulated machines — so it has no spatial locality whatsoever.
//
// Because IJ is read through an index array, the reference to X is not
// statically analyzable: the compiler-prefetch model (R10000) cannot cover
// it, and a parallelizing compiler could not prove the loop parallel —
// which is why it must run sequentially in the first place.
package synthetic

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/memsim"
)

// elemSize is the operand size: the paper's synthetic loop uses integers.
const elemSize = 4

// DenseStep and SparseStep are the paper's two step sizes; SparseStep
// elements of 4 bytes fill one 32-byte L1 line on both machines.
const (
	DenseStep  = 1
	SparseStep = 8
)

// Params sizes the synthetic loop.
type Params struct {
	// N is the element count of each of X, IJ, A and B.
	N int
	// Step is the loop step k: 1 for dense, 8 for sparse.
	Step int
}

// DefaultN gives each array a 12 MB footprint (3M x 4-byte elements),
// several times either machine's L2, matching the paper's intent that the
// loop's working set not be cache-resident.
const DefaultN = 3 << 20

// Dense returns the dense-variant parameters.
func Dense(n int) Params { return Params{N: n, Step: DenseStep} }

// Sparse returns the sparse-variant parameters.
func Sparse(n int) Params { return Params{N: n, Step: SparseStep} }

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < 64 {
		return fmt.Errorf("synthetic: N = %d too small", p.N)
	}
	if p.Step < 1 || p.Step > p.N {
		return fmt.Errorf("synthetic: step %d out of range", p.Step)
	}
	return nil
}

// Name returns "dense" or "sparse(k)" for reporting.
func (p Params) Name() string {
	if p.Step == DenseStep {
		return "dense"
	}
	return fmt.Sprintf("sparse(k=%d)", p.Step)
}

// Build allocates the arrays and constructs the loop. Arrays are staggered
// across cache-set congruence classes so that the measured effect is pure
// memory intensity, not set conflict (the PARMVR workload covers
// conflicts).
func Build(p Params) (*memsim.Space, *loopir.Loop, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	s := memsim.NewSpace()
	// Stagger bases by way-size quarters modulo 1MB (the largest way size
	// of either machine) to avoid lockstep set conflicts.
	x := s.AllocAt("X", p.N, elemSize, 0<<10, 1<<20)
	ij := s.AllocAt("IJ", p.N, elemSize, 260<<10, 1<<20)
	a := s.AllocAt("A", p.N, elemSize, 520<<10, 1<<20)
	b := s.AllocAt("B", p.N, elemSize, 780<<10, 1<<20)

	x.Fill(func(i int) float64 { return float64(i % 1021) })
	ij.Fill(func(i int) float64 { return float64(i) }) // the identity vector 1..n
	a.Fill(func(i int) float64 { return float64(i % 511) })
	b.Fill(func(i int) float64 { return float64(i % 255) })

	xref := loopir.Ref{Array: x, Index: loopir.Indirect{Tbl: ij, Entry: loopir.Stride(p.Step)}}
	l := &loopir.Loop{
		Name:  "synthetic-" + p.Name(),
		Iters: p.N / p.Step,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Stride(p.Step)},
			{Array: b, Index: loopir.Stride(p.Step)},
		},
		RW:     []loopir.Ref{xref},
		Writes: []loopir.Ref{xref},
		// The paper generates its high memory-access-to-computation ratio
		// by minimizing computational demand: one add per phase.
		PreCycles:   1,
		FinalCycles: 1,
		// The loop body is an opaque indirect read-modify-write; MIPSpro
		// does not software-prefetch such loops (the paper's own Figure 7
		// requires this: a 14x R10000 speedup is impossible against a
		// compiler-prefetched baseline).
		NoCompilerPrefetch: true,
		NPre:               1,
		Pre:                func(_ int, ro []float64) []float64 { return []float64{ro[0] + ro[1]} },
		Final: func(_ int, pre, rw []float64) []float64 {
			return []float64{rw[0] + pre[0]}
		},
	}
	if err := l.Validate(); err != nil {
		return nil, nil, err
	}
	return s, l, nil
}

// MustBuild is Build for known-good parameters.
func MustBuild(p Params) (*memsim.Space, *loopir.Loop) {
	s, l, err := Build(p)
	if err != nil {
		panic(err)
	}
	return s, l
}
