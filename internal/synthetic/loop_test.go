package synthetic

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
)

func TestParamsValidate(t *testing.T) {
	if err := Dense(1024).Validate(); err != nil {
		t.Errorf("dense: %v", err)
	}
	if err := Sparse(1024).Validate(); err != nil {
		t.Errorf("sparse: %v", err)
	}
	for _, p := range []Params{{N: 10, Step: 1}, {N: 1024, Step: 0}, {N: 1024, Step: 2000}} {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v should fail", p)
		}
	}
}

func TestNames(t *testing.T) {
	if Dense(128).Name() != "dense" {
		t.Error("dense name")
	}
	if Sparse(128).Name() != "sparse(k=8)" {
		t.Error("sparse name")
	}
}

func TestBuildShape(t *testing.T) {
	s, l, err := Build(Sparse(4096))
	if err != nil {
		t.Fatal(err)
	}
	if l.Iters != 4096/8 {
		t.Errorf("sparse iters = %d, want %d", l.Iters, 4096/8)
	}
	if got := len(s.Arrays()); got != 4 {
		t.Errorf("arrays = %d, want 4 (X, IJ, A, B)", got)
	}
	if err := l.CheckBounds(); err != nil {
		t.Error(err)
	}
	_, ld, err := Build(Dense(4096))
	if err != nil {
		t.Fatal(err)
	}
	if ld.Iters != 4096 {
		t.Errorf("dense iters = %d", ld.Iters)
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, _, err := Build(Params{N: 1, Step: 1}); err == nil {
		t.Error("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on bad params")
		}
	}()
	MustBuild(Params{N: 1, Step: 1})
}

func TestSyntheticValues(t *testing.T) {
	// X(IJ(i)) = X(IJ(i)) + A(i) + B(i) with identity IJ: X[j] changes
	// only at stepped positions.
	const n = 1 << 12
	_, l := MustBuild(Sparse(n))
	x := l.Writes[0].Array
	before := x.Snapshot()
	m := machine.MustNew(machine.PentiumPro(1))
	cascade.RunSequential(m, l, false)
	for j := 0; j < n; j++ {
		want := before[j]
		if j%8 == 0 {
			want += float64(j%511) + float64(j%255)
		}
		if got := x.Load(j); got != want {
			t.Fatalf("X[%d] = %v, want %v", j, got, want)
		}
	}
}

func TestCascadedEquivalence(t *testing.T) {
	const n = 1 << 13
	for _, p := range []Params{Dense(n), Sparse(n)} {
		_, lref := MustBuild(p)
		cascade.RunSequential(machine.MustNew(machine.PentiumPro(1)), lref, false)
		want := lref.Writes[0].Array.Snapshot()

		for _, h := range []cascade.Helper{cascade.HelperPrefetch, cascade.HelperRestructure} {
			s, l := MustBuild(p)
			opts := cascade.Options{Helper: h, ChunkBytes: 8 * 1024, JumpOut: true, Space: s}
			if _, err := cascade.RunUnbounded(machine.R10000(1), l, opts); err != nil {
				t.Fatal(err)
			}
			if eq, idx := l.Writes[0].Array.Equal(want); !eq {
				t.Errorf("%s/%v: X differs at %d", p.Name(), h, idx)
			}
		}
	}
}

// TestSparseSpeedupExceedsDense verifies the §3.4 headline shape at
// reduced scale: unbounded-processor cascaded execution speeds up the
// sparse (memory-bound) variant more than the dense one, and both beat 1.
func TestSparseSpeedupExceedsDense(t *testing.T) {
	const n = 1 << 17 // 512KB arrays: enough to bust both L2s at test speed
	cfg := machine.PentiumPro(1)
	speedup := func(p Params) float64 {
		_, lbase := MustBuild(p)
		base, err := cascade.SequentialBaseline(cfg, lbase)
		if err != nil {
			t.Fatal(err)
		}
		s, l := MustBuild(p)
		opts := cascade.Options{Helper: cascade.HelperRestructure, ChunkBytes: 16 * 1024, JumpOut: true, Space: s}
		res, err := cascade.RunUnbounded(cfg, l, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.SpeedupOver(base)
	}
	dense := speedup(Dense(n))
	sparse := speedup(Sparse(n))
	if dense <= 1 {
		t.Errorf("dense speedup = %.2f, want > 1", dense)
	}
	if sparse <= dense {
		t.Errorf("sparse speedup %.2f not above dense %.2f", sparse, dense)
	}
}
