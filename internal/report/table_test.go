package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Speedups", "machine", "speedup")
	tb.Add("PentiumPro", "1.35")
	tb.Add("R10000", "1.70")
	out := tb.String()
	if !strings.Contains(out, "Speedups") || !strings.Contains(out, "PentiumPro") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	// Right alignment of numeric column: both rows end with the value.
	for _, l := range lines[3:] {
		if !strings.HasSuffix(l, "1.35") && !strings.HasSuffix(l, "1.70") {
			t.Errorf("row not right-aligned: %q", l)
		}
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Addf("x", 1.23456, 42)
	if tb.Rows[0][1] != "1.23" {
		t.Errorf("float cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "42" {
		t.Errorf("int cell = %q", tb.Rows[0][2])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("x", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("ragged cell dropped:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.Add("plain", "1")
	tb.Add(`with,comma`, `quote"inside`)
	var b strings.Builder
	tb.RenderCSV(&b)
	got := b.String()
	want := "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{Float(1.345), "1.34"},
		{Float(2), "2.00"},
		{Int(0), "0"},
		{Int(999), "999"},
		{Int(1000), "1,000"},
		{Int(1234567), "1,234,567"},
		{Int(-4500), "-4,500"},
		{KB(64 * 1024), "64KB"},
		{MB(17 * 1024 * 1024), "17.0MB"},
		{MB(256 * 1024), "0.2MB"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
