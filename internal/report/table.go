// Package report renders experiment results as aligned ASCII tables and
// CSV, the textual equivalents of the paper's tables and figure series.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Rows shorter than the header are padded; longer rows
// are allowed (the extra cells get their own widths).
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values: each argument is rendered with
// %v unless it is a float64, which gets three significant decimals.
func (t *Table) Addf(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = Float(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(row...)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(w) {
				w = append(w, 0)
			}
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned text. The first column is
// left-aligned; the rest are right-aligned (numeric convention).
func (t *Table) Render(w io.Writer) {
	widths := t.widths()
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			if i == 0 {
				parts = append(parts, fmt.Sprintf("%-*s", width, c))
			} else {
				parts = append(parts, fmt.Sprintf("%*s", width, c))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	total := len(widths) - 1
	for _, width := range widths {
		total += width + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Float formats a float with two decimals (the paper's speedup precision).
func Float(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// Int formats an integer with thousands separators, as the paper's
// cycle-count axes read.
func Int(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := strconv.FormatInt(v, 10)
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
		if len(s) > pre {
			b.WriteByte(',')
		}
	}
	for i := pre; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// KB formats a byte count as "<n>KB" (chunk-size axes).
func KB(bytes int) string {
	return strconv.Itoa(bytes/1024) + "KB"
}

// MB formats a byte count with one decimal in megabytes.
func MB(bytes int) string {
	return strconv.FormatFloat(float64(bytes)/(1024*1024), 'f', 1, 64) + "MB"
}
