package report

import (
	"strings"
	"testing"
)

func TestHBarRender(t *testing.T) {
	h := &HBar{
		Title:  "Cycles",
		Labels: []string{"gather", "push"},
		Series: []Series{
			{Name: "seq", Y: []float64{100, 50}},
			{Name: "res", Y: []float64{25, 40}},
		},
		Width: 20,
	}
	var b strings.Builder
	h.Render(&b)
	out := b.String()
	for _, want := range []string{"Cycles", "gather", "push", "seq", "res", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The largest value gets the full width; a quarter value about 5.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var full, quarter int
	for _, l := range lines {
		n := strings.Count(l, "#")
		if strings.Contains(l, "seq") && strings.Contains(l, "gather") {
			full = n
		}
		if strings.Contains(l, "res") && n > 0 && quarter == 0 && !strings.Contains(l, "seq") {
			if strings.Contains(l, "25") {
				quarter = n
			}
		}
	}
	if full != 20 {
		t.Errorf("max bar = %d, want 20", full)
	}
	if quarter != 5 {
		t.Errorf("quarter bar = %d, want 5", quarter)
	}
}

func TestHBarZeroAndMissingValues(t *testing.T) {
	h := &HBar{
		Labels: []string{"a", "b"},
		Series: []Series{{Name: "s", Y: []float64{0}}}, // short series
	}
	var b strings.Builder
	h.Render(&b) // must not panic
	if !strings.Contains(b.String(), "a") {
		t.Error("labels missing")
	}
}

func TestHBarTinyNonzeroGetsOneChar(t *testing.T) {
	h := &HBar{
		Labels: []string{"big", "tiny"},
		Series: []Series{{Name: "s", Y: []float64{1e9, 1}}},
		Width:  10,
	}
	var b strings.Builder
	h.Render(&b)
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.Contains(l, "tiny") && !strings.Contains(l, "#") {
			t.Error("nonzero value rendered with empty bar")
		}
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{
		Title:  "Speedup vs procs",
		XLabel: "procs",
		XTicks: []string{"2", "3", "4"},
		Series: []Series{
			{Name: "Restructured", Y: []float64{1.2, 1.5, 1.8}},
			{Name: "Prefetched", Y: []float64{1.1, 1.3, 1.4}},
		},
		Height: 8,
	}
	var b strings.Builder
	p.Render(&b)
	out := b.String()
	for _, want := range []string{"Speedup vs procs", "procs", "* = Restructured", "o = Prefetched", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The max value (1.8) must sit on the top plot row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Errorf("max point not on top row:\n%s", out)
	}
}

func TestPlotEmptyAndFlatSeries(t *testing.T) {
	var b strings.Builder
	(&Plot{XTicks: []string{"1"}}).Render(&b) // empty: no panic
	b.Reset()
	(&Plot{
		XTicks: []string{"1", "2"},
		Series: []Series{{Name: "flat", Y: []float64{3, 3}}},
	}).Render(&b)
	if !strings.Contains(b.String(), "flat") {
		t.Error("flat series missing")
	}
}

func TestPlotYZero(t *testing.T) {
	p := &Plot{
		XTicks: []string{"1"},
		Series: []Series{{Name: "s", Y: []float64{10}}},
		YZero:  true,
		Height: 4,
	}
	var b strings.Builder
	p.Render(&b)
	if !strings.Contains(b.String(), " 0") {
		t.Errorf("y axis should start at 0:\n%s", b.String())
	}
}

func TestCompact(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{2.5e9, "2.5G"},
		{1.23e6, "1.2M"},
		{45000, "45K"},
		{1234, "1234"},
		{2.5, "2.50"},
		{3, "3"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := Compact(c.v); got != c.want {
			t.Errorf("Compact(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
