package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line or bar group of a chart.
type Series struct {
	Name string
	Y    []float64
}

// HBar renders grouped horizontal bars — the textual form of the paper's
// per-loop bar figures (3, 4, 5). Each label gets one bar per series,
// scaled to the longest bar.
type HBar struct {
	Title  string
	Labels []string
	Series []Series
	// Width is the maximum bar length in characters (default 48).
	Width int
	// Format renders the numeric annotation after each bar (default
	// compact engineering form).
	Format func(v float64) string
}

// Render writes the chart.
func (h *HBar) Render(w io.Writer) {
	width := h.Width
	if width <= 0 {
		width = 48
	}
	format := h.Format
	if format == nil {
		format = Compact
	}
	var max float64
	for _, s := range h.Series {
		for _, v := range s.Y {
			if v > max {
				max = v
			}
		}
	}
	if h.Title != "" {
		fmt.Fprintln(w, h.Title)
	}
	labelW, nameW := 0, 0
	for _, l := range h.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, s := range h.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for i, label := range h.Labels {
		for j, s := range h.Series {
			v := 0.0
			if i < len(s.Y) {
				v = s.Y[i]
			}
			bar := 0
			if max > 0 {
				bar = int(math.Round(v / max * float64(width)))
			}
			if bar == 0 && v > 0 {
				bar = 1
			}
			name := label
			if j > 0 {
				name = ""
			}
			fmt.Fprintf(w, "%-*s  %-*s |%s %s\n",
				labelW, name, nameW, s.Name, strings.Repeat("#", bar), format(v))
		}
	}
}

// Plot renders a multi-series line chart on a character grid — the
// textual form of the paper's sweep figures (2, 6, 7). The x axis takes
// one column per label; each series is drawn with its own marker and
// listed in the legend.
type Plot struct {
	Title   string
	XLabel  string
	XTicks  []string
	Series  []Series
	Height  int  // plot rows (default 12)
	YZero   bool // force the y axis to start at zero
	ColWide int  // columns per x position (default 4)
}

// markers assigns per-series plot characters.
var markers = []byte{'*', 'o', '+', 'x', '@', '%'}

// Render writes the plot.
func (p *Plot) Render(w io.Writer) {
	height := p.Height
	if height <= 0 {
		height = 12
	}
	colw := p.ColWide
	if colw <= 0 {
		colw = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, v := range s.Y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if p.YZero && lo > 0 {
		lo = 0
	}
	if hi == lo {
		hi = lo + 1
	}

	cols := len(p.XTicks) * colw
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(height-1)))
		return height - 1 - r
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for xi, v := range s.Y {
			if xi >= len(p.XTicks) {
				break
			}
			c := xi*colw + colw/2
			grid[rowOf(v)][c] = m
		}
	}

	if p.Title != "" {
		fmt.Fprintln(w, p.Title)
	}
	yw := 8
	for r := 0; r < height; r++ {
		// Y-axis tick at top, middle, bottom.
		label := ""
		switch r {
		case 0:
			label = Compact(hi)
		case height / 2:
			label = Compact(lo + (hi-lo)/2)
		case height - 1:
			label = Compact(lo)
		}
		fmt.Fprintf(w, "%*s |%s\n", yw, label, strings.TrimRight(string(grid[r]), " "))
	}
	fmt.Fprintf(w, "%*s +%s\n", yw, "", strings.Repeat("-", cols))
	// X tick labels, one per column group, truncated to the column width.
	var ticks strings.Builder
	for _, t := range p.XTicks {
		if len(t) > colw {
			t = t[:colw]
		}
		ticks.WriteString(fmt.Sprintf("%-*s", colw, t))
	}
	fmt.Fprintf(w, "%*s  %s %s\n", yw, "", strings.TrimRight(ticks.String(), " "), p.XLabel)
	for si, s := range p.Series {
		fmt.Fprintf(w, "%*s  %c = %s\n", yw, "", markers[si%len(markers)], s.Name)
	}
}

// Compact renders a value in compact engineering notation (1.2M, 34K,
// 2.50) — chart annotations need to stay short.
func Compact(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.0fK", v/1e3)
	case a == math.Trunc(a):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
