package faults

import (
	"bytes"
	"errors"
	"testing"
)

// TestNilInjectorIsDisabled pins the nil-safety contract production call
// sites rely on: every method of a nil injector is a cheap no-op.
func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if in.Check("any") {
		t.Error("nil injector fired")
	}
	if err := in.Fail("any"); err != nil {
		t.Errorf("nil Fail = %v", err)
	}
	b := []byte("payload")
	if got := in.Corrupt("any", b); !bytes.Equal(got, b) {
		t.Error("nil Corrupt changed bytes")
	}
	if in.Calls("any") != 0 || in.Fired("any") != 0 || in.Sites() != nil {
		t.Error("nil injector reports state")
	}
}

func TestUnarmedSiteNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if in.Check("unarmed") {
			t.Fatal("unarmed site fired")
		}
	}
	if in.Calls("unarmed") != 0 {
		t.Error("unarmed site counted calls")
	}
}

func TestOnCallFiresExactlyOnce(t *testing.T) {
	in := New(1)
	in.Arm("s", Trigger{OnCall: 3})
	var fires []int
	for i := 1; i <= 6; i++ {
		if err := in.Fail("s"); err != nil {
			fires = append(fires, i)
			if !errors.Is(err, ErrInjected) {
				t.Errorf("injected error %v does not wrap ErrInjected", err)
			}
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Errorf("fired on calls %v, want [3]", fires)
	}
	if in.Calls("s") != 6 || in.Fired("s") != 1 {
		t.Errorf("calls/fired = %d/%d, want 6/1", in.Calls("s"), in.Fired("s"))
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("boom")
	in := New(1)
	in.Arm("s", Trigger{OnCall: 1, Err: boom})
	err := in.Fail("s")
	if !errors.Is(err, boom) || !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want wrapping both boom and ErrInjected", err)
	}
}

// TestProbabilityDeterminism pins replayability: two injectors with the
// same seed fire on exactly the same calls.
func TestProbabilityDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(seed)
		in.Arm("s", Trigger{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Check("s")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("p=0.3 fired %d/200 times; trigger looks broken", fired)
	}
}

func TestTimesBound(t *testing.T) {
	in := New(7)
	in.Arm("s", Trigger{Prob: 1, Times: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Check("s") {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d times, want 2 (Times bound)", fired)
	}
}

func TestCorrupt(t *testing.T) {
	in := New(1)
	in.Arm("s", Trigger{OnCall: 2})
	orig := []byte("hello world")
	if got := in.Corrupt("s", orig); !bytes.Equal(got, orig) {
		t.Error("call 1 corrupted")
	}
	got := in.Corrupt("s", orig)
	if bytes.Equal(got, orig) {
		t.Error("call 2 did not corrupt")
	}
	if string(orig) != "hello world" {
		t.Error("Corrupt mutated the input slice")
	}
	diffs := 0
	for i := range orig {
		if got[i] != orig[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diffs)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("exp.panic:p=0.5;cache.write:n=3,times=1", 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cache.write", "exp.panic"}
	got := in.Sites()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Sites() = %v, want %v", got, want)
	}
	for i := 1; i <= 4; i++ {
		fired := in.Check("cache.write")
		if fired != (i == 3) {
			t.Errorf("cache.write call %d fired=%v", i, fired)
		}
	}

	if in, err := Parse("", 1); err != nil || in != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", in, err)
	}
	for _, bad := range []string{
		"nosep", "site:", "site:p=2", "site:p=0", "site:n=0",
		"site:times=1", "site:q=1", "site:p", ":p=1",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
