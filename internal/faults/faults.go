// Package faults is a deterministic fault-injection registry for
// robustness testing. Call sites in production code name an injection
// site and ask the injector whether that site fires on this call; an
// injector armed from a test (or the cascade-server -faults dev flag)
// answers from a seeded PRNG or a fire-on-Nth-call counter, so a
// failing run replays exactly from its seed. A nil *Injector is the
// disabled registry: every method is a no-op, so production call sites
// pay one nil check and nothing else.
//
// Sites are plain strings owned by the package that hosts the call
// site (internal/server declares its own, e.g. "cache.write"); the
// injector itself imposes no naming scheme.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrInjected is the error injected at sites armed without an explicit
// override; injected failures wrap it, so call sites and tests can
// errors.Is against it.
var ErrInjected = errors.New("injected fault")

// Trigger says when an armed site fires. Exactly firing rules compose:
// OnCall fires deterministically on one specific call, Prob fires
// independently per call from the injector's seeded PRNG, and Times
// bounds the total number of fires either way.
type Trigger struct {
	// Prob fires the site on each call with this probability (0..1].
	Prob float64
	// OnCall fires the site on exactly the Nth call (1-based); 0
	// disables the rule.
	OnCall int64
	// Times caps how many times the site fires in total; 0 = unlimited.
	Times int64
	// Err is the injected error; nil means ErrInjected. Either way the
	// returned error wraps ErrInjected and names the site.
	Err error
}

type site struct {
	trig  Trigger
	calls int64
	fired int64
}

// Injector is the registry of armed sites. The zero value is not
// usable; construct with New. All methods are safe for concurrent use
// and safe on a nil receiver (disabled injection).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*site
}

// New returns an empty injector whose probabilistic triggers draw from
// a PRNG seeded with seed, so identical call sequences replay
// identically.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), sites: make(map[string]*site)}
}

// Arm configures (or reconfigures, resetting counters) one site.
func (in *Injector) Arm(name string, t Trigger) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites[name] = &site{trig: t}
}

// fire records one call to the site and reports whether it fires,
// returning the site's configured error when it does.
func (in *Injector) fire(name string) (bool, error) {
	if in == nil {
		return false, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[name]
	if !ok {
		return false, nil
	}
	st.calls++
	if st.trig.Times > 0 && st.fired >= st.trig.Times {
		return false, nil
	}
	hit := st.trig.OnCall > 0 && st.calls == st.trig.OnCall
	if !hit && st.trig.Prob > 0 {
		hit = in.rng.Float64() < st.trig.Prob
	}
	if !hit {
		return false, nil
	}
	st.fired++
	if st.trig.Err != nil {
		return true, fmt.Errorf("%s: %w: %w", name, ErrInjected, st.trig.Err)
	}
	return true, fmt.Errorf("%s: %w", name, ErrInjected)
}

// Check reports whether the site fires on this call. Nil-safe.
func (in *Injector) Check(name string) bool {
	hit, _ := in.fire(name)
	return hit
}

// Fail returns the site's injected error when it fires, nil otherwise.
// Nil-safe.
func (in *Injector) Fail(name string) error {
	hit, err := in.fire(name)
	if !hit {
		return nil
	}
	return err
}

// Corrupt returns b with one byte flipped (in a copy) when the site
// fires, and b unchanged otherwise. The flipped position is drawn from
// the injector's seeded PRNG. Nil-safe; empty slices pass through.
func (in *Injector) Corrupt(name string, b []byte) []byte {
	hit, _ := in.fire(name)
	if !hit || len(b) == 0 {
		return b
	}
	in.mu.Lock()
	pos := in.rng.Intn(len(b))
	in.mu.Unlock()
	out := make([]byte, len(b))
	copy(out, b)
	out[pos] ^= 0xff
	return out
}

// Calls returns how many times the site has been consulted. Nil-safe.
func (in *Injector) Calls(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[name]; ok {
		return st.calls
	}
	return 0
}

// Fired returns how many times the site has fired. Nil-safe.
func (in *Injector) Fired(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.sites[name]; ok {
		return st.fired
	}
	return 0
}

// Sites returns the armed site names, sorted. Nil-safe.
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.sites))
	for n := range in.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse builds an injector from a flag-style spec:
//
//	site:rule[,rule][;site:rule...]
//
// where a rule is p=<probability>, n=<call number> or times=<max
// fires>, e.g. "exp.panic:p=0.05;cache.write:n=3,times=1". An empty
// spec returns a nil (disabled) injector.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rules, ok := strings.Cut(entry, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: bad entry %q (want site:rule[,rule])", entry)
		}
		var t Trigger
		for _, rule := range strings.Split(rules, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(rule), "=")
			if !ok {
				return nil, fmt.Errorf("faults: bad rule %q in %q", rule, entry)
			}
			switch k {
			case "p":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p <= 0 || p > 1 {
					return nil, fmt.Errorf("faults: bad probability %q in %q (want 0 < p <= 1)", v, entry)
				}
				t.Prob = p
			case "n":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faults: bad call number %q in %q (want >= 1)", v, entry)
				}
				t.OnCall = n
			case "times":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faults: bad times %q in %q (want >= 1)", v, entry)
				}
				t.Times = n
			default:
				return nil, fmt.Errorf("faults: unknown rule %q in %q (want p=, n= or times=)", k, entry)
			}
		}
		if t.Prob == 0 && t.OnCall == 0 {
			return nil, fmt.Errorf("faults: entry %q never fires (need p= or n=)", entry)
		}
		in.Arm(name, t)
	}
	return in, nil
}
