package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
	"repro/internal/faults"
)

// TestServerReproBundle pins the repro contract end to end on the
// single-node server: a fault-injected job fails, serves a
// self-contained bundle over GET /v1/jobs/{id}/repro whose key is
// reproducible from its replay inputs, and RunRepro on that bundle —
// which re-arms the recorded injector from its spec and seed —
// reproduces the recorded failure exactly. Replay resolves the
// experiment through the global registry, so the job runs a real
// registered experiment; the n=1 panic fires before any simulation.
func TestServerReproBundle(t *testing.T) {
	const spec = "exp.panic:n=1"
	inj, err := faults.Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Workers:   1,
		Faults:    inj,
		FaultSpec: spec,
		FaultSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const name = "quickstart"
	v, err := s.Submit(name, JobParams{Scale: 0.02, ChunkKB: 64, N: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Await(v.ID, 10*time.Second, nil)
	if !ok || got.State != StateFailed {
		t.Fatalf("job = %+v, want failed", got)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/repro")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repro status = %d", resp.StatusCode)
	}
	var b ReproBundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Schema != canon.ReproSchema || b.Experiment != name || b.Job != v.ID {
		t.Errorf("bundle header = %q/%q/%q", b.Schema, b.Experiment, b.Job)
	}
	if b.ErrorCode != CodePanic || !strings.Contains(b.Error, "injected panic") {
		t.Errorf("bundle failure = %q (%s), want the injected panic (%s)", FirstLine(b.Error), b.ErrorCode, CodePanic)
	}
	if b.Faults == nil || b.Faults.Spec != spec || b.Faults.Seed != 1 {
		t.Errorf("bundle faults = %+v, want the armed spec %q", b.Faults, spec)
	}
	if b.Key == "" {
		t.Error("bundle has no repro key")
	}
	recorded := b.Key
	if key, err := b.DeriveKey(); err != nil || key != recorded {
		t.Errorf("DeriveKey = %q, %v; want the served key %q", key, err, recorded)
	}

	replayed := RunRepro(context.Background(), &b)
	if !b.SameFailure(replayed) {
		t.Errorf("replay = %v, want the recorded failure %q (%s)", replayed, FirstLine(b.Error), b.ErrorCode)
	}
}

// TestServerReproRefusals pins the endpoint's error paths: unknown jobs
// 404, non-failed jobs 400, and the legacy wire format is refused (the
// bundle is a bare document, not an envelope, so it has no legacy form).
func TestServerReproRefusals(t *testing.T) {
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit("echo", JobParams{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Await(v.ID, 5*time.Second, nil); !ok || got.State != StateDone {
		t.Fatalf("echo job = %+v, want done", got)
	}

	check := func(path, legacy string, wantStatus int, wantCode string) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if legacy != "" {
			req.Header.Set(VersionHeader, legacy)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus || env.Error == nil || env.Error.Code != wantCode {
			t.Errorf("GET %s: status %d, error %+v; want %d/%s", path, resp.StatusCode, env.Error, wantStatus, wantCode)
		}
	}
	check("/v1/jobs/nope/repro", "", http.StatusNotFound, CodeNotFound)
	check("/v1/jobs/"+v.ID+"/repro", "", http.StatusBadRequest, CodeBadRequest)
	check("/v1/jobs/"+v.ID+"/repro", LegacyAPIVersion, http.StatusBadRequest, CodeBadRequest)
}

// TestRunReproTamperedPoint pins the anti-footgun: a bundle whose
// point spec no longer matches its recorded content address (edited by
// hand, or produced by an incompatible build) is refused rather than
// silently replaying the wrong computation.
func TestRunReproTamperedPoint(t *testing.T) {
	b := &ReproBundle{
		Schema:     canon.ReproSchema,
		Experiment: "fig2",
		Point:      &experiments.PointSpec{Experiment: "fig2", Index: 3},
		PointKey:   "not-the-derived-key",
	}
	err := RunRepro(context.Background(), b)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("tampered bundle replay = %v, want a key-mismatch refusal", err)
	}
	if ErrorCodeOf(err) != CodeBadRequest {
		t.Errorf("tampered bundle code = %s, want %s", ErrorCodeOf(err), CodeBadRequest)
	}

	wrong := &ReproBundle{Schema: "cascade-repro/v0"}
	if err := RunRepro(context.Background(), wrong); err == nil ||
		!strings.Contains(err.Error(), fmt.Sprintf("%q", canon.ReproSchema)) {
		t.Errorf("wrong-schema replay = %v, want a schema refusal", err)
	}
}
