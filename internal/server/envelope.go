package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/experiments"
)

// APIVersion is the current wire format: every response is one Envelope,
// and errors are typed objects instead of bare strings.
const APIVersion = "2025-06"

// LegacyAPIVersion selects the original wire format — unwrapped JobView
// bodies, {"jobs": ...} listings, and {"error": "<message>"} errors — for
// clients that predate the envelope. Request it with the Accept-Version
// header; the golden tests in envelope_test.go pin its exact shapes.
const LegacyAPIVersion = "2024-01"

// VersionHeader is the request header that selects the wire format.
const VersionHeader = "Accept-Version"

// Typed error codes carried in Envelope.Error.Code. Terminal codes
// (cancelled, timeout, panic, experiment_failed) describe why a job
// failed; the rest describe why a request was refused.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeQueueFull        = "queue_full"
	CodeShuttingDown     = "shutting_down"
	CodeCancelled        = "cancelled"
	CodeTimeout          = "timeout"
	CodePanic            = "panic"
	CodeExperimentFailed = "experiment_failed"
	// CodeQuotaExceeded rejects a submission whose tenant is over its
	// admission quota (fabric coordinators only; a single server never
	// emits it).
	CodeQuotaExceeded = "quota_exceeded"
)

// APIError is the envelope's typed error object.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Envelope is the one response shape of the current API: every endpoint
// fills the fields it has and omits the rest, so clients decode a single
// type. A job's result rides beside the job, not inside it.
type Envelope struct {
	Version     string                   `json:"api_version"`
	Job         *JobView                 `json:"job,omitempty"`
	Jobs        []JobView                `json:"jobs,omitempty"`
	Experiments []experiments.Info       `json:"experiments,omitempty"`
	Result      json.RawMessage          `json:"result,omitempty"`
	Point       *experiments.PointResult `json:"point,omitempty"`
	Outcomes    []PointOutcome           `json:"outcomes,omitempty"`
	Cached      bool                     `json:"cached,omitempty"`
	Progress    *Progress                `json:"progress,omitempty"`
	Checkpoints *CheckpointStreamView    `json:"checkpoints,omitempty"`
	Checkpoint  *CheckpointView          `json:"checkpoint,omitempty"`
	QueueDepth  *int                     `json:"queue_depth,omitempty"`
	Error       *APIError                `json:"error,omitempty"`
}

// PointOutcome is one point's result within a batched POST /v1/points
// dispatch: its position in the batch, its content key, and exactly one
// of a result or a typed error. A streamed batch response carries one
// outcome per ndjson line as each point retires, so the coordinator can
// close leases (and advance job progress) point by point instead of
// waiting for the whole batch.
type PointOutcome struct {
	Index  int                      `json:"index"`
	Key    string                   `json:"key,omitempty"`
	Point  *experiments.PointResult `json:"point,omitempty"`
	Cached bool                     `json:"cached,omitempty"`
	Error  *APIError                `json:"error,omitempty"`
}

// Progress reports how far a running sweep has advanced, in points.
// Keep-alive frames of a streaming ?wait response carry one, as do the
// coordinator's partial-result frames.
type Progress struct {
	PointsDone  int `json:"points_done"`
	PointsTotal int `json:"points_total"`
}

// requestVersion resolves a request's wire format. An absent header means
// the current version; an unknown one is a client error.
func requestVersion(r *http.Request) (string, error) {
	switch v := r.Header.Get(VersionHeader); v {
	case "", APIVersion:
		return APIVersion, nil
	case LegacyAPIVersion:
		return LegacyAPIVersion, nil
	default:
		return "", fmt.Errorf("unknown %s %q (known: %s, %s)", VersionHeader, v, APIVersion, LegacyAPIVersion)
	}
}

// writeEnvelope stamps the version and writes the envelope.
func writeEnvelope(w http.ResponseWriter, status int, env Envelope) {
	env.Version = APIVersion
	writeJSON(w, status, env)
}

// writeEnvelopeError writes a bare typed error in an envelope.
func writeEnvelopeError(w http.ResponseWriter, status int, code, message string) {
	writeEnvelope(w, status, Envelope{Error: &APIError{Code: code, Message: message}})
}

// jobEnvelope renders a job in the current format: the result is hoisted
// out of the job, and a failed job carries its typed error.
func jobEnvelope(v JobView) Envelope {
	env := Envelope{Result: v.Result}
	v.Result = nil
	env.Job = &v
	if v.State == StateFailed {
		code := v.ErrorCode
		if code == "" {
			code = CodeExperimentFailed
		}
		env.Error = &APIError{Code: code, Message: v.Error}
	}
	return env
}

// legacyView strips the fields the legacy format never had.
func legacyView(v JobView) JobView {
	v.ErrorCode = ""
	v.From = nil
	return v
}

// codedError attaches a typed API code to an error. errorCode unwraps it
// with errors.As, so wrapping with %w anywhere above preserves the code.
type codedError struct {
	code string
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// errorCode classifies a job or submission error into its typed code.
// Explicit codes win; the context sentinels distinguish a cancelled job
// from one that exceeded its deadline; everything else is the
// experiment's own failure.
func errorCode(err error) string {
	var ce *codedError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &ce):
		return ce.code
	case errors.Is(err, context.Canceled):
		return CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, ErrShuttingDown):
		return CodeShuttingDown
	case errors.Is(err, ErrUnknownExperiment):
		return CodeNotFound
	default:
		return CodeExperimentFailed
	}
}
