package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
	"repro/internal/faults"
)

// Repro bundles make failed jobs debuggable offline: every terminal
// failure can be rendered as a self-contained JSON document holding the
// deterministic inputs that produced it — the fully-resolved params,
// the failing point's spec and content address, the armed fault spec
// and seed — plus the nearest checkpoint-stream entry when one exists.
// `cascade-sim -repro bundle.json` replays the bundle and verifies the
// failure reproduces identically; GET /v1/jobs/{id}/repro serves it.
//
// The bundle's Key hashes only the replay inputs (canon.ReproSchema):
// captured outputs — the error text, the checkpoint — are evidence, not
// inputs, and two bundles with the same key must replay the same way.

// ReproFaults records the fault-injection configuration that was armed
// when the failure happened. Spec and Seed are replay inputs; Fired is
// evidence (which sites had triggered, cumulatively, at capture time).
type ReproFaults struct {
	Spec  string           `json:"spec"`
	Seed  int64            `json:"seed"`
	Fired map[string]int64 `json:"fired,omitempty"`
}

// ReproCheckpoint is the nearest checkpoint-stream entry to the
// failure: where the run last stood that a debugger can inspect or
// resume from. Captured only when the job had a checkpoint stream.
type ReproCheckpoint struct {
	Key       string `json:"key"`
	Index     int    `json:"index"`
	Iter      int    `json:"iter"`
	NextChunk int    `json:"next_chunk"`
	Time      int64  `json:"time"`
}

// ReproBundle is the self-contained replay document attached to a
// terminal-failed job.
type ReproBundle struct {
	Schema     string    `json:"schema"`
	Key        string    `json:"repro_key"`
	Job        string    `json:"job"`
	Experiment string    `json:"experiment"`
	Params     JobParams `json:"params"` // fully resolved, incl. effective timeout_ms
	JobKey     string    `json:"job_key"`

	// What failed: the recorded error and its typed code; for sharded
	// (fabric) jobs, the lowest-index failing point and its address.
	Error     string                 `json:"error"`
	ErrorCode string                 `json:"error_code"`
	Point     *experiments.PointSpec `json:"point,omitempty"`
	PointKey  string                 `json:"point_key,omitempty"`

	Faults     *ReproFaults     `json:"faults,omitempty"`
	Checkpoint *ReproCheckpoint `json:"checkpoint,omitempty"`
}

// reproInputs is the deterministic subset of a bundle that Key hashes.
type reproInputs struct {
	Experiment string                 `json:"experiment"`
	Params     JobParams              `json:"params"`
	Point      *experiments.PointSpec `json:"point,omitempty"`
	FaultSpec  string                 `json:"fault_spec,omitempty"`
	FaultSeed  int64                  `json:"fault_seed,omitempty"`
}

// DeriveKey computes (and stamps) the bundle's content address from its
// replay inputs under canon.ReproSchema.
func (b *ReproBundle) DeriveKey() (string, error) {
	in := reproInputs{Experiment: b.Experiment, Params: b.Params, Point: b.Point}
	if b.Faults != nil {
		in.FaultSpec = b.Faults.Spec
		in.FaultSeed = b.Faults.Seed
	}
	key, err := canon.ReproKey(in)
	if err != nil {
		return "", err
	}
	b.Key = key
	return key, nil
}

// FiredCounts snapshots how often each armed site of inj has triggered,
// for bundle evidence. Nil-safe.
func FiredCounts(inj *faults.Injector, sites []string) map[string]int64 {
	fired := make(map[string]int64)
	for _, site := range sites {
		if n := inj.Fired(site); n > 0 {
			fired[site] = n
		}
	}
	if len(fired) == 0 {
		return nil
	}
	return fired
}

// Repro builds the repro bundle for a terminal-failed job.
func (s *Server) Repro(id string) (*ReproBundle, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &codedError{code: CodeNotFound, err: fmt.Errorf("unknown job %q", id)}
	}
	s.mu.Lock()
	state, errMsg, errCode := j.state, j.errMsg, j.errCode
	b := &ReproBundle{
		Schema:     canon.ReproSchema,
		Job:        j.id,
		Experiment: j.experiment,
		Params:     j.params,
		JobKey:     j.key,
		Error:      errMsg,
		ErrorCode:  errCode,
	}
	s.mu.Unlock()
	if state != StateFailed {
		return nil, &codedError{code: CodeBadRequest,
			err: fmt.Errorf("job %q is %s; repro bundles exist only for failed jobs", id, state)}
	}
	if s.faultSpec != "" {
		b.Faults = &ReproFaults{Spec: s.faultSpec, Seed: s.faultSeed,
			Fired: FiredCounts(s.faults, FaultSites())}
	}
	if cs := s.streamFor(id); cs != nil {
		cs.mu.Lock()
		if n := len(cs.run.Checkpoints); n > 0 {
			ck := cs.run.Checkpoints[n-1]
			b.Checkpoint = &ReproCheckpoint{Key: cs.key, Index: n - 1,
				Iter: ck.Iter, NextChunk: ck.NextChunk, Time: ck.Time}
		}
		cs.mu.Unlock()
	}
	if _, err := b.DeriveKey(); err != nil {
		return nil, err
	}
	return b, nil
}

// handleRepro serves GET /v1/jobs/{id}/repro: the bundle as a bare JSON
// document (not an envelope) so `curl ... > bundle.json` produces
// exactly what `cascade-sim -repro` consumes.
func (s *Server) handleRepro(w http.ResponseWriter, r *http.Request) {
	if ver, err := requestVersion(r); err != nil || ver == LegacyAPIVersion {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("repro bundles require %s %s", VersionHeader, APIVersion))
		return
	}
	b, err := s.Repro(r.PathValue("id"))
	if err != nil {
		writeCodedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

// RunRepro replays a bundle: re-arm the recorded fault injector from
// its spec and seed, then re-execute the failing unit — the recorded
// point when the bundle names one, the whole experiment otherwise —
// under the same deadline and panic-containment shape the serving path
// uses. The returned error is the replayed failure (nil means the
// failure did NOT reproduce, which for a correctly-captured bundle is
// itself a finding).
func RunRepro(ctx context.Context, b *ReproBundle) error {
	if b.Schema != canon.ReproSchema {
		return &codedError{code: CodeBadRequest,
			err: fmt.Errorf("bundle schema %q; this build replays %q", b.Schema, canon.ReproSchema)}
	}
	var inj *faults.Injector
	if b.Faults != nil {
		var err error
		if inj, err = faults.Parse(b.Faults.Spec, b.Faults.Seed); err != nil {
			return &codedError{code: CodeBadRequest, err: fmt.Errorf("bundle fault spec: %w", err)}
		}
	}
	if b.Point != nil {
		key, err := canon.PointKey(*b.Point)
		if err != nil {
			return &codedError{code: CodeBadRequest, err: err}
		}
		if b.PointKey != "" && key != b.PointKey {
			return &codedError{code: CodeBadRequest,
				err: fmt.Errorf("bundle point key %s does not match its spec (derived %s) — tampered or stale bundle", b.PointKey, key)}
		}
	}
	if ms := b.Params.TimeoutMS; ms > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	return replayUnit(ctx, b, inj)
}

// replayUnit mirrors executePoint/execute: injected panic and stall
// sites first, then the real run, with panics contained into the same
// error shape the serving path records.
func replayUnit(ctx context.Context, b *ReproBundle, inj *faults.Injector) (err error) {
	unit := "experiment"
	if b.Point != nil {
		unit = "point"
	}
	defer func() {
		if r := recover(); r != nil {
			err = &codedError{code: CodePanic, err: fmt.Errorf("%s panicked: %v\n%s", unit, r, debug.Stack())}
		}
	}()
	if inj.Check(SiteExpPanic) {
		panic(fmt.Sprintf("injected panic (site %s)", SiteExpPanic))
	}
	if inj.Check(SiteExpStall) {
		<-ctx.Done()
		return ctx.Err()
	}
	if b.Point != nil {
		_, err = experiments.RunPoint(ctx, *b.Point)
		return err
	}
	e, ok := experiments.Lookup(b.Experiment)
	if !ok {
		return &codedError{code: CodeNotFound,
			err: fmt.Errorf("bundle experiment %q not in this build's registry", b.Experiment)}
	}
	if _, err = e.Run(ctx, b.Params.RunConfig()); err != nil {
		return err
	}
	return nil
}

// SameFailure reports whether a replayed error matches a bundle's
// recorded one: same typed code and same first error line. Panic errors
// carry goroutine stacks whose addresses differ run to run, so the
// comparison deliberately stops at the first newline.
func (b *ReproBundle) SameFailure(replayed error) bool {
	if replayed == nil {
		return false
	}
	code := errorCode(replayed)
	if code != b.ErrorCode {
		return false
	}
	return FirstLine(replayed.Error()) == FirstLine(b.Error)
}

// FirstLine truncates s at its first newline.
func FirstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// ErrorCodeOf classifies err into its typed API code ("" for nil) —
// the exported face of errorCode, for replay tooling that compares a
// live error against a bundle's recorded code.
func ErrorCodeOf(err error) string { return errorCode(err) }
