package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"repro/internal/experiments"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrUnknownExperiment is returned for a name the registry lacks.
	ErrUnknownExperiment = errors.New("unknown experiment")
	// ErrQueueFull is returned when the bounded job queue is at capacity.
	ErrQueueFull = errors.New("job queue full")
	// ErrShuttingDown is returned for submissions after Shutdown began.
	ErrShuttingDown = errors.New("server shutting down")
)

// Submit accepts one experiment job. Zero-valued parameters are resolved
// to the registry defaults before anything else, so the content-addressed
// key always reflects fully-resolved parameters. The result is one of:
//
//   - cache hit: the job completes immediately with the stored bytes —
//     no simulation runs, no queue slot is consumed;
//   - coalesced: an identical job (same key) is already queued or
//     running, so this job attaches to it and completes when it does —
//     concurrent duplicate submissions share one simulation;
//   - queued: the job takes a queue slot and a worker will run it.
//
// The returned view reflects the job's state at return; poll Job (or
// await it) for completion.
func (s *Server) Submit(experiment string, p JobParams) (JobView, error) {
	e, ok := s.exps[experiment]
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, experiment)
	}
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return JobView{}, err
	}
	jobKey, err := JobKey(experiment, p)
	if err != nil {
		return JobView{}, err
	}
	key := RenderKey(jobKey, "json")
	if p.TimeoutMS == 0 {
		p.TimeoutMS = int(s.jobTimeout / time.Millisecond)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.metrics.Inc(mJobsRejected)
		return JobView{}, ErrShuttingDown
	}
	// Counted only once a submission is accepted (a job record exists),
	// so jobs.submitted = jobs.completed + jobs.failed + in-flight jobs
	// holds at every instant; shutdown rejections count only in
	// jobs.rejected.
	s.metrics.Inc(mJobsSubmitted)
	j := &job{
		id:         fmt.Sprintf("j%d", s.nextID),
		experiment: e.Name,
		params:     p,
		key:        key,
		state:      StateQueued,
		created:    time.Now(),
		done:       make(chan struct{}),
	}
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j)

	if leader, ok := s.inflight[key]; ok {
		j.coalesced = true
		s.metrics.Inc(mJobsCoalesced)
		s.wg.Add(1)
		go s.follow(j, leader)
		return j.view(true), nil
	}
	if val, ok := s.cache.Get(key); ok {
		j.cached = true
		s.finishLocked(j, val, nil)
		s.metrics.Inc(mJobsCacheHits)
		return j.view(true), nil
	}
	select {
	case s.queue <- j:
		s.inflight[key] = j
		depth := int64(len(s.queue))
		s.metrics.Set(mQueueDepth, depth)
		s.metrics.Max(mQueuePeak, depth)
	default:
		s.finishLocked(j, nil, ErrQueueFull)
		s.metrics.Inc(mJobsRejected)
		return j.view(true), ErrQueueFull
	}
	return j.view(true), nil
}

// Job returns the view of a submitted job (false when the id is unknown).
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(true), true
}

// Jobs returns every job in submission order, without result payloads.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, len(s.order))
	for i, j := range s.order {
		out[i] = j.view(false)
	}
	return out
}

// Await blocks until the job finishes, the timeout elapses (0 = return
// immediately), or cancel is closed/ready; it then returns the current
// view.
func (s *Server) Await(id string, timeout time.Duration, cancel <-chan struct{}) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-cancel:
		}
	}
	return s.Job(id)
}

// follow completes a coalesced follower when its leader finishes: the
// follower adopts the leader's result or error. The leader always closes
// done — success, failure, or shutdown cancellation — so followers never
// leak.
func (s *Server) follow(j, leader *job) {
	defer s.wg.Done()
	<-leader.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if leader.state == StateDone {
		s.finishLocked(j, leader.result, nil)
	} else {
		// Re-wrap so the follower inherits the leader's typed code, not
		// just its message.
		s.finishLocked(j, nil, &codedError{code: leader.errCode, err: errors.New(leader.errMsg)})
	}
}

// worker drains the job queue until it is closed and empty. The pool
// self-heals: a panic that escapes a job (runJob already converts
// experiment panics into job failures, so this is the last resort for
// bookkeeping bugs) respawns a replacement worker before this one
// exits, and the escaped job is still moved to a terminal state.
func (s *Server) worker() {
	defer s.wg.Done()
	var cur *job
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Inc(mWorkerRestarts)
			if cur != nil {
				s.mu.Lock()
				delete(s.inflight, cur.key)
				if cur.state == StateQueued || cur.state == StateRunning {
					s.finishLocked(cur, nil, fmt.Errorf("worker panicked: %v", r))
				}
				s.mu.Unlock()
			}
			s.wg.Add(1) // before Done (deferred later = runs first): never strands Shutdown's Wait
			go s.worker()
		}
	}()
	for j := range s.queue {
		cur = j
		s.metrics.Set(mQueueDepth, int64(len(s.queue)))
		s.runJob(j)
		cur = nil
	}
}

// runJob executes one leader job: run the experiment under the server's
// run context (bounded by the job's deadline), render the result to
// JSON, store it in the cache, and finish the job (waking any
// followers). Every failure mode is absorbed here:
//
//   - a panic anywhere in execution fails only this job, with the stack
//     in its error (jobs.panics);
//   - the per-job deadline cancels the experiment's context so a stuck
//     sweep cannot pin the worker forever (jobs.timeouts);
//   - a cache write failure degrades: the computed result is served and
//     the job succeeds (cache.write_errors counts the loss).
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()
	s.metrics.Add(mTimeQueued, j.started.Sub(j.created).Nanoseconds())
	s.metrics.Inc(mJobsExecuted)

	ctx := experiments.WithPointProgress(s.runCtx, func(done, total int) {
		j.pointsDone.Store(int64(done))
		j.pointsTotal.Store(int64(total))
	})
	timeout := time.Duration(j.params.TimeoutMS) * time.Millisecond
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	val, err := s.execute(ctx, j)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && s.runCtx.Err() == nil {
		s.metrics.Inc(mJobsTimeouts)
		err = fmt.Errorf("job exceeded its %v deadline: %w", timeout, err)
	}
	if err == nil {
		// Degrade, don't fail, when the write is lost: the result exists
		// and followers are waiting on it; only the disk copy is missing
		// (cache.write_errors and Healthy() record the loss).
		_ = s.storeResult(ctx, j.key, val)
	}

	s.mu.Lock()
	delete(s.inflight, j.key)
	s.finishLocked(j, val, err)
	s.mu.Unlock()
	s.metrics.Add(mTimeRun, j.finished.Sub(j.started).Nanoseconds())
}

// execute runs a job's experiment and renders the result, converting a
// panic — an experiment bug, or the injected SiteExpPanic — into an
// error carrying the stack. Panics on sweep-worker goroutines inside
// parallelFor are converted to point errors by the experiments package,
// so this recover plus that one cover both panic surfaces.
func (s *Server) execute(ctx context.Context, j *job) (val []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Inc(mJobsPanics)
			err = &codedError{code: CodePanic, err: fmt.Errorf("experiment panicked: %v\n%s", r, debug.Stack())}
		}
	}()
	if s.faults.Check(SiteExpPanic) {
		panic(fmt.Sprintf("injected panic (site %s)", SiteExpPanic))
	}
	if s.faults.Check(SiteExpStall) {
		<-ctx.Done() // a sweep that never dispatches another point
		return nil, ctx.Err()
	}
	e := s.exps[j.experiment]
	r, err := e.Run(ctx, j.params.RunConfig())
	if err != nil {
		return nil, err
	}
	return RenderJSON(r)
}

// Cache-write retry policy: transient disk failures (ENOSPC races,
// network filesystems) get a few bounded, jittered, context-aware
// retries before the server degrades to serving the result memory-only.
const (
	putAttempts    = 3
	putBackoffBase = 5 * time.Millisecond
)

// storeResult writes a finished job's bytes to the cache, retrying
// transient failures with exponential backoff and jitter. It stops
// early when ctx is done (shutdown or the job deadline: the result is
// already computed, so the caller still serves it). The error return is
// advisory — every attempt already counted in cache.write_errors, and
// callers degrade rather than fail.
func (s *Server) storeResult(ctx context.Context, key string, val []byte) error {
	backoff := putBackoffBase
	var err error
	for attempt := 1; ; attempt++ {
		err = s.cache.Put(key, val)
		if err == nil || attempt == putAttempts {
			return err
		}
		s.metrics.Inc(mCacheWriteRetries)
		jitter := time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-time.After(backoff + jitter):
		case <-ctx.Done():
			return err
		}
		backoff *= 2
	}
}

// finishLocked moves a job to its terminal state and wakes waiters.
// Callers must hold the server mutex.
func (s *Server) finishLocked(j *job, val []byte, err error) {
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.errCode = errorCode(err)
		s.metrics.Inc(mJobsFailed)
	} else {
		j.state = StateDone
		j.result = val
		s.metrics.Inc(mJobsCompleted)
	}
	close(j.done)
}

// RenderJSON renders an experiment result exactly as cascade-sim's -json
// mode does (indented, trailing newline), so CLI sweeps and the server
// produce — and therefore share — byte-identical cache entries.
func RenderJSON(r experiments.Renderable) ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
