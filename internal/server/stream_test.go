package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// progressExperiment reports point progress like a real sweep does —
// through the context — advancing one point each time step is signalled,
// and finishing when its points are exhausted.
func progressExperiment(name string, total int, step <-chan struct{}) experiments.Experiment {
	return experiments.Experiment{
		Name:        name,
		Description: "test stand-in",
		Run: func(ctx context.Context, rc experiments.RunConfig) (experiments.Renderable, error) {
			for i := 1; i <= total; i++ {
				select {
				case <-step:
					experiments.ReportPointProgress(ctx, i, total)
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return fakeResult{Value: fmt.Sprintf("%s done", name)}, nil
		},
	}
}

// TestStreamingWaitKeepAlive pins the streaming long-poll contract: a
// ?wait request with "Accept: application/x-ndjson" receives periodic
// one-line envelope frames carrying live points_done/points_total while
// the job runs, and a final frame that is the complete job envelope —
// so a slow sweep is distinguishable from a dead connection.
func TestStreamingWaitKeepAlive(t *testing.T) {
	const total = 3
	step := make(chan struct{}, total)
	s, err := New(Config{
		Workers:          1,
		Experiments:      []experiments.Experiment{progressExperiment("slow", total, step)},
		ProgressInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit("slow", JobParams{})
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"?wait=10s", nil)
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != NDJSONContentType {
		t.Errorf("Content-Type = %q, want %q", got, NDJSONContentType)
	}

	// Let the sweep advance one point at a time, with enough wall time
	// between points for keep-alive frames to fire.
	go func() {
		for i := 0; i < total; i++ {
			time.Sleep(25 * time.Millisecond)
			step <- struct{}{}
		}
	}()

	var frames []Envelope
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var env Envelope
		if err := json.Unmarshal(line, &env); err != nil {
			t.Fatalf("frame is not one JSON line: %v\n%s", err, line)
		}
		if env.Version != APIVersion {
			t.Errorf("frame version = %q", env.Version)
		}
		frames = append(frames, env)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want several keep-alives plus a final", len(frames))
	}

	final := frames[len(frames)-1]
	if final.Job == nil || final.Job.State != StateDone || len(final.Result) == 0 {
		t.Fatalf("final frame is not the completed envelope: %+v", final)
	}
	var res fakeResult
	if err := json.Unmarshal(final.Result, &res); err != nil || res.Value != "slow done" {
		t.Errorf("final result = %q, %v", res.Value, err)
	}

	// Keep-alive frames carry monotonically nondecreasing progress, and
	// at least one observed the sweep mid-flight.
	sawLive := false
	prev := -1
	for _, f := range frames[:len(frames)-1] {
		if f.Job == nil || f.Job.State == StateDone {
			t.Errorf("keep-alive frame has unexpected shape: %+v", f)
		}
		if len(f.Result) != 0 {
			t.Error("keep-alive frame carries a result payload")
		}
		if f.Progress != nil {
			if f.Progress.PointsTotal != total {
				t.Errorf("points_total = %d, want %d", f.Progress.PointsTotal, total)
			}
			if f.Progress.PointsDone < prev {
				t.Errorf("points_done went backwards: %d after %d", f.Progress.PointsDone, prev)
			}
			prev = f.Progress.PointsDone
			if f.Progress.PointsDone > 0 && f.Progress.PointsDone < total {
				sawLive = true
			}
		}
	}
	if !sawLive {
		t.Error("no keep-alive frame observed the sweep mid-flight")
	}
}

// TestStreamingWaitTimeout pins the wait-bound: a streaming poll whose
// wait elapses before the job finishes ends with a frame that reports
// the job still running (progress attached), not an error and not a
// hang.
func TestStreamingWaitTimeout(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:          1,
		Experiments:      []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
		ProgressInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit("fake", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	<-running

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"?wait=50ms", nil)
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var last Envelope
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad frame: %v", err)
		}
		n++
	}
	if n < 2 {
		t.Errorf("got %d frames across a 50ms wait with a 5ms tick, want several", n)
	}
	if last.Job == nil || last.Job.State != StateRunning || last.Error != nil {
		t.Errorf("final frame after wait timeout = %+v, want a running job and no error", last)
	}
}

// TestStreamingWaitClientDisconnect pins the decoupling between a
// streaming watcher and the job it watches: when the client drops the
// connection mid-stream, the job keeps running to completion, and the
// goroutines servicing the dead stream are torn down rather than
// leaked. A monitoring dashboard closing a tab must never cancel or
// orphan the sweep underneath it.
func TestStreamingWaitClientDisconnect(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:          1,
		Experiments:      []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
		ProgressInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit("fake", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	<-running

	// Steady state: server up, job running, no stream attached yet.
	// Goroutines must return to this level once the stream dies.
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+v.ID+"?wait=10s", nil)
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read at least one keep-alive frame so the stream is demonstrably
	// live before the disconnect.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no frame before disconnect: %v", sc.Err())
	}
	var env Envelope
	if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
		t.Fatalf("bad frame: %v", err)
	}
	if env.Job == nil || env.Job.State != StateRunning {
		t.Fatalf("first frame = %+v, want the running job", env)
	}

	// Drop the connection mid-stream, then let the experiment finish.
	cancel()
	close(gate)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, ok := s.Job(v.ID); ok && j.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			j, _ := s.Job(v.ID)
			t.Fatalf("job never finished after client disconnect: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runs = %d, want 1 (disconnect must not rerun or cancel the job)", got)
	}
	waitNoGoroutineLeaks(t, baseline)
}

// TestStreamingWaitUnknownJob pins that the stream path refuses an
// unknown id with an ordinary envelope error.
func TestStreamingWaitUnknownJob(t *testing.T) {
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/nope?wait=1s", nil)
	req.Header.Set("Accept", NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || env.Error == nil || env.Error.Code != CodeNotFound {
		t.Errorf("unknown job: status %d, error %+v", resp.StatusCode, env.Error)
	}
}
