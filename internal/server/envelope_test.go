package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// doJSON performs one request with an optional Accept-Version header and
// returns the decoded generic body plus the status code.
func doJSON(t *testing.T, method, url, version, body string) (map[string]interface{}, int) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if version != "" {
		req.Header.Set(VersionHeader, version)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return m, resp.StatusCode
}

// keysOf returns a body's sorted top-level field names.
func keysOf(m map[string]interface{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestLegacyGoldenShapes pins the 2024-01 wire format exactly: unwrapped
// job bodies with the original field set, {"jobs"}/{"experiments"}
// listings, and {"error": "<message>"} errors — no api_version, no typed
// codes, no envelope. A legacy client must never see a new field.
func TestLegacyGoldenShapes(t *testing.T) {
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("good")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submit (202) — unwrapped JobView, original fields only.
	sub, code := doJSON(t, "POST", ts.URL+"/v1/jobs", LegacyAPIVersion, `{"experiment": "good"}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("legacy submit: status %d", code)
	}
	for _, k := range keysOf(sub) {
		switch k {
		case "id", "experiment", "params", "key", "state", "cached",
			"coalesced", "error", "created", "started", "finished", "result":
		default:
			t.Errorf("legacy submit body has non-legacy field %q", k)
		}
	}
	if _, has := sub["api_version"]; has {
		t.Error("legacy submit body carries api_version")
	}
	id := sub["id"].(string)

	// Completed job GET — still unwrapped, result embedded in the job.
	done, code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"?wait=10s", LegacyAPIVersion, "")
	if code != http.StatusOK {
		t.Fatalf("legacy job GET: status %d", code)
	}
	if done["state"] != string(StateDone) {
		t.Fatalf("legacy job state = %v, want done", done["state"])
	}
	if _, has := done["result"]; !has {
		t.Error("legacy job body lacks the embedded result")
	}
	if _, has := done["error_code"]; has {
		t.Error("legacy job body carries error_code")
	}

	// Listings — the original one-field wrappers.
	list, _ := doJSON(t, "GET", ts.URL+"/v1/jobs", LegacyAPIVersion, "")
	if got := keysOf(list); len(got) != 1 || got[0] != "jobs" {
		t.Errorf("legacy job listing keys = %v, want [jobs]", got)
	}
	disc, _ := doJSON(t, "GET", ts.URL+"/v1/experiments", LegacyAPIVersion, "")
	if got := keysOf(disc); len(got) != 1 || got[0] != "experiments" {
		t.Errorf("legacy experiments keys = %v, want [experiments]", got)
	}

	// Errors — the bare {"error": "<message>"} object.
	eb, code := doJSON(t, "GET", ts.URL+"/v1/jobs/absent", LegacyAPIVersion, "")
	if code != http.StatusNotFound {
		t.Errorf("legacy 404: status %d", code)
	}
	if got := keysOf(eb); len(got) != 1 || got[0] != "error" {
		t.Errorf("legacy error keys = %v, want [error]", got)
	}
	if _, isString := eb["error"].(string); !isString {
		t.Errorf("legacy error is %T, want a plain string", eb["error"])
	}
}

// TestEnvelopeShapes pins the current wire format: every body is an
// envelope stamped api_version, results ride beside jobs, and errors are
// typed {code, message} objects.
func TestEnvelopeShapes(t *testing.T) {
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("good")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub, code := doJSON(t, "POST", ts.URL+"/v1/jobs", "", `{"experiment": "good"}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if sub["api_version"] != APIVersion {
		t.Errorf("api_version = %v, want %s", sub["api_version"], APIVersion)
	}
	job, ok := sub["job"].(map[string]interface{})
	if !ok {
		t.Fatalf("submit body lacks a job object: %v", keysOf(sub))
	}
	id := job["id"].(string)

	done, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"?wait=10s", APIVersion, "")
	dj := done["job"].(map[string]interface{})
	if dj["state"] != string(StateDone) {
		t.Fatalf("job state = %v, want done", dj["state"])
	}
	if _, has := dj["result"]; has {
		t.Error("envelope job embeds the result; it must be hoisted to the envelope")
	}
	if _, has := done["result"]; !has {
		t.Error("envelope lacks the hoisted result")
	}

	// Typed errors with codes, by endpoint.
	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
		wantCode           string
	}{
		{"GET", "/v1/jobs/absent", "", http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/jobs", `{"experiment": "nope"}`, http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/jobs", `{"bogus": 1}`, http.StatusBadRequest, CodeBadRequest},
		{"GET", "/v1/jobs/" + id + "?wait=bogus", "", http.StatusBadRequest, CodeBadRequest},
	} {
		m, code := doJSON(t, tc.method, ts.URL+tc.path, "", tc.body)
		if code != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, code, tc.wantStatus)
		}
		e, ok := m["error"].(map[string]interface{})
		if !ok || e["code"] != tc.wantCode || e["message"] == "" {
			t.Errorf("%s %s: error = %v, want code %q with message", tc.method, tc.path, m["error"], tc.wantCode)
		}
	}

	// Unknown version header: refused, not guessed.
	if _, code := doJSON(t, "GET", ts.URL+"/v1/jobs", "1999-12", ""); code != http.StatusBadRequest {
		t.Errorf("unknown Accept-Version: status %d, want 400", code)
	}
}

// TestWaitCancelledEnvelope is the pinning test for the ?wait fix: a job
// cancelled mid-wait no longer answers as a bare 200 body the client has
// to diagnose — the envelope carries the terminal typed "cancelled" code
// alongside the failed job.
func TestWaitCancelledEnvelope(t *testing.T) {
	gate := make(chan struct{}) // never closed: only cancellation ends the run
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit("fake", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	<-running

	// Start the wait, then cancel the job via forced shutdown.
	type waited struct {
		m    map[string]interface{}
		code int
	}
	ch := make(chan waited, 1)
	go func() {
		m, code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"?wait=30s", "", "")
		ch <- waited{m, code}
	}()
	time.Sleep(30 * time.Millisecond) // the waiter is blocked on the job now
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	s.Shutdown(ctx)

	got := <-ch
	if got.code != http.StatusOK {
		t.Fatalf("cancelled wait: status %d", got.code)
	}
	e, ok := got.m["error"].(map[string]interface{})
	if !ok {
		t.Fatalf("cancelled wait body lacks an error object: %v", keysOf(got.m))
	}
	if e["code"] != CodeCancelled {
		t.Errorf("error.code = %v, want %q", e["code"], CodeCancelled)
	}
	job := got.m["job"].(map[string]interface{})
	if job["state"] != string(StateFailed) || job["error_code"] != CodeCancelled {
		t.Errorf("job = state %v error_code %v, want failed/cancelled", job["state"], job["error_code"])
	}
}

// TestCheckpointEndpoints drives the checkpoint surface end to end over
// HTTP: capture a stream for a quickstart job, re-capture to hit the
// content-addressed dedup, inspect a checkpoint, resume from it (twice —
// the second resume is a cache hit), and watch every misuse answer with
// a typed error.
func TestCheckpointEndpoints(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A tiny quickstart with small chunks, so the run has several
	// checkpointable chunk boundaries.
	sub, code := doJSON(t, "POST", ts.URL+"/v1/jobs", "",
		`{"experiment": "quickstart", "params": {"scale": 0.001, "chunk_kb": 2}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	id := sub["job"].(map[string]interface{})["id"].(string)
	if _, code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"?wait=30s", "", ""); code != http.StatusOK {
		t.Fatalf("wait: status %d", code)
	}

	// Capture.
	cap1, code := doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/checkpoints", "", `{"every_iters": 0}`)
	if code != http.StatusCreated {
		t.Fatalf("capture: status %d body %v", code, cap1)
	}
	cks := cap1["checkpoints"].(map[string]interface{})
	count := int(cks["count"].(float64))
	if count < 2 {
		t.Fatalf("stream has %d checkpoints, want >= 2 (chunking too coarse?)", count)
	}
	if cks["cached"] == true {
		t.Error("first capture reported cached")
	}

	// Re-capture: content-addressed reuse, no second simulation.
	cap2, code := doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/checkpoints", "", `{"every_iters": 0}`)
	if code != http.StatusOK {
		t.Fatalf("re-capture: status %d", code)
	}
	cks2 := cap2["checkpoints"].(map[string]interface{})
	if cks2["cached"] != true || cks2["key"] != cks["key"] {
		t.Errorf("re-capture = %v, want cached reuse of %v", cks2, cks["key"])
	}
	if got := s.Metrics().Get(mCkptCaptured); got != 1 {
		t.Errorf("checkpoints.captured = %d, want 1", got)
	}
	if got := s.Metrics().Get(mCkptReused); got != 1 {
		t.Errorf("checkpoints.reused = %d, want 1", got)
	}

	// List and inspect.
	list, code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/checkpoints", "", "")
	if code != http.StatusOK || int(list["checkpoints"].(map[string]interface{})["count"].(float64)) != count {
		t.Errorf("list: status %d body %v", code, list)
	}
	insp, code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/checkpoints/1", "", "")
	if code != http.StatusOK {
		t.Fatalf("inspect: status %d", code)
	}
	ck := insp["checkpoint"].(map[string]interface{})
	if int(ck["index"].(float64)) != 1 || ck["iter"].(float64) <= 0 {
		t.Errorf("inspect body = %v, want index 1 with a positive iter", ck)
	}
	state := ck["state"].(map[string]interface{})
	if procs := state["procs"].([]interface{}); len(procs) != 4 {
		t.Errorf("inspected state has %d procs, want 4", len(procs))
	}

	// Resume from checkpoint 1: a completed job with a result.
	res1, code := doJSON(t, "POST", ts.URL+"/v1/jobs", "",
		`{"from_checkpoint": {"job": "`+id+`", "k": 1}}`)
	if code != http.StatusOK {
		t.Fatalf("resume: status %d body %v", code, res1)
	}
	rjob := res1["job"].(map[string]interface{})
	if rjob["state"] != string(StateDone) {
		t.Fatalf("resume job = %v, want done", rjob)
	}
	if res1["result"] == nil {
		t.Fatal("resume job has no result")
	}
	b1, _ := json.Marshal(res1["result"])

	// Second identical resume: served from the content-addressed cache.
	res2, code := doJSON(t, "POST", ts.URL+"/v1/jobs", "",
		`{"from_checkpoint": {"job": "`+id+`", "k": 1}}`)
	if code != http.StatusOK {
		t.Fatalf("second resume: status %d", code)
	}
	rjob2 := res2["job"].(map[string]interface{})
	if rjob2["cached"] != true {
		t.Error("second resume did not hit the cache")
	}
	b2, _ := json.Marshal(res2["result"])
	if !bytes.Equal(b1, b2) {
		t.Error("cached resume result differs from the computed one")
	}

	// Misuse answers with typed errors.
	for _, tc := range []struct {
		method, path, body, version string
		wantStatus                  int
		wantCode                    string
	}{
		{"POST", "/v1/jobs/absent/checkpoints", `{}`, "", http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/jobs/" + id + "/checkpoints", `{"every_iters": -1}`, "", http.StatusBadRequest, CodeBadRequest},
		{"GET", "/v1/jobs/" + id + "/checkpoints/99", "", "", http.StatusNotFound, CodeNotFound},
		{"GET", "/v1/jobs/" + id + "/checkpoints/x", "", "", http.StatusBadRequest, CodeBadRequest},
		{"POST", "/v1/jobs", `{"from_checkpoint": {"job": "absent", "k": 0}}`, "", http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/jobs", `{"experiment": "quickstart", "from_checkpoint": {"job": "` + id + `", "k": 0}}`, "", http.StatusBadRequest, CodeBadRequest},
		{"POST", "/v1/jobs", `{"from_checkpoint": {"job": "` + id + `", "k": 0}}`, LegacyAPIVersion, http.StatusBadRequest, CodeBadRequest},
	} {
		m, code := doJSON(t, tc.method, ts.URL+tc.path, tc.version, tc.body)
		if code != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, code, tc.wantStatus)
		}
		e, ok := m["error"].(map[string]interface{})
		if !ok || e["code"] != tc.wantCode {
			t.Errorf("%s %s: error = %v, want code %q", tc.method, tc.path, m["error"], tc.wantCode)
		}
	}

	// Checkpoints on a non-quickstart experiment are refused.
	tsub, code := doJSON(t, "POST", ts.URL+"/v1/jobs", "", `{"experiment": "table1"}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("table1 submit: status %d", code)
	}
	tid := tsub["job"].(map[string]interface{})["id"].(string)
	doJSON(t, "GET", ts.URL+"/v1/jobs/"+tid+"?wait=10s", "", "")
	m, code := doJSON(t, "POST", ts.URL+"/v1/jobs/"+tid+"/checkpoints", "", `{}`)
	if code != http.StatusBadRequest {
		t.Errorf("non-checkpointable capture: status %d, want 400", code)
	}
	if e, ok := m["error"].(map[string]interface{}); !ok || e["code"] != CodeBadRequest {
		t.Errorf("non-checkpointable capture error = %v", m["error"])
	}
	assertConservation(t, s)
}

// TestResumeMatchesDirectRun pins the resume result's provenance: the
// bytes the server serves for a from_checkpoint job decode to the same
// cascade result as resuming the stream directly through the experiments
// layer.
func TestResumeMatchesDirectRun(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", "",
		`{"experiment": "quickstart", "params": {"scale": 0.001, "chunk_kb": 2}}`)
	id := sub["job"].(map[string]interface{})["id"].(string)
	doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"?wait=30s", "", "")
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/checkpoints", "", `{}`)
	res, code := doJSON(t, "POST", ts.URL+"/v1/jobs", "",
		`{"from_checkpoint": {"job": "`+id+`", "k": 0}}`)
	if code != http.StatusOK {
		t.Fatalf("resume: status %d", code)
	}

	qr, err := experiments.QuickstartCheckpoints(context.Background(),
		experiments.QuickstartScaledN(0.001), 2*1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := qr.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	got, _ := json.Marshal(res["result"])
	var a, b interface{}
	json.Unmarshal(want, &a)
	json.Unmarshal(got, &b)
	aa, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(aa, bb) {
		t.Error("served resume result differs from a direct experiments-layer resume")
	}
}
