package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
)

// POST /v1/points is the fabric's worker surface: a coordinator ships
// one PointSpec here and gets its PointResult back. The endpoint is
// deliberately stateless — no job record, no queue slot, no id to poll —
// because the coordinator owns all sweep bookkeeping (assignment,
// retry, merge); a worker only has to run one point correctly, cache
// it, and shed load honestly.
//
// Three properties the fleet relies on:
//
//   - Key verification: the worker re-derives canon.PointKey from the
//     spec it decoded off the wire and refuses a request whose claimed
//     key disagrees (points.key_mismatch). A mismatch means the two
//     processes no longer share a key derivation — serving it would
//     file the result under a key other nodes will never look up, or
//     worse, hit a stale entry — so the safe answer is a loud 400.
//   - Cache-first: a point already in the local cache (including one
//     another worker wrote through a shared cache directory) is served
//     without simulating (points.cache_hits, "cached": true in the
//     envelope — which is how cross-node hits become observable).
//   - Bounded admission: at most Workers points execute concurrently
//     and at most QueueDepth more may wait; beyond that the worker
//     sheds load with 503 + Retry-After exactly like job submission,
//     and the coordinator backs off or reassigns.

// pointRequest is the POST /v1/points body. The single form carries one
// Point (Key optional: when present it must equal the key the worker
// derives from the spec). The batched form carries Points — one lease
// holding several points — and is mutually exclusive with the single
// form. A batched request that opts into "Accept: application/x-ndjson"
// streams one outcome frame per retired point; otherwise it gets one
// envelope with every outcome.
type pointRequest struct {
	Key    string                 `json:"key,omitempty"`
	Point  *experiments.PointSpec `json:"point,omitempty"`
	Points []pointRequestItem     `json:"points,omitempty"`
}

// pointRequestItem is one point of a batched request.
type pointRequestItem struct {
	Key   string                 `json:"key,omitempty"`
	Point *experiments.PointSpec `json:"point"`
}

// pointRetryAfter is the Retry-After hint on shed points: short,
// because point execution is fast relative to jobs and the coordinator
// re-balances on its own clock anyway.
const pointRetryAfter = "1"

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	ver, err := requestVersion(r)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if ver == LegacyAPIVersion {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("point execution requires %s %s", VersionHeader, APIVersion))
		return
	}
	var req pointRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Points) > 0 {
		if req.Point != nil {
			writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
				"point and points are mutually exclusive")
			return
		}
		s.handlePointBatch(w, r, req.Points)
		return
	}
	if req.Point == nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, "missing point spec")
		return
	}
	spec := *req.Point
	if !experiments.Decomposable(spec.Experiment) {
		writeEnvelopeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("experiment %q has no point decomposition", spec.Experiment))
		return
	}
	key, err := canon.PointKey(spec)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if req.Key != "" && req.Key != key {
		s.metrics.Inc(mPointsKeyMismatch)
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("point key mismatch: request says %s, spec derives %s — coordinator and worker disagree on the key derivation", req.Key, key))
		return
	}

	// Cache first: a hit — ours, or a sibling worker's through a shared
	// cache directory — answers without burning an execution slot.
	if val, ok := s.cache.Get(key); ok {
		var res experiments.PointResult
		if err := json.Unmarshal(val, &res); err == nil {
			s.metrics.Inc(mPointsCacheHits)
			writeEnvelope(w, http.StatusOK, Envelope{Point: &res, Cached: true})
			return
		}
		// An undecodable entry can only mean the PointResult shape moved
		// under a live cache; recompute and overwrite below.
	}

	if s.Draining() {
		s.metrics.Inc(mPointsRejected)
		w.Header().Set("Retry-After", pointRetryAfter)
		writeEnvelopeError(w, http.StatusServiceUnavailable, CodeShuttingDown, ErrShuttingDown.Error())
		return
	}
	release, ok := s.acquirePointSlot(r.Context())
	if !ok {
		s.metrics.Inc(mPointsRejected)
		w.Header().Set("Retry-After", pointRetryAfter)
		writeEnvelopeError(w, http.StatusServiceUnavailable, CodeQueueFull,
			"point admission saturated")
		return
	}
	defer release()

	res, err := s.executePoint(spec)
	if err != nil {
		s.metrics.Inc(mPointsFailed)
		code := errorCode(err)
		status := http.StatusInternalServerError
		switch code {
		case CodeTimeout:
			status = http.StatusGatewayTimeout
		case CodeCancelled, CodeShuttingDown:
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", pointRetryAfter)
		case CodeBadRequest, CodeNotFound:
			status = http.StatusBadRequest
		}
		writeEnvelopeError(w, status, code, err.Error())
		return
	}
	s.metrics.Inc(mPointsExecuted)
	if val, merr := json.Marshal(res); merr == nil {
		// Degrade on write failure exactly as jobs do: the result is in
		// hand, only the shared copy is lost (cache.write_errors).
		_ = s.storeResult(s.runCtx, key, val)
	}
	writeEnvelope(w, http.StatusOK, Envelope{Point: &res})
}

// handlePointBatch serves the batched form of POST /v1/points: one
// admission slot covers the whole lease (the batch is the unit the
// coordinator dispatched, so it is the unit the worker admits), points
// execute in order, and each point's outcome is independent — a point
// that fails terminally does not poison its batch siblings. With ndjson
// negotiated, outcomes stream one frame per retired point so the
// coordinator closes leases as they finish; a client that hangs up
// mid-stream simply stops receiving outcomes, and the points it never
// saw retire are its to retry (the worker caches their results, so a
// retry is a cache hit, not a re-simulation).
func (s *Server) handlePointBatch(w http.ResponseWriter, r *http.Request, items []pointRequestItem) {
	type resolved struct {
		spec experiments.PointSpec
		key  string
		err  *APIError
	}
	rs := make([]resolved, len(items))
	for i, it := range items {
		switch {
		case it.Point == nil:
			rs[i].err = &APIError{Code: CodeBadRequest, Message: "missing point spec"}
			continue
		case !experiments.Decomposable(it.Point.Experiment):
			rs[i].err = &APIError{Code: CodeNotFound,
				Message: fmt.Sprintf("experiment %q has no point decomposition", it.Point.Experiment)}
			continue
		}
		rs[i].spec = *it.Point
		key, err := canon.PointKey(rs[i].spec)
		if err != nil {
			rs[i].err = &APIError{Code: CodeBadRequest, Message: err.Error()}
			continue
		}
		rs[i].key = key
		if it.Key != "" && it.Key != key {
			s.metrics.Inc(mPointsKeyMismatch)
			rs[i].err = &APIError{Code: CodeBadRequest,
				Message: fmt.Sprintf("point key mismatch: request says %s, spec derives %s — coordinator and worker disagree on the key derivation", it.Key, key)}
		}
	}

	if s.Draining() {
		s.metrics.Inc(mPointsRejected)
		w.Header().Set("Retry-After", pointRetryAfter)
		writeEnvelopeError(w, http.StatusServiceUnavailable, CodeShuttingDown, ErrShuttingDown.Error())
		return
	}
	release, ok := s.acquirePointSlot(r.Context())
	if !ok {
		s.metrics.Inc(mPointsRejected)
		w.Header().Set("Retry-After", pointRetryAfter)
		writeEnvelopeError(w, http.StatusServiceUnavailable, CodeQueueFull,
			"point admission saturated")
		return
	}
	defer release()
	s.metrics.Inc(mPointsBatches)

	stream := wantsNDJSON(r)
	var flusher http.Flusher
	if stream {
		w.Header().Set("Content-Type", NDJSONContentType)
		w.WriteHeader(http.StatusOK)
		flusher, _ = w.(http.Flusher)
	}
	outcomes := make([]PointOutcome, 0, len(items))
	for i, rv := range rs {
		var o PointOutcome
		if rv.err != nil {
			o = PointOutcome{Index: i, Key: rv.key, Error: rv.err}
		} else {
			o = s.runBatchPoint(r.Context(), i, rv.key, rv.spec)
		}
		if stream {
			if writeFrame(w, flusher, Envelope{Outcomes: []PointOutcome{o}}) != nil {
				return // coordinator hung up; its lease timers own the rest
			}
			continue
		}
		outcomes = append(outcomes, o)
	}
	if !stream {
		writeEnvelope(w, http.StatusOK, Envelope{Outcomes: outcomes})
	}
}

// runBatchPoint resolves one batched point to its outcome: local cache
// first, then execution (warm-prefix path included via executePoint),
// caching the fresh result for the fleet.
func (s *Server) runBatchPoint(ctx context.Context, i int, key string, spec experiments.PointSpec) PointOutcome {
	o := PointOutcome{Index: i, Key: key}
	if val, ok := s.cache.Get(key); ok {
		var res experiments.PointResult
		if err := json.Unmarshal(val, &res); err == nil {
			s.metrics.Inc(mPointsCacheHits)
			o.Point, o.Cached = &res, true
			return o
		}
	}
	if err := ctx.Err(); err != nil {
		o.Error = &APIError{Code: CodeCancelled, Message: err.Error()}
		return o
	}
	res, err := s.executePoint(spec)
	if err != nil {
		s.metrics.Inc(mPointsFailed)
		o.Error = &APIError{Code: errorCode(err), Message: err.Error()}
		return o
	}
	s.metrics.Inc(mPointsExecuted)
	if val, merr := json.Marshal(res); merr == nil {
		_ = s.storeResult(s.runCtx, key, val)
	}
	o.Point = &res
	return o
}

// acquirePointSlot admits one point execution: at most Workers run at
// once, at most QueueDepth more wait. Returns false — without blocking
// indefinitely — when the wait line is full, the client gave up, or the
// server's run context died.
func (s *Server) acquirePointSlot(ctx context.Context) (release func(), ok bool) {
	if int(s.pointAdmitted.Add(1)) > s.pointAdmitMax {
		s.pointAdmitted.Add(-1)
		return nil, false
	}
	select {
	case s.pointSem <- struct{}{}:
		return func() {
			<-s.pointSem
			s.pointAdmitted.Add(-1)
		}, true
	case <-ctx.Done():
	case <-s.runCtx.Done():
	}
	s.pointAdmitted.Add(-1)
	return nil, false
}

// executePoint runs one spec under the server's run context and job
// deadline, converting panics (an experiment bug, or the injected
// SiteExpPanic) into typed errors — the same containment execute gives
// whole jobs, so a poisoned point fails one request, not the worker.
func (s *Server) executePoint(spec experiments.PointSpec) (res experiments.PointResult, err error) {
	ctx := s.runCtx
	if s.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.jobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Inc(mJobsPanics)
			err = &codedError{code: CodePanic, err: fmt.Errorf("point panicked: %v\n%s", r, debug.Stack())}
		}
	}()
	if s.faults.Check(SiteExpPanic) {
		panic(fmt.Sprintf("injected panic (site %s)", SiteExpPanic))
	}
	if s.faults.Check(SiteExpStall) {
		<-ctx.Done() // a point that never finishes until cancelled
		return res, ctx.Err()
	}
	if s.prefixCache != nil {
		// Warm path: points whose decomposition declares a shared prefix
		// fork a cached machine snapshot instead of rebuilding the sweep
		// prefix. Byte-identical to the cold path by the experiments
		// layer's RunWarm contract; warm=false falls through untouched.
		if wres, warm, werr := s.prefixCache.RunPoint(ctx, spec); warm {
			if werr == nil {
				s.metrics.Inc(mPointsWarm)
			}
			s.publishPrefixStats()
			res, err = wres, werr
		} else {
			res, err = experiments.RunPoint(ctx, spec)
		}
	} else {
		res, err = experiments.RunPoint(ctx, spec)
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) && s.runCtx.Err() == nil {
		s.metrics.Inc(mJobsTimeouts)
		err = fmt.Errorf("point exceeded its %v deadline: %w", s.jobTimeout, err)
	}
	return res, err
}

// PointDeadline returns the execution deadline applied to shipped
// points (0 = none); coordinators size their lease timeouts above it.
func (s *Server) PointDeadline() time.Duration {
	return s.jobTimeout
}

// publishPrefixStats mirrors the warm-prefix snapshot LRU's counters
// into the metrics registry, so /metrics exposes hit rates and the
// memory held by parked snapshots.
func (s *Server) publishPrefixStats() {
	if s.prefixCache == nil {
		return
	}
	st := s.prefixCache.Stats()
	s.metrics.Set(mPrefixHits, st.Hits)
	s.metrics.Set(mPrefixMisses, st.Misses)
	s.metrics.Set(mPrefixEvictions, st.Evictions)
	s.metrics.Set(mPrefixEntries, int64(st.Entries))
	s.metrics.Set(mPrefixBytes, st.Bytes)
}
