package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
)

// POST /v1/points is the fabric's worker surface: a coordinator ships
// one PointSpec here and gets its PointResult back. The endpoint is
// deliberately stateless — no job record, no queue slot, no id to poll —
// because the coordinator owns all sweep bookkeeping (assignment,
// retry, merge); a worker only has to run one point correctly, cache
// it, and shed load honestly.
//
// Three properties the fleet relies on:
//
//   - Key verification: the worker re-derives canon.PointKey from the
//     spec it decoded off the wire and refuses a request whose claimed
//     key disagrees (points.key_mismatch). A mismatch means the two
//     processes no longer share a key derivation — serving it would
//     file the result under a key other nodes will never look up, or
//     worse, hit a stale entry — so the safe answer is a loud 400.
//   - Cache-first: a point already in the local cache (including one
//     another worker wrote through a shared cache directory) is served
//     without simulating (points.cache_hits, "cached": true in the
//     envelope — which is how cross-node hits become observable).
//   - Bounded admission: at most Workers points execute concurrently
//     and at most QueueDepth more may wait; beyond that the worker
//     sheds load with 503 + Retry-After exactly like job submission,
//     and the coordinator backs off or reassigns.

// pointRequest is the POST /v1/points body. Key is optional: when
// present it must equal the key the worker derives from Point.
type pointRequest struct {
	Key   string                 `json:"key,omitempty"`
	Point *experiments.PointSpec `json:"point"`
}

// pointRetryAfter is the Retry-After hint on shed points: short,
// because point execution is fast relative to jobs and the coordinator
// re-balances on its own clock anyway.
const pointRetryAfter = "1"

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	ver, err := requestVersion(r)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if ver == LegacyAPIVersion {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("point execution requires %s %s", VersionHeader, APIVersion))
		return
	}
	var req pointRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Point == nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, "missing point spec")
		return
	}
	spec := *req.Point
	if !experiments.Decomposable(spec.Experiment) {
		writeEnvelopeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("experiment %q has no point decomposition", spec.Experiment))
		return
	}
	key, err := canon.PointKey(spec)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if req.Key != "" && req.Key != key {
		s.metrics.Inc(mPointsKeyMismatch)
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("point key mismatch: request says %s, spec derives %s — coordinator and worker disagree on the key derivation", req.Key, key))
		return
	}

	// Cache first: a hit — ours, or a sibling worker's through a shared
	// cache directory — answers without burning an execution slot.
	if val, ok := s.cache.Get(key); ok {
		var res experiments.PointResult
		if err := json.Unmarshal(val, &res); err == nil {
			s.metrics.Inc(mPointsCacheHits)
			writeEnvelope(w, http.StatusOK, Envelope{Point: &res, Cached: true})
			return
		}
		// An undecodable entry can only mean the PointResult shape moved
		// under a live cache; recompute and overwrite below.
	}

	if s.Draining() {
		s.metrics.Inc(mPointsRejected)
		w.Header().Set("Retry-After", pointRetryAfter)
		writeEnvelopeError(w, http.StatusServiceUnavailable, CodeShuttingDown, ErrShuttingDown.Error())
		return
	}
	release, ok := s.acquirePointSlot(r.Context())
	if !ok {
		s.metrics.Inc(mPointsRejected)
		w.Header().Set("Retry-After", pointRetryAfter)
		writeEnvelopeError(w, http.StatusServiceUnavailable, CodeQueueFull,
			"point admission saturated")
		return
	}
	defer release()

	res, err := s.executePoint(spec)
	if err != nil {
		s.metrics.Inc(mPointsFailed)
		code := errorCode(err)
		status := http.StatusInternalServerError
		switch code {
		case CodeTimeout:
			status = http.StatusGatewayTimeout
		case CodeCancelled, CodeShuttingDown:
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", pointRetryAfter)
		case CodeBadRequest, CodeNotFound:
			status = http.StatusBadRequest
		}
		writeEnvelopeError(w, status, code, err.Error())
		return
	}
	s.metrics.Inc(mPointsExecuted)
	if val, merr := json.Marshal(res); merr == nil {
		// Degrade on write failure exactly as jobs do: the result is in
		// hand, only the shared copy is lost (cache.write_errors).
		_ = s.storeResult(s.runCtx, key, val)
	}
	writeEnvelope(w, http.StatusOK, Envelope{Point: &res})
}

// acquirePointSlot admits one point execution: at most Workers run at
// once, at most QueueDepth more wait. Returns false — without blocking
// indefinitely — when the wait line is full, the client gave up, or the
// server's run context died.
func (s *Server) acquirePointSlot(ctx context.Context) (release func(), ok bool) {
	if int(s.pointAdmitted.Add(1)) > s.pointAdmitMax {
		s.pointAdmitted.Add(-1)
		return nil, false
	}
	select {
	case s.pointSem <- struct{}{}:
		return func() {
			<-s.pointSem
			s.pointAdmitted.Add(-1)
		}, true
	case <-ctx.Done():
	case <-s.runCtx.Done():
	}
	s.pointAdmitted.Add(-1)
	return nil, false
}

// executePoint runs one spec under the server's run context and job
// deadline, converting panics (an experiment bug, or the injected
// SiteExpPanic) into typed errors — the same containment execute gives
// whole jobs, so a poisoned point fails one request, not the worker.
func (s *Server) executePoint(spec experiments.PointSpec) (res experiments.PointResult, err error) {
	ctx := s.runCtx
	if s.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.jobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Inc(mJobsPanics)
			err = &codedError{code: CodePanic, err: fmt.Errorf("point panicked: %v\n%s", r, debug.Stack())}
		}
	}()
	if s.faults.Check(SiteExpPanic) {
		panic(fmt.Sprintf("injected panic (site %s)", SiteExpPanic))
	}
	if s.faults.Check(SiteExpStall) {
		<-ctx.Done() // a point that never finishes until cancelled
		return res, ctx.Err()
	}
	res, err = experiments.RunPoint(ctx, spec)
	if err != nil && errors.Is(err, context.DeadlineExceeded) && s.runCtx.Err() == nil {
		s.metrics.Inc(mJobsTimeouts)
		err = fmt.Errorf("point exceeded its %v deadline: %w", s.jobTimeout, err)
	}
	return res, err
}

// PointDeadline returns the execution deadline applied to shipped
// points (0 = none); coordinators size their lease timeouts above it.
func (s *Server) PointDeadline() time.Duration {
	return s.jobTimeout
}
