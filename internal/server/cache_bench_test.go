package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// Contention benchmarks for the fleet-load audit (DESIGN.md §12): many
// worker processes hammering one coordinator-side cache and one server's
// submit path concurrently. Run with -cpu to model producer counts, e.g.
//
//	go test -run NONE -bench BenchmarkCache -cpu 1,4,16 ./internal/server/
//
// The before/after numbers for the cache striping are recorded in
// DESIGN.md §12's contention note.

// benchCache builds a cache pre-populated with small entries under keys
// benchKey(0..n), disk-backed when dir != "".
func benchCache(b *testing.B, dir string, n int) *Cache {
	b.Helper()
	c, err := NewCache(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Put(benchKey(i), []byte(fmt.Sprintf(`{"point":%d}`, i))); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func benchKey(i int) string {
	return fmt.Sprintf("%02x-bench-key-%d", i%256, i)
}

// BenchmarkCacheGetParallel measures concurrent memory-hit lookups — the
// coordinator's per-point cache-index probe under fleet load.
func BenchmarkCacheGetParallel(b *testing.B) {
	const keys = 1024
	c := benchCache(b, "", keys)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := c.Get(benchKey(i % keys)); !ok {
				b.Fail()
			}
			i++
		}
	})
}

// BenchmarkCacheMixedDiskParallel measures a disk-backed cache under a
// mixed load: mostly hits with a stream of fresh writes, so the
// benchmark exposes whether unrelated keys serialize on one lock while
// a write is inside file I/O.
func BenchmarkCacheMixedDiskParallel(b *testing.B) {
	const keys = 1024
	c := benchCache(b, b.TempDir(), keys)
	var fresh atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 15 {
				k := fresh.Add(1)
				c.Put(benchKey(keys+int(k)), []byte(`{"fresh":true}`))
			} else {
				c.Get(benchKey(i % keys))
			}
			i++
		}
	})
}

// BenchmarkCacheGetUnderDiskWrites measures the striping's blast-radius
// property directly: reader throughput on memory-resident keys while a
// background writer continuously streams fresh entries through disk
// I/O. Under one global lock every read stalls behind the writer's
// milliseconds inside the filesystem; with per-shard locks only the
// 1-in-16 reads that share the writer's shard do.
func BenchmarkCacheGetUnderDiskWrites(b *testing.B) {
	const keys = 1024
	c := benchCache(b, b.TempDir(), keys)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var writes atomic.Int64
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.Put(benchKey(keys+i), []byte(`{"background":true}`))
				writes.Add(1)
			}
		}
	}()
	b.ReportAllocs()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(benchKey(i % keys))
			i++
		}
	})
	b.StopTimer()
	elapsed := time.Since(start)
	close(stop)
	<-writerDone
	// How much progress the writer made while readers hammered the cache:
	// under one global lock a continuous writer starves behind hot
	// readers (persistence stalls under read load); striped, it only
	// competes with the 1-in-16 readers on its shard.
	b.ReportMetric(float64(writes.Load())/elapsed.Seconds(), "writes/s")
}

// BenchmarkSubmitCacheHit measures the server queue mutex (s.mu, which
// also guards the single-flight map) on the hottest short path: a
// submission answered from the cache. Every call takes s.mu twice
// (submit bookkeeping + finish), so this bounds how fast one server can
// answer memoized fleet traffic.
func BenchmarkSubmitCacheHit(b *testing.B) {
	s, err := New(Config{
		Workers:     1,
		Experiments: []experiments.Experiment{echoExperiment("echo")},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	v, err := s.Submit("echo", JobParams{N: 7})
	if err != nil {
		b.Fatal(err)
	}
	if r, _ := s.Await(v.ID, 5*time.Second, nil); r.State != StateDone {
		b.Fatalf("warm job state %s", r.State)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Submit("echo", JobParams{N: 7}); err != nil {
				b.Fail()
			}
		}
	})
}
