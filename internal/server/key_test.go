package server

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
)

// defaultOpts returns the paper's headline options via the builder.
func defaultOpts(t *testing.T) cascade.Options {
	t.Helper()
	opts, err := cascade.NewOptions()
	if err != nil {
		t.Fatal(err)
	}
	return opts
}

// TestPointKeySemanticEquality pins the cache-key invariant that makes
// memoization sound: configurations with identical observable semantics
// hash equal however they were constructed.
func TestPointKeySemanticEquality(t *testing.T) {
	base, err := PointKey(machine.PentiumPro(4), defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}

	// Preset-built vs literal-built: the helper and a hand-spelled copy
	// of the same machine are the same machine.
	literal := machine.PentiumPro(4) // fields copied — a struct literal in effect
	lk, err := PointKey(literal, defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if lk != base {
		t.Error("copied config hashes differently")
	}

	// Engine choice is not observable: both engines produce bit-identical
	// results, so a cached result from either must satisfy both.
	refEng, err := PointKey(machine.PentiumPro(4).WithEngine(machine.EngineReference), defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if refEng != base {
		t.Error("reference-engine config hashes differently from fast-engine config")
	}

	// Default-filled vs explicit: an Options with ChunkBytes left 0 (the
	// builder default) equals one spelling DefaultChunkBytes out.
	implicit := defaultOpts(t)
	implicit.ChunkBytes = 0
	ik, err := PointKey(machine.PentiumPro(4), implicit, "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	explicit := defaultOpts(t)
	explicit.ChunkBytes = cascade.DefaultChunkBytes
	ek, err := PointKey(machine.PentiumPro(4), explicit, "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if ik != ek || ik != base {
		t.Error("default-filled and explicit ChunkBytes hash differently")
	}
}

// TestPointKeyObservableChanges pins the converse invariant: any
// observable field change must produce a different key, else the cache
// serves wrong results.
func TestPointKeyObservableChanges(t *testing.T) {
	cfg := machine.PentiumPro(4)
	opts := defaultOpts(t)
	base, err := PointKey(cfg, opts, "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"base": base}
	check := func(label string, cfg machine.Config, opts cascade.Options, workload string) {
		t.Helper()
		k, err := PointKey(cfg, opts, workload)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for prev, pk := range seen {
			if pk == k {
				t.Errorf("%s collides with %s", label, prev)
			}
		}
		seen[label] = k
	}

	check("procs", cfg.WithProcs(3), opts, "parmvr")
	check("other machine", machine.R10000(8), opts, "parmvr")
	smallL2 := cfg
	smallL2.L2.Size /= 2
	check("L2 size", smallL2, opts, "parmvr")
	slowMem := cfg
	slowMem.MemLatency++
	check("memory latency", slowMem, opts, "parmvr")
	noTLB := cfg
	noTLB.TLB.Entries = 0
	check("TLB", noTLB, opts, "parmvr")

	chunk := opts
	chunk.ChunkBytes = 32 * 1024
	check("chunk size", cfg, chunk, "parmvr")
	noJump := opts
	noJump.JumpOut = false
	check("jump-out", cfg, noJump, "parmvr")
	helper := opts
	helper.Helper = cascade.HelperRestructure
	check("helper", cfg, helper, "parmvr")

	check("workload", cfg, opts, "parmvr@scale=0.5")
}

// Golden keys, generated once from the current canonical serialization.
// If one of these fails without an intentional semantic change, the key
// derivation drifted — previously cached results would silently stop
// matching (or worse, a lax canonicalization change could alias distinct
// configs). On an intentional change, bump keySchema and regenerate.
const (
	goldenPointKey = "c5ca8abeb40c3f7df796fd08baecf45bacc5bad0aa8adefe520c1b73d3fbb5cd"
	goldenJobKey   = "35ac2887283f1fa8d217bac7edfe08c01adf0718c9a6707107ddbdd5bdb4ec9d"
)

func TestGoldenKeys(t *testing.T) {
	pk, err := PointKey(machine.PentiumPro(4), defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if pk != goldenPointKey {
		t.Errorf("PointKey drifted:\n got %s\nwant %s\n(bump keySchema if this change is intentional)", pk, goldenPointKey)
	}
	jk, err := JobKey("fig2", JobParams{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if jk != goldenJobKey {
		t.Errorf("JobKey drifted:\n got %s\nwant %s\n(bump keySchema if this change is intentional)", jk, goldenJobKey)
	}
}

// TestJobKeyParamResolution pins that job keys are derived from
// fully-resolved parameters: omitting a field and spelling its default
// out address the same cache entry, while changing any parameter or the
// experiment name moves to a different one.
func TestJobKeyParamResolution(t *testing.T) {
	implicit, err := JobKey("fig2", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := JobKey("fig2", DefaultJobParams())
	if err != nil {
		t.Fatal(err)
	}
	if implicit != explicit {
		t.Error("zero params and explicit defaults hash differently")
	}
	scaled, err := JobKey("fig2", JobParams{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if scaled == implicit {
		t.Error("scale change did not change the job key")
	}
	otherExp, err := JobKey("fig6", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	if otherExp == implicit {
		t.Error("experiment name does not contribute to the job key")
	}
}

func TestJobParamsValidate(t *testing.T) {
	if err := DefaultJobParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	for _, p := range []JobParams{
		{Scale: -1, ChunkKB: 64, N: 1024},
		{Scale: 1, ChunkKB: -1, N: 1024},
		{Scale: 1, ChunkKB: 64, N: -5},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", p)
		}
	}
}

// TestJobKeyIgnoresTimeout pins that the execution deadline is not part
// of a job's identity: the deadline bounds how long a run may take, not
// what it computes, so jobs differing only in TimeoutMS share a cache
// entry and coalesce.
func TestJobKeyIgnoresTimeout(t *testing.T) {
	plain, err := JobKey("fig2", JobParams{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	timed, err := JobKey("fig2", JobParams{Scale: 0.5, TimeoutMS: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if plain != timed {
		t.Errorf("TimeoutMS changed the job key: %s vs %s", plain, timed)
	}
	if err := (JobParams{Scale: 1, ChunkKB: 64, N: 1024, TimeoutMS: -1}).Validate(); err == nil {
		t.Error("Validate accepted a negative TimeoutMS")
	}
}

// TestPointKeyCoalesceCanonicalization pins the run-coalescing knob's
// cache semantics: coalescing is an engine-internal batching that cannot
// change observable results, so CoalesceAuto (the zero value) and
// CoalesceOn hash identically to configs predating the knob — the golden
// key proves old cache entries stay addressable. CoalesceOff is kept
// distinguishable as the escape hatch for diagnosing a suspected
// coalescing bug: its results are equally valid, but forcing it must not
// be silently satisfied from a coalesced run's cache entry.
func TestPointKeyCoalesceCanonicalization(t *testing.T) {
	base, err := PointKey(machine.PentiumPro(4), defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if base != goldenPointKey {
		t.Fatalf("base key drifted from golden: %s", base)
	}
	auto, err := PointKey(machine.PentiumPro(4).WithCoalesce(machine.CoalesceAuto), defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if auto != base {
		t.Error("CoalesceAuto hashes differently from the pre-knob golden key")
	}
	on, err := PointKey(machine.PentiumPro(4).WithCoalesce(machine.CoalesceOn), defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if on != base {
		t.Error("CoalesceOn hashes differently from the pre-knob golden key")
	}
	off, err := PointKey(machine.PentiumPro(4).WithCoalesce(machine.CoalesceOff), defaultOpts(t), "parmvr")
	if err != nil {
		t.Fatal(err)
	}
	if off == base {
		t.Error("CoalesceOff hashes identically to the default; the diagnostic escape hatch is not cache-distinguishable")
	}
}

// Golden checkpoint-derived keys: the (prefix, tail) composition must be
// stable for the same reason the point and job keys must — streams and
// resume results are shared across jobs by these addresses.
const (
	goldenCheckpointKey = "869d87e74cbe27fd684a2bd90d142a5ef68a1289c4a7bbbf517e8e9f799d3148"
	goldenResumeKey     = "a83a22a7ad820e617dfcc896161e8048a3b1a486ed2575d39820c3a856bffea0"
)

// TestCheckpointKeyGolden pins the checkpoint-stream and resume-result
// key derivations and their prefix/tail discrimination: the job key is
// the prefix, the cadence (or checkpoint index) the tail, and changing
// either moves to a different address.
func TestCheckpointKeyGolden(t *testing.T) {
	ck := CheckpointKey(goldenJobKey, 0)
	if ck != goldenCheckpointKey {
		t.Errorf("CheckpointKey drifted:\n got %s\nwant %s\n(bump keySchema if this change is intentional)", ck, goldenCheckpointKey)
	}
	rk := ResumeKey(ck, 0)
	if rk != goldenResumeKey {
		t.Errorf("ResumeKey drifted:\n got %s\nwant %s\n(bump keySchema if this change is intentional)", rk, goldenResumeKey)
	}
	if CheckpointKey(goldenJobKey, 1000) == ck {
		t.Error("cadence does not contribute to the checkpoint key")
	}
	if CheckpointKey(goldenPointKey, 0) == ck {
		t.Error("prefix job key does not contribute to the checkpoint key")
	}
	if ResumeKey(ck, 1) == rk {
		t.Error("checkpoint index does not contribute to the resume key")
	}
	if ResumeKey(CheckpointKey(goldenJobKey, 1000), 0) == rk {
		t.Error("stream key does not contribute to the resume key")
	}
}
