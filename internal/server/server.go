// Package server is the experiment-serving daemon: a long-running HTTP
// JSON service that accepts experiment jobs against the
// experiments.Registry, runs them on a bounded worker pool, memoizes
// results in a content-addressed cache, and exposes live metrics.
//
// API (every response is a versioned Envelope — see envelope.go; the
// pre-envelope wire format is served under "Accept-Version: 2024-01"):
//
//	GET  /v1/experiments                registry metadata (names, descriptions, defaults)
//	POST /v1/jobs                       submit {"experiment": "...", "params": {...}}
//	                                    or {"from_checkpoint": {"job": "...", "k": N}}
//	GET  /v1/jobs                       list submitted jobs (no result payloads)
//	GET  /v1/jobs/{id}                  one job, result included; ?wait=5s blocks
//	                                    ("Accept: application/x-ndjson" streams
//	                                    keep-alive progress frames while waiting)
//	POST /v1/points                     run one decomposed sweep point (fabric workers)
//	POST /v1/jobs/{id}/checkpoints      capture {"every_iters": N} checkpoint stream
//	GET  /v1/jobs/{id}/checkpoints      the job's stream metadata
//	GET  /v1/jobs/{id}/checkpoints/{k}  inspect machine state at checkpoint k
//	GET  /metrics                       flat "name value" metric exposition
//	GET  /healthz                       liveness
//
// Identical work never runs twice: a submitted job is first looked up in
// the cache by the canonical hash of its fully-resolved configuration
// (see key.go), and a miss that matches an already-queued or running job
// coalesces with it single-flight style. Shutdown is graceful — the
// queue drains, results flush to the cache — with a deadline after which
// in-flight sweeps are cancelled through the experiment layer's context
// plumbing.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// DefaultJobTimeout is the per-job execution deadline applied when
// neither Config.JobTimeout nor the job's params set one. Generous —
// paper-scale sweeps take minutes — but finite, so a stuck sweep can
// never pin a worker forever.
const DefaultJobTimeout = 15 * time.Minute

// shutdownRetryAfter is the Retry-After hint on submissions rejected
// during drain: long enough for a load balancer to route elsewhere.
const shutdownRetryAfter = 5 * time.Second

// Config configures a Server. The zero value serves the full experiment
// registry from a memory-only cache with experiments.DefaultJobWorkers
// workers.
type Config struct {
	// Workers bounds how many jobs execute concurrently (each job's
	// sweep additionally parallelizes internally via the experiment
	// pool). Default: experiments.DefaultJobWorkers().
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// submissions beyond it are rejected with ErrQueueFull. Default: 64.
	QueueDepth int
	// CacheDir persists the result cache under this directory; empty
	// keeps it in memory only.
	CacheDir string
	// Experiments overrides the served experiment set (tests inject
	// synthetic experiments here). Default: experiments.Registry().
	Experiments []experiments.Experiment
	// Metrics receives the server's counters and gauges. Default: a
	// fresh registry.
	Metrics *metrics.Synced
	// JobTimeout is the execution deadline applied to jobs whose params
	// leave TimeoutMS zero. 0 means DefaultJobTimeout; negative
	// disables the server default (jobs may still set their own).
	JobTimeout time.Duration
	// Faults wires a fault injector through the serving pipeline's
	// injection sites (see FaultSites). Nil — the default — disables
	// injection at no cost. Tests and the cascade-server -faults dev
	// flag are the only intended users.
	Faults *faults.Injector
	// FaultSpec and FaultSeed record what Faults was parsed from, so
	// repro bundles (repro.go) can carry the exact injection
	// configuration as a replayable input. Informational: they arm
	// nothing themselves.
	FaultSpec string
	FaultSeed int64
	// ProgressInterval is the keep-alive cadence of streaming ?wait
	// responses (see stream.go). Default: DefaultProgressInterval.
	ProgressInterval time.Duration
	// QuarantineTTL ages out stale .corrupt quarantine files from the
	// disk cache at startup (cache.quarantine_purged counts removals).
	// 0 means DefaultQuarantineTTL; negative disables the sweep.
	QuarantineTTL time.Duration
	// WarmPrefixes enables worker-side prefix-snapshot reuse for shipped
	// points: a point whose decomposition declares a shared warm prefix
	// executes against a sealed machine snapshot from a bounded LRU
	// instead of rebuilding the sweep prefix. Byte-identical results
	// either way (the experiments layer pins the RunWarm contract) —
	// purely a wall-clock optimization for prefix-heavy sweeps.
	WarmPrefixes bool
	// PrefixCacheBytes bounds the warm-prefix snapshot LRU by estimated
	// retained bytes; 0 uses experiments.DefaultPrefixCacheBytes. Only
	// meaningful with WarmPrefixes.
	PrefixCacheBytes int64
}

// Server is the serving daemon. Create with New, expose Handler over
// HTTP, stop with Shutdown.
type Server struct {
	metrics      *metrics.Synced
	cache        *Cache
	exps         map[string]experiments.Experiment
	infos        []experiments.Info
	jobTimeout   time.Duration
	faults       *faults.Injector
	faultSpec    string
	faultSeed    int64
	progressTick time.Duration
	prefixCache  *experiments.PrefixCache // nil unless Config.WarmPrefixes

	runCtx    context.Context
	cancelRun context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup // workers + follower waiters

	// Point-execution admission (POST /v1/points; see point.go): at most
	// cap(pointSem) points run concurrently, at most pointAdmitMax are
	// admitted (running + waiting) before the endpoint sheds load.
	pointSem      chan struct{}
	pointAdmitted atomic.Int64
	pointAdmitMax int

	mu       sync.Mutex
	closed   bool
	nextID   int
	jobs     map[string]*job
	order    []*job
	inflight map[string]*job // cache key → queued/running leader

	// Checkpoint streams (in-memory only — they hold live copy-on-write
	// machine and space state; see checkpoints.go).
	ckMu    sync.Mutex
	ckByKey map[string]*checkpointStream // content address → stream
	ckByJob map[string]*checkpointStream // job id → its current stream
}

// New builds a server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = experiments.DefaultJobWorkers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Experiments == nil {
		cfg.Experiments = experiments.Registry()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewSynced()
	}
	switch {
	case cfg.JobTimeout == 0:
		cfg.JobTimeout = DefaultJobTimeout
	case cfg.JobTimeout < 0:
		cfg.JobTimeout = 0 // no server default
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = DefaultProgressInterval
	}
	initMetrics(cfg.Metrics)
	cache, err := NewCache(cfg.CacheDir, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	cache.WithFaults(cfg.Faults)
	if cfg.QuarantineTTL == 0 {
		cfg.QuarantineTTL = DefaultQuarantineTTL
	}
	if cfg.QuarantineTTL > 0 {
		cache.PurgeQuarantine(cfg.QuarantineTTL)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		metrics:       cfg.Metrics,
		cache:         cache,
		progressTick:  cfg.ProgressInterval,
		exps:          make(map[string]experiments.Experiment, len(cfg.Experiments)),
		jobTimeout:    cfg.JobTimeout,
		faults:        cfg.Faults,
		faultSpec:     cfg.FaultSpec,
		faultSeed:     cfg.FaultSeed,
		runCtx:        runCtx,
		cancelRun:     cancel,
		queue:         make(chan *job, cfg.QueueDepth),
		pointSem:      make(chan struct{}, cfg.Workers),
		pointAdmitMax: cfg.Workers + cfg.QueueDepth,
		jobs:          make(map[string]*job),
		inflight:      make(map[string]*job),
		ckByKey:       make(map[string]*checkpointStream),
		ckByJob:       make(map[string]*checkpointStream),
		nextID:        1,
	}
	if cfg.WarmPrefixes {
		s.prefixCache = experiments.NewPrefixCache(cfg.PrefixCacheBytes)
	}
	for _, e := range cfg.Experiments {
		if _, dup := s.exps[e.Name]; dup {
			cancel()
			return nil, fmt.Errorf("server: duplicate experiment %q", e.Name)
		}
		s.exps[e.Name] = e
		s.infos = append(s.infos, e.Info())
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Shutdown stops the server gracefully: new submissions are rejected,
// the queue drains (queued and running jobs finish and their results
// flush to the cache), and the worker pool exits. If ctx expires before
// the drain completes, the run context is cancelled — the experiment
// layer stops dispatching new simulation points, in-flight points
// finish, and the affected jobs fail with the cancellation error — and
// Shutdown returns ctx's error after the pool exits. A nil return means
// every accepted job ran to completion.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.cancelRun()
		<-drained
		err = ctx.Err()
	}
	s.cancelRun()
	return err
}

// Experiments returns the served experiments' metadata, sorted by name.
func (s *Server) Experiments() []experiments.Info {
	return s.infos
}

// Metrics returns a snapshot of the server's metrics.
func (s *Server) Metrics() metrics.Snapshot {
	return s.metrics.Snapshot()
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/repro", s.handleRepro)
	mux.HandleFunc("POST /v1/points", s.handlePoint)
	mux.HandleFunc("POST /v1/jobs/{id}/checkpoints", s.handleCheckpointCreate)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints", s.handleCheckpointList)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints/{k}", s.handleCheckpointGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Draining reports whether Shutdown has begun (submissions are being
// rejected while queued and running jobs finish).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// QueueDepth returns how many accepted jobs are waiting for a worker.
func (s *Server) QueueDepth() int {
	return len(s.queue)
}

// handleHealthz is the liveness/readiness probe. One word of body:
//
//	ok        200  serving normally
//	degraded  200  serving, but the disk cache is erroring (results
//	               are still computed and served memory-only)
//	draining  503  shutdown begun: stop routing new traffic here
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	switch {
	case s.Draining():
		status, code = "draining", http.StatusServiceUnavailable
	case !s.cache.Healthy():
		status = "degraded"
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintln(w, status)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	ver, err := requestVersion(r)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if ver == LegacyAPIVersion {
		writeJSON(w, http.StatusOK, map[string]interface{}{"experiments": s.infos})
		return
	}
	writeEnvelope(w, http.StatusOK, Envelope{Experiments: s.infos})
}

// submitRequest is the POST /v1/jobs body: either an experiment to run
// or a checkpoint to resume from (mutually exclusive).
type submitRequest struct {
	Experiment     string         `json:"experiment,omitempty"`
	Params         JobParams      `json:"params"`
	FromCheckpoint *CheckpointRef `json:"from_checkpoint,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	ver, err := requestVersion(r)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeSubmitError(w, ver, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.FromCheckpoint != nil {
		s.handleSubmitResume(w, ver, req)
		return
	}
	v, err := s.Submit(req.Experiment, req.Params)
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		s.writeSubmitError(w, ver, http.StatusNotFound, CodeNotFound, err)
	case errors.Is(err, ErrQueueFull):
		// Load shedding, not a bare error: Retry-After tells well-behaved
		// clients to back off, and the queue depth in the body tells them
		// how bad it is.
		w.Header().Set("Retry-After", "1")
		depth := s.QueueDepth()
		if ver == LegacyAPIVersion {
			writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
				"error":       err.Error(),
				"queue_depth": depth,
			})
			return
		}
		writeEnvelope(w, http.StatusServiceUnavailable, Envelope{
			Error:      &APIError{Code: CodeQueueFull, Message: err.Error()},
			QueueDepth: &depth,
		})
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", strconv.Itoa(int(shutdownRetryAfter/time.Second)))
		s.writeSubmitError(w, ver, http.StatusServiceUnavailable, CodeShuttingDown, err)
	case err != nil:
		s.writeSubmitError(w, ver, http.StatusBadRequest, CodeBadRequest, err)
	case v.State == StateDone:
		s.writeJob(w, ver, http.StatusOK, v) // served from cache at submit time
	default:
		s.writeJob(w, ver, http.StatusAccepted, v)
	}
}

// handleSubmitResume serves the from_checkpoint form of POST /v1/jobs.
// Checkpoint references are a current-API feature: legacy-version
// requests are refused rather than answered in a shape that never
// existed.
func (s *Server) handleSubmitResume(w http.ResponseWriter, ver string, req submitRequest) {
	if ver == LegacyAPIVersion {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("from_checkpoint requires %s %s", VersionHeader, APIVersion))
		return
	}
	if req.Experiment != "" {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			"experiment and from_checkpoint are mutually exclusive")
		return
	}
	v, err := s.SubmitResume(*req.FromCheckpoint)
	if errors.Is(err, ErrShuttingDown) {
		w.Header().Set("Retry-After", strconv.Itoa(int(shutdownRetryAfter/time.Second)))
		writeEnvelopeError(w, http.StatusServiceUnavailable, CodeShuttingDown, err.Error())
		return
	}
	if err != nil {
		writeCodedError(w, err)
		return
	}
	writeEnvelope(w, http.StatusOK, jobEnvelope(v))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	ver, err := requestVersion(r)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	jobs := s.Jobs()
	if ver == LegacyAPIVersion {
		for i := range jobs {
			jobs[i] = legacyView(jobs[i])
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": jobs})
		return
	}
	writeEnvelope(w, http.StatusOK, Envelope{Jobs: jobs})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	ver, verErr := requestVersion(r)
	if verErr != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, verErr.Error())
		return
	}
	id := r.PathValue("id")
	var wait time.Duration
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			s.writeSubmitError(w, ver, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad wait duration %q", raw))
			return
		}
		wait = d
	}
	if ver == APIVersion && wantsNDJSON(r) {
		s.streamJob(w, r, id, wait)
		return
	}
	v, ok := s.Await(id, wait, r.Context().Done())
	if !ok {
		s.writeSubmitError(w, ver, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if ver == LegacyAPIVersion {
		writeJSON(w, http.StatusOK, legacyView(v))
		return
	}
	env := jobEnvelope(v)
	// A request cancelled while waiting gets a terminal typed error, not
	// a bare 200 with a partial body the client must diagnose.
	if env.Error == nil && v.State != StateDone && r.Context().Err() != nil {
		env.Error = &APIError{Code: CodeCancelled,
			Message: fmt.Sprintf("request cancelled while waiting for job %q", id)}
	}
	writeEnvelope(w, http.StatusOK, env)
}

// writeJob renders a job response in the requested wire format.
func (s *Server) writeJob(w http.ResponseWriter, ver string, status int, v JobView) {
	if ver == LegacyAPIVersion {
		writeJSON(w, status, legacyView(v))
		return
	}
	writeEnvelope(w, status, jobEnvelope(v))
}

// writeSubmitError renders an error in the requested wire format: a
// typed envelope error, or the legacy {"error": "<message>"} object.
func (s *Server) writeSubmitError(w http.ResponseWriter, ver string, status int, code string, err error) {
	if ver == LegacyAPIVersion {
		writeError(w, status, err)
		return
	}
	writeEnvelopeError(w, status, code, err.Error())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	writeMetrics(w, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
