package server

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// Metric names the serving layer maintains in its Synced registry. They
// are pre-registered at server construction so GET /metrics always
// exposes the full, stable set (zeros included) — the same
// stable-snapshot-shape convention internal/metrics imposes on
// simulation Sources.
const (
	// Counters.
	mJobsSubmitted = "jobs.submitted"  // POST /v1/jobs accepted
	mJobsExecuted  = "jobs.executed"   // jobs that actually ran a simulation
	mJobsCompleted = "jobs.completed"  // jobs finished in StateDone
	mJobsFailed    = "jobs.failed"     // jobs finished in StateFailed
	mJobsCoalesced = "jobs.coalesced"  // jobs attached to an identical in-flight run
	mJobsCacheHits = "jobs.cache_hits" // jobs answered from the cache at submit
	mJobsRejected  = "jobs.rejected"   // jobs refused (queue full or shutting down)
	mJobsPanics    = "jobs.panics"     // jobs failed by a recovered experiment panic
	mJobsTimeouts  = "jobs.timeouts"   // jobs failed by their per-job deadline

	// Point-execution counters (POST /v1/points — the fabric worker
	// surface; see point.go).
	mPointsExecuted    = "points.executed"     // points that ran a simulation here
	mPointsCacheHits   = "points.cache_hits"   // points answered from the local cache
	mPointsRejected    = "points.rejected"     // points refused (saturated or draining)
	mPointsFailed      = "points.failed"       // point executions that returned an error
	mPointsKeyMismatch = "points.key_mismatch" // requests whose key != locally-derived key
	mPointsBatches     = "points.batches"      // batched leases admitted (one per batch, any size)
	mPointsWarm        = "points.warm"         // points executed through the warm-prefix path

	// Warm-prefix snapshot LRU gauges (mirrors of
	// experiments.PrefixCacheStats; zero when -warm-prefixes is off).
	mPrefixHits      = "prefix.hits"
	mPrefixMisses    = "prefix.misses"
	mPrefixEvictions = "prefix.evictions"
	mPrefixEntries   = "prefix.entries"
	mPrefixBytes     = "prefix.bytes"

	// Checkpoint-stream counters.
	mCkptCaptured = "checkpoints.captured" // streams captured by a fresh simulation
	mCkptReused   = "checkpoints.reused"   // stream requests answered by an existing stream

	// Failure-model counters (see DESIGN.md §10).
	mWorkerRestarts    = "workers.restarts"    // worker goroutines respawned after a panic escaped a job
	mCacheWriteRetries = "cache.write_retries" // cache.Put attempts retried after a transient failure

	// Per-phase job timers (wall time, nanoseconds).
	mTimeQueued = "jobs.time.queued_ns" // submit → worker pickup
	mTimeRun    = "jobs.time.run_ns"    // worker pickup → result stored

	// Gauges.
	mQueueDepth = "queue.depth"      // jobs currently waiting in the queue
	mQueuePeak  = "queue.depth_peak" // high-water mark of queue.depth

	// Cache counters (cache.hits / cache.misses / cache.disk_hits /
	// cache.entries / cache.bytes / cache.read_errors /
	// cache.write_errors / cache.corrupt) are maintained by Cache itself.
)

// initMetrics pre-registers every server metric at zero.
func initMetrics(m *metrics.Synced) {
	for _, name := range []string{
		mJobsSubmitted, mJobsExecuted, mJobsCompleted, mJobsFailed,
		mJobsCoalesced, mJobsCacheHits, mJobsRejected,
		mJobsPanics, mJobsTimeouts, mWorkerRestarts, mCacheWriteRetries,
		mPointsExecuted, mPointsCacheHits, mPointsRejected,
		mPointsFailed, mPointsKeyMismatch, mPointsBatches, mPointsWarm,
		mCkptCaptured, mCkptReused,
		mTimeQueued, mTimeRun,
		"cache.hits", "cache.misses", "cache.disk_hits",
		"cache.entries", "cache.bytes",
		"cache.read_errors", "cache.write_errors", "cache.corrupt",
		"cache.quarantine_purged",
	} {
		m.Add(name, 0)
	}
	m.Set(mQueueDepth, 0)
	m.Set(mQueuePeak, 0)
	for _, name := range []string{mPrefixHits, mPrefixMisses, mPrefixEvictions, mPrefixEntries, mPrefixBytes} {
		m.Set(name, 0)
	}
}

// writeMetrics renders a snapshot in the flat text exposition format of
// GET /metrics: one "name value" line per metric, sorted by name.
func writeMetrics(w io.Writer, snap metrics.Snapshot) {
	for _, name := range snap.Names() {
		fmt.Fprintf(w, "%s %d\n", name, snap.Get(name))
	}
}
