package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// defaultChaosSeed drives every randomized choice in the chaos suite —
// the submission plan and the injected faults alike — so `make chaos`
// and CI replay one fixed interleaving, while CHAOS_SEED=<n> explores
// others. A failure report includes the seed; rerunning with it
// reproduces the failure exactly (modulo goroutine scheduling, which
// the assertions are deliberately insensitive to).
const defaultChaosSeed = 0xC05CADE

func chaosSeed(t *testing.T) int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		return n
	}
	return defaultChaosSeed
}

// chaosBudget derives the wall-clock budget for one wait in the chaos
// suite. The budgets used to be fixed 5s constants, which flake under
// -race: the instrumented scheduler runs the workload several times
// slower, so a wait that is generous on a plain build can expire while
// the server is still making progress. The base therefore scales up on
// race builds, can be overridden with CHAOS_WAIT_BUDGET (a Go duration,
// for slow CI hosts), and is always capped just short of the test
// binary's own -timeout deadline so a genuinely stuck wait fails with
// this suite's diagnostics instead of the runtime's panic dump.
func chaosBudget(t *testing.T, base time.Duration) time.Duration {
	t.Helper()
	if v := os.Getenv("CHAOS_WAIT_BUDGET"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad CHAOS_WAIT_BUDGET %q: %v", v, err)
		}
		base = d
	} else if raceEnabled {
		base *= 4
	}
	if dl, ok := t.Deadline(); ok {
		if room := time.Until(dl) - time.Second; room < base {
			base = max(room, 100*time.Millisecond)
		}
	}
	return base
}

// waitNoGoroutineLeaks polls until the goroutine count returns to the
// baseline (small slack for runtime helpers) or fails with a full dump.
func waitNoGoroutineLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(chaosBudget(t, 5*time.Second))
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosSubmission is one pre-planned Submit call. The plan is generated
// up front from the seeded PRNG so the submitter goroutines themselves
// are deterministic and share no random state.
type chaosSubmission struct {
	n     int           // distinguishing parameter (and expected-value input)
	await time.Duration // 0 = fire and forget
	pause time.Duration // delay before submitting, to vary interleavings
}

// expectedEchoBytes is the ground truth for a finished echo job: the
// exact bytes a fault-free run renders. Every done job must match it —
// cache hit, coalesced, recomputed after corruption, or fresh.
func expectedEchoBytes(t *testing.T, n int) []byte {
	t.Helper()
	b, err := RenderJSON(fakeResult{Value: fmt.Sprintf("echo n=%d", n)})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaosPipeline is the randomized fault sweep: several server
// generations over one shared cache directory, each bombarded by
// concurrent submitters while injected panics, stalls, corrupt
// entries, and cache I/O errors fire probabilistically. Invariants
// checked after every generation's drain:
//
//   - every accepted job reaches a terminal state (no stuck jobs);
//   - jobs.submitted = jobs.completed + jobs.failed (conservation);
//   - every done job's bytes are identical to a fault-free run's
//     (corruption and I/O errors may cost time, never answers);
//   - every failed job carries an error;
//   - no goroutines leak across the whole sweep.
func TestChaosPipeline(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos seed %d (override with CHAOS_SEED)", seed)
	rng := rand.New(rand.NewSource(seed))
	cacheDir := t.TempDir()
	baseline := runtime.NumGoroutine()

	const (
		generations  = 3
		submitters   = 6
		perSubmitter = 12
		distinctN    = 16
		chaosTimeout = 200 * time.Millisecond
	)

	var injectors []*faults.Injector
	for gen := 0; gen < generations; gen++ {
		// Probabilistic rates vary the schedule; the OnCall rules make the
		// sweep's coverage deterministic — each site is guaranteed to fire
		// in a generation where it is guaranteed to be consulted. The read
		// and corrupt sites are only consulted when an entry file exists,
		// so their deterministic fires wait for generation 1, after
		// generation 0 has populated the shared disk cache.
		inj := faults.New(rng.Int63())
		panicT := faults.Trigger{Prob: 0.15}
		stallT := faults.Trigger{Prob: 0.08}
		writeT := faults.Trigger{Prob: 0.25}
		readT := faults.Trigger{Prob: 0.15}
		corruptT := faults.Trigger{Prob: 0.25}
		if gen == 0 {
			panicT.OnCall, stallT.OnCall, writeT.OnCall = 2, 5, 2
		} else {
			readT.OnCall, corruptT.OnCall = 2, 3
		}
		inj.Arm(SiteExpPanic, panicT)
		inj.Arm(SiteExpStall, stallT)
		inj.Arm(SiteCacheRead, readT)
		inj.Arm(SiteCacheWrite, writeT)
		inj.Arm(SiteCacheCorrupt, corruptT)
		injectors = append(injectors, inj)

		s, err := New(Config{
			Workers:     2,
			QueueDepth:  4,
			CacheDir:    cacheDir,
			Experiments: []experiments.Experiment{echoExperiment("echo")},
			JobTimeout:  chaosTimeout, // stalled jobs fail fast instead of pinning workers
			Faults:      inj,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Pre-generate every submitter's plan from the single PRNG.
		plans := make([][]chaosSubmission, submitters)
		for i := range plans {
			plans[i] = make([]chaosSubmission, perSubmitter)
			for k := range plans[i] {
				sub := chaosSubmission{
					n:     1000 + rng.Intn(distinctN),
					pause: time.Duration(rng.Intn(3)) * time.Millisecond,
				}
				if rng.Float64() < 0.5 {
					sub.await = time.Duration(rng.Intn(20)) * time.Millisecond
				}
				plans[i][k] = sub
			}
		}

		var (
			mu  sync.Mutex
			ids []string
		)
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(plan []chaosSubmission) {
				defer wg.Done()
				for _, sub := range plan {
					time.Sleep(sub.pause)
					v, err := s.Submit("echo", JobParams{N: sub.n})
					if err != nil && !errors.Is(err, ErrQueueFull) {
						t.Errorf("Submit = %v", err)
						continue
					}
					mu.Lock()
					ids = append(ids, v.ID)
					mu.Unlock()
					if sub.await > 0 {
						s.Await(v.ID, sub.await, nil)
					}
				}
			}(plans[i])
		}
		// An observer thrashes the read paths while submitters run, so
		// the race detector sees listing/metrics/health interleaved with
		// every failure mode.
		stop := make(chan struct{})
		var owg sync.WaitGroup
		owg.Add(1)
		go func() {
			defer owg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Jobs()
					s.Metrics()
					s.QueueDepth()
					s.cache.Healthy()
					time.Sleep(time.Millisecond)
				}
			}
		}()
		wg.Wait()
		close(stop)
		owg.Wait()

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("gen %d: Shutdown = %v", gen, err)
		}
		cancel()

		// Every submission — including queue-full rejections, which get
		// terminal job records — must have drained to done or failed.
		for _, id := range ids {
			v, ok := s.Job(id)
			if !ok {
				t.Fatalf("gen %d: job %s vanished", gen, id)
			}
			switch v.State {
			case StateDone:
				if want := expectedEchoBytes(t, v.Params.N); !bytes.Equal(v.Result, want) {
					t.Errorf("gen %d: job %s result drifted under faults:\n got %q\nwant %q",
						gen, id, v.Result, want)
				}
			case StateFailed:
				if v.Error == "" {
					t.Errorf("gen %d: job %s failed without an error", gen, id)
				}
			default:
				t.Errorf("gen %d: job %s not terminal after drain: %s", gen, id, v.State)
			}
		}
		if len(ids) != submitters*perSubmitter {
			t.Errorf("gen %d: %d submissions recorded, want %d", gen, len(ids), submitters*perSubmitter)
		}
		assertConservation(t, s)
		snap := s.Metrics()
		t.Logf("gen %d: submitted=%d completed=%d failed=%d panics=%d timeouts=%d corrupt=%d read_err=%d write_err=%d",
			gen, snap.Get(mJobsSubmitted), snap.Get(mJobsCompleted), snap.Get(mJobsFailed),
			snap.Get(mJobsPanics), snap.Get(mJobsTimeouts), snap.Get("cache.corrupt"),
			snap.Get("cache.read_errors"), snap.Get("cache.write_errors"))
	}
	// The sweep is only meaningful if the fixed seed actually fired each
	// fault class at least once across the generations.
	for _, site := range FaultSites() {
		var fired int64
		for _, inj := range injectors {
			fired += inj.Fired(site)
		}
		if fired == 0 {
			t.Errorf("site %s never fired across %d generations; pick a better seed or raise its probability", site, generations)
		}
	}
	waitNoGoroutineLeaks(t, baseline)
}

// TestChaosCorruptionRecovery pins the cross-restart self-heal: a
// server generation leaves a cache entry, bit rot corrupts it on disk,
// and the next generation quarantines the entry, recomputes, and
// serves bytes identical to the original — memoization never changes
// answers, even when the store lies.
func TestChaosCorruptionRecovery(t *testing.T) {
	cacheDir := t.TempDir()
	cfg := func() Config {
		return Config{
			Workers:     1,
			CacheDir:    cacheDir,
			Experiments: []experiments.Experiment{echoExperiment("echo")},
		}
	}

	s1, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit("echo", JobParams{N: 4242})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := s1.Await(v.ID, chaosBudget(t, 5*time.Second), nil)
	if r1.State != StateDone {
		t.Fatalf("seed job = %s (%s)", r1.State, r1.Error)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(cacheDir, r1.Key[:2], r1.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	v2, err := s2.Submit("echo", JobParams{N: 4242})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cached {
		t.Error("corrupt entry answered at submit time")
	}
	r2, _ := s2.Await(v2.ID, chaosBudget(t, 5*time.Second), nil)
	if r2.State != StateDone {
		t.Fatalf("recomputed job = %s (%s)", r2.State, r2.Error)
	}
	if !bytes.Equal(r1.Result, r2.Result) {
		t.Errorf("recomputed bytes differ from the original:\n %q\n %q", r2.Result, r1.Result)
	}
	snap := s2.Metrics()
	if snap.Get("cache.corrupt") != 1 {
		t.Errorf("cache.corrupt = %d, want 1", snap.Get("cache.corrupt"))
	}
	if snap.Get(mJobsExecuted) != 1 {
		t.Errorf("jobs.executed = %d, want 1 (recompute)", snap.Get(mJobsExecuted))
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	// The rewritten entry serves the third generation from disk.
	s3, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Shutdown(context.Background())
	v3, err := s3.Submit("echo", JobParams{N: 4242})
	if err != nil {
		t.Fatal(err)
	}
	if v3.State != StateDone || !v3.Cached || !bytes.Equal(v3.Result, r1.Result) {
		t.Errorf("healed entry not served: state=%s cached=%v", v3.State, v3.Cached)
	}
}
