package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/machine"
)

// Checkpoint streams are in-memory only: a stream holds copy-on-write
// references into the live address space of its capture run, which has no
// meaningful disk form. Resume RESULTS, by contrast, are ordinary bytes
// and go through the content-addressed result cache like any job's.
//
// quickstart is the one checkpointable experiment: its prefetched
// scatter-add run is a single cascaded loop, which is what a checkpoint
// stream captures. Sweep experiments aggregate many runs and have no
// single timeline to checkpoint.

// checkpointStream is one captured stream plus the live run it can
// resume. mu serializes resumes: each resume rewinds the run's shared
// address space in place before re-executing the tail.
type checkpointStream struct {
	key        string // CheckpointKey(jobKey, every)
	jobID      string // job the capture was requested for (first owner)
	experiment string
	every      int

	mu  sync.Mutex
	run *experiments.QuickstartCheckpointRun
}

// view renders the stream's metadata.
func (cs *checkpointStream) view(cached bool) *CheckpointStreamView {
	v := &CheckpointStreamView{
		Key:        cs.key,
		Job:        cs.jobID,
		EveryIters: cs.every,
		Count:      len(cs.run.Checkpoints),
		Cached:     cached,
	}
	for _, ck := range cs.run.Checkpoints {
		v.Iters = append(v.Iters, ck.Iter)
	}
	return v
}

// CheckpointStreamView is a stream's client-facing form: its content
// address, owner, cadence, and the iteration mark of every checkpoint.
type CheckpointStreamView struct {
	Key        string `json:"key"`
	Job        string `json:"job"`
	EveryIters int    `json:"every_iters"`
	Count      int    `json:"count"`
	Iters      []int  `json:"iters"`
	// Cached reports that an existing content-addressed stream was
	// reused instead of capturing a new one.
	Cached bool `json:"cached,omitempty"`
}

// CheckpointView is one checkpoint rendered for inspection: where the run
// stood and the machine state at that instant, drawn from the sealed
// snapshot without rebuilding a machine.
type CheckpointView struct {
	Key       string          `json:"key"`
	Index     int             `json:"index"`
	Iter      int             `json:"iter"`
	NextChunk int             `json:"next_chunk"`
	Time      int64           `json:"time"`
	State     machine.Inspect `json:"state"`
}

// CheckpointRef names a checkpoint: index K of the stream owned by Job.
// POST /v1/jobs accepts one as "from_checkpoint" to submit a warm-started
// resume job.
type CheckpointRef struct {
	Job string `json:"job"`
	K   int    `json:"k"`
}

// checkpointCreateRequest is the POST /v1/jobs/{id}/checkpoints body.
type checkpointCreateRequest struct {
	// EveryIters is the capture cadence in loop iterations; 0 captures at
	// every chunk boundary.
	EveryIters int `json:"every_iters"`
}

// checkpointJob looks up the job a checkpoint route names and validates
// it is checkpointable, returning a typed error otherwise.
func (s *Server) checkpointJob(id string) (*job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &codedError{code: CodeNotFound, err: fmt.Errorf("unknown job %q", id)}
	}
	if j.experiment != "quickstart" {
		return nil, &codedError{code: CodeBadRequest,
			err: fmt.Errorf("experiment %q is not checkpointable (only quickstart's single-loop run is)", j.experiment)}
	}
	return j, nil
}

// streamFor returns the stream currently attached to a job.
func (s *Server) streamFor(jobID string) *checkpointStream {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	return s.ckByJob[jobID]
}

// handleCheckpointCreate captures (or reuses) a checkpoint stream for a
// quickstart job. The capture re-runs the job's prefetched loop with a
// checkpoint sink — deterministic, so the stream describes the job's own
// run exactly — and the stream is stored under its content address:
// a second job with the same key, or the same job with the same cadence,
// reuses it without simulating.
//
// Checkpoint endpoints speak only the current envelope format.
func (s *Server) handleCheckpointCreate(w http.ResponseWriter, r *http.Request) {
	j, err := s.checkpointJob(r.PathValue("id"))
	if err != nil {
		writeCodedError(w, err)
		return
	}
	var req checkpointCreateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.EveryIters < 0 {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("every_iters %d (want >= 0)", req.EveryIters))
		return
	}

	jobKey, err := JobKey(j.experiment, j.params)
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	ckKey := CheckpointKey(jobKey, req.EveryIters)

	s.ckMu.Lock()
	if cs, ok := s.ckByKey[ckKey]; ok {
		s.ckByJob[j.id] = cs
		s.ckMu.Unlock()
		s.metrics.Inc(mCkptReused)
		writeEnvelope(w, http.StatusOK, Envelope{Checkpoints: cs.view(true)})
		return
	}
	s.ckMu.Unlock()

	// Capture outside the lock: it simulates the whole run.
	rc := j.params.RunConfig()
	run, err := experiments.QuickstartCheckpoints(s.runCtx,
		experiments.QuickstartScaledN(rc.Scale), rc.ChunkBytes, req.EveryIters)
	if err != nil {
		writeEnvelopeError(w, http.StatusInternalServerError, errorCode(err), err.Error())
		return
	}
	cs := &checkpointStream{key: ckKey, jobID: j.id, experiment: j.experiment, every: req.EveryIters, run: run}

	s.ckMu.Lock()
	if prior, ok := s.ckByKey[ckKey]; ok {
		cs = prior // lost a capture race: first stream wins
	} else {
		s.ckByKey[ckKey] = cs
	}
	s.ckByJob[j.id] = cs
	s.ckMu.Unlock()
	s.metrics.Inc(mCkptCaptured)
	writeEnvelope(w, http.StatusCreated, Envelope{Checkpoints: cs.view(false)})
}

// handleCheckpointList returns the stream attached to a job.
func (s *Server) handleCheckpointList(w http.ResponseWriter, r *http.Request) {
	j, err := s.checkpointJob(r.PathValue("id"))
	if err != nil {
		writeCodedError(w, err)
		return
	}
	cs := s.streamFor(j.id)
	if cs == nil {
		writeEnvelopeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("job %q has no checkpoint stream (POST .../checkpoints first)", j.id))
		return
	}
	writeEnvelope(w, http.StatusOK, Envelope{Checkpoints: cs.view(false)})
}

// handleCheckpointGet renders one checkpoint of a job's stream for
// time-travel inspection: the machine occupancy, coherence totals, and
// metric state at that iteration.
func (s *Server) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.checkpointJob(r.PathValue("id"))
	if err != nil {
		writeCodedError(w, err)
		return
	}
	k, err := strconv.Atoi(r.PathValue("k"))
	if err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("bad checkpoint index %q", r.PathValue("k")))
		return
	}
	cs := s.streamFor(j.id)
	if cs == nil {
		writeEnvelopeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("job %q has no checkpoint stream", j.id))
		return
	}
	if k < 0 || k >= len(cs.run.Checkpoints) {
		writeEnvelopeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no checkpoint %d (stream has %d)", k, len(cs.run.Checkpoints)))
		return
	}
	ck := cs.run.Checkpoints[k]
	writeEnvelope(w, http.StatusOK, Envelope{Checkpoint: &CheckpointView{
		Key:       cs.key,
		Index:     k,
		Iter:      ck.Iter,
		NextChunk: ck.NextChunk,
		Time:      ck.Time,
		State:     ck.Snap.Inspect(),
	}})
}

// SubmitResume accepts a warm-started job: resume the named stream from
// checkpoint k and serve the completed run's Result. The result is
// content-addressed under ResumeKey, so identical resumes — across jobs
// sharing a stream — are cache hits that never re-simulate. The returned
// error covers submission problems only; an execution failure is terminal
// state on the returned view.
func (s *Server) SubmitResume(ref CheckpointRef) (JobView, error) {
	cs := s.streamFor(ref.Job)
	if cs == nil {
		return JobView{}, &codedError{code: CodeNotFound,
			err: fmt.Errorf("job %q has no checkpoint stream", ref.Job)}
	}
	if ref.K < 0 || ref.K >= len(cs.run.Checkpoints) {
		return JobView{}, &codedError{code: CodeNotFound,
			err: fmt.Errorf("no checkpoint %d (stream has %d)", ref.K, len(cs.run.Checkpoints))}
	}
	key := RenderKey(ResumeKey(cs.key, ref.K), "json")

	s.mu.Lock()
	if s.closed {
		s.metrics.Inc(mJobsRejected)
		s.mu.Unlock()
		return JobView{}, ErrShuttingDown
	}
	s.metrics.Inc(mJobsSubmitted)
	parent := s.jobs[ref.Job]
	refCopy := ref
	j := &job{
		id:         fmt.Sprintf("j%d", s.nextID),
		experiment: cs.experiment,
		params:     parent.params,
		key:        key,
		from:       &refCopy,
		state:      StateQueued,
		created:    time.Now(),
		done:       make(chan struct{}),
	}
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	if val, ok := s.cache.Get(key); ok {
		j.cached = true
		s.finishLocked(j, val, nil)
		s.metrics.Inc(mJobsCacheHits)
		v := j.view(true)
		s.mu.Unlock()
		return v, nil
	}
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()

	// Resumes run synchronously on the request goroutine: the shared
	// prefix is already simulated, only the tail executes. The stream
	// lock serializes concurrent resumes, which rewind the shared space.
	s.metrics.Inc(mJobsExecuted)
	cs.mu.Lock()
	res, err := cs.run.Resume(ref.K)
	cs.mu.Unlock()
	var val []byte
	if err == nil {
		var b bytes.Buffer
		enc := json.NewEncoder(&b)
		enc.SetIndent("", "  ")
		if err = enc.Encode(res); err == nil {
			val = b.Bytes()
			_ = s.storeResult(s.runCtx, key, val)
		}
	}
	s.mu.Lock()
	s.finishLocked(j, val, err)
	v := j.view(true)
	s.mu.Unlock()
	return v, nil
}

// writeCodedError maps a typed error to its HTTP status in envelope form.
func writeCodedError(w http.ResponseWriter, err error) {
	code := errorCode(err)
	status := http.StatusInternalServerError
	switch code {
	case CodeBadRequest:
		status = http.StatusBadRequest
	case CodeNotFound:
		status = http.StatusNotFound
	case CodeQueueFull, CodeShuttingDown:
		status = http.StatusServiceUnavailable
	}
	writeEnvelopeError(w, status, code, err.Error())
}
