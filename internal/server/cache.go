package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// Cache is the content-addressed result store: rendered experiment
// results keyed by the canonical hashes of key.go. It always holds an
// in-memory map; with a directory it additionally persists every entry
// to disk (dir/<key[:2]>/<key>), so separate processes — the serving
// daemon and cascade-sim -cache runs — share memoized results.
//
// Values are immutable once stored: a key is derived from everything
// that determines the result bytes, so two writers racing on one key
// are by construction writing identical content.
//
// Disk entries are checksummed (see entryMagic): a versioned header
// line, the hex SHA-256 of the payload, then the payload. An entry that
// fails to decode — truncated write, bit rot, a stale pre-checksum file
// — is quarantined: renamed to <key>.corrupt, counted in cache.corrupt,
// and treated as a miss, so the result is transparently recomputed and
// rewritten. Disk I/O failures degrade rather than fail: a read error
// (other than not-exist) is a miss (cache.read_errors), a write error
// leaves the entry memory-only (cache.write_errors), and Healthy
// reports whether the most recent disk operation succeeded.
type Cache struct {
	mu  sync.Mutex
	mem map[string][]byte
	dir string // "" = memory only

	m      *metrics.Synced  // nil = unmetered (CLI use)
	faults *faults.Injector // nil = no injection
	diskOK atomic.Bool      // most recent disk I/O succeeded
}

// Fault-injection sites of the serving pipeline (see internal/faults).
// Tests and the cascade-server -faults dev flag arm these to prove the
// failure model of DESIGN.md §10.
const (
	// SiteCacheRead fails disk reads in Cache.Get with an injected I/O error.
	SiteCacheRead = "cache.read"
	// SiteCacheWrite fails disk writes in Cache.Put with an injected I/O error.
	SiteCacheWrite = "cache.write"
	// SiteCacheCorrupt flips one byte of a disk entry as Cache.Get reads it,
	// exercising checksum verification and quarantine.
	SiteCacheCorrupt = "cache.corrupt"
	// SiteExpPanic panics inside experiment execution (internal/server.runJob).
	SiteExpPanic = "exp.panic"
	// SiteExpStall blocks experiment execution until the job's context is
	// cancelled, exercising per-job deadlines and shutdown cancellation.
	SiteExpStall = "exp.stall"
)

// FaultSites returns every injection site the serving pipeline
// consults, for flag validation and documentation.
func FaultSites() []string {
	return []string{SiteCacheRead, SiteCacheWrite, SiteCacheCorrupt, SiteExpPanic, SiteExpStall}
}

// entryMagic heads every disk entry and versions the on-disk format.
// The full layout is:
//
//	cascade-entry/v1\n<64 hex chars of SHA-256(payload)>\n<payload>
//
// Bumping the version makes every old entry decode-fail, quarantine,
// and recompute — the disk cache self-heals across format changes.
const entryMagic = "cascade-entry/v1\n"

// checksumHexLen is the length of the hex-encoded SHA-256 in the header.
const checksumHexLen = 2 * sha256.Size

// encodeEntry frames a payload for disk: header, checksum, payload.
func encodeEntry(val []byte) []byte {
	sum := sha256.Sum256(val)
	b := make([]byte, 0, len(entryMagic)+checksumHexLen+1+len(val))
	b = append(b, entryMagic...)
	b = append(b, hex.EncodeToString(sum[:])...)
	b = append(b, '\n')
	b = append(b, val...)
	return b
}

// decodeEntry verifies a disk entry's framing and checksum and returns
// the payload.
func decodeEntry(b []byte) ([]byte, error) {
	if !bytes.HasPrefix(b, []byte(entryMagic)) {
		return nil, errors.New("missing entry header (pre-checksum or foreign file)")
	}
	rest := b[len(entryMagic):]
	if len(rest) < checksumHexLen+1 || rest[checksumHexLen] != '\n' {
		return nil, errors.New("truncated checksum header")
	}
	want := string(rest[:checksumHexLen])
	payload := rest[checksumHexLen+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != want {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// NewCache returns a cache rooted at dir (created if missing; "" for
// memory-only) reporting hit/miss counters to m (nil for none).
func NewCache(dir string, m *metrics.Synced) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	c := &Cache{mem: make(map[string][]byte), dir: dir, m: m}
	c.diskOK.Store(true)
	return c, nil
}

// WithFaults attaches a fault injector to the cache's disk I/O sites
// (nil detaches) and returns the cache for chaining.
func (c *Cache) WithFaults(in *faults.Injector) *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = in
	return c
}

// Healthy reports whether the disk layer is believed usable: true for
// memory-only caches, false after a disk read/write error or corrupt
// entry until the next disk operation succeeds. The serving daemon's
// /healthz reports "degraded" while this is false.
func (c *Cache) Healthy() bool {
	if c.dir == "" {
		return true
	}
	return c.diskOK.Load()
}

// Get returns the bytes stored under key. Disk entries are checksum-
// verified and promoted into memory on first read; corrupt entries are
// quarantined and read as misses. Metrics: cache.hits / cache.misses
// count every lookup; cache.disk_hits counts the hits served from
// disk; cache.read_errors counts disk reads that failed for a reason
// other than the entry not existing; cache.corrupt counts quarantined
// entries.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.mem[key]; ok {
		c.inc("cache.hits")
		return v, true
	}
	if c.dir != "" {
		if v, ok := c.diskGet(key); ok {
			c.mem[key] = v
			c.inc("cache.hits")
			c.inc("cache.disk_hits")
			return v, true
		}
	}
	c.inc("cache.misses")
	return nil, false
}

// diskGet reads, verifies, and returns one disk entry. Callers must
// hold c.mu. Not-exist is a plain miss; any other read error counts in
// cache.read_errors and marks the disk layer unhealthy; a decode
// failure quarantines the entry. All three read as misses.
func (c *Cache) diskGet(key string) ([]byte, bool) {
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err == nil {
		err = c.faults.Fail(SiteCacheRead)
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false
		}
		c.inc("cache.read_errors")
		c.diskOK.Store(false)
		return nil, false
	}
	raw = c.faults.Corrupt(SiteCacheCorrupt, raw)
	val, derr := decodeEntry(raw)
	if derr != nil {
		c.quarantine(path)
		return nil, false
	}
	c.diskOK.Store(true)
	return val, true
}

// quarantine moves a corrupt entry aside (best-effort: a failed rename
// still reads as a miss, and the entry is rewritten on recompute) so it
// is never served and the original bytes survive for forensics.
func (c *Cache) quarantine(path string) {
	c.inc("cache.corrupt")
	os.Rename(path, path+".corrupt")
}

// Put stores val under key in memory and, when the cache has a
// directory, on disk (checksummed, written to a temp file and renamed,
// so readers never observe a partial entry). A disk write failure is
// returned — and counted in cache.write_errors — but the entry is
// still readable from memory: callers that already hold a computed
// result should degrade (serve it) rather than fail.
func (c *Cache) Put(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[key]; !ok {
		c.mem[key] = val
		if c.m != nil {
			c.m.Inc("cache.entries")
			c.m.Add("cache.bytes", int64(len(val)))
		}
	}
	if c.dir == "" {
		return nil
	}
	if err := c.diskPut(key, val); err != nil {
		c.inc("cache.write_errors")
		c.diskOK.Store(false)
		return err
	}
	c.diskOK.Store(true)
	return nil
}

// diskPut writes one checksummed entry. Callers must hold c.mu.
func (c *Cache) diskPut(key string, val []byte) error {
	if err := c.faults.Fail(SiteCacheWrite); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	path := c.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil // identical content by construction; keep the old file
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(encodeEntry(val)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// path shards entries by the first two key characters so no single
// directory grows unboundedly.
func (c *Cache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(c.dir, shard, key)
}

func (c *Cache) inc(name string) {
	if c.m != nil {
		c.m.Inc(name)
	}
}
