package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/metrics"
)

// Cache is the content-addressed result store: rendered experiment
// results keyed by the canonical hashes of key.go. It always holds an
// in-memory map; with a directory it additionally persists every entry
// to disk (dir/<key[:2]>/<key>), so separate processes — the serving
// daemon and cascade-sim -cache runs — share memoized results.
//
// Values are immutable once stored: a key is derived from everything
// that determines the result bytes, so two writers racing on one key
// are by construction writing identical content.
type Cache struct {
	mu  sync.Mutex
	mem map[string][]byte
	dir string // "" = memory only

	m *metrics.Synced // nil = unmetered (CLI use)
}

// NewCache returns a cache rooted at dir (created if missing; "" for
// memory-only) reporting hit/miss counters to m (nil for none).
func NewCache(dir string, m *metrics.Synced) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Cache{mem: make(map[string][]byte), dir: dir, m: m}, nil
}

// Get returns the bytes stored under key. Disk entries are promoted into
// memory on first read. Metrics: cache.hits / cache.misses count every
// lookup; cache.disk_hits counts the hits served from disk.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.mem[key]; ok {
		c.inc("cache.hits")
		return v, true
	}
	if c.dir != "" {
		if v, err := os.ReadFile(c.path(key)); err == nil {
			c.mem[key] = v
			c.inc("cache.hits")
			c.inc("cache.disk_hits")
			return v, true
		}
	}
	c.inc("cache.misses")
	return nil, false
}

// Put stores val under key in memory and, when the cache has a
// directory, on disk (written to a temp file and renamed, so readers
// never observe a partial entry).
func (c *Cache) Put(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[key]; !ok {
		c.mem[key] = val
		if c.m != nil {
			c.m.Inc("cache.entries")
			c.m.Add("cache.bytes", int64(len(val)))
		}
	}
	if c.dir == "" {
		return nil
	}
	path := c.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil // identical content by construction; keep the old file
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// path shards entries by the first two key characters so no single
// directory grows unboundedly.
func (c *Cache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(c.dir, shard, key)
}

func (c *Cache) inc(name string) {
	if c.m != nil {
		c.m.Inc(name)
	}
}
