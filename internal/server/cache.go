package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// Cache is the content-addressed result store: rendered experiment
// results keyed by the canonical hashes of key.go. It always holds an
// in-memory map; with a directory it additionally persists every entry
// to disk (dir/<key[:2]>/<key>), so separate processes — the serving
// daemon and cascade-sim -cache runs — share memoized results.
//
// Values are immutable once stored: a key is derived from everything
// that determines the result bytes, so two writers racing on one key
// are by construction writing identical content.
//
// Disk entries are checksummed (see entryMagic): a versioned header
// line, the hex SHA-256 of the payload, then the payload. An entry that
// fails to decode — truncated write, bit rot, a stale pre-checksum file
// — is quarantined: renamed to <key>.corrupt, counted in cache.corrupt,
// and treated as a miss, so the result is transparently recomputed and
// rewritten. Disk I/O failures degrade rather than fail: a read error
// (other than not-exist) is a miss (cache.read_errors), a write error
// leaves the entry memory-only (cache.write_errors), and Healthy
// reports whether the most recent disk operation succeeded.
//
// The store is striped over cacheShards independently-locked shards
// keyed by a hash of the full key (the fleet-load contention audit of
// DESIGN.md §12): disk I/O happens under the owning shard's lock, so a
// slow Put — milliseconds inside the filesystem — stalls only keys that
// hash to the same shard instead of every concurrent lookup. Same-key
// writers still serialize, which preserves the one invariant the disk
// format relies on (two writers racing one key write identical bytes,
// and the second sees the first's file).
type Cache struct {
	shards [cacheShards]cacheShard
	dir    string // "" = memory only

	m      *metrics.Synced                 // nil = unmetered (CLI use)
	faults atomic.Pointer[faults.Injector] // nil = no injection
	diskOK atomic.Bool                     // most recent disk I/O succeeded
}

// cacheShards is the stripe count: enough that a fleet of workers
// probing the coordinator's index rarely collide, small enough that Len
// and shard iteration stay trivial. Must be a power of two.
const cacheShards = 16

type cacheShard struct {
	mu  sync.Mutex
	mem map[string][]byte
	_   [40]byte // pad to a cache line so shard locks don't false-share
}

// Fault-injection sites of the serving pipeline (see internal/faults).
// Tests and the cascade-server -faults dev flag arm these to prove the
// failure model of DESIGN.md §10.
const (
	// SiteCacheRead fails disk reads in Cache.Get with an injected I/O error.
	SiteCacheRead = "cache.read"
	// SiteCacheWrite fails disk writes in Cache.Put with an injected I/O error.
	SiteCacheWrite = "cache.write"
	// SiteCacheCorrupt flips one byte of a disk entry as Cache.Get reads it,
	// exercising checksum verification and quarantine.
	SiteCacheCorrupt = "cache.corrupt"
	// SiteExpPanic panics inside experiment execution (internal/server.runJob).
	SiteExpPanic = "exp.panic"
	// SiteExpStall blocks experiment execution until the job's context is
	// cancelled, exercising per-job deadlines and shutdown cancellation.
	SiteExpStall = "exp.stall"
)

// FaultSites returns every injection site the serving pipeline
// consults, for flag validation and documentation.
func FaultSites() []string {
	return []string{SiteCacheRead, SiteCacheWrite, SiteCacheCorrupt, SiteExpPanic, SiteExpStall}
}

// entryMagic heads every disk entry and versions the on-disk format.
// The full layout is:
//
//	cascade-entry/v1\n<64 hex chars of SHA-256(payload)>\n<payload>
//
// Bumping the version makes every old entry decode-fail, quarantine,
// and recompute — the disk cache self-heals across format changes.
const entryMagic = "cascade-entry/v1\n"

// checksumHexLen is the length of the hex-encoded SHA-256 in the header.
const checksumHexLen = 2 * sha256.Size

// encodeEntry frames a payload for disk: header, checksum, payload.
func encodeEntry(val []byte) []byte {
	sum := sha256.Sum256(val)
	b := make([]byte, 0, len(entryMagic)+checksumHexLen+1+len(val))
	b = append(b, entryMagic...)
	b = append(b, hex.EncodeToString(sum[:])...)
	b = append(b, '\n')
	b = append(b, val...)
	return b
}

// decodeEntry verifies a disk entry's framing and checksum and returns
// the payload.
func decodeEntry(b []byte) ([]byte, error) {
	if !bytes.HasPrefix(b, []byte(entryMagic)) {
		return nil, errors.New("missing entry header (pre-checksum or foreign file)")
	}
	rest := b[len(entryMagic):]
	if len(rest) < checksumHexLen+1 || rest[checksumHexLen] != '\n' {
		return nil, errors.New("truncated checksum header")
	}
	want := string(rest[:checksumHexLen])
	payload := rest[checksumHexLen+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != want {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// NewCache returns a cache rooted at dir (created if missing; "" for
// memory-only) reporting hit/miss counters to m (nil for none).
func NewCache(dir string, m *metrics.Synced) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	c := &Cache{dir: dir, m: m}
	for i := range c.shards {
		c.shards[i].mem = make(map[string][]byte)
	}
	c.diskOK.Store(true)
	return c, nil
}

// shard returns the stripe owning key: FNV-1a over the full key, masked
// to the power-of-two shard count. The first two key characters also
// pick the disk directory (see path), so hashing the whole key keeps
// lock striping independent of directory sharding.
func (c *Cache) shard(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// WithFaults attaches a fault injector to the cache's disk I/O sites
// (nil detaches) and returns the cache for chaining.
func (c *Cache) WithFaults(in *faults.Injector) *Cache {
	c.faults.Store(in)
	return c
}

// inj returns the attached injector (nil-safe to call sites).
func (c *Cache) inj() *faults.Injector {
	return c.faults.Load()
}

// Healthy reports whether the disk layer is believed usable: true for
// memory-only caches, false after a disk read/write error or corrupt
// entry until the next disk operation succeeds. The serving daemon's
// /healthz reports "degraded" while this is false.
func (c *Cache) Healthy() bool {
	if c.dir == "" {
		return true
	}
	return c.diskOK.Load()
}

// Get returns the bytes stored under key. Disk entries are checksum-
// verified and promoted into memory on first read; corrupt entries are
// quarantined and read as misses. Metrics: cache.hits / cache.misses
// count every lookup; cache.disk_hits counts the hits served from
// disk; cache.read_errors counts disk reads that failed for a reason
// other than the entry not existing; cache.corrupt counts quarantined
// entries.
func (c *Cache) Get(key string) ([]byte, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.mem[key]; ok {
		c.inc("cache.hits")
		return v, true
	}
	if c.dir != "" {
		if v, ok := c.diskGet(key); ok {
			sh.mem[key] = v
			c.inc("cache.hits")
			c.inc("cache.disk_hits")
			return v, true
		}
	}
	c.inc("cache.misses")
	return nil, false
}

// diskGet reads, verifies, and returns one disk entry. Callers must
// hold the key's shard lock. Not-exist is a plain miss; any other read
// error counts in cache.read_errors and marks the disk layer unhealthy;
// a decode failure quarantines the entry. All three read as misses.
func (c *Cache) diskGet(key string) ([]byte, bool) {
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err == nil {
		err = c.inj().Fail(SiteCacheRead)
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false
		}
		c.inc("cache.read_errors")
		c.diskOK.Store(false)
		return nil, false
	}
	raw = c.inj().Corrupt(SiteCacheCorrupt, raw)
	val, derr := decodeEntry(raw)
	if derr != nil {
		c.quarantine(path)
		return nil, false
	}
	c.diskOK.Store(true)
	return val, true
}

// quarantine moves a corrupt entry aside (best-effort: a failed rename
// still reads as a miss, and the entry is rewritten on recompute) so it
// is never served and the original bytes survive for forensics.
func (c *Cache) quarantine(path string) {
	c.inc("cache.corrupt")
	os.Rename(path, path+".corrupt")
}

// DefaultQuarantineTTL is how long quarantined .corrupt files are kept
// for forensics before the startup sweep removes them. A day covers
// "the operator noticed the cache.corrupt counter and wants to look at
// the bytes"; after that they are dead weight in the cache directory.
const DefaultQuarantineTTL = 24 * time.Hour

// PurgeQuarantine removes quarantined (.corrupt) entries whose
// quarantine is older than ttl, returning how many were removed
// (counted under cache.quarantine_purged). Memory-only caches and
// non-positive TTLs are no-ops. Quarantine age is the file's mtime:
// the rename in quarantine() preserves it, so age measures time since
// the corrupt bytes were written, a conservative lower bound on time
// since quarantine.
func (c *Cache) PurgeQuarantine(ttl time.Duration) int {
	if c.dir == "" || ttl <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	purged := 0
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".corrupt") {
			return nil // unreadable subtrees degrade to "not purged"
		}
		info, err := d.Info()
		if err != nil || info.ModTime().After(cutoff) {
			return nil
		}
		if os.Remove(path) == nil {
			purged++
			c.inc("cache.quarantine_purged")
		}
		return nil
	})
	return purged
}

// Put stores val under key in memory and, when the cache has a
// directory, on disk (checksummed, written to a temp file and renamed,
// so readers never observe a partial entry). A disk write failure is
// returned — and counted in cache.write_errors — but the entry is
// still readable from memory: callers that already hold a computed
// result should degrade (serve it) rather than fail.
func (c *Cache) Put(key string, val []byte) error {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.mem[key]; !ok {
		sh.mem[key] = val
		if c.m != nil {
			c.m.Inc("cache.entries")
			c.m.Add("cache.bytes", int64(len(val)))
		}
	}
	if c.dir == "" {
		return nil
	}
	if err := c.diskPut(key, val); err != nil {
		c.inc("cache.write_errors")
		c.diskOK.Store(false)
		return err
	}
	c.diskOK.Store(true)
	return nil
}

// diskPut writes one checksummed entry. Callers must hold the key's
// shard lock.
func (c *Cache) diskPut(key string, val []byte) error {
	if err := c.inj().Fail(SiteCacheWrite); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	path := c.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil // identical content by construction; keep the old file
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(encodeEntry(val)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].mem)
		c.shards[i].mu.Unlock()
	}
	return n
}

// path shards entries by the first two key characters so no single
// directory grows unboundedly.
func (c *Cache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(c.dir, shard, key)
}

func (c *Cache) inc(name string) {
	if c.m != nil {
		c.m.Inc(name)
	}
}
