package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// fakeResult is a minimal Renderable for injected test experiments.
type fakeResult struct {
	Value string `json:"value"`
}

func (f fakeResult) Render(w io.Writer) { fmt.Fprintln(w, f.Value) }

// gatedExperiment returns an experiment whose runs block until gate is
// closed (or the run context is cancelled), signalling each start on
// running and counting executions in runs.
func gatedExperiment(name string, gate <-chan struct{}, running chan struct{}, runs *atomic.Int32) experiments.Experiment {
	return experiments.Experiment{
		Name:        name,
		Description: "test stand-in",
		Run: func(ctx context.Context, rc experiments.RunConfig) (experiments.Renderable, error) {
			runs.Add(1)
			running <- struct{}{}
			select {
			case <-gate:
				return fakeResult{Value: fmt.Sprintf("%s n=%d", name, rc.N)}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}

// TestServerCoalescing pins single-flight semantics: concurrent
// submission of an identical job attaches to the in-flight run instead
// of simulating twice, and both jobs finish with the same result bytes.
func TestServerCoalescing(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     2,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	v1, err := s.Submit("fake", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	<-running // the leader is inside its simulation now

	v2, err := s.Submit("fake", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Coalesced {
		t.Error("duplicate submission did not coalesce")
	}
	close(gate)

	r1, _ := s.Await(v1.ID, 5*time.Second, nil)
	r2, _ := s.Await(v2.ID, 5*time.Second, nil)
	if r1.State != StateDone || r2.State != StateDone {
		t.Fatalf("states = %s/%s, want done/done", r1.State, r2.State)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("experiment ran %d times, want 1", got)
	}
	if !bytes.Equal(r1.Result, r2.Result) {
		t.Error("coalesced job's result differs from its leader's")
	}
	if r1.Key != r2.Key {
		t.Errorf("coalesced jobs carry different keys: %s vs %s", r1.Key, r2.Key)
	}
	if got := s.Metrics().Get(mJobsCoalesced); got != 1 {
		t.Errorf("jobs.coalesced = %d, want 1", got)
	}
}

// TestServerGracefulShutdownDrains pins the drain path: Shutdown with a
// generous deadline lets the running job and the queued job both finish,
// and their results are retrievable afterwards.
func TestServerGracefulShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}

	v1, err := s.Submit("fake", JobParams{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	v2, err := s.Submit("fake", JobParams{N: 200}) // distinct key: stays queued
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate) // release the runs while Shutdown is draining
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown = %v, want nil", err)
	}

	for _, id := range []string{v1.ID, v2.ID} {
		v, ok := s.Job(id)
		if !ok || v.State != StateDone || len(v.Result) == 0 {
			t.Errorf("after drain, job %s = %+v, want done with result", id, v)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("experiment ran %d times, want 2", got)
	}
	if _, err := s.Submit("fake", JobParams{N: 300}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("Submit after Shutdown = %v, want ErrShuttingDown", err)
	}
}

// TestServerShutdownCancelsInFlight pins forced shutdown: when the drain
// deadline expires, cancellation propagates through the run context into
// the experiment pool and the stuck job fails with the context error.
func TestServerShutdownCancelsInFlight(t *testing.T) {
	gate := make(chan struct{}) // never closed: the job can only end via ctx
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Submit("fake", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown = %v, want DeadlineExceeded", err)
	}
	got, _ := s.Job(v.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, context.Canceled.Error()) {
		t.Errorf("cancelled job = state %s error %q, want failed with context.Canceled", got.State, got.Error)
	}
}

// TestServerQueueBound pins the bounded queue: with one busy worker and a
// one-slot queue, a third distinct job is rejected with ErrQueueFull.
func TestServerQueueBound(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		QueueDepth:  1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()

	if _, err := s.Submit("fake", JobParams{N: 100}); err != nil {
		t.Fatal(err)
	}
	<-running
	if _, err := s.Submit("fake", JobParams{N: 200}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Submit("fake", JobParams{N: 300})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if v.State != StateFailed {
		t.Errorf("rejected job state = %s, want failed", v.State)
	}
	if got := s.Metrics().Get(mJobsRejected); got != 1 {
		t.Errorf("jobs.rejected = %d, want 1", got)
	}
}

// TestServerUnknownExperiment pins submission validation.
func TestServerUnknownExperiment(t *testing.T) {
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if _, err := s.Submit("nope", JobParams{}); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("Submit(nope) = %v, want ErrUnknownExperiment", err)
	}
}

// submitHTTP posts one job and decodes the response envelope, folding
// the hoisted result back into the view for the callers' convenience.
func submitHTTP(t *testing.T, url, body string) (JobView, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var env Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Version != APIVersion {
			t.Fatalf("api_version = %q, want %q", env.Version, APIVersion)
		}
		if env.Job == nil {
			t.Fatal("submit response envelope has no job")
		}
		v = *env.Job
		v.Result = env.Result
	}
	return v, resp.StatusCode
}

// TestServerEndToEndCacheHit is the acceptance test: over HTTP, submit
// the same real experiment twice. The first submission simulates; the
// second is served from the cache (no second simulation, hit counter
// increments) with byte-identical results, which in turn match a fresh
// direct simulation of the same configuration — the differential
// guarantee that memoization never changes answers.
func TestServerEndToEndCacheHit(t *testing.T) {
	s, err := New(Config{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Tiny quickstart: n clamps to 1024, milliseconds of simulation.
	const body = `{"experiment": "quickstart", "params": {"scale": 0.001}}`
	v1, code := submitHTTP(t, ts.URL, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("first submit: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v1.ID + "?wait=30s")
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Job == nil {
		t.Fatal("job envelope has no job")
	}
	done := *env.Job
	done.Result = env.Result
	if done.State != StateDone {
		t.Fatalf("first job = %s (error %q), want done", done.State, done.Error)
	}
	if len(done.Result) == 0 {
		t.Fatal("first job has no result payload")
	}

	// Second submission: answered at submit time, from the cache.
	v2, code := submitHTTP(t, ts.URL, body)
	if code != http.StatusOK {
		t.Errorf("second submit: status %d, want 200 (cache hit)", code)
	}
	if v2.State != StateDone || !v2.Cached {
		t.Errorf("second job = state %s cached %v, want immediate cached done", v2.State, v2.Cached)
	}
	if !bytes.Equal(done.Result, v2.Result) {
		t.Error("cached result differs from the first run's result")
	}

	snap := s.Metrics()
	if got := snap.Get(mJobsExecuted); got != 1 {
		t.Errorf("jobs.executed = %d, want 1 (second run must not simulate)", got)
	}
	if got := snap.Get("cache.hits"); got != 1 {
		t.Errorf("cache.hits = %d, want 1", got)
	}
	if got := snap.Get(mJobsCacheHits); got != 1 {
		t.Errorf("jobs.cache_hits = %d, want 1", got)
	}

	// The exposition endpoint reflects the same counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"jobs.executed 1", "cache.hits 1", "queue.depth ", "jobs.time.run_ns "} {
		if !strings.Contains(string(mtext), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mtext)
		}
	}

	// Differential check: the stored cache entry is byte-identical to a
	// fresh simulation of the same fully-resolved configuration,
	// rendered the same way. (The HTTP responses above re-indent the
	// nested result, so the comparison is against the cache itself.)
	e, ok := experiments.Lookup("quickstart")
	if !ok {
		t.Fatal("quickstart not registered")
	}
	params := JobParams{Scale: 0.001}.WithDefaults()
	r, err := e.Run(context.Background(), params.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RenderJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := s.cache.Get(done.Key)
	if !ok {
		t.Fatal("no cache entry under the job's key")
	}
	if !bytes.Equal(fresh, cached) {
		t.Error("cached result bytes differ from a fresh simulation of the same config")
	}
}

// TestServerHTTPSurface covers the remaining endpoints: experiment
// discovery shares the registry's metadata, job listing, and the error
// statuses.
func TestServerHTTPSurface(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var disc Envelope
	if err := json.NewDecoder(resp.Body).Decode(&disc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := experiments.Infos()
	if len(disc.Experiments) != len(want) {
		t.Fatalf("/v1/experiments returned %d entries, want %d", len(disc.Experiments), len(want))
	}
	for i := range want {
		if disc.Experiments[i] != want[i] {
			t.Errorf("experiment[%d] = %+v, want %+v", i, disc.Experiments[i], want[i])
		}
	}

	if _, code := submitHTTP(t, ts.URL, `{"experiment": "nope"}`); code != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", code)
	}
	if _, code := submitHTTP(t, ts.URL, `{"experiment": "table1", "params": {"scale": -1}}`); code != http.StatusBadRequest {
		t.Errorf("bad params: status %d, want 400", code)
	}
	if _, code := submitHTTP(t, ts.URL, `{"bogus": true}`); code != http.StatusBadRequest {
		t.Errorf("unknown body field: status %d, want 400", code)
	}

	v, code := submitHTTP(t, ts.URL, `{"experiment": "table1"}`)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("table1 submit: status %d", code)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "?wait=10s"); err == nil {
		resp.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list Envelope
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Errorf("job list = %+v, want the one submitted job", list.Jobs)
	}
	if len(list.Jobs) == 1 && list.Jobs[0].Result != nil {
		t.Error("job list leaked result payloads")
	}

	for path, wantCode := range map[string]int{
		"/v1/jobs/absent":                  http.StatusNotFound,
		"/v1/jobs/" + v.ID + "?wait=bogus": http.StatusBadRequest,
		"/healthz":                         http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
	}
}

// echoExperiment completes immediately with a deterministic value.
func echoExperiment(name string) experiments.Experiment {
	return experiments.Experiment{
		Name:        name,
		Description: "test echo",
		Run: func(ctx context.Context, rc experiments.RunConfig) (experiments.Renderable, error) {
			return fakeResult{Value: fmt.Sprintf("%s n=%d", name, rc.N)}, nil
		},
	}
}

// panickyExperiment signals running, waits for gate, then panics.
func panickyExperiment(name string, gate <-chan struct{}, running chan struct{}) experiments.Experiment {
	return experiments.Experiment{
		Name:        name,
		Description: "test panic",
		Run: func(ctx context.Context, rc experiments.RunConfig) (experiments.Renderable, error) {
			running <- struct{}{}
			<-gate
			panic("deliberate test panic")
		},
	}
}

// assertConservation pins the counter invariant after a full drain:
// every accepted submission is terminal, so
// jobs.submitted = jobs.completed + jobs.failed.
func assertConservation(t *testing.T, s *Server) {
	t.Helper()
	snap := s.Metrics()
	sub, comp, fail := snap.Get(mJobsSubmitted), snap.Get(mJobsCompleted), snap.Get(mJobsFailed)
	if sub != comp+fail {
		t.Errorf("counter conservation violated: submitted %d != completed %d + failed %d", sub, comp, fail)
	}
}

// TestServerFollowerAdoptsLeaderPanic pins the coalesced-follower error
// path for a panicking leader: the follower fails with the leader's
// error (stack included), the panic is counted, and the worker pool
// keeps serving afterwards.
func TestServerFollowerAdoptsLeaderPanic(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	s, err := New(Config{
		Workers: 1,
		Experiments: []experiments.Experiment{
			panickyExperiment("bad", gate, running),
			echoExperiment("good"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	v1, err := s.Submit("bad", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	v2, err := s.Submit("bad", JobParams{})
	if err != nil || !v2.Coalesced {
		t.Fatalf("follower = %+v, %v, want coalesced", v2, err)
	}
	close(gate)

	r1, _ := s.Await(v1.ID, 5*time.Second, nil)
	r2, _ := s.Await(v2.ID, 5*time.Second, nil)
	for _, r := range []JobView{r1, r2} {
		if r.State != StateFailed {
			t.Fatalf("job %s = %s, want failed", r.ID, r.State)
		}
		if !strings.Contains(r.Error, "experiment panicked") || !strings.Contains(r.Error, "deliberate test panic") {
			t.Errorf("job %s error = %q, want panic value", r.ID, r.Error)
		}
	}
	if !strings.Contains(r1.Error, "server_test.go") {
		t.Errorf("leader error lacks a stack trace:\n%s", r1.Error)
	}
	if got := s.Metrics().Get(mJobsPanics); got != 1 {
		t.Errorf("jobs.panics = %d, want 1", got)
	}
	// The worker survived the recovered panic.
	v3, err := s.Submit("good", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	if r3, _ := s.Await(v3.ID, 5*time.Second, nil); r3.State != StateDone {
		t.Errorf("job after panic = %s (error %q), want done", r3.State, r3.Error)
	}
	assertConservation(t, s)
}

// TestServerFollowerAdoptsLeaderTimeout pins the per-job deadline and
// its interaction with coalescing: the key excludes TimeoutMS, so a
// follower with a different timeout still coalesces and adopts the
// leader's deadline failure.
func TestServerFollowerAdoptsLeaderTimeout(t *testing.T) {
	gate := make(chan struct{}) // never closed: only the deadline can end the run
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	v1, err := s.Submit("fake", JobParams{TimeoutMS: 150})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	v2, err := s.Submit("fake", JobParams{TimeoutMS: 60_000})
	if err != nil || !v2.Coalesced {
		t.Fatalf("follower = %+v, %v, want coalesced despite differing timeout", v2, err)
	}

	r1, _ := s.Await(v1.ID, 5*time.Second, nil)
	r2, _ := s.Await(v2.ID, 5*time.Second, nil)
	for _, r := range []JobView{r1, r2} {
		if r.State != StateFailed || !strings.Contains(r.Error, "deadline") {
			t.Errorf("job %s = %s %q, want failed with deadline error", r.ID, r.State, r.Error)
		}
	}
	if got := s.Metrics().Get(mJobsTimeouts); got != 1 {
		t.Errorf("jobs.timeouts = %d, want 1", got)
	}
	assertConservation(t, s)
}

// TestServerFollowerAtShutdownCancel pins the third follower error
// path: a leader cancelled by forced shutdown takes its followers to
// terminal failed states, and Shutdown's wait covers the follower
// goroutines — it does not return while any are pending.
func TestServerFollowerAtShutdownCancel(t *testing.T) {
	gate := make(chan struct{}) // never closed
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.Submit("fake", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	v2, err := s.Submit("fake", JobParams{})
	if err != nil || !v2.Coalesced {
		t.Fatalf("follower = %+v, %v, want coalesced", v2, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown = %v, want DeadlineExceeded", err)
	}
	// Shutdown has returned: every job, follower included, must be terminal.
	for _, id := range []string{v1.ID, v2.ID} {
		r, ok := s.Job(id)
		if !ok || r.State != StateFailed || !strings.Contains(r.Error, context.Canceled.Error()) {
			t.Errorf("job %s = %+v, want failed with context.Canceled", id, r)
		}
	}
	assertConservation(t, s)
}

// TestServerCounterConservation pins the satellite fix directly: a
// shutdown-time rejection counts in jobs.rejected only, never in
// jobs.submitted, so the conservation identity survives shutdown.
func TestServerCounterConservation(t *testing.T) {
	s, err := New(Config{Workers: 2, Experiments: []experiments.Experiment{echoExperiment("good")}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Submit("good", JobParams{N: 1000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics()
	if _, err := s.Submit("good", JobParams{}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit after Shutdown = %v, want ErrShuttingDown", err)
	}
	after := s.Metrics()
	if after.Get(mJobsSubmitted) != before.Get(mJobsSubmitted) {
		t.Error("shutdown rejection counted in jobs.submitted")
	}
	if after.Get(mJobsRejected) != before.Get(mJobsRejected)+1 {
		t.Error("shutdown rejection not counted in jobs.rejected")
	}
	if got := after.Get(mJobsSubmitted); got != 5 {
		t.Errorf("jobs.submitted = %d, want 5", got)
	}
	assertConservation(t, s)
}

// TestServerHealthzDraining pins the readiness half of /healthz: while
// Shutdown drains, the probe answers 503 "draining" so a load balancer
// stops routing here before the listener goes away.
func TestServerHealthzDraining(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if body, code := healthz(t, ts.URL); code != http.StatusOK || body != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", code, body)
	}

	if _, err := s.Submit("fake", JobParams{}); err != nil {
		t.Fatal(err)
	}
	<-running
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if body, code := healthz(t, ts.URL); code != http.StatusServiceUnavailable || body != "draining" {
		t.Errorf("healthz during drain = %d %q, want 503 draining", code, body)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}

// TestServerHealthzDegradedWriteFailure pins graceful degradation end
// to end: with the disk cache failing every write, jobs still complete
// and serve their results (memory-only), the losses are counted, and
// /healthz reports "degraded" while staying 200 — alive, not ready to
// be trusted with durability.
func TestServerHealthzDegradedWriteFailure(t *testing.T) {
	inj := faults.New(1)
	inj.Arm(SiteCacheWrite, faults.Trigger{Prob: 1}) // every write fails
	s, err := New(Config{
		Workers:     1,
		CacheDir:    t.TempDir(),
		Experiments: []experiments.Experiment{echoExperiment("good")},
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit("good", JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.Await(v.ID, 5*time.Second, nil)
	if r.State != StateDone || len(r.Result) == 0 {
		t.Fatalf("job under write failure = %s (error %q), want done with result", r.State, r.Error)
	}
	snap := s.Metrics()
	if snap.Get("cache.write_errors") != int64(putAttempts) {
		t.Errorf("cache.write_errors = %d, want %d (every attempt counted)", snap.Get("cache.write_errors"), putAttempts)
	}
	if snap.Get(mCacheWriteRetries) != putAttempts-1 {
		t.Errorf("cache.write_retries = %d, want %d", snap.Get(mCacheWriteRetries), putAttempts-1)
	}
	if body, code := healthz(t, ts.URL); code != http.StatusOK || body != "degraded" {
		t.Errorf("healthz = %d %q, want 200 degraded", code, body)
	}
}

// healthz fetches /healthz and returns the trimmed body and status.
func healthz(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(b)), resp.StatusCode
}

// TestServerLoadShedHTTP pins the shedding contract: a queue-full
// rejection is a 503 with a Retry-After hint and the current queue
// depth in the body, not a bare error.
func TestServerLoadShedHTTP(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var runs atomic.Int32
	s, err := New(Config{
		Workers:     1,
		QueueDepth:  1,
		Experiments: []experiments.Experiment{gatedExperiment("fake", gate, running, &runs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, code := submitHTTP(t, ts.URL, `{"experiment": "fake", "params": {"n": 100}}`); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	<-running
	if _, code := submitHTTP(t, ts.URL, `{"experiment": "fake", "params": {"n": 200}}`); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "fake", "params": {"n": 300}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response lacks Retry-After")
	}
	var shed Envelope
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if shed.Error == nil || shed.Error.Code != CodeQueueFull || shed.QueueDepth == nil {
		t.Errorf("shed body = %+v, want queue_full error and queue_depth", shed)
	}
	if shed.Error != nil && !strings.Contains(shed.Error.Message, ErrQueueFull.Error()) {
		t.Errorf("shed message = %q, want queue-full text", shed.Error.Message)
	}
}
