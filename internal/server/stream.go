package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Streaming ?wait: a long-poll on GET /v1/jobs/{id} that opts into
// "Accept: application/x-ndjson" gets newline-delimited envelope frames
// instead of one silent blocking response —
//
//	{"api_version":"2025-06","job":{...,"state":"running"},"progress":{"points_done":3,"points_total":42}}
//	...one keep-alive frame per ProgressInterval...
//	{"api_version":"2025-06","job":{...,"state":"done"},"result":{...}}
//
// The final line is always the same envelope the non-streaming path
// would have returned (compacted to one line, as ndjson requires), so a
// streaming client decodes every line into the one Envelope type and
// treats the last as the answer. Intermediate frames exist so clients —
// and the idle-connection timeouts of everything between them and the
// server — can tell a long sweep from a dead one: each carries the
// job's live point progress (absent until the sweep's first point
// completes; an experiment that never parallelizes sends frames with no
// progress field, which still serve as keep-alives).
//
// The legacy wire format predates streaming and never gets it;
// requestVersion gates this path to the current version.

// DefaultProgressInterval is the keep-alive cadence of streaming ?wait
// responses: frequent enough to outrun typical 30–60s proxy idle
// timeouts by a wide margin, rare enough to be free.
const DefaultProgressInterval = time.Second

// NDJSONContentType is the media type that opts a ?wait long-poll into
// streaming keep-alive frames.
const NDJSONContentType = "application/x-ndjson"

// wantsNDJSON reports whether the request opted into streaming frames.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), NDJSONContentType)
}

// streamJob serves one streaming long-poll. wait bounds the total wait
// exactly as the plain path's Await does; 0 degenerates to a single
// final frame.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, id string, wait time.Duration) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeEnvelopeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}

	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	tick := time.NewTicker(s.progressTick)
	defer tick.Stop()

	for {
		select {
		case <-j.done:
		case <-deadline.C:
		case <-r.Context().Done():
		case <-tick.C:
			s.mu.Lock()
			frame := Envelope{Job: ptr(j.view(false))}
			s.mu.Unlock()
			frame.Progress = j.progress()
			if writeFrame(w, flusher, frame) != nil {
				return // client hung up; the job runs on regardless
			}
			continue
		}
		break
	}

	v, _ := s.Job(id)
	env := jobEnvelope(v)
	if env.Error == nil && v.State != StateDone {
		if r.Context().Err() != nil {
			env.Error = &APIError{Code: CodeCancelled,
				Message: fmt.Sprintf("request cancelled while waiting for job %q", id)}
		} else {
			env.Progress = j.progress()
		}
	}
	writeFrame(w, flusher, env)
}

// writeFrame writes one envelope as a single ndjson line and flushes it
// past any buffering so keep-alives actually reach the client.
func writeFrame(w http.ResponseWriter, flusher http.Flusher, env Envelope) error {
	env.Version = APIVersion
	raw, err := json.Marshal(env)
	if err != nil {
		return err
	}
	// Result payloads are stored indented (RenderJSON) and embedded
	// verbatim by Marshal; compact the whole frame so it stays one line.
	var line bytes.Buffer
	if err := json.Compact(&line, raw); err != nil {
		return err
	}
	line.WriteByte('\n')
	if _, err := w.Write(line.Bytes()); err != nil {
		return err
	}
	if flusher != nil {
		flusher.Flush()
	}
	return nil
}

func ptr[T any](v T) *T { return &v }
