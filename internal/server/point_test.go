package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
)

// registerSyntheticSweep installs a cheap decomposition under name whose
// points cost nothing to run, so fabric-surface tests never pay for a
// paper-scale simulation. Run executes fn per point (nil = a fixed
// arithmetic result derived from the spec).
func registerSyntheticSweep(name string, points int, fn func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error)) {
	if fn == nil {
		fn = func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
			return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index*7 + ps.N)}, nil
		}
	}
	experiments.RegisterDecomposition(name, experiments.Decomposition{
		Points: func(rc experiments.RunConfig) []experiments.PointSpec {
			specs := make([]experiments.PointSpec, points)
			for i := range specs {
				specs[i] = experiments.PointSpec{Experiment: name, Index: i, N: rc.N}
			}
			return specs
		},
		Run: fn,
		Merge: func(rc experiments.RunConfig, rs []experiments.PointResult) (experiments.Renderable, error) {
			var total int64
			for _, r := range rs {
				total += r.Cycles
			}
			return fakeResult{Value: fmt.Sprintf("total=%d", total)}, nil
		},
	})
}

// postPoint ships one spec to a server's point endpoint and decodes the
// envelope. key == "derive" computes the correct key; "" omits it.
func postPoint(t *testing.T, url string, key string, spec experiments.PointSpec) (int, Envelope) {
	t.Helper()
	if key == "derive" {
		k, err := canon.PointKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		key = k
	}
	body, err := json.Marshal(map[string]interface{}{"key": key, "point": spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/points", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding point envelope: %v", err)
	}
	return resp.StatusCode, env
}

// TestPointEndpoint pins the worker surface's happy path: a shipped
// point executes and returns its result; resubmitting the identical
// point answers from the cache with "cached": true — the observable
// signal cross-node hit accounting is built on.
func TestPointEndpoint(t *testing.T) {
	registerSyntheticSweep("pt-basic", 4, nil)
	s, err := New(Config{Workers: 2, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiments.PointSpec{Experiment: "pt-basic", Index: 2, N: 10}
	status, env := postPoint(t, ts.URL, "derive", spec)
	if status != http.StatusOK || env.Point == nil {
		t.Fatalf("point run: status %d, envelope %+v", status, env)
	}
	if env.Cached {
		t.Error("fresh point claims cached")
	}
	if want := int64(1000 + 2*7 + 10); env.Point.Cycles != want || env.Point.Index != 2 {
		t.Errorf("point result = %+v, want cycles %d index 2", env.Point, want)
	}

	status, env = postPoint(t, ts.URL, "derive", spec)
	if status != http.StatusOK || env.Point == nil || !env.Cached {
		t.Fatalf("cached rerun: status %d, cached %v", status, env.Cached)
	}
	if env.Point.Cycles != 1000+2*7+10 {
		t.Errorf("cached result drifted: %+v", env.Point)
	}

	// Omitting the key is allowed: the worker derives it itself.
	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-basic", Index: 1, N: 10})
	if status != http.StatusOK || env.Point == nil || env.Point.Index != 1 {
		t.Fatalf("keyless point: status %d, envelope %+v", status, env)
	}

	m := s.Metrics()
	if got := m.Get(mPointsExecuted); got != 2 {
		t.Errorf("points.executed = %d, want 2", got)
	}
	if got := m.Get(mPointsCacheHits); got != 1 {
		t.Errorf("points.cache_hits = %d, want 1", got)
	}
}

// TestPointEndpointRejections pins every refusal: a key that disagrees
// with the spec, an unknown experiment, a missing spec, and the legacy
// wire format — none of which may reach execution.
func TestPointEndpointRejections(t *testing.T) {
	registerSyntheticSweep("pt-reject", 2, nil)
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiments.PointSpec{Experiment: "pt-reject", Index: 0}
	status, env := postPoint(t, ts.URL, "deadbeef", spec)
	if status != http.StatusBadRequest || env.Error == nil || env.Error.Code != CodeBadRequest {
		t.Errorf("key mismatch: status %d, error %+v", status, env.Error)
	}
	if got := s.Metrics().Get(mPointsKeyMismatch); got != 1 {
		t.Errorf("points.key_mismatch = %d, want 1", got)
	}

	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "no-such-sweep"})
	if status != http.StatusNotFound || env.Error == nil || env.Error.Code != CodeNotFound {
		t.Errorf("unknown experiment: status %d, error %+v", status, env.Error)
	}

	resp, err := http.Post(ts.URL+"/v1/points", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing spec: status %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/points", bytes.NewReader([]byte(`{}`)))
	req.Header.Set(VersionHeader, LegacyAPIVersion)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("legacy version: status %d, want 400", resp.StatusCode)
	}

	if got := s.Metrics().Get(mPointsExecuted); got != 0 {
		t.Errorf("a refused request executed: points.executed = %d", got)
	}
}

// TestPointEndpointPanicContained pins panic containment: a point whose
// execution panics fails that one request with a typed panic error and
// leaves the worker serving.
func TestPointEndpointPanicContained(t *testing.T) {
	registerSyntheticSweep("pt-panic", 2, func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		if ps.Index == 0 {
			panic("poisoned point")
		}
		return experiments.PointResult{Index: ps.Index, Cycles: 42}, nil
	})
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, env := postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-panic", Index: 0})
	if status != http.StatusInternalServerError || env.Error == nil || env.Error.Code != CodePanic {
		t.Fatalf("panicking point: status %d, error %+v", status, env.Error)
	}
	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-panic", Index: 1})
	if status != http.StatusOK || env.Point == nil || env.Point.Cycles != 42 {
		t.Fatalf("worker did not survive the panic: status %d, envelope %+v", status, env)
	}
	if got := s.Metrics().Get(mPointsFailed); got != 1 {
		t.Errorf("points.failed = %d, want 1", got)
	}
}

// TestPointEndpointShedsLoad pins bounded admission: with one execution
// slot and one wait slot, a third concurrent point is refused with 503
// queue_full, and a drained server refuses with 503 shutting_down.
func TestPointEndpointShedsLoad(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	registerSyntheticSweep("pt-shed", 2, func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		running <- struct{}{}
		select {
		case <-gate:
			return experiments.PointResult{Index: ps.Index, Cycles: 1}, nil
		case <-ctx.Done():
			return experiments.PointResult{}, ctx.Err()
		}
	})
	s, err := New(Config{Workers: 1, QueueDepth: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	results := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct N keeps the two points from answering each other
			// through the cache.
			status, _ := postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-shed", Index: 0, N: i})
			results[i] = status
		}(i)
	}
	<-running // the first point holds the execution slot
	// Wait for the second request to occupy the wait slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.pointAdmitted.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second point never reached admission")
		}
		time.Sleep(time.Millisecond)
	}

	status, env := postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-shed", Index: 1, N: 99})
	if status != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != CodeQueueFull {
		t.Errorf("saturated worker: status %d, error %+v, want 503 queue_full", status, env.Error)
	}
	if got := s.Metrics().Get(mPointsRejected); got != 1 {
		t.Errorf("points.rejected = %d, want 1", got)
	}

	close(gate)
	wg.Wait()
	for i, st := range results {
		if st != http.StatusOK {
			t.Errorf("admitted point %d finished with status %d", i, st)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-shed", Index: 0, N: 1000})
	if status != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != CodeShuttingDown {
		t.Errorf("draining worker: status %d, error %+v, want 503 shutting_down", status, env.Error)
	}
}

// postBatch ships a batched lease to a server's point endpoint. ndjson
// selects the streamed reply; keys follow postPoint's convention
// ("derive", "", or a literal). Returns the status, the frames read
// (one per outcome when streamed, a single all-outcomes envelope
// otherwise), and the response Content-Type.
func postBatch(t *testing.T, url string, ndjson bool, keys []string, specs []experiments.PointSpec) (int, []Envelope, string) {
	t.Helper()
	items := make([]map[string]interface{}, len(specs))
	for i, spec := range specs {
		key := keys[i]
		if key == "derive" {
			k, err := canon.PointKey(spec)
			if err != nil {
				t.Fatal(err)
			}
			key = k
		}
		items[i] = map[string]interface{}{"key": key, "point": spec}
	}
	body, err := json.Marshal(map[string]interface{}{"points": items})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/v1/points", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if ndjson {
		req.Header.Set("Accept", NDJSONContentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envs []Envelope
	dec := json.NewDecoder(resp.Body)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			break
		}
		envs = append(envs, env)
	}
	return resp.StatusCode, envs, resp.Header.Get("Content-Type")
}

// TestPointBatchEndpoint pins the batched lease surface: one request
// carries N points, one envelope returns N ordered outcomes, a rerun
// answers every outcome from the cache, and a bad item fails alone
// without poisoning its batch siblings.
func TestPointBatchEndpoint(t *testing.T) {
	registerSyntheticSweep("pt-batch", 4, nil)
	s, err := New(Config{Workers: 2, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []experiments.PointSpec{
		{Experiment: "pt-batch", Index: 0, N: 10},
		{Experiment: "pt-batch", Index: 1, N: 10},
		{Experiment: "pt-batch", Index: 2, N: 10},
	}
	keys := []string{"derive", "derive", ""}
	status, envs, _ := postBatch(t, ts.URL, false, keys, specs)
	if status != http.StatusOK || len(envs) != 1 {
		t.Fatalf("batch run: status %d, %d envelopes", status, len(envs))
	}
	if len(envs[0].Outcomes) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(envs[0].Outcomes))
	}
	for i, o := range envs[0].Outcomes {
		if o.Index != i || o.Point == nil || o.Error != nil {
			t.Fatalf("outcome %d = %+v, want ordered success", i, o)
		}
		if want := int64(1000 + specs[i].Index*7 + 10); o.Point.Cycles != want {
			t.Errorf("outcome %d cycles = %d, want %d", i, o.Point.Cycles, want)
		}
		if o.Cached {
			t.Errorf("fresh outcome %d claims cached", i)
		}
	}

	// Identical rerun: every outcome is a cache hit.
	status, envs, _ = postBatch(t, ts.URL, false, keys, specs)
	if status != http.StatusOK || len(envs) != 1 || len(envs[0].Outcomes) != 3 {
		t.Fatalf("cached batch: status %d, envelopes %+v", status, envs)
	}
	for i, o := range envs[0].Outcomes {
		if !o.Cached || o.Point == nil {
			t.Errorf("rerun outcome %d not cached: %+v", i, o)
		}
	}

	// A bad item fails alone; its siblings still execute.
	mixed := []experiments.PointSpec{
		{Experiment: "no-such-sweep", Index: 0},
		{Experiment: "pt-batch", Index: 3, N: 10},
	}
	status, envs, _ = postBatch(t, ts.URL, false, []string{"", ""}, mixed)
	if status != http.StatusOK || len(envs) != 1 || len(envs[0].Outcomes) != 2 {
		t.Fatalf("mixed batch: status %d, envelopes %+v", status, envs)
	}
	if o := envs[0].Outcomes[0]; o.Error == nil || o.Error.Code != CodeNotFound || o.Point != nil {
		t.Errorf("bad item outcome = %+v, want not_found error", o)
	}
	if o := envs[0].Outcomes[1]; o.Error != nil || o.Point == nil || o.Point.Index != 3 {
		t.Errorf("sibling outcome = %+v, want success", o)
	}

	m := s.Metrics()
	if got := m.Get(mPointsBatches); got != 3 {
		t.Errorf("points.batches = %d, want 3", got)
	}
	if got := m.Get(mPointsExecuted); got != 4 {
		t.Errorf("points.executed = %d, want 4", got)
	}
	if got := m.Get(mPointsCacheHits); got != 3 {
		t.Errorf("points.cache_hits = %d, want 3", got)
	}

	// A request carrying both forms is ambiguous and refused.
	body := []byte(`{"point":{"experiment":"pt-batch","index":0},"points":[{"point":{"experiment":"pt-batch","index":1}}]}`)
	resp, err := http.Post(ts.URL+"/v1/points", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous request: status %d, want 400", resp.StatusCode)
	}
}

// TestPointBatchStreams pins the streamed batch reply: with ndjson
// negotiated the worker writes one envelope frame per retired point, in
// execution order, each carrying exactly one outcome — the shape the
// coordinator's per-point lease accounting and ?wait progress
// granularity are built on.
func TestPointBatchStreams(t *testing.T) {
	registerSyntheticSweep("pt-batch-stream", 4, nil)
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []experiments.PointSpec{
		{Experiment: "pt-batch-stream", Index: 0, N: 5},
		{Experiment: "no-such-sweep", Index: 1},
		{Experiment: "pt-batch-stream", Index: 2, N: 5},
	}
	status, envs, ctype := postBatch(t, ts.URL, true, []string{"derive", "", "derive"}, specs)
	if status != http.StatusOK {
		t.Fatalf("streamed batch: status %d", status)
	}
	if ctype != NDJSONContentType {
		t.Fatalf("Content-Type = %q, want %q", ctype, NDJSONContentType)
	}
	if len(envs) != 3 {
		t.Fatalf("frames = %d, want one per point", len(envs))
	}
	for i, env := range envs {
		if len(env.Outcomes) != 1 {
			t.Fatalf("frame %d carries %d outcomes, want exactly 1", i, len(env.Outcomes))
		}
		if env.Outcomes[0].Index != i {
			t.Errorf("frame %d outcome index = %d, want frames in batch order", i, env.Outcomes[0].Index)
		}
	}
	if o := envs[1].Outcomes[0]; o.Error == nil || o.Error.Code != CodeNotFound {
		t.Errorf("mid-stream bad item outcome = %+v, want not_found error", o)
	}
	if o := envs[2].Outcomes[0]; o.Error != nil || o.Point == nil || o.Point.Index != 2 {
		t.Errorf("post-error outcome = %+v, want success after a failed sibling", o)
	}
	if got := s.Metrics().Get(mPointsBatches); got != 1 {
		t.Errorf("points.batches = %d, want 1", got)
	}
}
