package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
)

// registerSyntheticSweep installs a cheap decomposition under name whose
// points cost nothing to run, so fabric-surface tests never pay for a
// paper-scale simulation. Run executes fn per point (nil = a fixed
// arithmetic result derived from the spec).
func registerSyntheticSweep(name string, points int, fn func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error)) {
	if fn == nil {
		fn = func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
			return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index*7 + ps.N)}, nil
		}
	}
	experiments.RegisterDecomposition(name, experiments.Decomposition{
		Points: func(rc experiments.RunConfig) []experiments.PointSpec {
			specs := make([]experiments.PointSpec, points)
			for i := range specs {
				specs[i] = experiments.PointSpec{Experiment: name, Index: i, N: rc.N}
			}
			return specs
		},
		Run: fn,
		Merge: func(rc experiments.RunConfig, rs []experiments.PointResult) (experiments.Renderable, error) {
			var total int64
			for _, r := range rs {
				total += r.Cycles
			}
			return fakeResult{Value: fmt.Sprintf("total=%d", total)}, nil
		},
	})
}

// postPoint ships one spec to a server's point endpoint and decodes the
// envelope. key == "derive" computes the correct key; "" omits it.
func postPoint(t *testing.T, url string, key string, spec experiments.PointSpec) (int, Envelope) {
	t.Helper()
	if key == "derive" {
		k, err := canon.PointKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		key = k
	}
	body, err := json.Marshal(map[string]interface{}{"key": key, "point": spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/points", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding point envelope: %v", err)
	}
	return resp.StatusCode, env
}

// TestPointEndpoint pins the worker surface's happy path: a shipped
// point executes and returns its result; resubmitting the identical
// point answers from the cache with "cached": true — the observable
// signal cross-node hit accounting is built on.
func TestPointEndpoint(t *testing.T) {
	registerSyntheticSweep("pt-basic", 4, nil)
	s, err := New(Config{Workers: 2, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiments.PointSpec{Experiment: "pt-basic", Index: 2, N: 10}
	status, env := postPoint(t, ts.URL, "derive", spec)
	if status != http.StatusOK || env.Point == nil {
		t.Fatalf("point run: status %d, envelope %+v", status, env)
	}
	if env.Cached {
		t.Error("fresh point claims cached")
	}
	if want := int64(1000 + 2*7 + 10); env.Point.Cycles != want || env.Point.Index != 2 {
		t.Errorf("point result = %+v, want cycles %d index 2", env.Point, want)
	}

	status, env = postPoint(t, ts.URL, "derive", spec)
	if status != http.StatusOK || env.Point == nil || !env.Cached {
		t.Fatalf("cached rerun: status %d, cached %v", status, env.Cached)
	}
	if env.Point.Cycles != 1000+2*7+10 {
		t.Errorf("cached result drifted: %+v", env.Point)
	}

	// Omitting the key is allowed: the worker derives it itself.
	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-basic", Index: 1, N: 10})
	if status != http.StatusOK || env.Point == nil || env.Point.Index != 1 {
		t.Fatalf("keyless point: status %d, envelope %+v", status, env)
	}

	m := s.Metrics()
	if got := m.Get(mPointsExecuted); got != 2 {
		t.Errorf("points.executed = %d, want 2", got)
	}
	if got := m.Get(mPointsCacheHits); got != 1 {
		t.Errorf("points.cache_hits = %d, want 1", got)
	}
}

// TestPointEndpointRejections pins every refusal: a key that disagrees
// with the spec, an unknown experiment, a missing spec, and the legacy
// wire format — none of which may reach execution.
func TestPointEndpointRejections(t *testing.T) {
	registerSyntheticSweep("pt-reject", 2, nil)
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiments.PointSpec{Experiment: "pt-reject", Index: 0}
	status, env := postPoint(t, ts.URL, "deadbeef", spec)
	if status != http.StatusBadRequest || env.Error == nil || env.Error.Code != CodeBadRequest {
		t.Errorf("key mismatch: status %d, error %+v", status, env.Error)
	}
	if got := s.Metrics().Get(mPointsKeyMismatch); got != 1 {
		t.Errorf("points.key_mismatch = %d, want 1", got)
	}

	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "no-such-sweep"})
	if status != http.StatusNotFound || env.Error == nil || env.Error.Code != CodeNotFound {
		t.Errorf("unknown experiment: status %d, error %+v", status, env.Error)
	}

	resp, err := http.Post(ts.URL+"/v1/points", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing spec: status %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/points", bytes.NewReader([]byte(`{}`)))
	req.Header.Set(VersionHeader, LegacyAPIVersion)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("legacy version: status %d, want 400", resp.StatusCode)
	}

	if got := s.Metrics().Get(mPointsExecuted); got != 0 {
		t.Errorf("a refused request executed: points.executed = %d", got)
	}
}

// TestPointEndpointPanicContained pins panic containment: a point whose
// execution panics fails that one request with a typed panic error and
// leaves the worker serving.
func TestPointEndpointPanicContained(t *testing.T) {
	registerSyntheticSweep("pt-panic", 2, func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		if ps.Index == 0 {
			panic("poisoned point")
		}
		return experiments.PointResult{Index: ps.Index, Cycles: 42}, nil
	})
	s, err := New(Config{Workers: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, env := postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-panic", Index: 0})
	if status != http.StatusInternalServerError || env.Error == nil || env.Error.Code != CodePanic {
		t.Fatalf("panicking point: status %d, error %+v", status, env.Error)
	}
	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-panic", Index: 1})
	if status != http.StatusOK || env.Point == nil || env.Point.Cycles != 42 {
		t.Fatalf("worker did not survive the panic: status %d, envelope %+v", status, env)
	}
	if got := s.Metrics().Get(mPointsFailed); got != 1 {
		t.Errorf("points.failed = %d, want 1", got)
	}
}

// TestPointEndpointShedsLoad pins bounded admission: with one execution
// slot and one wait slot, a third concurrent point is refused with 503
// queue_full, and a drained server refuses with 503 shutting_down.
func TestPointEndpointShedsLoad(t *testing.T) {
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	registerSyntheticSweep("pt-shed", 2, func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		running <- struct{}{}
		select {
		case <-gate:
			return experiments.PointResult{Index: ps.Index, Cycles: 1}, nil
		case <-ctx.Done():
			return experiments.PointResult{}, ctx.Err()
		}
	})
	s, err := New(Config{Workers: 1, QueueDepth: 1, Experiments: []experiments.Experiment{echoExperiment("echo")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	results := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct N keeps the two points from answering each other
			// through the cache.
			status, _ := postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-shed", Index: 0, N: i})
			results[i] = status
		}(i)
	}
	<-running // the first point holds the execution slot
	// Wait for the second request to occupy the wait slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.pointAdmitted.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second point never reached admission")
		}
		time.Sleep(time.Millisecond)
	}

	status, env := postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-shed", Index: 1, N: 99})
	if status != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != CodeQueueFull {
		t.Errorf("saturated worker: status %d, error %+v, want 503 queue_full", status, env.Error)
	}
	if got := s.Metrics().Get(mPointsRejected); got != 1 {
		t.Errorf("points.rejected = %d, want 1", got)
	}

	close(gate)
	wg.Wait()
	for i, st := range results {
		if st != http.StatusOK {
			t.Errorf("admitted point %d finished with status %d", i, st)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, env = postPoint(t, ts.URL, "", experiments.PointSpec{Experiment: "pt-shed", Index: 0, N: 1000})
	if status != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != CodeShuttingDown {
		t.Errorf("draining worker: status %d, error %+v, want 503 shutting_down", status, env.Error)
	}
}
