//go:build !race

package server

// raceEnabled reports whether this test binary was built with -race,
// whose instrumentation slows the chaos workloads several-fold; timing
// budgets scale accordingly (see chaosBudget).
const raceEnabled = false
