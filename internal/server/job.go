package server

import (
	"encoding/json"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed        (leader jobs)
//	queued → done | failed                  (coalesced followers, cache hits)
//
// A job cancelled by shutdown finishes failed with the context error.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// job is the server-internal record of one submitted experiment run. All
// mutable fields are guarded by the server mutex; done is closed exactly
// once, when state reaches StateDone or StateFailed.
type job struct {
	id         string
	experiment string
	params     JobParams // fully resolved (defaults filled)
	key        string    // content-addressed cache key of the result

	state     State
	cached    bool // result served from the cache, no simulation ran
	coalesced bool // attached to an identical in-flight job
	errMsg    string
	errCode   string         // typed code classifying errMsg (see errorCode)
	from      *CheckpointRef // set on jobs resumed from a checkpoint
	result    []byte         // rendered JSON result bytes

	created  time.Time
	started  time.Time
	finished time.Time

	// Sweep progress in points, updated live from the experiment pool's
	// goroutines while the job runs (hence atomics, not the mutex): the
	// streaming ?wait path reads them to build keep-alive frames.
	pointsDone  atomic.Int64
	pointsTotal atomic.Int64

	done chan struct{}
}

// progress snapshots the job's live point counts, or nil before the
// sweep has reported anything (jobs whose experiment never parallelizes
// report no point progress at all).
func (j *job) progress() *Progress {
	total := j.pointsTotal.Load()
	if total == 0 {
		return nil
	}
	return &Progress{PointsDone: int(j.pointsDone.Load()), PointsTotal: int(total)}
}

// JobView is a job's client-facing JSON form. ErrorCode and
// FromCheckpoint are current-version additions; the legacy wire format
// strips them (see legacyView).
type JobView struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Params     JobParams       `json:"params"`
	Key        string          `json:"key"`
	State      State           `json:"state"`
	Cached     bool            `json:"cached"`
	Coalesced  bool            `json:"coalesced,omitempty"`
	Error      string          `json:"error,omitempty"`
	ErrorCode  string          `json:"error_code,omitempty"`
	From       *CheckpointRef  `json:"from_checkpoint,omitempty"`
	Created    time.Time       `json:"created"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// view renders the job for clients. Callers must hold the server mutex.
// withResult controls whether the (possibly large) result bytes ride
// along — job listings omit them, single-job GETs include them.
func (j *job) view(withResult bool) JobView {
	v := JobView{
		ID:         j.id,
		Experiment: j.experiment,
		Params:     j.params,
		Key:        j.key,
		State:      j.state,
		Cached:     j.cached,
		Coalesced:  j.coalesced,
		Error:      j.errMsg,
		ErrorCode:  j.errCode,
		From:       j.from,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult && j.state == StateDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}
