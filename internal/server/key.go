package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/cascade"
	"repro/internal/experiments"
	"repro/internal/machine"
)

// keySchema versions the cache-key derivation. Bump it whenever the
// canonical serializations, the experiment drivers, or the simulation
// semantics change in a way that makes previously-cached results stale:
// every existing key becomes unreachable and the cache refills with
// fresh simulations. The golden-hash tests in key_test.go pin the
// current derivation so an accidental change is caught at test time and
// an intentional one forces this constant (and the goldens) to move
// together.
// v2: prefetch wind-down (see internal/interp) changed compiler-prefetch
// machines' simulated results.
const keySchema = "cascade-cache/v2"

// JobParams are the client-tunable knobs of an experiment job, in the
// units clients supply them (the same units as the cascade-sim flags).
// The zero value of a field means "use the registry default" — see
// WithDefaults.
type JobParams struct {
	// Scale is the PARMVR dataset scale factor (1.0 = paper-scale).
	Scale float64 `json:"scale"`
	// ChunkKB is the cascade chunk budget in KB.
	ChunkKB int `json:"chunk_kb"`
	// N is the synthetic-loop / kernel-gallery array length.
	N int `json:"n"`
	// TimeoutMS is the per-job execution deadline in milliseconds; 0
	// means the server default (Config.JobTimeout). The deadline cannot
	// influence a successful job's result bytes, so it is deliberately
	// excluded from the cache key — jobs differing only in timeout
	// share one entry and coalesce with each other.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// DefaultJobParams returns the registry's shared experiment defaults.
func DefaultJobParams() JobParams {
	rc := experiments.DefaultRunConfig()
	return JobParams{Scale: rc.Scale, ChunkKB: rc.ChunkBytes / 1024, N: rc.N}
}

// WithDefaults fills every zero field from the registry defaults, so a
// submitted {"scale": 0.05} means "0.05 scale, default everything else".
// Keys are always derived from fully-resolved parameters: a request that
// spells out a default and one that omits it hash — and cache — the same.
func (p JobParams) WithDefaults() JobParams {
	d := DefaultJobParams()
	if p.Scale == 0 {
		p.Scale = d.Scale
	}
	if p.ChunkKB == 0 {
		p.ChunkKB = d.ChunkKB
	}
	if p.N == 0 {
		p.N = d.N
	}
	return p
}

// Validate rejects parameters no experiment can run.
func (p JobParams) Validate() error {
	if p.Scale <= 0 {
		return fmt.Errorf("params: scale %g (want > 0)", p.Scale)
	}
	if p.ChunkKB <= 0 {
		return fmt.Errorf("params: chunk_kb %d (want > 0)", p.ChunkKB)
	}
	if p.N <= 0 {
		return fmt.Errorf("params: n %d (want > 0)", p.N)
	}
	if p.TimeoutMS < 0 {
		return fmt.Errorf("params: timeout_ms %d (want >= 0)", p.TimeoutMS)
	}
	return nil
}

// RunConfig converts the parameters to the experiment package's run
// configuration.
func (p JobParams) RunConfig() experiments.RunConfig {
	return experiments.RunConfig{
		Scale:      p.Scale,
		ChunkBytes: p.ChunkKB * 1024,
		N:          p.N,
	}
}

// PointKey is the content address of one simulation point: a canonical
// hash of the fully-resolved machine configuration, cascade options, and
// a workload identifier (e.g. "parmvr@scale=1" or a loop name — whatever
// string the caller uses, it must determine the workload's observable
// memory behaviour). Identical semantic configurations hash equal
// however they were built — field order, default-filled versus explicit,
// fast versus reference engine — and any observable change hashes
// different. See machine.Config.CanonicalBytes and
// cascade.Options.CanonicalBytes for what "observable" means.
func PointKey(cfg machine.Config, opts cascade.Options, workload string) (string, error) {
	cb, err := cfg.CanonicalBytes()
	if err != nil {
		return "", fmt.Errorf("point key: machine config: %w", err)
	}
	ob, err := opts.CanonicalBytes()
	if err != nil {
		return "", fmt.Errorf("point key: options: %w", err)
	}
	h := sha256.New()
	io.WriteString(h, keySchema+"\x00point\x00")
	h.Write(cb)
	h.Write([]byte{0})
	h.Write(ob)
	h.Write([]byte{0})
	io.WriteString(h, workload)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// JobKey is the content address of one experiment job: the experiment
// name, the fully-resolved parameters, and the canonical serialization
// of every machine preset plus the default cascade options the
// experiment drivers resolve against. Folding the presets in means a
// refactor that changes a machine's observable configuration (and hence
// its simulated results) invalidates every cached job automatically
// instead of serving stale numbers.
func JobKey(experiment string, p JobParams) (string, error) {
	p = p.WithDefaults()
	p.TimeoutMS = 0 // execution deadline: not observable in the result bytes
	pb, err := canon.JSON(p)
	if err != nil {
		return "", fmt.Errorf("job key: params: %w", err)
	}
	h := sha256.New()
	io.WriteString(h, keySchema+"\x00job\x00")
	io.WriteString(h, experiment)
	h.Write([]byte{0})
	h.Write(pb)
	for _, cfg := range experiments.Machines() {
		cb, err := cfg.CanonicalBytes()
		if err != nil {
			return "", fmt.Errorf("job key: machine %s: %w", cfg.Name, err)
		}
		h.Write([]byte{0})
		h.Write(cb)
	}
	ob, err := cascade.DefaultOptions(cascade.HelperPrefetch, nil).CanonicalBytes()
	if err != nil {
		return "", fmt.Errorf("job key: default options: %w", err)
	}
	h.Write([]byte{0})
	h.Write(ob)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CheckpointKey is the content address of a checkpoint stream: the
// (prefix, tail) pair of the owning job's content address and the capture
// cadence. Jobs whose configurations hash equal share streams — a stream
// captured for one job serves every job with the same key.
func CheckpointKey(jobKey string, everyIters int) string {
	h := sha256.New()
	io.WriteString(h, keySchema+"\x00ckpt\x00")
	io.WriteString(h, jobKey)
	fmt.Fprintf(h, "\x00every=%d", everyIters)
	return hex.EncodeToString(h.Sum(nil))
}

// ResumeKey is the content address of a run resumed from checkpoint k of
// a stream: the stream key is the prefix, the checkpoint index the tail.
// Resumes are deterministic (bit-identical to the uninterrupted run), so
// the result is cacheable and cross-job reusable like any other.
func ResumeKey(checkpointKey string, k int) string {
	h := sha256.New()
	io.WriteString(h, keySchema+"\x00resume\x00")
	io.WriteString(h, checkpointKey)
	fmt.Fprintf(h, "\x00k=%d", k)
	return hex.EncodeToString(h.Sum(nil))
}

// RenderKey derives the cache key for one rendering of a job's result.
// The server stores JSON renderings ("json"); cascade-sim -cache stores
// whatever mode it was asked for, so a CLI -json sweep and the server
// share entries while table/CSV/chart renderings get their own.
func RenderKey(jobKey, mode string) string {
	return jobKey + "-" + mode
}
