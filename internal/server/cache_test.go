package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

func TestCacheMemory(t *testing.T) {
	m := metrics.NewSynced()
	c, err := NewCache("", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache returned a hit")
	}
	if err := c.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q, %v", v, ok)
	}
	snap := m.Snapshot()
	if snap.Get("cache.hits") != 1 || snap.Get("cache.misses") != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", snap.Get("cache.hits"), snap.Get("cache.misses"))
	}
	if snap.Get("cache.entries") != 1 || snap.Get("cache.bytes") != 2 {
		t.Errorf("entries/bytes = %d/%d, want 1/2", snap.Get("cache.entries"), snap.Get("cache.bytes"))
	}
}

// TestCacheDiskPersistence pins the cross-process sharing path: a second
// cache over the same directory — a fresh server, or a cascade-sim -cache
// run — sees the first one's entries, and the disk hit is counted.
func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 1000)
	if err := c1.Put("deadbeef-json", val); err != nil {
		t.Fatal(err)
	}
	// Entries shard by the first two key characters.
	if _, err := os.Stat(filepath.Join(dir, "de", "deadbeef-json")); err != nil {
		t.Fatalf("expected sharded cache file: %v", err)
	}

	m := metrics.NewSynced()
	c2, err := NewCache(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef-json")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("disk entry not shared: ok=%v len=%d", ok, len(got))
	}
	if m.Value("cache.disk_hits") != 1 {
		t.Errorf("cache.disk_hits = %d, want 1", m.Value("cache.disk_hits"))
	}
	// Promoted to memory: a second read must not be a disk hit.
	if _, ok := c2.Get("deadbeef-json"); !ok {
		t.Fatal("promoted entry lost")
	}
	if m.Value("cache.disk_hits") != 1 {
		t.Errorf("promoted entry re-read from disk")
	}
	if c2.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c2.Len())
	}
}

// TestCachePutIdempotent pins that re-storing a key (two processes
// finishing the same point) neither errors nor double-counts.
func TestCachePutIdempotent(t *testing.T) {
	m := metrics.NewSynced()
	c, err := NewCache(t.TempDir(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put("kk", []byte("vv")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Value("cache.entries") != 1 || m.Value("cache.bytes") != 2 {
		t.Errorf("entries/bytes = %d/%d, want 1/2", m.Value("cache.entries"), m.Value("cache.bytes"))
	}
}
