package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

func TestCacheMemory(t *testing.T) {
	m := metrics.NewSynced()
	c, err := NewCache("", m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache returned a hit")
	}
	if err := c.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get("k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q, %v", v, ok)
	}
	snap := m.Snapshot()
	if snap.Get("cache.hits") != 1 || snap.Get("cache.misses") != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", snap.Get("cache.hits"), snap.Get("cache.misses"))
	}
	if snap.Get("cache.entries") != 1 || snap.Get("cache.bytes") != 2 {
		t.Errorf("entries/bytes = %d/%d, want 1/2", snap.Get("cache.entries"), snap.Get("cache.bytes"))
	}
}

// TestCacheDiskPersistence pins the cross-process sharing path: a second
// cache over the same directory — a fresh server, or a cascade-sim -cache
// run — sees the first one's entries, and the disk hit is counted.
func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 1000)
	if err := c1.Put("deadbeef-json", val); err != nil {
		t.Fatal(err)
	}
	// Entries shard by the first two key characters.
	if _, err := os.Stat(filepath.Join(dir, "de", "deadbeef-json")); err != nil {
		t.Fatalf("expected sharded cache file: %v", err)
	}

	m := metrics.NewSynced()
	c2, err := NewCache(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef-json")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("disk entry not shared: ok=%v len=%d", ok, len(got))
	}
	if m.Value("cache.disk_hits") != 1 {
		t.Errorf("cache.disk_hits = %d, want 1", m.Value("cache.disk_hits"))
	}
	// Promoted to memory: a second read must not be a disk hit.
	if _, ok := c2.Get("deadbeef-json"); !ok {
		t.Fatal("promoted entry lost")
	}
	if m.Value("cache.disk_hits") != 1 {
		t.Errorf("promoted entry re-read from disk")
	}
	if c2.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c2.Len())
	}
}

// TestCacheEntryFraming pins the on-disk format: versioned header,
// payload checksum, payload — and that decode round-trips.
func TestCacheEntryFraming(t *testing.T) {
	val := []byte("the payload")
	enc := encodeEntry(val)
	if !bytes.HasPrefix(enc, []byte(entryMagic)) {
		t.Fatalf("entry does not start with %q", entryMagic)
	}
	dec, err := decodeEntry(enc)
	if err != nil || !bytes.Equal(dec, val) {
		t.Fatalf("decode = %q, %v", dec, err)
	}
	for name, raw := range map[string][]byte{
		"empty":         nil,
		"no header":     []byte("raw pre-checksum bytes"),
		"truncated":     enc[:len(entryMagic)+10],
		"flipped byte":  flipLast(enc),
		"flipped hdr":   flipAt(enc, len(entryMagic)),
		"extra payload": append(append([]byte{}, enc...), 'x'),
	} {
		if _, err := decodeEntry(raw); err == nil {
			t.Errorf("%s: decodeEntry accepted", name)
		}
	}
}

func flipLast(b []byte) []byte { return flipAt(b, len(b)-1) }

func flipAt(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xff
	return out
}

// TestCacheCorruptQuarantine pins the self-healing path: a corrupted
// disk entry is renamed to <key>.corrupt, counted, read as a miss, and
// the rewritten entry serves normally afterwards.
func TestCacheCorruptQuarantine(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("precious result bytes")
	if err := c1.Put("cafef00d-json", val); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ca", "cafef00d-json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // bit rot in the payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m := metrics.NewSynced()
	c2, err := NewCache(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("cafef00d-json"); ok {
		t.Fatal("corrupt entry served")
	}
	if m.Value("cache.corrupt") != 1 {
		t.Errorf("cache.corrupt = %d, want 1", m.Value("cache.corrupt"))
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("entry not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("original path still present: %v", err)
	}
	// Recompute-and-rewrite: the same key stores and serves again.
	if err := c2.Put("cafef00d-json", val); err != nil {
		t.Fatal(err)
	}
	c3, err := NewCache(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c3.Get("cafef00d-json")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("rewritten entry = %q, %v", got, ok)
	}
}

// TestCacheStaleFormatQuarantined pins migration behaviour: a
// pre-checksum entry (raw payload, no header) is quarantined rather
// than served, so format bumps self-heal.
func TestCacheStaleFormatQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ab", "abcd-json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("old raw-format entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := metrics.NewSynced()
	c, err := NewCache(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("abcd-json"); ok {
		t.Fatal("stale-format entry served")
	}
	if m.Value("cache.corrupt") != 1 {
		t.Errorf("cache.corrupt = %d, want 1", m.Value("cache.corrupt"))
	}
}

// TestCacheReadErrorDistinguished pins the satellite fix: a read
// failure that is not fs.ErrNotExist is a miss that counts in
// cache.read_errors and degrades Healthy(); a plain absent entry
// counts in neither.
func TestCacheReadErrorDistinguished(t *testing.T) {
	dir := t.TempDir()
	m := metrics.NewSynced()
	c, err := NewCache(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("absent-json"); ok {
		t.Fatal("absent key hit")
	}
	if m.Value("cache.read_errors") != 0 {
		t.Errorf("not-exist counted as read error")
	}
	if !c.Healthy() {
		t.Error("not-exist degraded health")
	}

	// A real I/O error: the entry path is a directory, so ReadFile fails
	// with something other than not-exist.
	path := filepath.Join(dir, "de", "deadbeef-json")
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("deadbeef-json"); ok {
		t.Fatal("directory entry hit")
	}
	if m.Value("cache.read_errors") != 1 {
		t.Errorf("cache.read_errors = %d, want 1", m.Value("cache.read_errors"))
	}
	if c.Healthy() {
		t.Error("read error did not degrade health")
	}
}

// TestCacheInjectedIOFaults pins the fault sites the chaos suite leans
// on: injected read errors count and degrade, injected write errors
// leave the entry memory-readable, and health recovers on the next
// clean disk operation.
func TestCacheInjectedIOFaults(t *testing.T) {
	dir := t.TempDir()
	seed := NewCacheMust(t, dir, nil)
	if err := seed.Put("feedface-json", []byte("stored")); err != nil {
		t.Fatal(err)
	}

	m := metrics.NewSynced()
	c := NewCacheMust(t, dir, m)
	inj := faults.New(11)
	inj.Arm(SiteCacheRead, faults.Trigger{OnCall: 1})
	inj.Arm(SiteCacheWrite, faults.Trigger{OnCall: 1})
	c.WithFaults(inj)

	if _, ok := c.Get("feedface-json"); ok {
		t.Fatal("injected read error still hit")
	}
	if m.Value("cache.read_errors") != 1 || c.Healthy() {
		t.Errorf("read fault: read_errors=%d healthy=%v", m.Value("cache.read_errors"), c.Healthy())
	}

	err := c.Put("0badc0de-json", []byte("degraded"))
	if err == nil || !errors.Is(err, faults.ErrInjected) || !strings.Contains(err.Error(), SiteCacheWrite) {
		t.Fatalf("injected write error = %v", err)
	}
	if m.Value("cache.write_errors") != 1 {
		t.Errorf("cache.write_errors = %d, want 1", m.Value("cache.write_errors"))
	}
	if v, ok := c.Get("0badc0de-json"); !ok || string(v) != "degraded" {
		t.Error("failed write lost the in-memory copy")
	}
	// Sites fire once each: the next disk round-trip restores health.
	if err := c.Put("00c0ffee-json", []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if !c.Healthy() {
		t.Error("health did not recover after a clean write")
	}
}

// NewCacheMust is the test shorthand for NewCache.
func NewCacheMust(t *testing.T, dir string, m *metrics.Synced) *Cache {
	t.Helper()
	c, err := NewCache(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCachePutIdempotent pins that re-storing a key (two processes
// finishing the same point) neither errors nor double-counts.
func TestCachePutIdempotent(t *testing.T) {
	m := metrics.NewSynced()
	c, err := NewCache(t.TempDir(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put("kk", []byte("vv")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Value("cache.entries") != 1 || m.Value("cache.bytes") != 2 {
		t.Errorf("entries/bytes = %d/%d, want 1/2", m.Value("cache.entries"), m.Value("cache.bytes"))
	}
}

// TestPurgeQuarantine pins the startup sweep over stale quarantined
// entries: .corrupt files older than the TTL are removed and counted
// under cache.quarantine_purged; fresh quarantines — still useful for
// forensics — and live cache entries survive untouched.
func TestPurgeQuarantine(t *testing.T) {
	dir := t.TempDir()
	m := metrics.NewSynced()
	c, err := NewCache(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("aalive-json", []byte("good")); err != nil {
		t.Fatal(err)
	}

	shard := filepath.Join(dir, "qq")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(shard, "qqold-json.corrupt")
	fresh := filepath.Join(shard, "qqnew-json.corrupt")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("corrupt bytes"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if got := c.PurgeQuarantine(DefaultQuarantineTTL); got != 1 {
		t.Fatalf("PurgeQuarantine = %d, want 1", got)
	}
	if m.Value("cache.quarantine_purged") != 1 {
		t.Errorf("cache.quarantine_purged = %d, want 1", m.Value("cache.quarantine_purged"))
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale quarantine survived the sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh quarantine was purged early: %v", err)
	}
	if v, ok := c.Get("aalive-json"); !ok || string(v) != "good" {
		t.Errorf("live entry lost: %q, %v", v, ok)
	}

	// Disabled sweeps are no-ops, as is a memory-only cache.
	if got := c.PurgeQuarantine(-1); got != 0 {
		t.Errorf("PurgeQuarantine(-1) = %d, want 0", got)
	}
	mem, err := NewCache("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.PurgeQuarantine(DefaultQuarantineTTL); got != 0 {
		t.Errorf("memory-only PurgeQuarantine = %d, want 0", got)
	}
}
