package loopir

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
)

func TestAffine(t *testing.T) {
	a := Affine{Scale: 2, Offset: 3}
	if a.At(0) != 3 || a.At(5) != 13 {
		t.Errorf("Affine.At wrong: %d, %d", a.At(0), a.At(5))
	}
	if s, ok := a.StrideElems(); !ok || s != 2 {
		t.Errorf("StrideElems = %d,%v", s, ok)
	}
	if tbl, _ := a.Table(0); tbl != nil {
		t.Error("affine should need no table")
	}
}

func TestAffineString(t *testing.T) {
	cases := []struct {
		a    Affine
		want string
	}{
		{Affine{0, 7}, "7"},
		{Affine{1, 0}, "i"},
		{Affine{3, 0}, "3*i"},
		{Affine{1, 2}, "i+2"},
		{Affine{2, 5}, "2*i+5"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestIdentAndStride(t *testing.T) {
	if Ident.At(42) != 42 {
		t.Error("Ident is not identity")
	}
	if Stride(8).At(3) != 24 {
		t.Error("Stride(8).At(3) != 24")
	}
}

func TestIndirect(t *testing.T) {
	s := memsim.NewSpace()
	ij := s.Alloc("IJ", 10, 4, 4)
	ij.Fill(func(i int) float64 { return float64(9 - i) }) // reversal permutation
	ind := Indirect{Tbl: ij, Entry: Ident}
	if got := ind.At(3); got != 6 {
		t.Errorf("Indirect.At(3) = %d, want 6", got)
	}
	if tbl, pos := ind.Table(3); tbl != ij || pos != 3 {
		t.Errorf("Table = %v,%d", tbl, pos)
	}
	if _, ok := ind.StrideElems(); ok {
		t.Error("indirect stride should be unknown")
	}
	if got := ind.String(); got != "IJ(i)" {
		t.Errorf("String = %q", got)
	}
}

// makeLoop builds the paper's synthetic loop X(IJ(i)) = X(IJ(i))+A(i)+B(i).
func makeLoop(t testing.TB, n int) (*Loop, *memsim.Array) {
	s := memsim.NewSpace()
	x := s.Alloc("X", n, 4, 4)
	ij := s.Alloc("IJ", n, 4, 4)
	a := s.Alloc("A", n, 4, 4)
	b := s.Alloc("B", n, 4, 4)
	ij.Fill(func(i int) float64 { return float64(i) })
	a.Fill(func(i int) float64 { return float64(i) })
	b.Fill(func(i int) float64 { return float64(2 * i) })
	xref := Ref{Array: x, Index: Indirect{Tbl: ij, Entry: Ident}}
	l := &Loop{
		Name:  "synthetic",
		Iters: n,
		RO: []Ref{
			{Array: a, Index: Ident},
			{Array: b, Index: Ident},
		},
		RW:          []Ref{xref},
		Writes:      []Ref{xref},
		PreCycles:   1,
		FinalCycles: 1,
		Pre:         func(_ int, ro []float64) []float64 { return []float64{ro[0] + ro[1]} },
		NPre:        1,
		Final: func(_ int, pre, rw []float64) []float64 {
			return []float64{rw[0] + pre[0]}
		},
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return l, x
}

func TestValidateOK(t *testing.T) {
	l, _ := makeLoop(t, 100)
	if err := l.CheckBounds(); err != nil {
		t.Errorf("CheckBounds: %v", err)
	}
	if l.NPre != 1 {
		t.Errorf("NPre = %d", l.NPre)
	}
}

func TestValidateDefaultsNPre(t *testing.T) {
	s := memsim.NewSpace()
	a := s.Alloc("A", 10, 8, 8)
	c := s.Alloc("C", 10, 8, 8)
	l := &Loop{
		Name:   "copy",
		Iters:  10,
		RO:     []Ref{{Array: a, Index: Ident}},
		Writes: []Ref{{Array: c, Index: Ident}},
		Final:  func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.NPre != 1 {
		t.Errorf("NPre defaulted to %d, want 1", l.NPre)
	}
}

func TestValidateErrors(t *testing.T) {
	s := memsim.NewSpace()
	a := s.Alloc("A", 10, 8, 8)
	c := s.Alloc("C", 10, 8, 8)
	fin := func(_ int, pre, _ []float64) []float64 { return pre }
	cases := []struct {
		name string
		l    *Loop
		want string
	}{
		{"no name", &Loop{Iters: 1, Final: fin}, "no name"},
		{"no iters", &Loop{Name: "x", Final: fin}, "Iters"},
		{"no final", &Loop{Name: "x", Iters: 1}, "Final"},
		{"neg cycles", &Loop{Name: "x", Iters: 1, Final: fin, PreCycles: -1}, "negative"},
		{"pre without npre", &Loop{Name: "x", Iters: 1, Final: fin,
			Pre: func(int, []float64) []float64 { return nil }}, "NPre"},
		{"nil ref", &Loop{Name: "x", Iters: 1, Final: fin, RO: []Ref{{}}}, "nil"},
		{"ro aliases write", &Loop{Name: "x", Iters: 1, Final: fin,
			RO:     []Ref{{Array: c, Index: Ident}},
			Writes: []Ref{{Array: c, Index: Ident}}}, "aliases"},
		{"bad npre no pre", &Loop{Name: "x", Iters: 1, Final: fin,
			RO: []Ref{{Array: a, Index: Ident}}, NPre: 3}, "NPre"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.l.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Validate = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestValidateIndexTableAliasing(t *testing.T) {
	s := memsim.NewSpace()
	x := s.Alloc("X", 10, 8, 8)
	x.Fill(func(i int) float64 { return float64(i) })
	// Index table that is itself written: illegal.
	l := &Loop{
		Name:   "selfidx",
		Iters:  10,
		Writes: []Ref{{Array: x, Index: Indirect{Tbl: x, Entry: Ident}}},
		Final:  func(int, []float64, []float64) []float64 { return []float64{0} },
	}
	if err := l.Validate(); err == nil {
		t.Error("index table aliasing written array should fail validation")
	}
}

func TestCheckBoundsCatchesOverrun(t *testing.T) {
	s := memsim.NewSpace()
	a := s.Alloc("A", 10, 8, 8)
	c := s.Alloc("C", 10, 8, 8)
	l := &Loop{
		Name:   "overrun",
		Iters:  11, // one too many
		RO:     []Ref{{Array: a, Index: Ident}},
		Writes: []Ref{{Array: c, Index: Ident}},
		Final:  func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckBounds(); err == nil {
		t.Error("CheckBounds missed an out-of-range index")
	}
}

func TestCheckBoundsCatchesBadTableEntry(t *testing.T) {
	s := memsim.NewSpace()
	x := s.Alloc("X", 10, 8, 8)
	ij := s.Alloc("IJ", 10, 4, 4)
	ij.FillConst(99) // points far outside X
	l := &Loop{
		Name:   "wild",
		Iters:  10,
		Writes: []Ref{{Array: x, Index: Indirect{Tbl: ij, Entry: Ident}}},
		Final:  func(int, []float64, []float64) []float64 { return []float64{0} },
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckBounds(); err == nil {
		t.Error("CheckBounds missed a wild indirect index")
	}
}

func TestBytesPerIter(t *testing.T) {
	l, _ := makeLoop(t, 100)
	// RO: A(4) + B(4); RW: X(4) + IJ(4); Writes: X(4) + IJ(4) = 24.
	if got := l.BytesPerIter(); got != 24 {
		t.Errorf("BytesPerIter = %d, want 24", got)
	}
}

func TestArraysAndFootprint(t *testing.T) {
	l, _ := makeLoop(t, 100)
	arrays := l.Arrays()
	if len(arrays) != 4 { // A, B, X, IJ
		t.Errorf("Arrays = %d, want 4 (%v)", len(arrays), arrays)
	}
	if got := l.FootprintBytes(); got != 4*100*4 {
		t.Errorf("FootprintBytes = %d, want 1600", got)
	}
	ranges := l.AddrRanges()
	if len(ranges) != 4 {
		t.Fatalf("AddrRanges = %d", len(ranges))
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Base < ranges[i-1].Base {
			t.Error("AddrRanges not sorted")
		}
	}
}

func TestRefsAndString(t *testing.T) {
	l, _ := makeLoop(t, 10)
	if got := len(l.Refs()); got != 4 {
		t.Errorf("Refs = %d, want 4", got)
	}
	if !strings.Contains(l.String(), "synthetic") {
		t.Errorf("String = %q", l.String())
	}
	if got := l.RW[0].String(); got != "X(IJ(i))" {
		t.Errorf("Ref.String = %q", got)
	}
}

func TestRefAddr(t *testing.T) {
	l, x := makeLoop(t, 10)
	if got := l.RW[0].Addr(3); got != x.Addr(3) {
		t.Errorf("Addr = %s, want %s (identity IJ)", got, x.Addr(3))
	}
}

func TestSnapshotRestoreWrites(t *testing.T) {
	l, x := makeLoop(t, 10)
	x.FillConst(5)
	snap := l.SnapshotWrites()
	x.Store(3, -1)
	l.RestoreWrites(snap)
	if x.Load(3) != 5 {
		t.Errorf("restore failed: %v", x.Load(3))
	}
}

// Property: for any affine parameters, At is consistent with StrideElems.
func TestAffineStrideConsistency(t *testing.T) {
	f := func(scale, offset int8, i uint8) bool {
		a := Affine{Scale: int(scale), Offset: int(offset)}
		s, ok := a.StrideElems()
		return ok && a.At(int(i)+1)-a.At(int(i)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
