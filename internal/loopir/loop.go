package loopir

import (
	"fmt"

	"repro/internal/memsim"
)

// Ref is one memory reference of the loop body: an element of Array
// selected by Index each iteration.
type Ref struct {
	Array *memsim.Array
	Index IndexExpr
}

// Addr returns the simulated address referenced at iteration i.
func (r Ref) Addr(i int) memsim.Addr { return r.Array.Addr(r.Index.At(i)) }

// String renders the reference, e.g. "X(IJ(i))".
func (r Ref) String() string {
	return fmt.Sprintf("%s(%s)", r.Array.Name(), r.Index.String())
}

// Loop is one unparallelized loop. Iterations are normalized to
// 0..Iters-1; the original source-level step is folded into the index
// expressions (a `do i = 1, n, k` loop becomes Iters = n/k with Scale k).
//
// References are split by restructurability:
//
//   - RO: reads of data written nowhere in the loop. These (and their
//     index arrays) may be streamed into a sequential buffer by a
//     restructuring helper.
//   - RW: reads of data the loop also writes. They must be performed from
//     their home locations during the execution phase.
//   - Writes: stores.
//
// The iteration's value semantics are
//
//	pre := Pre(i, roValues)      // PreCycles of compute; only RO inputs
//	out := Final(i, pre, rwValues) // FinalCycles of compute
//	Writes[j] <- out[j]
//
// Pre may be nil, meaning identity (pre == roValues, PreCycles still
// charged during whichever phase performs the RO reads). The split is what
// lets a restructuring helper perform the read-only part of the
// computation ahead of time, as §2.1 of the paper describes.
type Loop struct {
	Name  string
	Iters int

	RO     []Ref
	RW     []Ref
	Writes []Ref

	PreCycles   int64
	FinalCycles int64

	// NoCompilerPrefetch marks a loop the machine's compiler declines to
	// insert software prefetches for (when the machine models them at
	// all). Compilers prefetch only loops whose locality they can
	// analyze; a loop dominated by an opaque indirect store — like the
	// paper's synthetic X(IJ(i)) loop — defeats that analysis.
	NoCompilerPrefetch bool

	// NPre is the number of values Pre produces. When Pre is nil it must
	// be len(RO) (or zero, which Validate normalizes to len(RO)).
	NPre  int
	Pre   func(i int, ro []float64) []float64
	Final func(i int, pre, rw []float64) []float64

	// NewPre and NewFinal, when set, construct fresh instances of the
	// Pre/Final closures. The hot-loop closure idiom reuses one result
	// slot across iterations (see internal/wave5), which is safe on a
	// single goroutine but races when several simulated processors
	// execute the loop concurrently. A loop that provides factories lets
	// each execution context (interp.Runner) instantiate private
	// closures, making the loop body reentrant; the parallel engine only
	// admits loops for which Reentrant reports true. Validate
	// materializes Pre/Final from the factories when unset, so purely
	// serial consumers may provide only the factories.
	NewPre   func() func(i int, ro []float64) []float64
	NewFinal func() func(i int, pre, rw []float64) []float64
}

// Reentrant reports whether independent per-goroutine instances of the
// loop's value closures can be built: Final must come from a factory, and
// Pre must either be absent (identity) or come from one too. Loops whose
// closures were provided only as shared instances are conservatively
// treated as non-reentrant even if they happen to be stateless.
func (l *Loop) Reentrant() bool {
	return l.NewFinal != nil && (l.Pre == nil || l.NewPre != nil)
}

// Validate checks structural invariants cheaply (O(refs)). Use CheckBounds
// for the O(Iters) index-range scan.
func (l *Loop) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("loopir: loop has no name")
	}
	if l.Iters <= 0 {
		return fmt.Errorf("loopir: loop %s: Iters = %d", l.Name, l.Iters)
	}
	// Materialize the shared closure instances from the factories when a
	// loop provides only the latter (the instance the serial paths use is
	// then simply the first one built).
	if l.Pre == nil && l.NewPre != nil {
		l.Pre = l.NewPre()
	}
	if l.Final == nil && l.NewFinal != nil {
		l.Final = l.NewFinal()
	}
	if l.Final == nil {
		return fmt.Errorf("loopir: loop %s: Final is nil", l.Name)
	}
	if l.PreCycles < 0 || l.FinalCycles < 0 {
		return fmt.Errorf("loopir: loop %s: negative compute cycles", l.Name)
	}
	if l.Pre == nil {
		if l.NPre != 0 && l.NPre != len(l.RO) {
			return fmt.Errorf("loopir: loop %s: NPre = %d without Pre; want 0 or %d",
				l.Name, l.NPre, len(l.RO))
		}
		l.NPre = len(l.RO)
	} else if l.NPre <= 0 {
		return fmt.Errorf("loopir: loop %s: Pre set but NPre = %d", l.Name, l.NPre)
	}
	for _, r := range append(append([]Ref{}, l.RO...), append(l.RW, l.Writes...)...) {
		if r.Array == nil || r.Index == nil {
			return fmt.Errorf("loopir: loop %s: ref with nil array or index", l.Name)
		}
	}
	// Read-only operands (and all index tables) must not alias written data.
	written := make(map[*memsim.Array]bool)
	for _, w := range l.Writes {
		written[w.Array] = true
	}
	checkRO := func(a *memsim.Array, what string) error {
		for w := range written {
			if a == w || a.Overlaps(w) {
				return fmt.Errorf("loopir: loop %s: %s %s aliases written array %s",
					l.Name, what, a.Name(), w.Name())
			}
		}
		return nil
	}
	for _, r := range l.RO {
		if err := checkRO(r.Array, "read-only operand"); err != nil {
			return err
		}
	}
	for _, r := range append(append(append([]Ref{}, l.RO...), l.RW...), l.Writes...) {
		if tbl, _ := r.Index.Table(0); tbl != nil {
			if err := checkRO(tbl, "index array"); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckBounds scans every iteration and verifies all element indices are
// in range. It is O(Iters x refs) and intended for workload construction
// and tests.
func (l *Loop) CheckBounds() error {
	for _, g := range [][]Ref{l.RO, l.RW, l.Writes} {
		for _, r := range g {
			if err := l.checkRefBounds(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// affineInRange reports whether Scale*i + Offset stays inside [0, n) for
// every i in [0, iters). An affine sequence is monotonic, so checking its
// two endpoints suffices.
func affineInRange(a Affine, iters, n int) bool {
	lo, hi := a.Offset, a.Scale*(iters-1)+a.Offset
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo >= 0 && hi < n
}

// checkRefBounds verifies one reference over the whole iteration range.
// Known index shapes are checked without the per-iteration interface
// dispatch of the generic scan: affine indices by their endpoints alone,
// indirect ones by an endpoint check of the table positions plus a tight
// scan of the table values. On failure it falls back to the generic scan,
// which reports the first offending iteration exactly as it always has.
func (l *Loop) checkRefBounds(r Ref) error {
	if l.Iters <= 0 {
		return nil
	}
	switch ix := r.Index.(type) {
	case Affine:
		if affineInRange(ix, l.Iters, r.Array.Len()) {
			return nil
		}
	case Indirect:
		if affineInRange(ix.Entry, l.Iters, ix.Tbl.Len()) {
			ok, n := true, r.Array.Len()
			for i, pos := 0, ix.Entry.Offset; i < l.Iters; i, pos = i+1, pos+ix.Entry.Scale {
				if idx := ix.Tbl.LoadInt(pos); idx < 0 || idx >= n {
					ok = false
					break
				}
			}
			if ok {
				return nil
			}
		}
	default:
		// Unknown index shape: only the generic scan below applies.
	}
	return l.scanRefBounds(r)
}

// scanRefBounds is the generic per-iteration bounds scan, used for index
// shapes the endpoint analysis does not know and to produce the error for
// references the analysis rejected.
func (l *Loop) scanRefBounds(r Ref) error {
	for i := 0; i < l.Iters; i++ {
		if tbl, pos := r.Index.Table(i); tbl != nil {
			if pos < 0 || pos >= tbl.Len() {
				return fmt.Errorf("loopir: loop %s: %s: index-table position %d out of [0,%d) at i=%d",
					l.Name, r, pos, tbl.Len(), i)
			}
		}
		idx := r.Index.At(i)
		if idx < 0 || idx >= r.Array.Len() {
			return fmt.Errorf("loopir: loop %s: %s: element %d out of [0,%d) at i=%d",
				l.Name, r, idx, r.Array.Len(), i)
		}
	}
	return nil
}

// Refs returns all references (RO, RW, Writes) in a fresh slice.
func (l *Loop) Refs() []Ref {
	out := make([]Ref, 0, len(l.RO)+len(l.RW)+len(l.Writes))
	out = append(out, l.RO...)
	out = append(out, l.RW...)
	out = append(out, l.Writes...)
	return out
}

// String summarizes the loop.
func (l *Loop) String() string {
	return fmt.Sprintf("%s{%d iters, %d ro, %d rw, %d writes, %d+%d cy}",
		l.Name, l.Iters, len(l.RO), len(l.RW), len(l.Writes), l.PreCycles, l.FinalCycles)
}
