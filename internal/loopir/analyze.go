package loopir

import (
	"sort"

	"repro/internal/memsim"
)

// BytesPerIter estimates the bytes of data one iteration touches: every
// operand element plus every index-table entry needed to address it. This
// is the estimate the paper's chunker divides the chunk byte budget by
// (§2.2: "We choose the chunk size based on an estimate of the number of
// bytes of data that each iteration of the execution loop will touch").
func (l *Loop) BytesPerIter() int {
	total := 0
	for _, r := range l.Refs() {
		total += r.Array.ElemSize()
		if tbl, _ := r.Index.Table(0); tbl != nil {
			total += tbl.ElemSize()
		}
	}
	if total == 0 {
		total = 1
	}
	return total
}

// BufSlotsPerIter is an upper bound on the sequential-buffer values one
// restructured iteration produces: the read-only operand values (NPre if
// the helper precomputes, len(RO) if it stores them raw — the bound covers
// both modes) plus one index value per indirect RW/Write reference (index
// arrays are read-only data and are packed into the buffer too, so the
// execution phase never touches them). Duplicate index reads within an
// iteration are deduplicated at run time, so the actual count may be
// lower.
func (l *Loop) BufSlotsPerIter() int {
	slots := l.NPre
	if len(l.RO) > slots {
		slots = len(l.RO)
	}
	for _, r := range append(append([]Ref{}, l.RW...), l.Writes...) {
		if tbl, _ := r.Index.Table(0); tbl != nil {
			slots++
		}
	}
	return slots
}

// Arrays returns every distinct array the loop references (operands and
// index tables), in first-use order.
func (l *Loop) Arrays() []*memsim.Array {
	var out []*memsim.Array
	seen := make(map[*memsim.Array]bool)
	add := func(a *memsim.Array) {
		if a != nil && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, r := range l.Refs() {
		add(r.Array)
		if tbl, _ := r.Index.Table(0); tbl != nil {
			add(tbl)
		}
	}
	return out
}

// FootprintBytes returns the total simulated footprint of the loop's
// arrays (the paper's per-loop "amount of data accessed").
func (l *Loop) FootprintBytes() int {
	total := 0
	for _, a := range l.Arrays() {
		total += a.SizeBytes()
	}
	return total
}

// AddrRanges returns the address ranges of the loop's arrays, sorted by
// base address, for cache pre-distribution.
func (l *Loop) AddrRanges() []AddrRange {
	arrays := l.Arrays()
	out := make([]AddrRange, 0, len(arrays))
	for _, a := range arrays {
		out = append(out, AddrRange{Base: a.Base(), Bytes: a.SizeBytes()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// AddrRange mirrors machine.AddrRange without importing the machine
// package (loopir sits below machine in the layering). The cascade runner
// converts between the two.
type AddrRange struct {
	Base  memsim.Addr
	Bytes int
}

// SnapshotWrites captures the current values of all written arrays, for
// before/after result comparison across execution strategies.
func (l *Loop) SnapshotWrites() map[string][]float64 {
	out := make(map[string][]float64)
	for _, w := range l.Writes {
		if _, ok := out[w.Array.Name()]; !ok {
			out[w.Array.Name()] = w.Array.Snapshot()
		}
	}
	return out
}

// RestoreWrites restores array values captured by SnapshotWrites, so the
// same loop can be re-run from identical initial state.
func (l *Loop) RestoreWrites(snap map[string][]float64) {
	for _, w := range l.Writes {
		if s, ok := snap[w.Array.Name()]; ok {
			w.Array.Restore(s)
		}
	}
}
