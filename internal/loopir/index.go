// Package loopir is the intermediate representation for the sequential
// loops that cascaded execution targets.
//
// A Loop describes, per iteration: which array elements are read (split
// into read-only and read-write operands, because only read-only data may
// be restructured into the sequential buffer), which are written, how much
// computation the iteration performs, and — crucially for correctness
// checking — the actual value function of the iteration. Every execution
// strategy (sequential, cascaded with prefetching, cascaded with
// restructuring) runs the same value function over the same backing
// arrays, so results can be compared bit-for-bit.
package loopir

import (
	"fmt"

	"repro/internal/memsim"
)

// IndexExpr maps an iteration number to an element index within an array.
// Implementations also expose the memory reads required to *compute* the
// index (an indirect reference must first load its index-array entry), and
// whether their stride is statically known (which determines eligibility
// for compiler-inserted prefetching).
type IndexExpr interface {
	// At returns the element index for iteration i. For an indirect
	// expression this consults the index array's current values.
	At(i int) int
	// Table returns the index array read to evaluate the expression, and
	// the position read within it, or (nil, 0) if no memory read is
	// needed. The table read itself always has a statically known stride.
	Table(i int) (*memsim.Array, int)
	// StrideElems returns the per-iteration stride in elements if it is
	// statically known (affine), with ok=false for data-dependent indices.
	StrideElems() (stride int, ok bool)
	// String renders the expression in loop-nest notation, e.g. "2*i+1"
	// or "IJ(i)".
	String() string
}

// Affine is the index expression Scale*i + Offset.
type Affine struct {
	Scale, Offset int
}

// At implements IndexExpr.
func (a Affine) At(i int) int { return a.Scale*i + a.Offset }

// Table implements IndexExpr: affine indices need no memory read.
func (a Affine) Table(int) (*memsim.Array, int) { return nil, 0 }

// StrideElems implements IndexExpr.
func (a Affine) StrideElems() (int, bool) { return a.Scale, true }

// String implements IndexExpr.
func (a Affine) String() string {
	switch {
	case a.Scale == 0:
		return fmt.Sprintf("%d", a.Offset)
	case a.Scale == 1 && a.Offset == 0:
		return "i"
	case a.Offset == 0:
		return fmt.Sprintf("%d*i", a.Scale)
	case a.Scale == 1:
		return fmt.Sprintf("i+%d", a.Offset)
	default:
		return fmt.Sprintf("%d*i+%d", a.Scale, a.Offset)
	}
}

// Ident is the identity index expression i.
var Ident = Affine{Scale: 1}

// Stride returns the affine expression k*i.
func Stride(k int) Affine { return Affine{Scale: k} }

// Indirect is the index expression Tbl(Entry(i)): the value of the index
// array at an affine position. It models gather/scatter references such as
// X(IJ(i)).
type Indirect struct {
	Tbl   *memsim.Array
	Entry Affine
}

// At implements IndexExpr by loading the index array.
func (ind Indirect) At(i int) int { return ind.Tbl.LoadInt(ind.Entry.At(i)) }

// Table implements IndexExpr.
func (ind Indirect) Table(i int) (*memsim.Array, int) { return ind.Tbl, ind.Entry.At(i) }

// StrideElems implements IndexExpr: data-dependent, unknown statically.
func (ind Indirect) StrideElems() (int, bool) { return 0, false }

// String implements IndexExpr.
func (ind Indirect) String() string {
	return fmt.Sprintf("%s(%s)", ind.Tbl.Name(), ind.Entry.String())
}
