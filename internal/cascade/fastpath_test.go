package cascade_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cascade"
	"repro/internal/gallery"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/wave5"
)

// fastpathVariant is one configuration point of the differential matrix:
// the base machine plus a transform applied to the fast-engine twin only
// (the reference twin never coalesces, so knobs that exist only on the
// fast side — like CoalesceOff — go through the transform).
type fastpathVariant struct {
	name string
	cfg  machine.Config
	fast func(machine.Config) machine.Config
}

// fastpathConfigs returns both paper machines at reduced processor counts
// (enough to exercise coherence and the cascade timeline without making
// the differential sweep slow), plus a victim-buffer variant (runs must
// stay legal while a victim buffer shuffles lines below the L1) and a
// coalescing-off variant (the compiled fast path alone, run batching
// disabled, must still match the interpreter).
func fastpathConfigs() []fastpathVariant {
	fast := func(cfg machine.Config) machine.Config { return cfg.WithEngine(machine.EngineFast) }
	victim := machine.PentiumPro(4).WithVictim(16, 2)
	return []fastpathVariant{
		{machine.PentiumPro(4).Name, machine.PentiumPro(4), fast},
		{machine.R10000(4).Name, machine.R10000(4), fast},
		{victim.Name + "-victim", victim, fast},
		{machine.PentiumPro(4).Name + "-nocoalesce", machine.PentiumPro(4),
			func(cfg machine.Config) machine.Config {
				return cfg.WithEngine(machine.EngineFast).WithCoalesce(machine.CoalesceOff)
			}},
	}
}

// runMode is one execution mode of the differential matrix.
type runMode struct {
	name string
	run  func(cfg machine.Config, space *memsim.Space, l *loopir.Loop) (cascade.Result, error)
}

func runModes(chunkBytes int) []runMode {
	cascaded := func(h cascade.Helper) func(machine.Config, *memsim.Space, *loopir.Loop) (cascade.Result, error) {
		return func(cfg machine.Config, space *memsim.Space, l *loopir.Loop) (cascade.Result, error) {
			m, err := machine.New(cfg)
			if err != nil {
				return cascade.Result{}, err
			}
			opts, err := cascade.NewOptions(
				cascade.WithHelper(h),
				cascade.WithSpace(space),
				cascade.WithChunkBytes(chunkBytes),
			)
			if err != nil {
				return cascade.Result{}, err
			}
			return cascade.Run(m, l, opts)
		}
	}
	// The parallel-engine modes turn the machine's Parallel knob on and
	// disable PriorParallel so the engine engages; on the reference twin
	// the knob is inert (ParallelEnabled requires the fast engine), so
	// these modes diff the parallel scheduler against the serial reference
	// interpreter in one step.
	parCascaded := func(h cascade.Helper) func(machine.Config, *memsim.Space, *loopir.Loop) (cascade.Result, error) {
		return func(cfg machine.Config, space *memsim.Space, l *loopir.Loop) (cascade.Result, error) {
			m, err := machine.New(cfg.WithParallel(machine.ParallelOn))
			if err != nil {
				return cascade.Result{}, err
			}
			opts, err := cascade.NewOptions(
				cascade.WithHelper(h),
				cascade.WithSpace(space),
				cascade.WithChunkBytes(chunkBytes),
				cascade.WithPriorParallel(false),
			)
			if err != nil {
				return cascade.Result{}, err
			}
			return cascade.Run(m, l, opts)
		}
	}
	return []runMode{
		{"sequential", func(cfg machine.Config, _ *memsim.Space, l *loopir.Loop) (cascade.Result, error) {
			m, err := machine.New(cfg)
			if err != nil {
				return cascade.Result{}, err
			}
			return cascade.RunSequential(m, l, true), nil
		}},
		{"cascade-prefetch", cascaded(cascade.HelperPrefetch)},
		{"cascade-restructure", cascaded(cascade.HelperRestructure)},
		{"cascade-prefetch-parallel", parCascaded(cascade.HelperPrefetch)},
		{"cascade-restructure-parallel", parCascaded(cascade.HelperRestructure)},
		{"parallel", func(cfg machine.Config, _ *memsim.Space, l *loopir.Loop) (cascade.Result, error) {
			m, err := machine.New(cfg)
			if err != nil {
				return cascade.Result{}, err
			}
			return cascade.RunParallel(m, l, false)
		}},
		{"unbounded", func(cfg machine.Config, space *memsim.Space, l *loopir.Loop) (cascade.Result, error) {
			opts, err := cascade.NewOptions(
				cascade.WithHelper(cascade.HelperRestructure),
				cascade.WithSpace(space),
				cascade.WithChunkBytes(chunkBytes),
			)
			if err != nil {
				return cascade.Result{}, err
			}
			return cascade.RunUnbounded(cfg, l, opts)
		}},
	}
}

// diffResults asserts that the fast and reference engines produced
// observably identical runs: same cycle counts, same phase breakdown,
// and bit-identical metric snapshots (every cache/TLB/bus counter on
// every processor).
func diffResults(t *testing.T, fast, ref cascade.Result) {
	t.Helper()
	if fast.Cycles != ref.Cycles {
		t.Errorf("cycles diverge: fast %d, reference %d", fast.Cycles, ref.Cycles)
	}
	if fast.ExecCycles != ref.ExecCycles || fast.HelperCycles != ref.HelperCycles ||
		fast.TransferCycles != ref.TransferCycles || fast.HelperIters != ref.HelperIters {
		t.Errorf("phase breakdown diverges:\nfast %+v\nref  %+v",
			[4]int64{fast.ExecCycles, fast.HelperCycles, fast.TransferCycles, int64(fast.HelperIters)},
			[4]int64{ref.ExecCycles, ref.HelperCycles, ref.TransferCycles, int64(ref.HelperIters)})
	}
	if fast.L1 != ref.L1 {
		t.Errorf("L1 stats diverge:\nfast %+v\nref  %+v", fast.L1, ref.L1)
	}
	if fast.L2 != ref.L2 {
		t.Errorf("L2 stats diverge:\nfast %+v\nref  %+v", fast.L2, ref.L2)
	}
	if !reflect.DeepEqual(fast.Metrics, ref.Metrics) {
		for _, n := range ref.Metrics.Names() {
			if fast.Metrics.Get(n) != ref.Metrics.Get(n) {
				t.Errorf("metric %s diverges: fast %d, reference %d", n, fast.Metrics.Get(n), ref.Metrics.Get(n))
			}
		}
		for _, n := range fast.Metrics.Names() {
			if _, ok := ref.Metrics[n]; !ok {
				t.Errorf("metric %s present only under fast engine", n)
			}
		}
	}
}

// TestFastPathEquivalence is the tentpole's differential test: the
// compiled-plan engine plus the hierarchy's same-line fast path and run
// coalescing must be observably identical to the reference interpreter
// with full lookups — bit-identical metric snapshots and cycle counts —
// on the PARMVR loops and every gallery kernel, under all run modes
// (including coherence-active multi-processor cascades), on both
// machines, with the victim buffer on and off, and with coalescing
// force-disabled.
func TestFastPathEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: the equivalence matrix covers every kernel, mode, and machine")
	}
	const chunkBytes = 8 * 1024
	for _, v := range fastpathConfigs() {
		cfg := v.cfg
		for _, mode := range runModes(chunkBytes) {
			t.Run(fmt.Sprintf("%s/%s/parmvr", v.name, mode.name), func(t *testing.T) {
				p := wave5.DefaultParams().Scaled(0.02)
				wFast := wave5.MustBuild(p)
				wRef := wave5.MustBuild(p)
				for li := range wFast.Loops {
					fast, err := mode.run(v.fast(cfg), wFast.Space, wFast.Loops[li])
					if err != nil {
						t.Fatalf("fast engine, loop %d: %v", li, err)
					}
					ref, err := mode.run(cfg.WithEngine(machine.EngineReference), wRef.Space, wRef.Loops[li])
					if err != nil {
						t.Fatalf("reference engine, loop %d: %v", li, err)
					}
					if t.Failed() {
						break
					}
					diffResults(t, fast, ref)
					if t.Failed() {
						t.Logf("first divergence in PARMVR loop %d (%s)", li, wFast.Loops[li].Name)
						break
					}
				}
			})
			t.Run(fmt.Sprintf("%s/%s/gallery", v.name, mode.name), func(t *testing.T) {
				const n = 1 << 12
				for _, k := range gallery.Kernels() {
					spaceFast, loopFast, err := k.Build(n)
					if err != nil {
						t.Fatalf("%s: %v", k.Name, err)
					}
					spaceRef, loopRef, err := k.Build(n)
					if err != nil {
						t.Fatalf("%s: %v", k.Name, err)
					}
					fast, err := mode.run(v.fast(cfg), spaceFast, loopFast)
					if err != nil {
						t.Fatalf("%s fast engine: %v", k.Name, err)
					}
					ref, err := mode.run(cfg.WithEngine(machine.EngineReference), spaceRef, loopRef)
					if err != nil {
						t.Fatalf("%s reference engine: %v", k.Name, err)
					}
					diffResults(t, fast, ref)
					if t.Failed() {
						t.Fatalf("first divergence in kernel %s", k.Name)
					}
				}
			})
		}
	}
}
