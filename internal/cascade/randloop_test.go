package cascade

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// randomLoop generates a structurally random but valid loop: a random mix
// of read-only refs (affine or indirect), an optional read-modify-write
// scatter, random strides and placements, and value semantics derived
// from the generated structure. The same seed always yields the same
// loop over fresh arrays, so strategies can be compared run-to-run.
func randomLoop(seed int64) (*memsim.Space, *loopir.Loop) {
	rng := rand.New(rand.NewSource(seed))
	s := memsim.NewSpace()
	iters := 200 + rng.Intn(1500)

	alloc := func(name string, n, elem int) *memsim.Array {
		if rng.Intn(2) == 0 {
			return s.AllocAt(name, n, elem, rng.Intn(8)*512, 4096)
		}
		return s.Alloc(name, n, elem, elem)
	}

	// An index table that permutes [0, iters).
	mkTable := func(name string) *memsim.Array {
		tbl := alloc(name, iters, 4)
		perm := rng.Perm(iters)
		tbl.Fill(func(i int) float64 { return float64(perm[i]) })
		return tbl
	}

	// Random read-only refs.
	nRO := 1 + rng.Intn(4)
	ro := make([]loopir.Ref, 0, nRO)
	for k := 0; k < nRO; k++ {
		elem := []int{4, 8}[rng.Intn(2)]
		if rng.Intn(3) == 0 { // indirect gather from a small table
			target := alloc(fmt.Sprintf("G%d", k), iters, elem)
			target.Fill(func(i int) float64 { return float64((i*7 + k) % 101) })
			ro = append(ro, loopir.Ref{
				Array: target,
				Index: loopir.Indirect{Tbl: mkTable(fmt.Sprintf("GT%d", k)), Entry: loopir.Ident},
			})
		} else { // strided stream
			stride := 1 + rng.Intn(3)
			arr := alloc(fmt.Sprintf("S%d", k), iters*stride, elem)
			arr.Fill(func(i int) float64 { return float64((i + k) % 97) })
			ro = append(ro, loopir.Ref{Array: arr, Index: loopir.Stride(stride)})
		}
	}

	// Write target: either a plain output stream or a scatter RMW.
	var rw, writes []loopir.Ref
	scatter := rng.Intn(2) == 0
	out := alloc("OUT", iters, 8)
	if scatter {
		out.Fill(func(i int) float64 { return float64(i % 89) })
		ref := loopir.Ref{
			Array: out,
			Index: loopir.Indirect{Tbl: mkTable("WT"), Entry: loopir.Ident},
		}
		rw = []loopir.Ref{ref}
		writes = []loopir.Ref{ref}
	} else {
		writes = []loopir.Ref{{Array: out, Index: loopir.Ident}}
	}

	l := &loopir.Loop{
		Name:        fmt.Sprintf("rand%d", seed),
		Iters:       iters,
		RO:          ro,
		RW:          rw,
		Writes:      writes,
		PreCycles:   int64(rng.Intn(6)),
		FinalCycles: int64(1 + rng.Intn(6)),
		NPre:        1,
		// Factory form, so the loop is reentrant and the parallel engine
		// can engage in the randomized differentials.
		NewPre: func() func(int, []float64) []float64 {
			return func(_ int, rov []float64) []float64 {
				sum := 0.0
				for j, v := range rov {
					sum += float64(j+1) * v
				}
				return []float64{sum}
			}
		},
		NewFinal: func() func(int, []float64, []float64) []float64 {
			return func(_ int, pre, rwv []float64) []float64 {
				v := pre[0]
				if len(rwv) > 0 {
					v += rwv[0]
				}
				return []float64{v}
			}
		},
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if err := l.CheckBounds(); err != nil {
		panic(err)
	}
	return s, l
}

// TestRandomLoopStrategyEquivalence is the strongest correctness property
// in the repository: for structurally random loops, every cascaded
// configuration (random helper, chunk size, jump-out, precompute,
// processor count, machine) produces results bitwise identical to
// sequential execution.
func TestRandomLoopStrategyEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		_, lref := randomLoop(seed)
		cfgRand := rand.New(rand.NewSource(seed ^ 0x5eed))
		var cfg machine.Config
		if cfgRand.Intn(2) == 0 {
			cfg = machine.PentiumPro(1 + cfgRand.Intn(4))
		} else {
			cfg = machine.R10000(1 + cfgRand.Intn(8))
		}
		RunSequential(machine.MustNew(cfg.WithProcs(1)), lref, cfgRand.Intn(2) == 0)
		want := lref.Writes[0].Array.Snapshot()

		s, l := randomLoop(seed)
		opts := Options{
			Helper:        Helper(cfgRand.Intn(2)),
			ChunkBytes:    256 << cfgRand.Intn(8),
			JumpOut:       cfgRand.Intn(2) == 0,
			Precompute:    cfgRand.Intn(2) == 0,
			Space:         s,
			PriorParallel: cfgRand.Intn(2) == 0,
		}
		if _, err := Run(machine.MustNew(cfg), l, opts); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if eq, idx := l.Writes[0].Array.Equal(want); !eq {
			t.Logf("seed %d: diverged at %d (opts %+v, machine %s/%d)",
				seed, idx, opts, cfg.Name, cfg.Procs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomLoopUnboundedEquivalence does the same for the
// unbounded-processor simulation mode.
func TestRandomLoopUnboundedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		_, lref := randomLoop(seed)
		RunSequential(machine.MustNew(machine.PentiumPro(1)), lref, false)
		want := lref.Writes[0].Array.Snapshot()

		s, l := randomLoop(seed)
		cfgRand := rand.New(rand.NewSource(seed ^ 0xabcd))
		opts := Options{
			Helper:     Helper(cfgRand.Intn(2)),
			ChunkBytes: 256 << cfgRand.Intn(8),
			JumpOut:    true,
			Precompute: cfgRand.Intn(2) == 0,
			Space:      s,
		}
		if _, err := RunUnbounded(machine.R10000(1), l, opts); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		eq, _ := l.Writes[0].Array.Equal(want)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCascadeTimelineInvariants checks structural properties of the
// finite-P timeline over random loops: with jump-out, the makespan is
// exactly execution plus transfers; transfers equal (chunks-1) x cost;
// helper iterations never exceed total iterations.
func TestCascadeTimelineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s, l := randomLoop(seed)
		cfg := machine.PentiumPro(4)
		opts := DefaultOptions(HelperRestructure, s)
		opts.ChunkBytes = 1024
		res, err := Run(machine.MustNew(cfg), l, opts)
		if err != nil {
			return false
		}
		if res.Cycles != res.ExecCycles+res.TransferCycles {
			return false
		}
		if res.TransferCycles != int64(res.Chunks-1)*cfg.TransferCycles {
			return false
		}
		if res.HelperIters > res.TotalIters || res.TotalIters != l.Iters {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSequentialExecStatsMatchTotals: for a sequential run the
// execution-phase stats are the totals.
func TestSequentialExecStatsMatchTotals(t *testing.T) {
	_, l := randomLoop(7)
	res := RunSequential(machine.MustNew(machine.PentiumPro(2)), l, true)
	if res.ExecL1 != res.L1 || res.ExecL2 != res.L2 {
		t.Error("sequential exec stats should equal totals")
	}
}
