package cascade

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// coalesceDiff asserts two runs are observably identical: cycle counts,
// phase breakdown, cache statistics, and every metric snapshot.
func coalesceDiff(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles diverge: coalesced %d, reference %d", label, got.Cycles, want.Cycles)
	}
	if got.ExecCycles != want.ExecCycles || got.HelperCycles != want.HelperCycles ||
		got.TransferCycles != want.TransferCycles || got.HelperIters != want.HelperIters {
		t.Errorf("%s: phase breakdown diverges:\ncoalesced %+v\nreference %+v", label,
			[4]int64{got.ExecCycles, got.HelperCycles, got.TransferCycles, int64(got.HelperIters)},
			[4]int64{want.ExecCycles, want.HelperCycles, want.TransferCycles, int64(want.HelperIters)})
	}
	if got.L1 != want.L1 {
		t.Errorf("%s: L1 stats diverge:\ncoalesced %+v\nreference %+v", label, got.L1, want.L1)
	}
	if got.L2 != want.L2 {
		t.Errorf("%s: L2 stats diverge:\ncoalesced %+v\nreference %+v", label, got.L2, want.L2)
	}
	if !reflect.DeepEqual(got.Metrics, want.Metrics) {
		for _, n := range want.Metrics.Names() {
			if got.Metrics.Get(n) != want.Metrics.Get(n) {
				t.Errorf("%s: metric %s diverges: coalesced %d, reference %d",
					label, n, got.Metrics.Get(n), want.Metrics.Get(n))
			}
		}
	}
}

// TestRandomLoopCoalesceDifferential is the coalescing tentpole's fuzz
// oracle: over a thousand structurally random loops — affine and indirect
// streams, scatters, random strides and placements — the fast coalescing
// engine must produce bit-identical cycles, statistics, and metrics to
// the reference interpreter, across rotating machines, processor counts,
// run modes, and chunk sizes. Random affine loops exercise every window
// shape (line-entry phases, partial windows at range ends, verification
// failures from conflict evictions); indirect loops pin the classifier's
// refusals.
func TestRandomLoopCoalesceDifferential(t *testing.T) {
	seeds := 1024
	if testing.Short() {
		seeds = 64
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) ^ 0xC0A1E5CE))
		var cfg machine.Config
		if rng.Intn(2) == 0 {
			cfg = machine.PentiumPro(1 + rng.Intn(4))
		} else {
			cfg = machine.R10000(1 + rng.Intn(4))
		}
		mode := rng.Intn(3)
		chunk := 512 << rng.Intn(6)

		run := func(cfg machine.Config, space *memsim.Space, l *loopir.Loop) Result {
			m := machine.MustNew(cfg)
			if mode == 0 {
				return RunSequential(m, l, true)
			}
			opts := DefaultOptions(Helper(mode-1), space)
			opts.ChunkBytes = chunk
			res, err := Run(m, l, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}

		sFast, lFast := randomLoop(int64(seed))
		sRef, lRef := randomLoop(int64(seed))
		fast := run(cfg.WithEngine(machine.EngineFast), sFast, lFast)
		ref := run(cfg.WithEngine(machine.EngineReference), sRef, lRef)
		coalesceDiff(t, lFast.Name, fast, ref)
		if eq, idx := lFast.Writes[0].Array.Equal(lRef.Writes[0].Array.Snapshot()); !eq {
			t.Errorf("seed %d: output values diverge at element %d", seed, idx)
		}

		// Parallel-engine twin: the same cascaded point with the Parallel
		// knob on must be bit-identical to the knob off. PriorParallel is
		// disabled on both sides so the engine can actually engage (its
		// distributed dirty lines force the serial fallback).
		if mode != 0 && cfg.Procs > 1 {
			runPar := func(cfg machine.Config, space *memsim.Space, l *loopir.Loop) Result {
				m := machine.MustNew(cfg)
				opts := DefaultOptions(Helper(mode-1), space)
				opts.ChunkBytes = chunk
				opts.PriorParallel = false
				res, err := Run(m, l, opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				return res
			}
			sOff, lOff := randomLoop(int64(seed))
			sOn, lOn := randomLoop(int64(seed))
			off := runPar(cfg.WithEngine(machine.EngineFast), sOff, lOff)
			on := runPar(cfg.WithEngine(machine.EngineFast).WithParallel(machine.ParallelOn), sOn, lOn)
			coalesceDiff(t, lOn.Name+"/parallel", on, off)
			if eq, idx := lOn.Writes[0].Array.Equal(lOff.Writes[0].Array.Snapshot()); !eq {
				t.Errorf("seed %d: parallel output values diverge at element %d", seed, idx)
			}
		}
		if t.Failed() {
			t.Fatalf("first divergence at seed %d (machine %s/%d, mode %d, chunk %d)",
				seed, cfg.Name, cfg.Procs, mode, chunk)
		}
	}
}
