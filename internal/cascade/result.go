package cascade

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/metrics"
)

// Result reports one run (sequential or cascaded) of a loop.
type Result struct {
	Strategy string // "sequential", "prefetched", "restructured"
	Procs    int

	// Cycles is the loop's total execution time: for sequential runs the
	// single processor's cycles; for cascaded runs the cascade makespan
	// (sum of execution phases plus transfers, since execution phases
	// never overlap).
	Cycles int64

	// ExecCycles is the cycles spent inside execution phases.
	ExecCycles int64
	// TransferCycles is the total control-transfer overhead.
	TransferCycles int64
	// HelperCycles is the cycles processors spent in helper phases.
	// Helper time is hidden (it overlaps execution on other processors)
	// and so does not contribute to Cycles, except through JumpOut=false
	// waiting.
	HelperCycles int64

	// Chunks is the number of execution phases.
	Chunks int
	// HelperIters / TotalIters measures helper completeness: the fraction
	// of iterations whose helper work finished before the processor was
	// signaled. 1.0 means every helper ran to completion.
	HelperIters int
	TotalIters  int

	// Cache and bus statistics aggregated over all processors for the
	// measured region (warm-up excluded). These include helper-phase
	// traffic.
	L1, L2 cache.Stats
	Bus    coherence.Stats

	// ExecL1 and ExecL2 cover the execution phases only — the misses the
	// running loop actually observes, which is what the paper's cache-miss
	// figures (4 and 5) report. Helper-phase misses are off the critical
	// path and excluded here.
	ExecL1, ExecL2 cache.Stats

	// Metrics is the machine-wide metric snapshot for the measured region:
	// every per-processor cache/TLB/victim counter, the bus counters, and
	// the cascade phase timer ("cascade.p<i>.helper|exec|transfer|wait"
	// plus "cascade.total.*"). Runs reset the registry at their measured-
	// region boundary, so the snapshot covers exactly this run.
	Metrics metrics.Snapshot `json:",omitempty"`
}

// HelperCompletion returns HelperIters/TotalIters in [0,1].
func (r Result) HelperCompletion() float64 {
	if r.TotalIters == 0 {
		return 0
	}
	return float64(r.HelperIters) / float64(r.TotalIters)
}

// SpeedupOver returns baseline.Cycles / r.Cycles.
func (r Result) SpeedupOver(baseline Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("%s/%dp: %d cycles (%d chunks, helper %.0f%%, L2 misses %d)",
		r.Strategy, r.Procs, r.Cycles, r.Chunks, 100*r.HelperCompletion(), r.L2.Misses)
}
