package cascade

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/metrics"
)

// Checkpoint captures a cascaded run at a chunk boundary: the machine's
// state (copy-on-write), the address space's values and allocation
// cursor (also copy-on-write), and the run driver's own progress — the
// cascade timeline, the partial Result, and which chunk runs next.
// Chunk boundaries are the run's quiescent points: no coalesced access
// run is in flight and the bus is snooping, so the machine snapshot's
// preconditions hold by construction.
//
// A checkpoint is immutable and supports two consumers:
//
//   - time-travel inspection: Snap.Inspect() renders the cache,
//     coherence, and metrics state at iteration Iter without building a
//     machine (the server's GET .../checkpoints/{k});
//   - deterministic resume: Resume continues the run from NextChunk and
//     produces a Result bit-identical to the uninterrupted run's, which
//     the differential tests in this package assert.
type Checkpoint struct {
	// Iter is the number of loop iterations completed at capture.
	Iter int
	// NextChunk indexes the first chunk the resumed run executes.
	NextChunk int
	// Time is the cascade timeline (when control was last handed off).
	Time int64
	// LastEnd is each processor's previous execution-phase end time.
	LastEnd []int64
	// Partial is the Result accumulated so far (finalized fields —
	// Cycles, stats aggregates, Metrics — are still zero).
	Partial Result
	// Snap is the machine state at capture.
	Snap *machine.Snapshot
	// Space is the address-space state (array values, allocation cursor)
	// at capture.
	Space *memsim.SpaceState
}

// capture checkpoints the run after chunk k (covering iterations
// [0, ch.Hi)) completed.
func (st *chunkState) capture(k int, ch Chunk) (*Checkpoint, error) {
	snap, err := st.m.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("cascade: checkpoint after chunk %d: %w", k, err)
	}
	return &Checkpoint{
		Iter:      ch.Hi,
		NextChunk: k + 1,
		Time:      st.t,
		LastEnd:   append([]int64(nil), st.lastEnd...),
		Partial:   *st.res,
		Snap:      snap,
		Space:     st.opts.Space.Checkpoint(),
	}, nil
}

// runSerial executes chunks[from:] through the serial per-chunk body,
// delivering checkpoints to the options' sink at the machine's
// CheckpointEvery iteration cadence (every completed chunk when the
// cadence is zero). Capture happens after the chunk whose end crosses
// the next cadence mark, so checkpoint iteration numbers are exact chunk
// boundaries.
func (st *chunkState) runSerial(chunks []Chunk, from int) error {
	sink := st.opts.CheckpointSink
	every := st.m.Config().CheckpointEvery
	nextMark := 0
	if every > 0 && from < len(chunks) {
		start := chunks[from].Lo
		nextMark = ((start / every) + 1) * every
	}
	for k := from; k < len(chunks); k++ {
		ch := chunks[k]
		st.runChunk(k, ch)
		if sink == nil {
			continue
		}
		if every > 0 {
			if ch.Hi < nextMark {
				continue
			}
			for nextMark <= ch.Hi {
				nextMark += every
			}
		}
		ck, err := st.capture(k, ch)
		if err != nil {
			return err
		}
		sink(ck)
	}
	return nil
}

// Resume continues a cascaded run from a checkpoint and returns the
// completed run's Result — bit-identical to the Result the uninterrupted
// run produced or would have produced, including every metric.
//
// The machine is forked fresh from the checkpoint (the original machine
// is not touched), but the address space the checkpoint was taken on is
// rewound in place: its arrays are shared objects referenced by the loop
// IR, so resuming restores their values and releases post-checkpoint
// allocations. opts must describe the same run the checkpoint came from
// (same helper, chunk size, and space); Resume rebuilds everything else.
func Resume(l *loopir.Loop, opts Options, ck *Checkpoint) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Space == nil {
		return Result{}, fmt.Errorf("cascade: Resume requires Options.Space (the checkpointed space)")
	}

	m, err := ck.Snap.Fork()
	if err != nil {
		return Result{}, err
	}
	opts.Space.RestoreState(ck.Space)

	// Seed the fork's phase timer with the prefix's accumulated cycles so
	// the final metrics snapshot equals the uninterrupted run's. The
	// fork's registry is otherwise fully restored by Fork (component
	// stats, bus shards); the timer is the one run-driver source the
	// uninterrupted run would have had.
	timer := phaseTimer(m)
	pre := ck.Snap.Metrics()
	for p := 0; p < m.Procs(); p++ {
		for _, phase := range []string{PhaseHelper, PhaseExec, PhaseTransfer, PhaseWait} {
			timer.Set(p, phase, pre.Get(fmt.Sprintf("%s.p%d.%s", TimerName, p, phase)))
		}
	}

	P := m.Procs()
	chunks := SplitFor(m.Config(), l, opts.ChunkBytes)
	if ck.NextChunk > len(chunks) {
		return Result{}, fmt.Errorf("cascade: checkpoint's next chunk %d beyond %d chunks (wrong loop or chunk size?)", ck.NextChunk, len(chunks))
	}
	if len(ck.LastEnd) != P {
		return Result{}, fmt.Errorf("cascade: checkpoint covers %d processors, machine has %d", len(ck.LastEnd), P)
	}
	runners := make([]*interp.Runner, P)
	for p := 0; p < P; p++ {
		runners[p] = interp.New(m.Proc(p))
	}

	// The run's sequential buffers were allocated before its first chunk,
	// so the checkpointed space already holds them: re-adopt rather than
	// re-allocate, keeping every address identical to the original run.
	var bufs []*interp.SeqBuf
	if opts.Helper == HelperRestructure {
		per := ItersPerChunk(l, opts.ChunkBytes)
		capElems := per * l.BufSlotsPerIter()
		if capElems < 1 {
			capElems = 1
		}
		bufs = make([]*interp.SeqBuf, P)
		for p := 0; p < P; p++ {
			bufs[p] = interp.AttachSeqBuf(opts.Space, fmt.Sprintf("seqbuf%d", p), capElems)
			if bufs[p] == nil {
				return Result{}, fmt.Errorf("cascade: checkpointed space has no seqbuf%d of capacity %d", p, capElems)
			}
		}
	}

	res := ck.Partial
	st := &chunkState{
		m: m, l: l, opts: opts, timer: timer,
		runners: runners, bufs: bufs,
		transfer: m.Config().TransferCycles,
		lastEnd:  append([]int64(nil), ck.LastEnd...),
		t:        ck.Time,
		res:      &res,
	}
	if err := st.runSerial(chunks, ck.NextChunk); err != nil {
		return Result{}, err
	}

	res.Cycles = st.t
	res.L1 = m.L1Stats()
	res.L2 = m.L2Stats()
	res.Bus = m.Bus().Stats()
	res.Metrics = m.Metrics().Snapshot()
	return res, nil
}

// PrefixMetrics is a convenience for conservation checks: the metric
// state captured inside the checkpoint's machine snapshot.
func (ck *Checkpoint) PrefixMetrics() metrics.Snapshot { return ck.Snap.Metrics() }
