package cascade_test

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// Example cascades a simple unparallelizable scatter loop on the simulated
// 4-way Pentium Pro and verifies the result matches sequential execution.
func Example() {
	const n = 1 << 15
	build := func() (*memsim.Space, *loopir.Loop) {
		space := memsim.NewSpace()
		x := space.Alloc("X", n, 8, 8)
		k := space.Alloc("K", n, 4, 4)
		w := space.Alloc("W", n, 8, 8)
		x.Fill(func(i int) float64 { return float64(i) })
		k.Fill(func(i int) float64 { return float64((i * 31) % n) })
		w.Fill(func(i int) float64 { return float64(i % 5) })
		xref := loopir.Ref{Array: x, Index: loopir.Indirect{Tbl: k, Entry: loopir.Ident}}
		loop := &loopir.Loop{
			Name:   "scatter-add",
			Iters:  n,
			RO:     []loopir.Ref{{Array: w, Index: loopir.Ident}},
			RW:     []loopir.Ref{xref},
			Writes: []loopir.Ref{xref},
			Final: func(_ int, pre, rw []float64) []float64 {
				return []float64{rw[0] + pre[0]}
			},
		}
		if err := loop.Validate(); err != nil {
			panic(err)
		}
		return space, loop
	}

	_, seqLoop := build()
	baseline := cascade.RunSequential(machine.MustNew(machine.PentiumPro(4)), seqLoop, true)
	want := seqLoop.Writes[0].Array.Snapshot()

	space, loop := build()
	result, err := cascade.Run(machine.MustNew(machine.PentiumPro(4)), loop,
		cascade.DefaultOptions(cascade.HelperRestructure, space))
	if err != nil {
		panic(err)
	}
	eq, _ := loop.Writes[0].Array.Equal(want)
	fmt.Println("identical results:", eq)
	fmt.Println("cascaded faster:", result.Cycles < baseline.Cycles)
	// Output:
	// identical results: true
	// cascaded faster: true
}

// ExampleRunUnbounded projects the benefit of cascading on a machine with
// unlimited processors, the paper's §3.4 methodology.
func ExampleRunUnbounded() {
	const n = 1 << 15
	space := memsim.NewSpace()
	a := space.Alloc("A", n, 8, 8)
	c := space.Alloc("C", n, 8, 8)
	a.Fill(func(i int) float64 { return float64(i % 7) })
	loop := &loopir.Loop{
		Name:   "copy",
		Iters:  n,
		RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
		Writes: []loopir.Ref{{Array: c, Index: loopir.Ident}},
		Final:  func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if err := loop.Validate(); err != nil {
		panic(err)
	}
	res, err := cascade.RunUnbounded(machine.PentiumPro(1), loop, cascade.Options{
		Helper:     cascade.HelperPrefetch,
		ChunkBytes: 8 * 1024,
		JumpOut:    true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("helpers complete:", res.HelperCompletion() == 1)
	fmt.Println("chunks:", res.Chunks)
	// Output:
	// helpers complete: true
	// chunks: 64
}
