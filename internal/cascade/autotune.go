package cascade

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// TuneTrial is one probed chunk size.
type TuneTrial struct {
	ChunkBytes int
	// CyclesPerIter is the probe's cost normalized per iteration, the
	// quantity compared across trials.
	CyclesPerIter float64
	// HelperCompletion of the probe, diagnostic.
	HelperCompletion float64
}

// DefaultTuneSizesKB is the chunk-size grid AutoTune probes by default —
// the Figure 6 axis.
var DefaultTuneSizesKB = []int{4, 8, 16, 32, 64, 128, 256, 512}

// AutoTune empirically selects a chunk size for a loop on a machine, the
// way the paper does in §2.2/Figure 6 ("the effect of chunk size on
// performance is examined empirically") but automated: each candidate
// size is probed on a prefix of the loop large enough to reach the
// cascade's steady state, and the best cycles-per-iteration wins.
//
// build must return a freshly built workload each call (same layout and
// values every time), so probes do not contaminate each other's array
// values or cache placement. sizesKB defaults to DefaultTuneSizesKB.
func AutoTune(cfg machine.Config, build func() (*memsim.Space, *loopir.Loop, error),
	helper Helper, sizesKB []int) (bestBytes int, trials []TuneTrial, err error) {

	if len(sizesKB) == 0 {
		sizesKB = DefaultTuneSizesKB
	}
	for _, kb := range sizesKB {
		if kb <= 0 {
			return 0, nil, fmt.Errorf("cascade: AutoTune size %dKB", kb)
		}
		space, l, err := build()
		if err != nil {
			return 0, nil, err
		}
		probe := *l // shallow copy: same arrays, truncated iteration space
		probe.Iters = probeIters(l, kb*1024, cfg.Procs)

		m, err := machine.New(cfg)
		if err != nil {
			return 0, nil, err
		}
		opts, err := NewOptions(
			WithHelper(helper),
			WithSpace(space),
			WithChunkBytes(kb*1024),
		)
		if err != nil {
			return 0, nil, err
		}
		res, err := Run(m, &probe, opts)
		if err != nil {
			return 0, nil, err
		}
		trials = append(trials, TuneTrial{
			ChunkBytes:       kb * 1024,
			CyclesPerIter:    float64(res.Cycles) / float64(probe.Iters),
			HelperCompletion: res.HelperCompletion(),
		})
	}
	best := trials[0]
	for _, tr := range trials[1:] {
		if tr.CyclesPerIter < best.CyclesPerIter {
			best = tr
		}
	}
	return best.ChunkBytes, trials, nil
}

// probeIters sizes a probe: enough chunks that every processor executes
// several (steady state), capped at the full loop.
func probeIters(l *loopir.Loop, chunkBytes, procs int) int {
	per := ItersPerChunk(l, chunkBytes)
	want := per * procs * 4
	if min := 4096; want < min {
		want = min
	}
	if want > l.Iters {
		want = l.Iters
	}
	return want
}
