package cascade

import (
	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/machine"
)

// RunSequential executes the loop on processor 0 of m, the way a
// compiler-parallelized application runs its unparallelized loops
// (Figure 1a): the other processors idle. When priorParallel is true the
// loop's data is first distributed dirty across all processors' caches,
// modelling the preceding parallel section. Cache statistics in the
// result cover only the loop itself.
func RunSequential(m *machine.Machine, l *loopir.Loop, priorParallel bool) Result {
	m.ResetCaches()
	if priorParallel {
		distribute(m, l)
	}
	return RunSequentialWarm(m, l)
}

// RunSequentialWarm executes the loop on processor 0 without touching the
// machine's cache state first: whatever the caches hold carries into the
// run. Statistics are reset so the result covers only this loop. Use it
// to measure steady-state calls of repeatedly-invoked code.
func RunSequentialWarm(m *machine.Machine, l *loopir.Loop) Result {
	timer := phaseTimer(m)
	m.ResetStats()
	r := interp.New(m.Proc(0))
	cycles := r.ExecIters(l, 0, l.Iters)
	timer.Add(0, PhaseExec, cycles)
	return Result{
		Strategy:   "sequential",
		Procs:      1,
		Cycles:     cycles,
		ExecCycles: cycles,
		Chunks:     1,
		TotalIters: l.Iters,
		L1:         m.L1Stats(),
		L2:         m.L2Stats(),
		Bus:        m.Bus().Stats(),
		ExecL1:     m.L1Stats(),
		ExecL2:     m.L2Stats(),
		Metrics:    m.Metrics().Snapshot(),
	}
}

// distribute spreads the loop's data across the machine's caches, dirty,
// line by line round-robin.
func distribute(m *machine.Machine, l *loopir.Loop) {
	ranges := l.AddrRanges()
	mr := make([]machine.AddrRange, len(ranges))
	for i, r := range ranges {
		mr[i] = machine.AddrRange{Base: r.Base, Bytes: r.Bytes}
	}
	m.DistributeLines(mr)
}
