package cascade

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/metrics"
)

// The snapshot/fork differential suite: a run continued from a forked
// machine (and a rewound address space) must be bit-identical — Result,
// every metric, every array value — to the same run performed fresh,
// with every engine knob (coalescing, host-parallel simulation) in every
// position. These tests are the tentpole's correctness bar.

// tailSpec is one divergent tail forked off a shared prefix.
type tailSpec struct {
	name      string
	chunk     int
	helper    Helper
	keepState bool
	coalesce  machine.Coalesce
	parallel  machine.Parallel
}

func forkTails() []tailSpec {
	return []tailSpec{
		{name: "warm-prefetch-64k", chunk: 64 << 10, helper: HelperPrefetch, keepState: true},
		{name: "warm-prefetch-8k", chunk: 8 << 10, helper: HelperPrefetch, keepState: true},
		{name: "warm-restructure-16k", chunk: 16 << 10, helper: HelperRestructure, keepState: true},
		{name: "warm-coalesce-off", chunk: 32 << 10, helper: HelperPrefetch, keepState: true, coalesce: machine.CoalesceOff},
		{name: "replay-parallel-on", chunk: 4 << 10, helper: HelperPrefetch, parallel: machine.ParallelOn},
		{name: "replay-parallel-off", chunk: 4 << 10, helper: HelperPrefetch},
		{name: "replay-restructure-parallel", chunk: 8 << 10, helper: HelperRestructure, parallel: machine.ParallelOn},
	}
}

// TestForkDifferential forks divergent tails off one shared prefix and
// checks each against a twin that ran the identical prefix+tail on a
// fresh machine, with no snapshot involved.
func TestForkDifferential(t *testing.T) {
	const seed = 41
	cfg := machine.PentiumPro(4)

	// Shared prefix, captured once: one full cascaded call of the seed
	// loop (dataset build + distribute + run), leaving warm caches.
	sWarm, lWarm := randomLoop(seed)
	mWarm := machine.MustNew(cfg)
	popts := Options{Helper: HelperPrefetch, ChunkBytes: 16 << 10, JumpOut: true, Space: sWarm, PriorParallel: true}
	if _, err := Run(mWarm, lWarm, popts); err != nil {
		t.Fatal(err)
	}
	snap, err := mWarm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	spaceCk := sWarm.Checkpoint()

	for _, spec := range forkTails() {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			// Warm path: fork from the snapshot, rewind the space, run the tail.
			fork, err := snap.Fork(machine.WithCoalesce(spec.coalesce), machine.WithParallel(spec.parallel))
			if err != nil {
				t.Fatal(err)
			}
			sWarm.RestoreState(spaceCk)
			warmOpts := Options{Helper: spec.helper, ChunkBytes: spec.chunk, JumpOut: true, KeepState: spec.keepState, Space: sWarm}
			warmRes, err := Run(fork, lWarm, warmOpts)
			if err != nil {
				t.Fatal(err)
			}
			warmVals := lWarm.Writes[0].Array.Snapshot()
			warmMetrics := fork.Metrics().Snapshot()

			// Fresh path: identical prefix + identical tail, no snapshot.
			sFresh, lFresh := randomLoop(seed)
			mFresh := machine.MustNew(cfg.WithCoalesce(spec.coalesce).WithParallel(spec.parallel))
			// The prefix must be simulated under the *base* knobs the warm
			// prefix used — but Coalesce/Parallel cannot change simulated
			// results (asserted by PR 5/6 differentials), so running it
			// under the tail's knobs reaches the same machine state.
			pf := Options{Helper: HelperPrefetch, ChunkBytes: 16 << 10, JumpOut: true, Space: sFresh, PriorParallel: true}
			if _, err := Run(mFresh, lFresh, pf); err != nil {
				t.Fatal(err)
			}
			freshOpts := Options{Helper: spec.helper, ChunkBytes: spec.chunk, JumpOut: true, KeepState: spec.keepState, Space: sFresh}
			freshRes, err := Run(mFresh, lFresh, freshOpts)
			if err != nil {
				t.Fatal(err)
			}
			freshVals := lFresh.Writes[0].Array.Snapshot()

			if !reflect.DeepEqual(warmRes, freshRes) {
				t.Errorf("forked tail Result differs from fresh run:\nwarm:  %+v\nfresh: %+v", warmRes, freshRes)
			}
			if len(warmVals) != len(freshVals) {
				t.Fatalf("value lengths differ: %d vs %d", len(warmVals), len(freshVals))
			}
			for i := range warmVals {
				if warmVals[i] != freshVals[i] {
					t.Fatalf("array values diverge at %d: %v vs %v", i, warmVals[i], freshVals[i])
				}
			}

			// Metrics conservation across the fork boundary: the prefix
			// capture plus the tail's deltas must equal the fresh twin's
			// prefix capture plus its tail deltas (the PR 1 identity,
			// extended across Fork).
			wantMerged := metrics.Merge(snap.Metrics(), freshRes.Metrics)
			gotMerged := metrics.Merge(snap.Metrics(), warmRes.Metrics)
			if !reflect.DeepEqual(gotMerged, wantMerged) {
				t.Errorf("metrics conservation violated across fork")
			}
			_ = warmMetrics
		})
	}
}

// TestForkSharesUntouchedComponents pins the copy-on-write contract: a
// fork that has run nothing still shares every component with the
// snapshot, and running a tail dirties only what the tail touched.
func TestForkSharesUntouchedComponents(t *testing.T) {
	s, l := randomLoop(7)
	m := machine.MustNew(machine.PentiumPro(4))
	opts := Options{Helper: HelperPrefetch, ChunkBytes: 16 << 10, JumpOut: true, Space: s, PriorParallel: true}
	if _, err := Run(m, l, opts); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	shared := fork.SharedComponents()
	want := 4 * 3 // 4 procs x (l1, l2, tlb); no victim buffer configured
	if len(shared) != want {
		t.Fatalf("fresh fork shares %d components (%v), want %d", len(shared), shared, want)
	}
	// The snapshotted machine itself also still shares everything.
	if got := len(m.SharedComponents()); got != want {
		t.Fatalf("snapshotted machine shares %d components, want %d", got, want)
	}
	// Running the original machine dirties its components without
	// disturbing the fork's view.
	ck := s.Checkpoint()
	if _, err := Run(m, l, Options{Helper: HelperPrefetch, ChunkBytes: 16 << 10, JumpOut: true, KeepState: true, Space: s}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.SharedComponents()); got == want {
		t.Fatalf("machine still shares all %d components after running a tail", got)
	}
	if got := len(fork.SharedComponents()); got != want {
		t.Fatalf("fork lost sharing (%d of %d) without running anything", got, want)
	}
	s.RestoreState(ck)
	// The fork now runs the identical tail and must see identical results
	// even though the parent diverged first.
	res, err := Run(fork, l, Options{Helper: HelperPrefetch, ChunkBytes: 16 << 10, JumpOut: true, KeepState: true, Space: s})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("fork tail ran no cycles")
	}
}

// TestCheckpointResumeBitIdentical checks the time-travel path: a run
// observed by a checkpoint sink equals the unobserved run, and resuming
// from every captured checkpoint reproduces the uninterrupted Result and
// final array values exactly.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const seed = 99
	cfg := machine.PentiumPro(3)

	// Baseline: uninterrupted, no sink.
	sBase, lBase := randomLoop(seed)
	optsBase := Options{Helper: HelperRestructure, ChunkBytes: 8 << 10, JumpOut: true, Space: sBase, PriorParallel: true}
	baseRes, err := Run(machine.MustNew(cfg), lBase, optsBase)
	if err != nil {
		t.Fatal(err)
	}
	baseVals := lBase.Writes[0].Array.Snapshot()

	// Observed run: same everything plus a sink.
	var cks []*Checkpoint
	s, l := randomLoop(seed)
	opts := optsBase
	opts.Space = s
	opts.CheckpointSink = func(ck *Checkpoint) { cks = append(cks, ck) }
	sinkRes, err := Run(machine.MustNew(cfg, machine.WithCheckpointEvery(300)), l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sinkRes, baseRes) {
		t.Errorf("run with checkpoint sink differs from run without:\nsink: %+v\nbase: %+v", sinkRes, baseRes)
	}
	if len(cks) == 0 {
		t.Fatal("sink captured no checkpoints")
	}
	for i := 1; i < len(cks); i++ {
		if cks[i].Iter <= cks[i-1].Iter {
			t.Fatalf("checkpoint iterations not increasing: %d then %d", cks[i-1].Iter, cks[i].Iter)
		}
	}

	opts.CheckpointSink = nil
	for i, ck := range cks {
		res, err := Resume(l, opts, ck)
		if err != nil {
			t.Fatalf("resume from checkpoint %d (iter %d): %v", i, ck.Iter, err)
		}
		if !reflect.DeepEqual(res, baseRes) {
			t.Errorf("resume from iter %d: Result differs from uninterrupted run\ngot:  %+v\nwant: %+v", ck.Iter, res, baseRes)
		}
		got := l.Writes[0].Array.Snapshot()
		for j := range got {
			if got[j] != baseVals[j] {
				t.Fatalf("resume from iter %d: values diverge at %d", ck.Iter, j)
			}
		}
	}

	// Inspection is read-only: rendering every checkpoint must not
	// disturb a subsequent resume.
	for _, ck := range cks {
		insp := ck.Snap.Inspect()
		if len(insp.Procs) != cfg.Procs {
			t.Fatalf("Inspect covers %d procs, want %d", len(insp.Procs), cfg.Procs)
		}
	}
	if _, err := Resume(l, opts, cks[0]); err != nil {
		t.Fatalf("resume after inspection: %v", err)
	}
}

// TestRandomForkDifferential is the randomized variant: for each seed, a
// random tail forked off a random prefix must match its fresh twin
// bitwise. The full 1024-seed sweep runs in regular mode; -short trims it.
func TestRandomForkDifferential(t *testing.T) {
	seeds := 1024
	if testing.Short() {
		seeds = 32
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(int64(seed) ^ 0xf02c))
		var cfg machine.Config
		if rng.Intn(2) == 0 {
			cfg = machine.PentiumPro(2 + rng.Intn(3))
		} else {
			cfg = machine.R10000(2 + rng.Intn(3))
		}
		prefixChunk := 1 << (10 + rng.Intn(5))
		tail := Options{
			Helper:     Helper(rng.Intn(2)),
			ChunkBytes: 1 << (10 + rng.Intn(5)),
			JumpOut:    rng.Intn(4) != 0,
			KeepState:  true,
		}
		knobs := []machine.Option{}
		if rng.Intn(2) == 0 {
			knobs = append(knobs, machine.WithCoalesce(machine.CoalesceOff))
		}

		// Warm twin.
		sW, lW := randomLoop(int64(seed))
		mW := machine.MustNew(cfg)
		pf := Options{Helper: HelperPrefetch, ChunkBytes: prefixChunk, JumpOut: true, Space: sW, PriorParallel: true}
		if _, err := Run(mW, lW, pf); err != nil {
			t.Fatalf("seed %d prefix: %v", seed, err)
		}
		snap, err := mW.Snapshot()
		if err != nil {
			t.Fatalf("seed %d snapshot: %v", seed, err)
		}
		spaceCk := sW.Checkpoint()
		fork, err := snap.Fork(knobs...)
		if err != nil {
			t.Fatalf("seed %d fork: %v", seed, err)
		}
		sW.RestoreState(spaceCk)
		wOpts := tail
		wOpts.Space = sW
		warmRes, err := Run(fork, lW, wOpts)
		if err != nil {
			t.Fatalf("seed %d warm tail: %v", seed, err)
		}
		warmVals := lW.Writes[0].Array.Snapshot()

		// Fresh twin.
		sF, lF := randomLoop(int64(seed))
		mF := machine.MustNew(cfg, knobs...)
		pfF := pf
		pfF.Space = sF
		if _, err := Run(mF, lF, pfF); err != nil {
			t.Fatalf("seed %d fresh prefix: %v", seed, err)
		}
		fOpts := tail
		fOpts.Space = sF
		freshRes, err := Run(mF, lF, fOpts)
		if err != nil {
			t.Fatalf("seed %d fresh tail: %v", seed, err)
		}
		freshVals := lF.Writes[0].Array.Snapshot()

		if !reflect.DeepEqual(warmRes, freshRes) {
			t.Fatalf("seed %d (cfg %s/%d, tail %+v): forked Result differs from fresh", seed, cfg.Name, cfg.Procs, tail)
		}
		for i := range warmVals {
			if warmVals[i] != freshVals[i] {
				t.Fatalf("seed %d: values diverge at %d", seed, i)
			}
		}
	}
}

// TestForkRejectsShapeChanges pins the fork-compatibility contract.
func TestForkRejectsShapeChanges(t *testing.T) {
	_, l := randomLoop(3)
	m := machine.MustNew(machine.PentiumPro(2))
	RunSequential(m, l, false)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Fork(machine.WithProcs(4)); err == nil {
		t.Error("Fork accepted a processor-count change")
	}
	if _, err := snap.Fork(machine.WithCoalesce(machine.CoalesceOff), machine.WithParallel(machine.ParallelOn)); err != nil {
		t.Errorf("Fork rejected speed-knob changes: %v", err)
	}
	// Snapshot must refuse while classification shadows are attached.
	m2 := machine.MustNew(machine.PentiumPro(2))
	m2.EnableClassification()
	if _, err := m2.Snapshot(); err == nil {
		t.Error("Snapshot accepted a machine with classification enabled")
	}
}

func init() {
	// Guard against accidental Helper enum growth breaking the specs above.
	if HelperPrefetch != 0 || HelperRestructure != 1 {
		panic(fmt.Sprintf("helper enum moved: %d %d", HelperPrefetch, HelperRestructure))
	}
}
