package cascade

import (
	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/machine"
)

// RunParallel executes a compiler-parallelizable loop across all
// processors of m, each taking one contiguous slice of the iteration
// space — the "parallel section" of the paper's Figure 1. The returned
// Cycles is the phase's makespan (the slowest processor); ExecCycles is
// the summed work.
//
// Besides modelling the timing of the parallel sections around an
// unparallelized loop, RunParallel produces the paper's premise as a real
// machine state: afterwards each processor's caches hold (dirty) the
// slice of data it produced, which is exactly the start state the
// unparallelized loop then faces. Follow it with RunSequentialWarm or
// Run{KeepState: true} to measure against that state rather than the
// synthetic line distribution.
//
// keepState preserves the machine's cache contents at entry (phases
// compose); otherwise caches start cold.
func RunParallel(m *machine.Machine, l *loopir.Loop, keepState bool) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	timer := phaseTimer(m)
	if !keepState {
		m.ResetCaches()
	}
	m.ResetStats()
	P := m.Procs()
	res := Result{
		Strategy:   "parallel",
		Procs:      P,
		Chunks:     P,
		TotalIters: l.Iters,
	}
	for p := 0; p < P; p++ {
		lo := p * l.Iters / P
		hi := (p + 1) * l.Iters / P
		if lo == hi {
			continue
		}
		cycles := interp.New(m.Proc(p)).ExecIters(l, lo, hi)
		res.ExecCycles += cycles
		timer.Add(p, PhaseExec, cycles)
		if cycles > res.Cycles {
			res.Cycles = cycles // makespan
		}
	}
	res.L1 = m.L1Stats()
	res.L2 = m.L2Stats()
	res.Bus = m.Bus().Stats()
	res.ExecL1 = res.L1
	res.ExecL2 = res.L2
	res.Metrics = m.Metrics().Snapshot()
	return res, nil
}
