package cascade

import (
	"testing"

	"repro/internal/machine"
)

// TestRunPhaseTimerMatchesResult pins the per-processor phase timer to the
// Result's aggregate cycle fields: the snapshot totals must equal
// ExecCycles, HelperCycles, and TransferCycles exactly, and every
// processor of the cascade must have been charged execution time.
func TestRunPhaseTimerMatchesResult(t *testing.T) {
	space, l, _ := buildWorkload(1<<14, true)
	m := machine.MustNew(machine.PentiumPro(4))
	opts := DefaultOptions(HelperRestructure, space)
	opts.ChunkBytes = 8 * 1024
	r := MustRun(m, l, opts)

	s := r.Metrics
	if got := s.Get("cascade.total.exec"); got != r.ExecCycles {
		t.Errorf("timer exec total = %d, Result.ExecCycles = %d", got, r.ExecCycles)
	}
	if got := s.Get("cascade.total.helper"); got != r.HelperCycles {
		t.Errorf("timer helper total = %d, Result.HelperCycles = %d", got, r.HelperCycles)
	}
	if got := s.Get("cascade.total.transfer"); got != r.TransferCycles {
		t.Errorf("timer transfer total = %d, Result.TransferCycles = %d", got, r.TransferCycles)
	}
	if got := s.Get("cascade.total.wait"); got != 0 {
		t.Errorf("timer wait total = %d, want 0 with JumpOut", got)
	}
	var perProc int64
	for p := 0; p < m.Procs(); p++ {
		exec := s.Get("cascade.p" + string(rune('0'+p)) + ".exec")
		if r.Chunks >= m.Procs() && exec == 0 {
			t.Errorf("processor %d never charged exec cycles", p)
		}
		perProc += exec
	}
	if perProc != r.ExecCycles {
		t.Errorf("per-proc exec sum = %d, want %d", perProc, r.ExecCycles)
	}
	// The snapshot also carries the machine-wide cache view: L2 misses in
	// the registry must agree with the aggregated Stats.
	var l2Misses int64
	for p := 0; p < m.Procs(); p++ {
		l2Misses += s.Get("p" + string(rune('0'+p)) + ".l2.misses")
	}
	if l2Misses != r.L2.Misses {
		t.Errorf("registry L2 misses = %d, Result.L2.Misses = %d", l2Misses, r.L2.Misses)
	}
}

// TestRunNoJumpOutChargesWait pins the wait phase: with JumpOut disabled
// the cascade stalls for helper completion, and those stall cycles must
// show up in the timer (they are the only way helper time reaches the
// critical path).
func TestRunNoJumpOutChargesWait(t *testing.T) {
	space, l, _ := buildWorkload(1<<14, true)
	m := machine.MustNew(machine.PentiumPro(4))
	opts := DefaultOptions(HelperRestructure, space)
	opts.ChunkBytes = 8 * 1024
	opts.JumpOut = false
	r := MustRun(m, l, opts)
	if r.Metrics.Get("cascade.total.wait") == 0 {
		t.Error("JumpOut=false run recorded no wait cycles")
	}
}

// TestSequentialMetricsSnapshot checks the sequential driver's snapshot:
// all execution time on processor 0, no helper/transfer phases.
func TestSequentialMetricsSnapshot(t *testing.T) {
	_, l, _ := buildWorkload(1<<13, false)
	m := machine.MustNew(machine.PentiumPro(2))
	r := RunSequential(m, l, true)
	s := r.Metrics
	if got := s.Get("cascade.p0.exec"); got != r.Cycles {
		t.Errorf("sequential p0 exec = %d, want %d", got, r.Cycles)
	}
	for _, name := range []string{"cascade.total.helper", "cascade.total.transfer", "cascade.p1.exec"} {
		if got := s.Get(name); got != 0 {
			t.Errorf("sequential run charged %s = %d, want 0", name, got)
		}
	}
}

// TestBackToBackRunsDoNotLeakMetrics is the measured-region regression at
// the cascade level: a second run's snapshot must not include the first
// run's cycles (every run resets the registry at its region boundary).
func TestBackToBackRunsDoNotLeakMetrics(t *testing.T) {
	space, l, _ := buildWorkload(1<<14, true)
	m := machine.MustNew(machine.PentiumPro(4))
	opts := DefaultOptions(HelperPrefetch, space)
	opts.ChunkBytes = 8 * 1024
	r1 := MustRun(m, l, opts)
	r2 := MustRun(m, l, opts)
	if got, want := r2.Metrics.Get("cascade.total.exec"), r2.ExecCycles; got != want {
		t.Errorf("second run exec total = %d, want %d (first run leaked %d)",
			got, want, r1.ExecCycles)
	}
}
