package cascade

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// phaseTimer returns m's cascade phase timer, creating and registering it
// on first use. All run drivers (cascaded, sequential, parallel) share this
// timer, so a machine's registry always reports simulated time under the
// same names.
func phaseTimer(m *machine.Machine) *metrics.PhaseTimer {
	t := m.Metrics().PhaseTimer(TimerName, PhaseHelper, PhaseExec, PhaseTransfer, PhaseWait)
	// Pre-size to the machine: the snapshot key shape must not depend on
	// which processors have been charged, or a forked machine's metrics
	// would differ in shape from the machine it was forked from.
	t.Grow(m.Procs())
	return t
}

// chunkState is the mutable per-run state the cascade timeline is built
// from. The serial driver mutates it chunk by chunk; the parallel engine
// shares the exact same code for its inline (solo) chunks and replays its
// concurrently simulated chunks through the same accounting, which is how
// both drivers produce bit-identical Results.
type chunkState struct {
	m       *machine.Machine
	l       *loopir.Loop
	opts    Options
	timer   *metrics.PhaseTimer
	runners []*interp.Runner
	bufs    []*interp.SeqBuf

	transfer int64
	lastEnd  []int64 // end of each processor's previous execution phase
	t        int64   // cascade time: when control is handed off
	res      *Result
}

// runChunk simulates chunk k serially: transfer, helper phase bounded by
// the processor's idle window, then the execution phase, advancing the
// cascade timeline. This is the one and only serial per-chunk body.
func (s *chunkState) runChunk(k int, ch Chunk) {
	p := k % len(s.runners)
	start := s.t
	if k > 0 {
		start += s.transfer
		s.res.TransferCycles += s.transfer
		s.timer.Add(p, PhaseTransfer, s.transfer)
	}

	// Helper phase for this chunk, bounded by the processor's idle
	// window (signal arrives at t).
	budget := s.t - s.lastEnd[p]
	if budget < 0 {
		budget = 0
	}
	if !s.opts.JumpOut {
		budget = interp.Unlimited
	}
	var done int
	var helperCycles int64
	switch s.opts.Helper {
	case HelperPrefetch:
		done, helperCycles = s.runners[p].ShadowIters(s.l, ch.Lo, ch.Hi, budget)
	case HelperRestructure:
		s.bufs[p].Reset()
		done, helperCycles = s.runners[p].RestructureIters(s.l, ch.Lo, ch.Hi, s.bufs[p], budget, s.opts.Precompute)
	}
	s.res.HelperCycles += helperCycles
	s.res.HelperIters += done
	s.timer.Add(p, PhaseHelper, helperCycles)
	if !s.opts.JumpOut {
		// The execution phase waits for helper completion.
		if ready := s.lastEnd[p] + helperCycles; ready > start {
			s.timer.Add(p, PhaseWait, ready-start)
			start = ready
		}
	}

	// Execution phase, with stats bracketed so ExecL1/ExecL2 report
	// only what the running loop observes.
	l1Before, l2Before := s.m.L1Stats(), s.m.L2Stats()
	var execCycles int64
	switch s.opts.Helper {
	case HelperPrefetch:
		execCycles = s.runners[p].ExecIters(s.l, ch.Lo, ch.Hi)
	case HelperRestructure:
		execCycles = s.runners[p].ExecFromBuffer(s.l, ch.Lo, ch.Hi, done, s.bufs[p], s.opts.Precompute)
	}
	s.res.ExecL1.Add(s.m.L1Stats().Sub(l1Before))
	s.res.ExecL2.Add(s.m.L2Stats().Sub(l2Before))
	s.res.ExecCycles += execCycles
	s.timer.Add(p, PhaseExec, execCycles)
	end := start + execCycles
	s.lastEnd[p] = end
	s.t = end
}

// Run executes the loop under cascaded execution on m (Figure 1b).
//
// Chunks are assigned to processors round-robin. The timeline is modelled
// exactly as the implementation in the paper behaves:
//
//   - control becomes available at time t (the previous chunk's execution
//     end); passing it costs TransferCycles, so chunk k's execution phase
//     starts at t + TransferCycles;
//   - processor p = k mod P has been in its helper phase since its own
//     previous execution phase ended (lastEnd[p]); with JumpOut enabled
//     its helper cycle budget is therefore t - lastEnd[p], and whatever
//     part of the chunk the helper did not reach stays cold;
//   - with JumpOut disabled the helper always completes, and the
//     execution phase cannot begin before it does — the ablation the
//     paper argues against in §3.3.
//
// The helper for chunk k is simulated immediately before chunk k's
// execution phase rather than interleaved with chunks k-P+1..k-1; see
// DESIGN.md §4 for why this approximation is benign (chunks touch almost
// entirely disjoint data, and coherence invalidations still apply).
//
// When the machine's Parallel knob is on and the run qualifies (see
// newParEngine), the chunks are simulated concurrently on host goroutines
// by the parallel engine in internal/cascade/parengine.go; the Result is
// bit-identical either way, so the knob is purely a host-time optimization.
func Run(m *machine.Machine, l *loopir.Loop, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := l.Validate(); err != nil {
		return Result{}, err
	}

	timer := phaseTimer(m)
	if !opts.KeepState {
		m.ResetCaches()
		if opts.PriorParallel {
			distribute(m, l)
		}
	}
	m.ResetStats()

	P := m.Procs()
	chunks := SplitFor(m.Config(), l, opts.ChunkBytes)
	runners := make([]*interp.Runner, P)
	for p := 0; p < P; p++ {
		runners[p] = interp.New(m.Proc(p))
	}

	var bufs []*interp.SeqBuf
	if opts.Helper == HelperRestructure {
		per := ItersPerChunk(l, opts.ChunkBytes)
		capElems := per * l.BufSlotsPerIter()
		if capElems < 1 {
			capElems = 1
		}
		bufs = make([]*interp.SeqBuf, P)
		for p := 0; p < P; p++ {
			bufs[p] = interp.NewSeqBuf(opts.Space, fmt.Sprintf("seqbuf%d", p), capElems)
		}
	}

	res := Result{
		Strategy:   opts.Helper.String(),
		Procs:      P,
		Chunks:     len(chunks),
		TotalIters: l.Iters,
	}
	st := &chunkState{
		m: m, l: l, opts: opts, timer: timer,
		runners: runners, bufs: bufs,
		transfer: m.Config().TransferCycles,
		lastEnd:  make([]int64, P),
		res:      &res,
	}

	if eng := newParEngine(st, chunks); eng != nil {
		// Concurrent workers write the loop's arrays (and buffers)
		// directly. Materialize any checkpoint-sealed storage up front:
		// two goroutines racing the lazy copy-on-write would each copy
		// independently and one copy's writes would be lost.
		for _, a := range l.Arrays() {
			a.Materialize()
		}
		for _, b := range bufs {
			b.Array().Materialize()
		}
		eng.run()
	} else if err := st.runSerial(chunks, 0); err != nil {
		return Result{}, err
	}

	res.Cycles = st.t
	res.L1 = m.L1Stats()
	res.L2 = m.L2Stats()
	res.Bus = m.Bus().Stats()
	res.Metrics = m.Metrics().Snapshot()
	return res, nil
}

// MustRun is Run for options known to be valid; it panics on error.
func MustRun(m *machine.Machine, l *loopir.Loop, opts Options) Result {
	r, err := Run(m, l, opts)
	if err != nil {
		panic(err)
	}
	return r
}
