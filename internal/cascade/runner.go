package cascade

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// phaseTimer returns m's cascade phase timer, creating and registering it
// on first use. All run drivers (cascaded, sequential, parallel) share this
// timer, so a machine's registry always reports simulated time under the
// same names.
func phaseTimer(m *machine.Machine) *metrics.PhaseTimer {
	return m.Metrics().PhaseTimer(TimerName, PhaseHelper, PhaseExec, PhaseTransfer, PhaseWait)
}

// Run executes the loop under cascaded execution on m (Figure 1b).
//
// Chunks are assigned to processors round-robin. The timeline is modelled
// exactly as the implementation in the paper behaves:
//
//   - control becomes available at time t (the previous chunk's execution
//     end); passing it costs TransferCycles, so chunk k's execution phase
//     starts at t + TransferCycles;
//   - processor p = k mod P has been in its helper phase since its own
//     previous execution phase ended (lastEnd[p]); with JumpOut enabled
//     its helper cycle budget is therefore t - lastEnd[p], and whatever
//     part of the chunk the helper did not reach stays cold;
//   - with JumpOut disabled the helper always completes, and the
//     execution phase cannot begin before it does — the ablation the
//     paper argues against in §3.3.
//
// The helper for chunk k is simulated immediately before chunk k's
// execution phase rather than interleaved with chunks k-P+1..k-1; see
// DESIGN.md §4 for why this approximation is benign (chunks touch almost
// entirely disjoint data, and coherence invalidations still apply).
func Run(m *machine.Machine, l *loopir.Loop, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := l.Validate(); err != nil {
		return Result{}, err
	}

	timer := phaseTimer(m)
	if !opts.KeepState {
		m.ResetCaches()
		if opts.PriorParallel {
			distribute(m, l)
		}
	}
	m.ResetStats()

	P := m.Procs()
	chunks := Split(l, opts.ChunkBytes)
	runners := make([]*interp.Runner, P)
	for p := 0; p < P; p++ {
		runners[p] = interp.New(m.Proc(p))
	}

	var bufs []*interp.SeqBuf
	if opts.Helper == HelperRestructure {
		per := ItersPerChunk(l, opts.ChunkBytes)
		capElems := per * l.BufSlotsPerIter()
		if capElems < 1 {
			capElems = 1
		}
		bufs = make([]*interp.SeqBuf, P)
		for p := 0; p < P; p++ {
			bufs[p] = interp.NewSeqBuf(opts.Space, fmt.Sprintf("seqbuf%d", p), capElems)
		}
	}

	res := Result{
		Strategy:   opts.Helper.String(),
		Procs:      P,
		Chunks:     len(chunks),
		TotalIters: l.Iters,
	}
	transfer := m.Config().TransferCycles
	lastEnd := make([]int64, P) // end of each processor's previous execution phase
	var t int64                 // cascade time: when control is handed off

	for k, ch := range chunks {
		p := k % P
		start := t
		if k > 0 {
			start += transfer
			res.TransferCycles += transfer
			timer.Add(p, PhaseTransfer, transfer)
		}

		// Helper phase for this chunk, bounded by the processor's idle
		// window (signal arrives at t).
		budget := t - lastEnd[p]
		if budget < 0 {
			budget = 0
		}
		if !opts.JumpOut {
			budget = interp.Unlimited
		}
		var done int
		var helperCycles int64
		switch opts.Helper {
		case HelperPrefetch:
			done, helperCycles = runners[p].ShadowIters(l, ch.Lo, ch.Hi, budget)
		case HelperRestructure:
			bufs[p].Reset()
			done, helperCycles = runners[p].RestructureIters(l, ch.Lo, ch.Hi, bufs[p], budget, opts.Precompute)
		}
		res.HelperCycles += helperCycles
		res.HelperIters += done
		timer.Add(p, PhaseHelper, helperCycles)
		if !opts.JumpOut {
			// The execution phase waits for helper completion.
			if ready := lastEnd[p] + helperCycles; ready > start {
				timer.Add(p, PhaseWait, ready-start)
				start = ready
			}
		}

		// Execution phase, with stats bracketed so ExecL1/ExecL2 report
		// only what the running loop observes.
		l1Before, l2Before := m.L1Stats(), m.L2Stats()
		var execCycles int64
		switch opts.Helper {
		case HelperPrefetch:
			execCycles = runners[p].ExecIters(l, ch.Lo, ch.Hi)
		case HelperRestructure:
			execCycles = runners[p].ExecFromBuffer(l, ch.Lo, ch.Hi, done, bufs[p], opts.Precompute)
		}
		res.ExecL1.Add(m.L1Stats().Sub(l1Before))
		res.ExecL2.Add(m.L2Stats().Sub(l2Before))
		res.ExecCycles += execCycles
		timer.Add(p, PhaseExec, execCycles)
		end := start + execCycles
		lastEnd[p] = end
		t = end
	}

	res.Cycles = t
	res.L1 = m.L1Stats()
	res.L2 = m.L2Stats()
	res.Bus = m.Bus().Stats()
	res.Metrics = m.Metrics().Snapshot()
	return res, nil
}

// MustRun is Run for options known to be valid; it panics on error.
func MustRun(m *machine.Machine, l *loopir.Loop, opts Options) Result {
	r, err := Run(m, l, opts)
	if err != nil {
		panic(err)
	}
	return r
}
