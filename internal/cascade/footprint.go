package cascade

import (
	"sort"

	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/memsim"
)

// This file is the parallel engine's lookahead oracle: a static,
// conservative description of every simulated line a chunk's helper and
// execution phases can touch. Two chunks whose footprints are disjoint in
// the right way (reads may share lines, writes may share nothing) cannot
// interact through the coherence protocol, so the engine may simulate them
// concurrently with the bus in isolated operation and still produce
// bit-identical results. The analysis is the run-coalescing legality
// predicate's static twin: where coalescing proves a *run* of accesses
// cannot change hierarchy state observably, the footprint proves a *chunk*
// of iterations cannot probe another processor's hierarchy at all.

// span is a half-open byte range [lo, hi) of simulated address space,
// aligned outward to L2-line (coherence-granularity) boundaries.
type span struct {
	lo, hi memsim.Addr
}

// normalize sorts spans and merges overlapping or adjacent ones, so span
// sets stay small and overlap checks are a linear walk.
func normalize(s []span) []span {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i].lo < s[j].lo })
	out := s[:1]
	for _, sp := range s[1:] {
		if last := &out[len(out)-1]; sp.lo <= last.hi {
			if sp.hi > last.hi {
				last.hi = sp.hi
			}
		} else {
			out = append(out, sp)
		}
	}
	return out
}

// mergeSpans folds any number of normalized span sets into dst, returning
// the normalized union.
func mergeSpans(dst []span, more ...[]span) []span {
	for _, m := range more {
		dst = append(dst, m...)
	}
	return normalize(dst)
}

// spansOverlap reports whether two normalized span sets share any byte.
func spansOverlap(a, b []span) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].hi <= b[j].lo:
			i++
		case b[j].hi <= a[i].lo:
			j++
		default:
			return true
		}
	}
	return false
}

// footprint is the set of lines a chunk may read and may write. A line in
// wr may also be read (shadow loads touch write targets); wr membership is
// the stronger claim and subsumes rd for conflict purposes.
type footprint struct {
	rd, wr []span
}

// refShape is the chunk-independent footprint shape of one loop reference.
// Affine references cover a tight per-chunk element range; indirect
// references cover their table walk tightly plus the whole target array
// (the table values are data, unknowable statically).
type refShape struct {
	arr        *memsim.Array
	scale, off int
	whole      bool // entire array regardless of chunk bounds
	write      bool
}

// loopShapes derives the footprint shapes of l's references. ok is false
// when any index expression is of an unknown kind, in which case no sound
// static footprint exists and the run must stay serial.
//
// Compiler prefetch needs no reach extension here: the interpreter's
// wind-down model (interp.timed) suppresses any prefetch whose target
// lies beyond the data the current call's remaining iterations touch, so
// every prefetch a chunk can issue lands inside its tight element span.
func loopShapes(l *loopir.Loop) (shapes []refShape, ok bool) {
	add := func(refs []loopir.Ref, write bool) bool {
		for _, r := range refs {
			switch ix := r.Index.(type) {
			case loopir.Affine:
				shapes = append(shapes, refShape{
					arr: r.Array, scale: ix.Scale, off: ix.Offset, write: write,
				})
			case loopir.Indirect:
				// The table walk is affine; the target array is reachable
				// anywhere (the table values are data).
				shapes = append(shapes, refShape{
					arr: ix.Tbl, scale: ix.Entry.Scale, off: ix.Entry.Offset,
				})
				shapes = append(shapes, refShape{arr: r.Array, whole: true, write: write})
			default:
				return false
			}
		}
		return true
	}
	if !add(l.RO, false) || !add(l.RW, false) || !add(l.Writes, true) {
		return nil, false
	}
	return shapes, true
}

// spanFor returns the shape's line span for iterations [lo, hi), aligned
// outward to l2Line (coherence granularity). The span is tight: prefetch
// wind-down guarantees no access — demand or prefetch — lands outside the
// element range the iterations themselves touch.
func (s refShape) spanFor(lo, hi, l2Line int) span {
	base := s.arr.Base()
	end := base + memsim.Addr(s.arr.SizeBytes())
	a, b := base, end
	if !s.whole {
		e0 := s.scale*lo + s.off
		e1 := s.scale*(hi-1) + s.off
		if e0 > e1 {
			e0, e1 = e1, e0
		}
		a = s.arr.Addr(e0)
		b = s.arr.Addr(e1) + memsim.Addr(s.arr.ElemSize())
		if b > end {
			b = end
		}
	}
	return span{a.Line(l2Line), b.AlignUp(l2Line)}
}

// chunkFoot builds the footprint of one chunk: every shape's span over the
// chunk's iteration range, plus — under the restructuring helper — the
// whole sequential buffer the chunk's processor streams into.
func chunkFoot(shapes []refShape, ch Chunk, l2Line int, buf *interp.SeqBuf) footprint {
	var rd, wr []span
	for _, s := range shapes {
		sp := s.spanFor(ch.Lo, ch.Hi, l2Line)
		if s.write {
			wr = append(wr, sp)
		} else {
			rd = append(rd, sp)
		}
	}
	if buf != nil {
		a := buf.Array()
		base := a.Base()
		wr = append(wr, span{base.Line(l2Line), (base + memsim.Addr(a.SizeBytes())).AlignUp(l2Line)})
	}
	return footprint{rd: normalize(rd), wr: normalize(wr)}
}
