package cascade

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/interp"
)

// The parallel engine simulates the cascade's chunks concurrently on host
// goroutines — one worker per simulated processor — while producing a
// Result bit-identical to the serial driver's. The differential tests in
// this package assert that identity; this comment records why it holds.
//
// Under cascaded execution chunk k runs on processor p = k mod P, and the
// serial driver simulates helper_k immediately before exec_k. The only
// couplings between chunk simulations are:
//
//  1. processor state: chunk k continues from chunk k-P's cache/TLB state
//     (enforced here by worker serialization: worker p runs p's chunks in
//     order);
//  2. the coherence bus: an access can probe, invalidate, or downgrade
//     lines in *another* processor's hierarchy, but only if that hierarchy
//     could hold the line (enforced by the footprint admission predicate
//     below: an admitted chunk's reads avoid every line a remote node
//     could hold Modified, and its writes avoid every line a remote node
//     could hold at all, so snooping would find nothing — the bus runs in
//     isolated operation and answers exactly as snooping would);
//  3. the timeline: chunk k's helper budget is t_{k-1} - lastEnd[p], a
//     value known only once every earlier chunk's execution time is known
//     (resolved by the budget-grant protocol below).
//
// Budget grants. A helper with JumpOut stops at the first iteration
// boundary where its cycles reach the budget, and budgets only ever
// compare against accumulated cycles — so running a helper with a lower
// bound of its true budget and resuming it when the bound improves is
// cycle-for-cycle identical to one run with the final budget. The
// coordinator therefore admits chunk k with the sound lower bound
//
//	t_c + (number of transfers in chunks c+1..k-1) x TransferCycles - lastEnd[p]
//
// where c is the replayed prefix, and raises it as the prefix advances;
// the grant with c = k-1 is the exact serial budget. A worker that
// exhausts a non-exact grant parks until the coordinator sends a larger
// one. Progress is guaranteed: the oldest in-flight chunk always has
// c = k-1, hence an exact grant.
//
// Replay. Workers return per-chunk cycle counts and per-processor cache
// stat deltas; the coordinator replays completions in chunk order through
// the same accounting as the serial driver (timeline, Result fields, phase
// timer). Per-processor exec deltas equal the serial driver's global
// bracketing because an admitted chunk, by the admission predicate,
// triggers no coherence action on any remote hierarchy — the only way a
// chunk's execution can move another processor's counters.
//
// Chunks that cannot be admitted (footprint conflict, unknown index shape
// handled earlier) run "solo": inline on the coordinator, with the bus
// snooping and the machine quiescent, through chunkState.runChunk — the
// serial code path itself, at a machine state identical to serial's by
// induction. Every simulated-state invariant is therefore preserved
// whether a run parallelizes fully, partially, or not at all.

// parEngaged, when non-nil, is invoked once per parallel run with the
// number of chunks simulated concurrently (admitted to workers) and the
// number that ran inline (solo). Tests use it to assert the engine
// actually engaged; it is deliberately not a metric, which would break
// result bit-identity with the serial engine.
var parEngaged func(admitted, solo int)

// parGrant is one budget grant: run until accumulated helper cycles reach
// limit; exact marks the final (serial-identical) budget.
type parGrant struct {
	limit int64
	exact bool
}

// parJob is one chunk handed to a worker, with its initial budget grant
// and the channel further grants arrive on.
type parJob struct {
	k     int
	ch    Chunk
	limit int64
	exact bool
	more  chan parGrant
}

// parDone reports one simulated chunk back to the coordinator.
type parDone struct {
	k, proc      int
	helperIters  int
	helperCycles int64
	execCycles   int64
	l1, l2       cache.Stats // processor-local exec-phase stat deltas
}

// parFlight is the coordinator's record of an in-flight chunk.
type parFlight struct {
	k, proc int
	fp      footprint
	job     *parJob
}

// spanHold tracks the lines a processor's hierarchy could hold: all lines
// its completed chunks touched, and the subset it could hold Modified.
// Both are supersets of the true holdings (evictions and invalidations
// only shrink a cache), which is the conservative direction.
type spanHold struct {
	all, mod []span
}

type parEngine struct {
	st     *chunkState
	chunks []Chunk
	shapes []refShape
	l2Line int
	P      int

	jobs   []chan *parJob
	doneCh chan parDone
	needCh chan int

	inflight  map[int]*parFlight
	pend      map[int]parDone // completed, awaiting in-order replay
	lastLimit map[int]int64
	parked    map[int]bool
	held      []spanHold
	prefix    int // all chunks <= prefix are replayed

	nAdmit, nSolo int
}

// newParEngine returns a parallel engine for the run, or nil when the run
// must stay on the serial driver: the knob is off, there is nothing to
// overlap, the initial cache state is not provably empty (KeepState, or
// PriorParallel's distributed dirty lines, which would put every chunk's
// footprint in every processor's holdings), an observer could see the
// schedule, the loop's value closures are not reentrant, or an index
// expression defeats the footprint analysis.
func newParEngine(st *chunkState, chunks []Chunk) *parEngine {
	cfg := st.m.Config()
	if !cfg.ParallelEnabled() {
		return nil
	}
	P := st.m.Procs()
	if P < 2 || len(chunks) < 2 {
		return nil
	}
	if st.opts.KeepState || st.opts.PriorParallel {
		return nil
	}
	if st.opts.CheckpointSink != nil {
		// Checkpoints are quiescent-point captures taken at serial chunk
		// boundaries; a run that wants them runs serially.
		return nil
	}
	for p := 0; p < P; p++ {
		if st.m.Proc(p).Observed() {
			return nil
		}
	}
	if !st.l.Reentrant() {
		return nil
	}
	shapes, ok := loopShapes(st.l)
	if !ok {
		return nil
	}
	return &parEngine{
		st: st, chunks: chunks, shapes: shapes,
		l2Line: cfg.L2.LineSize, P: P,
		jobs:      make([]chan *parJob, P),
		doneCh:    make(chan parDone, P),
		needCh:    make(chan int, P),
		inflight:  make(map[int]*parFlight),
		pend:      make(map[int]parDone),
		lastLimit: make(map[int]int64),
		parked:    make(map[int]bool),
		held:      make([]spanHold, P),
		prefix:    -1,
	}
}

// foot returns chunk k's footprint (restructure runs stream into the
// chunk's processor-private sequential buffer, which joins the write set).
func (e *parEngine) foot(k int) footprint {
	var buf *interp.SeqBuf
	if e.st.opts.Helper == HelperRestructure {
		buf = e.st.bufs[k%e.P]
	}
	return chunkFoot(e.shapes, e.chunks[k], e.l2Line, buf)
}

// admit decides whether chunk k may be simulated concurrently with the
// current in-flight set. Reads may share lines with other reads (serial
// snooping leaves Shared copies everywhere, at identical cost); all other
// sharing is a potential coherence interaction and blocks admission.
func (e *parEngine) admit(k int) (footprint, bool) {
	if e.prefix < k-e.P {
		// lastEnd[p] (and worker p's availability) requires chunk k-P
		// replayed.
		return footprint{}, false
	}
	fp := e.foot(k)
	for _, f := range e.inflight {
		if spansOverlap(fp.wr, f.fp.rd) || spansOverlap(fp.wr, f.fp.wr) || spansOverlap(fp.rd, f.fp.wr) {
			return footprint{}, false
		}
	}
	proc := k % e.P
	for q := 0; q < e.P; q++ {
		if q == proc {
			continue
		}
		if spansOverlap(fp.wr, e.held[q].all) || spansOverlap(fp.rd, e.held[q].mod) {
			return footprint{}, false
		}
	}
	return fp, true
}

// grant computes the current helper-budget bound for chunk k: the replayed
// timeline t plus one TransferCycles per unreplayed predecessor chunk
// (every chunk but chunk 0 pays a transfer; execution cycles only add to
// that), minus the processor's last execution end. exact when every
// predecessor is replayed, making the bound the serial budget itself.
func (e *parEngine) grant(k int) (int64, bool) {
	hops := int64(k - 1 - max(e.prefix, 0))
	limit := e.st.t + hops*e.st.transfer - e.st.lastEnd[k%e.P]
	if limit < 0 {
		limit = 0
	}
	return limit, e.prefix == k-1
}

// run drives the engine: admit chunks in order onto workers, fall back to
// inline serial simulation when a chunk cannot be admitted and nothing is
// in flight, and replay completions in chunk order.
func (e *parEngine) run() {
	for p := 0; p < e.P; p++ {
		e.jobs[p] = make(chan *parJob, 1)
		go e.worker(p, e.jobs[p])
	}
	n := 0
	for {
		for n < len(e.chunks) {
			fp, ok := e.admit(n)
			if !ok {
				break
			}
			e.dispatch(n, fp)
			n++
		}
		if len(e.inflight) == 0 {
			if n == len(e.chunks) {
				break
			}
			e.solo(n)
			n++
			continue
		}
		select {
		case d := <-e.doneCh:
			e.complete(d)
		case k := <-e.needCh:
			e.need(k)
		}
	}
	for p := 0; p < e.P; p++ {
		close(e.jobs[p])
	}
	if parEngaged != nil {
		parEngaged(e.nAdmit, e.nSolo)
	}
}

// dispatch hands chunk n to its worker. The bus enters isolated operation
// while any chunk is in flight; the channel send orders the toggle before
// the worker's first access.
func (e *parEngine) dispatch(n int, fp footprint) {
	if len(e.inflight) == 0 {
		e.st.m.Bus().SetIsolated(true)
	}
	limit, exact := e.grant(n)
	job := &parJob{k: n, ch: e.chunks[n], limit: limit, exact: exact, more: make(chan parGrant, 1)}
	e.lastLimit[n] = limit
	e.inflight[n] = &parFlight{k: n, proc: n % e.P, fp: fp, job: job}
	e.nAdmit++
	e.jobs[n%e.P] <- job
}

// solo simulates chunk n inline through the serial per-chunk body. Only
// reached with nothing in flight, so the machine state is exactly the
// serial state after chunk n-1 and the simulation is exactly serial.
func (e *parEngine) solo(n int) {
	fp := e.foot(n)
	e.st.runChunk(n, e.chunks[n])
	p := n % e.P
	e.held[p].all = mergeSpans(e.held[p].all, fp.rd, fp.wr)
	e.held[p].mod = mergeSpans(e.held[p].mod, fp.wr)
	e.prefix = n
	e.nSolo++
}

// complete retires a finished chunk: its footprint joins its processor's
// holdings, and every chunk completed in order is replayed into the
// timeline. Parked budget requests are re-answered when the prefix moved.
func (e *parEngine) complete(d parDone) {
	f := e.inflight[d.k]
	delete(e.inflight, d.k)
	e.held[f.proc].all = mergeSpans(e.held[f.proc].all, f.fp.rd, f.fp.wr)
	e.held[f.proc].mod = mergeSpans(e.held[f.proc].mod, f.fp.wr)
	e.pend[d.k] = d
	advanced := false
	for {
		d2, ok := e.pend[e.prefix+1]
		if !ok {
			break
		}
		delete(e.pend, e.prefix+1)
		e.replay(d2)
		e.prefix++
		advanced = true
	}
	if len(e.inflight) == 0 {
		e.st.m.Bus().SetIsolated(false)
	}
	if advanced {
		for k := range e.parked {
			limit, exact := e.grant(k)
			if limit > e.lastLimit[k] || exact {
				delete(e.parked, k)
				e.lastLimit[k] = limit
				e.inflight[k].job.more <- parGrant{limit: limit, exact: exact}
			}
		}
	}
}

// need answers a worker that exhausted its budget grant: immediately if
// the bound improved (or became exact) since, otherwise parked until the
// replayed prefix advances.
func (e *parEngine) need(k int) {
	limit, exact := e.grant(k)
	if limit > e.lastLimit[k] || exact {
		e.lastLimit[k] = limit
		e.inflight[k].job.more <- parGrant{limit: limit, exact: exact}
	} else {
		e.parked[k] = true
	}
}

// replay folds a concurrently simulated chunk into the timeline and
// Result, mirroring chunkState.runChunk's accounting exactly.
func (e *parEngine) replay(d parDone) {
	s := e.st
	k, p := d.k, d.proc
	if s.opts.JumpOut && d.helperIters < e.chunks[k].Iters() {
		// A jumped-out helper must have stopped on the exact serial
		// budget; anything else would mean the grant protocol handed out
		// an unsound bound.
		if want := s.t - s.lastEnd[p]; e.lastLimit[k] != want {
			panic(fmt.Sprintf("cascade: parallel engine: chunk %d jumped out on budget %d, serial budget is %d",
				k, e.lastLimit[k], want))
		}
	}
	start := s.t
	if k > 0 {
		start += s.transfer
		s.res.TransferCycles += s.transfer
		s.timer.Add(p, PhaseTransfer, s.transfer)
	}
	s.res.HelperCycles += d.helperCycles
	s.res.HelperIters += d.helperIters
	s.timer.Add(p, PhaseHelper, d.helperCycles)
	if !s.opts.JumpOut {
		if ready := s.lastEnd[p] + d.helperCycles; ready > start {
			s.timer.Add(p, PhaseWait, ready-start)
			start = ready
		}
	}
	s.res.ExecL1.Add(d.l1)
	s.res.ExecL2.Add(d.l2)
	s.res.ExecCycles += d.execCycles
	s.timer.Add(p, PhaseExec, d.execCycles)
	end := start + d.execCycles
	s.lastEnd[p] = end
	s.t = end
}

// worker simulates processor p's chunks, one at a time, in arrival order.
func (e *parEngine) worker(p int, jobs <-chan *parJob) {
	for job := range jobs {
		e.runJob(p, job)
	}
}

// helperCall runs one (possibly resumed) helper call from iteration lo.
func (e *parEngine) helperCall(r *interp.Runner, lo, hi int, budget int64, buf *interp.SeqBuf) (int, int64) {
	if e.st.opts.Helper == HelperPrefetch {
		return r.ShadowIters(e.st.l, lo, hi, budget)
	}
	return r.RestructureIters(e.st.l, lo, hi, buf, budget, e.st.opts.Precompute)
}

// runJob simulates one chunk on worker p: the helper phase under the
// budget-grant protocol, then the execution phase with processor-local
// stat bracketing.
func (e *parEngine) runJob(p int, job *parJob) {
	s := e.st
	r := s.runners[p]
	var buf *interp.SeqBuf
	if s.opts.Helper == HelperRestructure {
		buf = s.bufs[p]
		buf.Reset()
	}

	iters := job.ch.Iters()
	var helperCycles int64
	done := 0
	if !s.opts.JumpOut {
		done, helperCycles = e.helperCall(r, job.ch.Lo, job.ch.Hi, interp.Unlimited, buf)
	} else {
		limit, exact := job.limit, job.exact
		for {
			rem := limit - helperCycles
			if rem < 0 {
				rem = 0
			}
			d, cy := e.helperCall(r, job.ch.Lo+done, job.ch.Hi, rem, buf)
			done += d
			helperCycles += cy
			if done == iters || exact {
				break
			}
			e.needCh <- job.k
			g := <-job.more
			limit, exact = g.limit, g.exact
		}
	}

	h := s.m.Proc(p).Hierarchy()
	l1b, l2b := h.L1.Stats(), h.L2.Stats()
	var execCycles int64
	switch s.opts.Helper {
	case HelperPrefetch:
		execCycles = r.ExecIters(s.l, job.ch.Lo, job.ch.Hi)
	case HelperRestructure:
		execCycles = r.ExecFromBuffer(s.l, job.ch.Lo, job.ch.Hi, done, buf, s.opts.Precompute)
	}
	e.doneCh <- parDone{
		k: job.k, proc: p,
		helperIters: done, helperCycles: helperCycles,
		execCycles: execCycles,
		l1:         h.L1.Stats().Sub(l1b), l2: h.L2.Stats().Sub(l2b),
	}
}
