package cascade

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/loopir"
	"repro/internal/machine"
)

// RunUnbounded simulates cascaded execution with an unbounded number of
// processors using the paper's §3.4 methodology: a single processor
// alternates between helper and execution phases, helper phases always
// run to completion, and the reported time is the sum of the execution
// phases plus one control transfer per chunk.
//
// This models a system with enough processors that every helper finishes
// before its execution signal arrives; running helper and execution on
// the same physical cache is exactly what the paper did ("we simulate
// cascaded execution by running on a single processor, which alternates
// between helper and execution phases").
//
// The machine configuration is used at one processor regardless of
// cfg.Procs.
func RunUnbounded(cfg machine.Config, l *loopir.Loop, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	m, err := machine.New(cfg.WithProcs(1))
	if err != nil {
		return Result{}, err
	}
	timer := phaseTimer(m)
	if opts.PriorParallel {
		// With one simulated processor there is nowhere else to
		// distribute to; cold caches model the post-parallel-section
		// state instead (every line starts remote).
		m.ResetCaches()
	}

	runner := interp.New(m.Proc(0))
	chunks := SplitFor(m.Config(), l, opts.ChunkBytes)

	var buf *interp.SeqBuf
	if opts.Helper == HelperRestructure {
		capElems := ItersPerChunk(l, opts.ChunkBytes) * l.BufSlotsPerIter()
		if capElems < 1 {
			capElems = 1
		}
		buf = interp.NewSeqBuf(opts.Space, "seqbuf", capElems)
	}

	res := Result{
		Strategy:   opts.Helper.String(),
		Procs:      -1, // unbounded
		Chunks:     len(chunks),
		TotalIters: l.Iters,
	}
	transfer := m.Config().TransferCycles

	for _, ch := range chunks {
		var done int
		var helperCycles int64
		switch opts.Helper {
		case HelperPrefetch:
			done, helperCycles = runner.ShadowIters(l, ch.Lo, ch.Hi, interp.Unlimited)
		case HelperRestructure:
			buf.Reset()
			done, helperCycles = runner.RestructureIters(l, ch.Lo, ch.Hi, buf, interp.Unlimited, opts.Precompute)
		}
		if done != ch.Iters() {
			return Result{}, fmt.Errorf("cascade: unbounded helper completed %d of %d iterations", done, ch.Iters())
		}
		res.HelperCycles += helperCycles
		res.HelperIters += done
		timer.Add(0, PhaseHelper, helperCycles)

		l1Before, l2Before := m.L1Stats(), m.L2Stats()
		var execCycles int64
		switch opts.Helper {
		case HelperPrefetch:
			execCycles = runner.ExecIters(l, ch.Lo, ch.Hi)
		case HelperRestructure:
			execCycles = runner.ExecFromBuffer(l, ch.Lo, ch.Hi, done, buf, opts.Precompute)
		}
		res.ExecL1.Add(m.L1Stats().Sub(l1Before))
		res.ExecL2.Add(m.L2Stats().Sub(l2Before))
		res.ExecCycles += execCycles
		res.TransferCycles += transfer
		timer.Add(0, PhaseExec, execCycles)
		timer.Add(0, PhaseTransfer, transfer)
	}

	res.Cycles = res.ExecCycles + res.TransferCycles
	res.L1 = m.L1Stats()
	res.L2 = m.L2Stats()
	res.Bus = m.Bus().Stats()
	res.Metrics = m.Metrics().Snapshot()
	return res, nil
}

// SequentialBaseline runs the loop sequentially on a fresh one-processor
// instance of cfg, the comparison point for RunUnbounded.
func SequentialBaseline(cfg machine.Config, l *loopir.Loop) (Result, error) {
	m, err := machine.New(cfg.WithProcs(1))
	if err != nil {
		return Result{}, err
	}
	return RunSequential(m, l, false), nil
}
