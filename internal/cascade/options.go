// Package cascade implements cascaded execution, the contribution of
// Anderson, Nguyen & Zahorjan (IPPS 1999): a sequential loop is executed
// as a cascade of contiguous iteration chunks across the processors of a
// shared-memory multiprocessor. Exactly one processor executes loop
// iterations at any time; the others run helper phases that optimize
// their memory state for their own upcoming chunks, either by prefetching
// the chunk's operands (HelperPrefetch) or by restructuring its read-only
// data into a private sequential buffer (HelperRestructure).
//
// The package provides:
//
//   - RunSequential: the single-processor baseline.
//   - Run: cascaded execution on a finite-processor machine, with a
//     cycle-accurate helper/execute timeline including control-transfer
//     costs and the jump-out-of-helper-on-signal refinement (§3.3).
//   - RunUnbounded: the paper's §3.4 methodology for projecting
//     unbounded-processor performance — helpers always run to completion
//     and only execution phases plus transfers are charged.
package cascade

import (
	"fmt"

	"repro/internal/memsim"
)

// Helper selects what the idle processors do.
type Helper int

const (
	// HelperPrefetch runs a shadow version of the loop body that loads
	// the operands of the processor's next chunk into its caches.
	HelperPrefetch Helper = iota
	// HelperRestructure streams the chunk's read-only operands (after the
	// loop's read-only precomputation, if any) into a private sequential
	// buffer in dynamic reference order, and shadow-loads the rest.
	HelperRestructure
)

// String implements fmt.Stringer.
func (h Helper) String() string {
	switch h {
	case HelperPrefetch:
		return "prefetched"
	case HelperRestructure:
		return "restructured"
	default:
		return fmt.Sprintf("Helper(%d)", int(h))
	}
}

// Options configures a cascaded run.
type Options struct {
	// Helper is the helper-phase strategy.
	Helper Helper
	// ChunkBytes is the per-chunk data budget; the chunker divides it by
	// the loop's bytes-per-iteration estimate (§2.2). 64KB performed best
	// on both paper machines.
	ChunkBytes int
	// JumpOut makes a processor abandon its helper phase the moment it is
	// signaled to execute (§3.3's refinement; the paper's reported results
	// include it). When false, execution waits for helper completion.
	JumpOut bool
	// Precompute makes the restructuring helper apply the loop's
	// read-only computation (Pre) and store its results instead of the
	// raw operand values — §2.1's optional aggressive helper use. Off by
	// default, matching the paper's main results.
	Precompute bool
	// Space is the address space in which per-processor sequential
	// buffers are allocated. Required for HelperRestructure.
	Space *memsim.Space
	// PriorParallel, when true, pre-distributes the loop's data across
	// all processors' caches (dirty) before the run, modelling the
	// parallel section that precedes an unparallelized loop.
	PriorParallel bool
	// KeepState skips the cache reset (and any PriorParallel
	// distribution) at the start of the run, so the machine's current
	// cache contents carry in — used to measure steady-state calls of a
	// repeatedly-invoked subroutine, like the paper's 12th-of-5000
	// PARMVR call. Statistics are still reset.
	KeepState bool
	// CheckpointSink, when set, receives a Checkpoint at every chunk
	// boundary matching the machine's CheckpointEvery cadence (every
	// chunk when the cadence is zero). Sinks force the serial engine —
	// checkpoints are quiescent-point captures — and require Space (the
	// checkpoint must cover array values). A sink observes the run
	// without changing it: run-with-sink and run-without-sink produce
	// bit-identical Results, and the field is excluded from canonical
	// cache keys.
	CheckpointSink func(*Checkpoint) `json:"-"`
}

// DefaultChunkBytes is the chunk size the paper found best on both
// machines (Figure 6).
const DefaultChunkBytes = 64 * 1024

// Phase-timer names under which the run drivers account simulated time in
// the machine's metrics registry (see internal/metrics.PhaseTimer):
// snapshot keys are "cascade.p<i>.<phase>" and "cascade.total.<phase>".
const (
	// TimerName is the registry name of the cascade phase timer.
	TimerName = "cascade"
	// PhaseHelper is cycles spent in helper phases (hidden time, except
	// through PhaseWait).
	PhaseHelper = "helper"
	// PhaseExec is cycles spent in execution phases (the critical path).
	PhaseExec = "exec"
	// PhaseTransfer is control-transfer overhead, charged to the receiving
	// processor.
	PhaseTransfer = "transfer"
	// PhaseWait is critical-path stall waiting for helper completion; it is
	// zero whenever Options.JumpOut is enabled.
	PhaseWait = "wait"
)

// DefaultOptions returns the configuration used for the paper's headline
// results: 64KB chunks, jump-out enabled, prior parallel section modelled.
func DefaultOptions(h Helper, space *memsim.Space) Options {
	return Options{
		Helper:        h,
		ChunkBytes:    DefaultChunkBytes,
		JumpOut:       true,
		Space:         space,
		PriorParallel: true,
	}
}

// Option adjusts one field of an Options value. Options are built with
// NewOptions, which starts from the paper's headline configuration and
// validates the result:
//
//	opts, err := cascade.NewOptions(
//		cascade.WithHelper(cascade.HelperRestructure),
//		cascade.WithSpace(space),
//	)
//
// The Options struct itself remains exported for callers that prefer
// literal construction; such values are validated by the run drivers.
type Option func(*Options)

// WithHelper selects the helper-phase strategy.
func WithHelper(h Helper) Option { return func(o *Options) { o.Helper = h } }

// WithChunkBytes sets the per-chunk data budget (§2.2).
func WithChunkBytes(n int) Option { return func(o *Options) { o.ChunkBytes = n } }

// WithJumpOut toggles §3.3's jump-out-of-helper-on-signal refinement.
func WithJumpOut(on bool) Option { return func(o *Options) { o.JumpOut = on } }

// WithPrecompute makes the restructuring helper apply the loop's
// read-only computation and buffer its results (§2.1).
func WithPrecompute(on bool) Option { return func(o *Options) { o.Precompute = on } }

// WithSpace sets the address space for per-processor sequential buffers
// (required by HelperRestructure).
func WithSpace(s *memsim.Space) Option { return func(o *Options) { o.Space = s } }

// WithPriorParallel toggles modelling of the parallel section that
// precedes the unparallelized loop (data distributed dirty across caches).
func WithPriorParallel(on bool) Option { return func(o *Options) { o.PriorParallel = on } }

// WithKeepState preserves machine cache state across the run, for
// steady-state measurements of repeatedly-invoked loops.
func WithKeepState(on bool) Option { return func(o *Options) { o.KeepState = on } }

// WithCheckpointSink installs a checkpoint receiver (see
// Options.CheckpointSink).
func WithCheckpointSink(sink func(*Checkpoint)) Option {
	return func(o *Options) { o.CheckpointSink = sink }
}

// NewOptions builds a validated Options value: the paper's headline
// configuration (prefetch helper, 64KB chunks, jump-out, prior parallel
// section) with the given adjustments applied in order.
func NewOptions(fns ...Option) (Options, error) {
	o := DefaultOptions(HelperPrefetch, nil)
	for _, fn := range fns {
		fn(&o)
	}
	if err := o.Validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// Validate checks option consistency: a positive chunk budget, a known
// helper, and a buffer space whenever the restructuring helper needs one.
func (o Options) Validate() error {
	if o.ChunkBytes <= 0 {
		return fmt.Errorf("cascade: ChunkBytes = %d", o.ChunkBytes)
	}
	if o.Helper != HelperPrefetch && o.Helper != HelperRestructure {
		return fmt.Errorf("cascade: unknown helper %d", int(o.Helper))
	}
	if o.Helper == HelperRestructure && o.Space == nil {
		return fmt.Errorf("cascade: HelperRestructure requires Options.Space for sequential buffers")
	}
	if o.CheckpointSink != nil && o.Space == nil {
		return fmt.Errorf("cascade: CheckpointSink requires Options.Space (checkpoints capture array values)")
	}
	return nil
}
