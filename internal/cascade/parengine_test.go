package cascade

import (
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// denseLoop builds a fully affine, reentrant streaming loop whose chunk
// footprints are line-disjoint when the chunk size keeps boundaries
// line-aligned — the parallel engine's best case.
func denseLoop(iters int) (*memsim.Space, *loopir.Loop) {
	s := memsim.NewSpace()
	a := s.Alloc("A", iters, 8, 64)
	b := s.Alloc("B", iters, 8, 64)
	out := s.Alloc("OUT", iters, 8, 64)
	a.Fill(func(i int) float64 { return float64(i % 97) })
	b.Fill(func(i int) float64 { return float64(i % 89) })
	l := &loopir.Loop{
		Name:  "dense",
		Iters: iters,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Ident},
			{Array: b, Index: loopir.Ident},
		},
		Writes:    []loopir.Ref{{Array: out, Index: loopir.Ident}},
		PreCycles: 4, FinalCycles: 2,
		NPre: 1,
		NewPre: func() func(int, []float64) []float64 {
			return func(_ int, ro []float64) []float64 {
				return []float64{ro[0] + 2*ro[1]}
			}
		},
		NewFinal: func() func(int, []float64, []float64) []float64 {
			return func(_ int, pre, _ []float64) []float64 { return pre }
		},
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return s, l
}

// accumLoop builds a loop whose every chunk writes the same one-element
// accumulator line, so no two chunks can ever be admitted together.
func accumLoop(iters int) (*memsim.Space, *loopir.Loop) {
	s := memsim.NewSpace()
	a := s.Alloc("A", iters, 8, 64)
	acc := s.Alloc("ACC", 1, 8, 64)
	a.Fill(func(i int) float64 { return float64(i % 61) })
	accRef := loopir.Ref{Array: acc, Index: loopir.Affine{}}
	l := &loopir.Loop{
		Name:  "accum",
		Iters: iters,
		RO:    []loopir.Ref{{Array: a, Index: loopir.Ident}},
		RW:    []loopir.Ref{accRef},
		Writes: []loopir.Ref{
			accRef,
		},
		PreCycles: 3, FinalCycles: 2,
		NPre: 1,
		NewPre: func() func(int, []float64) []float64 {
			return func(_ int, ro []float64) []float64 { return []float64{ro[0] * ro[0]} }
		},
		NewFinal: func() func(int, []float64, []float64) []float64 {
			return func(_ int, pre, rw []float64) []float64 { return []float64{rw[0] + pre[0]} }
		},
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return s, l
}

// captureEngaged installs the engagement hook for one test.
func captureEngaged(t *testing.T) *[2]int {
	t.Helper()
	var got [2]int
	called := false
	parEngaged = func(admitted, solo int) {
		got = [2]int{admitted, solo}
		called = true
	}
	t.Cleanup(func() {
		parEngaged = nil
		_ = called
	})
	return &got
}

// parOpts builds options under which the parallel engine may engage.
func parOpts(t *testing.T, h Helper, space *memsim.Space, chunkBytes int, jumpOut bool) Options {
	t.Helper()
	opts := DefaultOptions(h, space)
	opts.ChunkBytes = chunkBytes
	opts.JumpOut = jumpOut
	opts.PriorParallel = false
	return opts
}

// TestParallelEngineEngagesAndMatchesSerial is the direct differential:
// a dense loop with line-aligned chunk boundaries must be simulated
// concurrently (every chunk admitted, none solo) and produce a Result
// bit-identical to the serial driver's, for both helpers and both jump-out
// settings.
func TestParallelEngineEngagesAndMatchesSerial(t *testing.T) {
	// 24 bytes/iter and 32-byte lines: chunkBytes a multiple of 96 keeps
	// every array's chunk boundary line-aligned.
	const iters, chunkBytes = 4000, 1920
	for _, h := range []Helper{HelperPrefetch, HelperRestructure} {
		for _, jumpOut := range []bool{true, false} {
			sSer, lSer := denseLoop(iters)
			sPar, lPar := denseLoop(iters)
			mSer := machine.MustNew(machine.PentiumPro(8))
			mPar := machine.MustNew(machine.PentiumPro(8).WithParallel(machine.ParallelOn))

			ser, err := Run(mSer, lSer, parOpts(t, h, sSer, chunkBytes, jumpOut))
			if err != nil {
				t.Fatal(err)
			}
			got := captureEngaged(t)
			par, err := Run(mPar, lPar, parOpts(t, h, sPar, chunkBytes, jumpOut))
			if err != nil {
				t.Fatal(err)
			}
			label := h.String()
			if !jumpOut {
				label += "/nojump"
			}
			if got[0] == 0 {
				t.Errorf("%s: parallel engine admitted no chunks (solo %d)", label, got[1])
			}
			if got[1] != 0 {
				t.Errorf("%s: expected full admission, got %d solo chunks", label, got[1])
			}
			coalesceDiff(t, label, par, ser)
			if eq, idx := lPar.Writes[0].Array.Equal(lSer.Writes[0].Array.Snapshot()); !eq {
				t.Errorf("%s: outputs diverge at element %d", label, idx)
			}
			parEngaged = nil
		}
	}
}

// denseLoopAligned is denseLoop with caller-controlled array alignment,
// so tests can place array bases on (or off) L2-line boundaries.
func denseLoopAligned(iters, align int) (*memsim.Space, *loopir.Loop) {
	s := memsim.NewSpace()
	a := s.Alloc("A", iters, 8, align)
	b := s.Alloc("B", iters, 8, align)
	out := s.Alloc("OUT", iters, 8, align)
	a.Fill(func(i int) float64 { return float64(i % 97) })
	b.Fill(func(i int) float64 { return float64(i % 89) })
	l := &loopir.Loop{
		Name:  "dense",
		Iters: iters,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Ident},
			{Array: b, Index: loopir.Ident},
		},
		Writes:    []loopir.Ref{{Array: out, Index: loopir.Ident}},
		PreCycles: 4, FinalCycles: 2,
		NPre: 1,
		NewPre: func() func(int, []float64) []float64 {
			return func(_ int, ro []float64) []float64 {
				return []float64{ro[0] + 2*ro[1]}
			}
		},
		NewFinal: func() func(int, []float64, []float64) []float64 {
			return func(_ int, pre, _ []float64) []float64 { return pre }
		},
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return s, l
}

// TestParallelEnginePrefetchBoundarySnapping is the differential for the
// R10000 admission gap: with compiler prefetch on, a chunk budget whose
// raw iteration count straddles L2 lines used to leave every chunk pair
// sharing boundary lines (and the old reach-extended footprints overlapped
// outright), so dense sweeps ran solo. Boundary snapping rounds the chunk
// size down to the loop's alignment quantum — 16 iterations here
// (128 B L2 line / 8 B elements) — and the wind-down model keeps every
// prefetch inside the tight span, so the same sweep is now fully admitted
// and still bit-identical to the serial driver.
func TestParallelEnginePrefetchBoundarySnapping(t *testing.T) {
	// 1000 B / 24 B-per-iter = 41 iterations — deliberately not a
	// multiple of the 16-iteration quantum, so admission depends on the
	// snapping pass, not on a lucky budget.
	const iters, chunkBytes = 4000, 1000
	if align := chunkAlign(machine.R10000(8), func() *loopir.Loop {
		_, l := denseLoopAligned(iters, 128)
		return l
	}()); align != 16 {
		t.Fatalf("chunkAlign = %d, want 16", align)
	}
	for _, h := range []Helper{HelperPrefetch, HelperRestructure} {
		sSer, lSer := denseLoopAligned(iters, 128)
		sPar, lPar := denseLoopAligned(iters, 128)
		mSer := machine.MustNew(machine.R10000(8))
		mPar := machine.MustNew(machine.R10000(8).WithParallel(machine.ParallelOn))

		ser, err := Run(mSer, lSer, parOpts(t, h, sSer, chunkBytes, true))
		if err != nil {
			t.Fatal(err)
		}
		got := captureEngaged(t)
		par, err := Run(mPar, lPar, parOpts(t, h, sPar, chunkBytes, true))
		if err != nil {
			t.Fatal(err)
		}
		label := "r10000/" + h.String()
		if got[0] == 0 {
			t.Errorf("%s: no chunks admitted (solo %d); snapping did not close the gap", label, got[1])
		}
		if got[1] != 0 {
			t.Errorf("%s: expected full admission, got %d solo chunks", label, got[1])
		}
		coalesceDiff(t, label, par, ser)
		if eq, idx := lPar.Writes[0].Array.Equal(lSer.Writes[0].Array.Snapshot()); !eq {
			t.Errorf("%s: outputs diverge at element %d", label, idx)
		}
		parEngaged = nil
	}
	// A written array based mid-L2-line admits no quantum; the snapped
	// split must then degrade to the plain one.
	sOff := memsim.NewSpace()
	aOff := sOff.Alloc("A", iters, 8, 128)
	outOff := sOff.AllocAt("OUT", iters, 8, 64, 128)
	lOff := &loopir.Loop{
		Name: "offdense", Iters: iters,
		RO:     []loopir.Ref{{Array: aOff, Index: loopir.Ident}},
		Writes: []loopir.Ref{{Array: outOff, Index: loopir.Ident}},
	}
	if align := chunkAlign(machine.R10000(8), lOff); align != 1 {
		t.Errorf("chunkAlign on a mid-line write base = %d, want 1", align)
	}
}

// TestParallelEngineSoloFallback: when every chunk writes one shared
// accumulator line, only the first chunk can be admitted; the rest must
// run inline through the serial body — and the Result must still be
// bit-identical.
func TestParallelEngineSoloFallback(t *testing.T) {
	const iters, chunkBytes = 2000, 960
	sSer, lSer := accumLoop(iters)
	sPar, lPar := accumLoop(iters)
	ser, err := Run(machine.MustNew(machine.PentiumPro(4)), lSer, parOpts(t, HelperPrefetch, sSer, chunkBytes, true))
	if err != nil {
		t.Fatal(err)
	}
	got := captureEngaged(t)
	par, err := Run(machine.MustNew(machine.PentiumPro(4).WithParallel(machine.ParallelOn)),
		lPar, parOpts(t, HelperPrefetch, sPar, chunkBytes, true))
	if err != nil {
		t.Fatal(err)
	}
	if got[0]+got[1] == 0 {
		t.Fatal("parallel engine did not run")
	}
	if got[1] == 0 {
		t.Errorf("expected solo fallbacks for conflicting chunks, got admitted=%d solo=%d", got[0], got[1])
	}
	coalesceDiff(t, "accum", par, ser)
	if eq, idx := lPar.Writes[0].Array.Equal(lSer.Writes[0].Array.Snapshot()); !eq {
		t.Errorf("outputs diverge at element %d", idx)
	}
}

// TestParallelEngineGates: configurations that cannot be proven safe must
// fall back to the fully serial driver (engine never constructed).
func TestParallelEngineGates(t *testing.T) {
	const iters, chunkBytes = 2000, 960
	cases := []struct {
		name string
		cfg  machine.Config
		prep func(*Options, *loopir.Loop)
	}{
		{"knob-off", machine.PentiumPro(4), nil},
		{"one-proc", machine.PentiumPro(1).WithParallel(machine.ParallelOn), nil},
		{"prior-parallel", machine.PentiumPro(4).WithParallel(machine.ParallelOn),
			func(o *Options, _ *loopir.Loop) { o.PriorParallel = true }},
		{"keep-state", machine.PentiumPro(4).WithParallel(machine.ParallelOn),
			func(o *Options, _ *loopir.Loop) { o.KeepState = true }},
		{"non-reentrant", machine.PentiumPro(4).WithParallel(machine.ParallelOn),
			func(_ *Options, l *loopir.Loop) { l.NewPre, l.NewFinal = nil, nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, l := denseLoop(iters)
			opts := parOpts(t, HelperPrefetch, s, chunkBytes, true)
			if tc.prep != nil {
				tc.prep(&opts, l)
			}
			got := captureEngaged(t)
			if _, err := Run(machine.MustNew(tc.cfg), l, opts); err != nil {
				t.Fatal(err)
			}
			if got[0]+got[1] != 0 {
				t.Errorf("engine engaged (admitted=%d solo=%d); want serial fallback", got[0], got[1])
			}
		})
	}
}

// TestLoopShapesRejectsUnknownIndex: an index expression the footprint
// analysis does not know defeats the whole-loop analysis.
type opaqueIndex struct{ loopir.Affine }

func TestLoopShapesRejectsUnknownIndex(t *testing.T) {
	s := memsim.NewSpace()
	a := s.Alloc("A", 64, 8, 64)
	l := &loopir.Loop{
		Name: "opaque", Iters: 64,
		RO: []loopir.Ref{{Array: a, Index: opaqueIndex{loopir.Ident}}},
	}
	if _, ok := loopShapes(l); ok {
		t.Error("loopShapes accepted an unknown index expression")
	}
}

// TestFootprintSpans pins the span algebra: normalization merges
// overlapping and adjacent runs, and the overlap walk detects exactly the
// sharing cases the admission predicate cares about.
func TestFootprintSpans(t *testing.T) {
	n := normalize([]span{{lo: 256, hi: 320}, {lo: 0, hi: 64}, {lo: 64, hi: 128}, {lo: 32, hi: 96}})
	want := []span{{lo: 0, hi: 128}, {lo: 256, hi: 320}}
	if len(n) != len(want) || n[0] != want[0] || n[1] != want[1] {
		t.Errorf("normalize = %v, want %v", n, want)
	}
	if spansOverlap(n, []span{{lo: 128, hi: 256}}) {
		t.Error("disjoint spans reported overlapping")
	}
	if !spansOverlap(n, []span{{lo: 300, hi: 301}}) {
		t.Error("contained span not reported overlapping")
	}
}

// TestFootprintChunkSpans pins the per-chunk footprint construction:
// affine references get tight line-aligned ranges (prefetch wind-down
// guarantees no access lands beyond them), indirect references cover the
// table walk tightly plus the whole target array.
func TestFootprintChunkSpans(t *testing.T) {
	s := memsim.NewSpace()
	a := s.Alloc("A", 1024, 8, 4096)
	tbl := s.Alloc("T", 1024, 4, 4096)
	g := s.Alloc("G", 1024, 8, 4096)
	l := &loopir.Loop{
		Name: "mix", Iters: 1024,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Ident},
			{Array: g, Index: loopir.Indirect{Tbl: tbl, Entry: loopir.Ident}},
		},
	}
	shapes, ok := loopShapes(l)
	if !ok {
		t.Fatal("loopShapes rejected an analyzable loop")
	}
	const l2 = 32
	fp := chunkFoot(shapes, Chunk{Lo: 8, Hi: 16}, l2, nil)
	if len(fp.wr) != 0 {
		t.Errorf("read-only loop has write spans: %v", fp.wr)
	}
	find := func(arr *memsim.Array) (span, bool) {
		base := arr.Base()
		end := base + memsim.Addr(arr.SizeBytes())
		for _, sp := range fp.rd {
			if sp.lo >= base && sp.hi <= end {
				return sp, true
			}
		}
		return span{}, false
	}
	// A: elements [8,16) = bytes [64,128), tight.
	if sp, ok := find(a); !ok || sp.lo != a.Base()+64 || sp.hi != a.Base()+128 {
		t.Errorf("affine span = %v (base %v)", sp, a.Base())
	}
	// G: whole array.
	if sp, ok := find(g); !ok || sp.lo != g.Base() || sp.hi != g.Base()+memsim.Addr(g.SizeBytes()) {
		t.Errorf("indirect target span = %v (base %v)", sp, g.Base())
	}
	// T: entries [8,16) of 4 bytes = bytes [32,64), tight.
	if sp, ok := find(tbl); !ok || sp.lo != tbl.Base()+32 || sp.hi != tbl.Base()+64 {
		t.Errorf("table span = %v (base %v)", sp, tbl.Base())
	}
}

// TestParallelEngineCoherenceForcing drives the engine through a cascade
// whose chunk boundaries split cache lines: consecutive chunks land on
// different simulated processors but write the same boundary lines, so
// the serial cascade generates genuine cross-processor invalidation
// traffic. The footprint admission must see exactly those overlaps,
// serialize through the solo path, and reproduce the coherence activity
// bit for bit — including the bus counters.
func TestParallelEngineCoherenceForcing(t *testing.T) {
	// 24 bytes/iter; 1000-byte chunks put every chunk boundary mid-line
	// on the Pentium Pro's 32-byte lines.
	const iters, chunkBytes = 4000, 1000
	sSer, lSer := denseLoop(iters)
	sPar, lPar := denseLoop(iters)
	mSer := machine.MustNew(machine.PentiumPro(4))
	mPar := machine.MustNew(machine.PentiumPro(4).WithParallel(machine.ParallelOn))

	ser, err := Run(mSer, lSer, parOpts(t, HelperPrefetch, sSer, chunkBytes, true))
	if err != nil {
		t.Fatal(err)
	}
	if inv := mSer.Bus().Stats().InvalidationsOut; inv == 0 {
		t.Fatal("serial cascade produced no invalidations; the test is not forcing coherence")
	}
	got := captureEngaged(t)
	par, err := Run(mPar, lPar, parOpts(t, HelperPrefetch, sPar, chunkBytes, true))
	if err != nil {
		t.Fatal(err)
	}
	if got[0]+got[1] == 0 {
		t.Fatal("parallel engine did not run")
	}
	if got[1] == 0 {
		t.Errorf("boundary-sharing chunks were all admitted (admitted=%d); conflicts went undetected", got[0])
	}
	coalesceDiff(t, "coherence-forcing", par, ser)
	if serBus, parBus := mSer.Bus().Stats(), mPar.Bus().Stats(); serBus != parBus {
		t.Errorf("bus stats diverge:\nserial   %+v\nparallel %+v", serBus, parBus)
	}
	if eq, idx := lPar.Writes[0].Array.Equal(lSer.Writes[0].Array.Snapshot()); !eq {
		t.Errorf("outputs diverge at element %d", idx)
	}
}
