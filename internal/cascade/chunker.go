package cascade

import (
	"fmt"

	"repro/internal/loopir"
)

// Chunk is a contiguous range of loop iterations [Lo, Hi) executed by one
// processor in one execution phase.
type Chunk struct {
	Lo, Hi int
}

// Iters returns the number of iterations in the chunk.
func (c Chunk) Iters() int { return c.Hi - c.Lo }

// String implements fmt.Stringer.
func (c Chunk) String() string { return fmt.Sprintf("[%d,%d)", c.Lo, c.Hi) }

// ItersPerChunk returns how many iterations fit the byte budget, using the
// loop's bytes-per-iteration estimate (§2.2). At least one iteration per
// chunk.
func ItersPerChunk(l *loopir.Loop, chunkBytes int) int {
	per := chunkBytes / l.BytesPerIter()
	if per < 1 {
		per = 1
	}
	return per
}

// Split partitions the loop's iteration space into chunks of at most
// chunkBytes estimated bytes each. Every iteration belongs to exactly one
// chunk and chunks are in increasing order — sequential semantics are
// preserved by executing them in slice order.
func Split(l *loopir.Loop, chunkBytes int) []Chunk {
	per := ItersPerChunk(l, chunkBytes)
	chunks := make([]Chunk, 0, (l.Iters+per-1)/per)
	for lo := 0; lo < l.Iters; lo += per {
		hi := lo + per
		if hi > l.Iters {
			hi = l.Iters
		}
		chunks = append(chunks, Chunk{Lo: lo, Hi: hi})
	}
	return chunks
}
