package cascade

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// Chunk is a contiguous range of loop iterations [Lo, Hi) executed by one
// processor in one execution phase.
type Chunk struct {
	Lo, Hi int
}

// Iters returns the number of iterations in the chunk.
func (c Chunk) Iters() int { return c.Hi - c.Lo }

// String implements fmt.Stringer.
func (c Chunk) String() string { return fmt.Sprintf("[%d,%d)", c.Lo, c.Hi) }

// ItersPerChunk returns how many iterations fit the byte budget, using the
// loop's bytes-per-iteration estimate (§2.2). At least one iteration per
// chunk.
func ItersPerChunk(l *loopir.Loop, chunkBytes int) int {
	per := chunkBytes / l.BytesPerIter()
	if per < 1 {
		per = 1
	}
	return per
}

// Split partitions the loop's iteration space into chunks of at most
// chunkBytes estimated bytes each. Every iteration belongs to exactly one
// chunk and chunks are in increasing order — sequential semantics are
// preserved by executing them in slice order.
func Split(l *loopir.Loop, chunkBytes int) []Chunk {
	return splitPer(l, ItersPerChunk(l, chunkBytes))
}

// SplitFor is the machine-aware Split the run drivers use: on
// compiler-prefetch machines it snaps the chunk size down to the loop's
// boundary-alignment quantum (see chunkAlign), so the footprint analysis
// sees chunk write spans that meet exactly at L2-line boundaries instead
// of sharing a straddled line. On machines without compiler prefetch it
// is identical to Split.
func SplitFor(cfg machine.Config, l *loopir.Loop, chunkBytes int) []Chunk {
	return splitPer(l, snappedPer(cfg, l, chunkBytes))
}

// snappedPer returns the per-chunk iteration count after boundary
// snapping: the byte budget's count rounded down to a multiple of the
// alignment quantum. When the budget holds fewer iterations than one
// quantum the unsnapped count is kept — a short chunk cannot be aligned,
// and admission then rejects it exactly as before this pass existed.
func snappedPer(cfg machine.Config, l *loopir.Loop, chunkBytes int) int {
	per := ItersPerChunk(l, chunkBytes)
	if align := chunkAlign(cfg, l); align > 1 {
		if snapped := per / align * align; snapped > 0 {
			per = snapped
		}
	}
	return per
}

func splitPer(l *loopir.Loop, per int) []Chunk {
	chunks := make([]Chunk, 0, (l.Iters+per-1)/per)
	for lo := 0; lo < l.Iters; lo += per {
		hi := lo + per
		if hi > l.Iters {
			hi = l.Iters
		}
		chunks = append(chunks, Chunk{Lo: lo, Hi: hi})
	}
	return chunks
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// chunkAlign returns the iteration-count quantum that puts every chunk
// boundary of every affine reference over a *written* array exactly on an
// L2-line boundary, or 1 when no quantum exists (misaligned base/offset,
// indirect writes, unanalyzable loop) or none is needed (no compiler
// prefetch — tight spans already meet only at a shared straddled line,
// which the paper's line-aligned chunk sizes avoid by construction).
//
// This is what closes the documented R10000 admission gap: with prefetch
// wind-down keeping every access inside the tight span, the only
// remaining cross-chunk contact is a chunk boundary landing mid-line.
// Snapping the chunk size to a multiple of this quantum makes adjacent
// write spans meet exactly at coherence granularity, so footprint
// admission sees them as disjoint.
func chunkAlign(cfg machine.Config, l *loopir.Loop) int {
	if !cfg.CompilerPrefetch.Enabled || l.NoCompilerPrefetch {
		return 1
	}
	shapes, ok := loopShapes(l)
	if !ok {
		return 1
	}
	written := make(map[*memsim.Array]bool)
	for _, s := range shapes {
		if s.write {
			written[s.arr] = true
		}
	}
	l2 := cfg.L2.LineSize
	align := 1
	for _, s := range shapes {
		if s.whole || s.scale == 0 || !written[s.arr] {
			continue
		}
		elem := s.arr.ElemSize()
		// The boundary byte between consecutive chunks at iteration b is
		// base + (scale*b + off)*elem for ascending references and
		// base + (scale*b + off - scale)*elem for descending ones (the
		// low edge of the chunk ending at b). Alignment at every multiple
		// of the quantum needs the constant term L2-aligned and the
		// per-quantum increment scale*per*elem ≡ 0 (mod l2).
		boundOff := s.off
		if s.scale < 0 {
			boundOff = s.off - s.scale
		}
		if (int(s.arr.Base())+boundOff*elem)%l2 != 0 {
			return 1
		}
		abs := s.scale
		if abs < 0 {
			abs = -abs
		}
		align = lcm(align, l2/gcd(l2, abs*elem))
	}
	return align
}
