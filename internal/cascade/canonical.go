package cascade

import "repro/internal/canon"

// CanonicalBytes returns the options' canonical serialization, the
// options half of a simulation point's content-addressed cache key (see
// internal/server). Defaults are resolved before encoding so that a
// default-filled value and an explicitly-spelled one hash equal:
//
//   - ChunkBytes 0 encodes as DefaultChunkBytes (the run drivers would
//     reject 0, but option builders treat "unset" as the paper default);
//   - Space encodes as a presence flag, not the space contents. Buffer
//     placement inside a workload's address space is determined by the
//     workload itself, which the key's caller identifies separately; the
//     pointer's identity carries no extra observable information.
func (o Options) CanonicalBytes() ([]byte, error) {
	if o.ChunkBytes == 0 {
		o.ChunkBytes = DefaultChunkBytes
	}
	hasSpace := o.Space != nil
	o.Space = nil
	m, err := canon.Map(o)
	if err != nil {
		return nil, err
	}
	m["Space"] = hasSpace
	return canon.JSON(m)
}
