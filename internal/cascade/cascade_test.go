package cascade

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// buildWorkload constructs a PARMVR-flavoured loop: an indirect
// read-modify-write scatter plus two read-only streams, with the arrays
// deliberately placed at the same L1-set congruence (PentiumPro way size
// 4KB) so that conflict misses matter, as in the paper's loops.
func buildWorkload(n int, conflict bool) (*memsim.Space, *loopir.Loop, *memsim.Array) {
	s := memsim.NewSpace()
	alloc := func(name string, n, elem int) *memsim.Array {
		if conflict {
			return s.AllocAt(name, n, elem, 0, 4096)
		}
		return s.Alloc(name, n, elem, elem)
	}
	x := alloc("X", n, 8)
	ij := alloc("IJ", n, 4)
	a := alloc("A", n, 8)
	b := alloc("B", n, 8)
	x.Fill(func(i int) float64 { return float64(i % 97) })
	ij.Fill(func(i int) float64 { return float64(i) })
	a.Fill(func(i int) float64 { return float64(i % 13) })
	b.Fill(func(i int) float64 { return float64(i % 7) })
	xref := loopir.Ref{Array: x, Index: loopir.Indirect{Tbl: ij, Entry: loopir.Ident}}
	l := &loopir.Loop{
		Name:  "test",
		Iters: n,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Ident},
			{Array: b, Index: loopir.Ident},
		},
		RW:          []loopir.Ref{xref},
		Writes:      []loopir.Ref{xref},
		PreCycles:   2,
		FinalCycles: 2,
		NPre:        1,
		Pre:         func(_ int, ro []float64) []float64 { return []float64{ro[0] + 2*ro[1]} },
		Final: func(_ int, pre, rw []float64) []float64 {
			return []float64{rw[0] + pre[0]}
		},
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return s, l, x
}

func TestSplitCoversAllIterationsInOrder(t *testing.T) {
	f := func(rawIters uint16, rawChunk uint16) bool {
		s := memsim.NewSpace()
		a := s.Alloc("A", 70000, 8, 8)
		c := s.Alloc("C", 70000, 8, 8)
		l := &loopir.Loop{
			Name:   "cov",
			Iters:  1 + int(rawIters),
			RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
			Writes: []loopir.Ref{{Array: c, Index: loopir.Ident}},
			Final:  func(_ int, pre, _ []float64) []float64 { return pre },
		}
		chunkBytes := 1 + int(rawChunk)
		chunks := Split(l, chunkBytes)
		next := 0
		for _, ch := range chunks {
			if ch.Lo != next || ch.Hi <= ch.Lo {
				return false
			}
			next = ch.Hi
		}
		return next == l.Iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestItersPerChunkMinimumOne(t *testing.T) {
	s := memsim.NewSpace()
	a := s.Alloc("A", 10, 8, 8)
	c := s.Alloc("C", 10, 8, 8)
	l := &loopir.Loop{
		Name: "tiny", Iters: 10,
		RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
		Writes: []loopir.Ref{{Array: c, Index: loopir.Ident}},
		Final:  func(_ int, pre, _ []float64) []float64 { return pre },
	}
	if got := ItersPerChunk(l, 1); got != 1 {
		t.Errorf("ItersPerChunk(1 byte) = %d, want 1", got)
	}
	if got := ItersPerChunk(l, 160); got != 10 {
		t.Errorf("ItersPerChunk(160) = %d, want 10 (16 B/iter)", got)
	}
}

func TestChunkAccessors(t *testing.T) {
	c := Chunk{Lo: 10, Hi: 25}
	if c.Iters() != 15 {
		t.Errorf("Iters = %d", c.Iters())
	}
	if c.String() != "[10,25)" {
		t.Errorf("String = %q", c.String())
	}
}

func TestOptionsValidation(t *testing.T) {
	s := memsim.NewSpace()
	cases := []struct {
		name string
		o    Options
	}{
		{"zero chunk", Options{Helper: HelperPrefetch, ChunkBytes: 0}},
		{"bad helper", Options{Helper: Helper(9), ChunkBytes: 1024}},
		{"restructure without space", Options{Helper: HelperRestructure, ChunkBytes: 1024}},
	}
	for _, c := range cases {
		if err := c.o.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	ok := DefaultOptions(HelperRestructure, s)
	if err := ok.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	if ok.ChunkBytes != DefaultChunkBytes || !ok.JumpOut || !ok.PriorParallel {
		t.Errorf("DefaultOptions = %+v", ok)
	}
}

func TestHelperString(t *testing.T) {
	if HelperPrefetch.String() != "prefetched" || HelperRestructure.String() != "restructured" {
		t.Error("Helper names wrong")
	}
	if Helper(7).String() == "" {
		t.Error("unknown helper should still render")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	_, l, _ := buildWorkload(256, false)
	m := machine.MustNew(machine.PentiumPro(2))
	if _, err := Run(m, l, Options{Helper: HelperRestructure, ChunkBytes: 1024}); err == nil {
		t.Error("expected error for restructure without space")
	}
	if _, err := RunUnbounded(machine.PentiumPro(1), l, Options{ChunkBytes: 0}); err == nil {
		t.Error("expected error for zero chunk bytes")
	}
}

// TestCascadedMatchesSequentialValues is the fundamental correctness
// property: cascaded execution, in every configuration, computes exactly
// what sequential execution computes.
func TestCascadedMatchesSequentialValues(t *testing.T) {
	const n = 3000
	sref, lref, xref := buildWorkload(n, true)
	_ = sref
	mseq := machine.MustNew(machine.PentiumPro(1))
	RunSequential(mseq, lref, true)
	want := xref.Snapshot()

	configs := []struct {
		name    string
		helper  Helper
		jumpOut bool
		procs   int
	}{
		{"prefetch 4p jumpout", HelperPrefetch, true, 4},
		{"prefetch 2p wait", HelperPrefetch, false, 2},
		{"restructure 4p jumpout", HelperRestructure, true, 4},
		{"restructure 3p wait", HelperRestructure, false, 3},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			s, l, x := buildWorkload(n, true)
			m := machine.MustNew(machine.PentiumPro(c.procs))
			opts := Options{
				Helper:        c.helper,
				ChunkBytes:    4 * 1024,
				JumpOut:       c.jumpOut,
				Space:         s,
				PriorParallel: true,
			}
			res, err := Run(m, l, opts)
			if err != nil {
				t.Fatal(err)
			}
			if eq, idx := x.Equal(want); !eq {
				t.Errorf("values differ from sequential at %d", idx)
			}
			if res.Chunks < 2 {
				t.Errorf("only %d chunks; test should cascade", res.Chunks)
			}
			if res.Cycles != res.ExecCycles+res.TransferCycles && c.jumpOut {
				t.Errorf("jump-out makespan %d != exec %d + transfer %d",
					res.Cycles, res.ExecCycles, res.TransferCycles)
			}
		})
	}
}

func TestUnboundedMatchesSequentialValues(t *testing.T) {
	const n = 3000
	_, lref, xref := buildWorkload(n, false)
	mseq := machine.MustNew(machine.PentiumPro(1))
	RunSequential(mseq, lref, false)
	want := xref.Snapshot()

	for _, h := range []Helper{HelperPrefetch, HelperRestructure} {
		s, l, x := buildWorkload(n, false)
		opts := Options{Helper: h, ChunkBytes: 4 * 1024, JumpOut: true, Space: s}
		res, err := RunUnbounded(machine.PentiumPro(4), l, opts)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if eq, idx := x.Equal(want); !eq {
			t.Errorf("%v: values differ at %d", h, idx)
		}
		if res.HelperCompletion() != 1.0 {
			t.Errorf("%v: unbounded helper completion = %v, want 1", h, res.HelperCompletion())
		}
		if res.Procs != -1 {
			t.Errorf("Procs = %d, want -1 sentinel", res.Procs)
		}
	}
}

func TestCascadeSpeedsUpConflictWorkload(t *testing.T) {
	// The paper's core claim at small scale: with conflicting arrays and a
	// prior parallel section, cascaded restructured execution beats the
	// sequential baseline.
	const n = 20000
	_, lseq, _ := buildWorkload(n, true)
	base := RunSequential(machine.MustNew(machine.PentiumPro(4)), lseq, true)

	s, l, _ := buildWorkload(n, true)
	res := MustRun(machine.MustNew(machine.PentiumPro(4)), l, DefaultOptions(HelperRestructure, s))
	sp := res.SpeedupOver(base)
	if sp <= 1.0 {
		t.Errorf("restructured cascade speedup = %.3f, want > 1 (base %d, cascaded %d)",
			sp, base.Cycles, res.Cycles)
	}
}

func TestMoreProcessorsHelpMore(t *testing.T) {
	// More processors give each helper a longer idle window, so helper
	// completion must be monotonically non-decreasing in P (§3.3).
	const n = 20000
	var prev float64 = -1
	for _, procs := range []int{2, 4, 8} {
		s, l, _ := buildWorkload(n, true)
		res := MustRun(machine.MustNew(machine.PentiumPro(procs)), l,
			DefaultOptions(HelperRestructure, s))
		hc := res.HelperCompletion()
		if hc < prev-0.02 { // small tolerance: cache interactions are not strictly monotone
			t.Errorf("helper completion fell from %.3f to %.3f at %d procs", prev, hc, procs)
		}
		prev = hc
	}
}

func TestRestructureReducesMisses(t *testing.T) {
	const n = 20000
	_, lseq, _ := buildWorkload(n, true)
	base := RunSequential(machine.MustNew(machine.PentiumPro(4)), lseq, true)

	s, l, _ := buildWorkload(n, true)
	res := MustRun(machine.MustNew(machine.PentiumPro(4)), l, DefaultOptions(HelperRestructure, s))
	// The paper's Figures 4/5 count the misses the execution phases
	// observe (helper misses are off the critical path). Those must drop
	// sharply under restructuring.
	if res.ExecL2.Misses >= base.ExecL2.Misses/2 {
		t.Errorf("restructured exec L2 misses %d not well below sequential %d",
			res.ExecL2.Misses, base.ExecL2.Misses)
	}
	if res.ExecL1.Misses >= base.ExecL1.Misses {
		t.Errorf("restructured exec L1 misses %d not below sequential %d",
			res.ExecL1.Misses, base.ExecL1.Misses)
	}
}

func TestJumpOutBeatsWaiting(t *testing.T) {
	// §3.3: jumping out of the helper phase on signal improves (or at
	// least does not hurt) the makespan versus waiting for completion.
	const n = 20000
	run := func(jumpOut bool) int64 {
		s, l, _ := buildWorkload(n, true)
		opts := DefaultOptions(HelperPrefetch, s)
		opts.JumpOut = jumpOut
		opts.ChunkBytes = 16 * 1024
		return MustRun(machine.MustNew(machine.PentiumPro(2)), l, opts).Cycles
	}
	jump, wait := run(true), run(false)
	if jump > wait {
		t.Errorf("jump-out (%d cy) slower than waiting (%d cy)", jump, wait)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Strategy: "prefetched", Procs: 4, Cycles: 500, HelperIters: 50, TotalIters: 100}
	b := Result{Cycles: 1000}
	if got := r.SpeedupOver(b); got != 2.0 {
		t.Errorf("SpeedupOver = %v", got)
	}
	if got := r.HelperCompletion(); got != 0.5 {
		t.Errorf("HelperCompletion = %v", got)
	}
	if (Result{}).HelperCompletion() != 0 {
		t.Error("empty HelperCompletion should be 0")
	}
	if (Result{}).SpeedupOver(b) != 0 {
		t.Error("zero-cycle SpeedupOver should be 0")
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestSequentialBaselineHelper(t *testing.T) {
	_, l, _ := buildWorkload(1000, false)
	res, err := SequentialBaseline(machine.PentiumPro(4), l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "sequential" || res.Cycles <= 0 {
		t.Errorf("baseline = %+v", res)
	}
}

// TestChunkSizeTradeoff reproduces the two forces behind Figure 6 at
// miniature scale: chunks far beyond the caches lose the helper's warming
// (capacity), and — once the per-transfer cost is significant relative to
// chunk work, as it is at full scale — tiny chunks pay for it in transfer
// overhead.
func TestChunkSizeTradeoff(t *testing.T) {
	const n = 30000
	run := func(kb int, transfer int64) Result {
		s, l, _ := buildWorkload(n, true)
		cfg := machine.PentiumPro(4)
		if transfer > 0 {
			cfg.TransferCycles = transfer
		}
		opts := DefaultOptions(HelperRestructure, s)
		opts.ChunkBytes = kb * 1024
		return MustRun(machine.MustNew(cfg), l, opts)
	}
	// Capacity side: 16KB chunks (fit L2 easily) beat 2MB chunks (bigger
	// than the whole workload — degenerates to one warm-up-less chunk).
	small, huge := run(16, 0), run(2048, 0)
	if small.Cycles >= huge.Cycles {
		t.Errorf("capacity effect missing: 16KB=%d >= 2048KB=%d", small.Cycles, huge.Cycles)
	}
	// Transfer side: with an expensive transfer, 1KB chunks lose to 16KB.
	tiny, mid := run(1, 5000), run(16, 5000)
	if mid.Cycles >= tiny.Cycles {
		t.Errorf("transfer effect missing: 16KB=%d >= 1KB=%d", mid.Cycles, tiny.Cycles)
	}
	if tiny.Chunks <= mid.Chunks {
		t.Errorf("chunk counts inverted: %d vs %d", tiny.Chunks, mid.Chunks)
	}
}

func TestRandomizedStrategyEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(2000)
		_, lref, xref := buildWorkload(n, rng.Intn(2) == 0)
		RunSequential(machine.MustNew(machine.PentiumPro(1)), lref, rng.Intn(2) == 0)
		want := xref.Snapshot()

		s, l, x := buildWorkload(n, rng.Intn(2) == 0)
		helper := HelperPrefetch
		if rng.Intn(2) == 0 {
			helper = HelperRestructure
		}
		opts := Options{
			Helper:        helper,
			ChunkBytes:    512 * (1 + rng.Intn(64)),
			JumpOut:       rng.Intn(2) == 0,
			Space:         s,
			PriorParallel: rng.Intn(2) == 0,
		}
		procs := 2 + rng.Intn(6)
		MustRun(machine.MustNew(machine.PentiumPro(procs)), l, opts)
		eq, _ := x.Equal(want)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
