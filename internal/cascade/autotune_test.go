package cascade

import (
	"errors"
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

func tuneBuild(n int) func() (*memsim.Space, *loopir.Loop, error) {
	return func() (*memsim.Space, *loopir.Loop, error) {
		s, l, _ := buildWorkload(n, true)
		return s, l, nil
	}
}

func TestAutoTuneSelectsReasonableSize(t *testing.T) {
	const n = 60000
	cfg := machine.PentiumPro(4)
	best, trials, err := AutoTune(cfg, tuneBuild(n), HelperRestructure, []int{4, 64, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 3 {
		t.Fatalf("trials = %d", len(trials))
	}
	// 2MB chunks exceed the whole probe (and the caches): they must not win.
	if best == 2048*1024 {
		t.Errorf("AutoTune chose 2MB chunks (trials: %+v)", trials)
	}
	// The winner must actually have the lowest cycles-per-iteration.
	for _, tr := range trials {
		winner := trialFor(trials, best)
		if tr.CyclesPerIter < winner.CyclesPerIter {
			t.Errorf("trial %dKB (%.2f cy/it) beats winner %dKB (%.2f cy/it)",
				tr.ChunkBytes/1024, tr.CyclesPerIter, best/1024, winner.CyclesPerIter)
		}
	}
}

func trialFor(trials []TuneTrial, bytes int) TuneTrial {
	for _, tr := range trials {
		if tr.ChunkBytes == bytes {
			return tr
		}
	}
	return TuneTrial{}
}

func TestAutoTuneDefaultGrid(t *testing.T) {
	const n = 30000
	best, trials, err := AutoTune(machine.PentiumPro(2), tuneBuild(n), HelperPrefetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != len(DefaultTuneSizesKB) {
		t.Errorf("trials = %d, want %d", len(trials), len(DefaultTuneSizesKB))
	}
	if best <= 0 {
		t.Error("no winner")
	}
}

func TestAutoTuneErrors(t *testing.T) {
	if _, _, err := AutoTune(machine.PentiumPro(2), tuneBuild(1000), HelperPrefetch, []int{0}); err == nil {
		t.Error("zero size accepted")
	}
	boom := errors.New("boom")
	bad := func() (*memsim.Space, *loopir.Loop, error) { return nil, nil, boom }
	if _, _, err := AutoTune(machine.PentiumPro(2), bad, HelperPrefetch, nil); !errors.Is(err, boom) {
		t.Errorf("builder error not propagated: %v", err)
	}
	if _, _, err := AutoTune(machine.PentiumPro(0), tuneBuild(1000), HelperPrefetch, []int{4}); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestProbeItersBounds(t *testing.T) {
	_, l, _ := buildWorkload(100000, false)
	if got := probeIters(l, 4*1024, 4); got > l.Iters {
		t.Errorf("probe exceeds loop: %d", got)
	}
	small, _, _ := buildWorkload(2000, false)
	_ = small
	_, tiny, _ := buildWorkload(2000, false)
	if got := probeIters(tiny, 1024*1024, 8); got != tiny.Iters {
		t.Errorf("probe of tiny loop = %d, want full %d", got, tiny.Iters)
	}
}
