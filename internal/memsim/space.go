package memsim

import (
	"fmt"
	"sort"
)

// baseAddress is where the first allocation lands. A non-zero base keeps
// address zero free so it can serve as an "invalid address" sentinel, and
// mimics real systems where low memory is reserved.
const baseAddress Addr = 0x10000

// Space is a simulated physical address space. It hands out non-overlapping
// address ranges for arrays with caller-controlled alignment, which is how
// workloads engineer (or avoid) cache-set conflicts.
//
// A Space is not safe for concurrent use; the simulator is single-threaded
// by design (it models time explicitly rather than relying on wall-clock
// parallelism).
type Space struct {
	next   Addr
	arrays []*Array
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{next: baseAddress}
}

// Alloc allocates an array of n elements of elemSize bytes, aligned to
// align bytes. align must be a power of two and at least elemSize.
// Element values start at zero.
func (s *Space) Alloc(name string, n, elemSize, align int) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("memsim: Alloc(%q): n must be positive, got %d", name, n))
	}
	if elemSize <= 0 || !IsPow2(elemSize) {
		panic(fmt.Sprintf("memsim: Alloc(%q): elemSize must be a positive power of two, got %d", name, elemSize))
	}
	if !IsPow2(align) || align < elemSize {
		panic(fmt.Sprintf("memsim: Alloc(%q): align must be a power of two >= elemSize, got %d", name, align))
	}
	base := s.next.AlignUp(align)
	a := &Array{
		name: name,
		base: base,
		elem: elemSize,
		data: make([]float64, n),
	}
	s.next = base + Addr(n*elemSize)
	s.arrays = append(s.arrays, a)
	return a
}

// AllocAt allocates like Alloc but first advances the allocation cursor so
// that the array's base address is congruent to want modulo modulus. This is
// the tool for engineering set conflicts: two arrays whose bases are equal
// modulo (cache size / associativity) map their corresponding elements to
// the same cache sets.
//
// modulus must be a power of two and want < modulus.
func (s *Space) AllocAt(name string, n, elemSize int, want, modulus int) *Array {
	if !IsPow2(modulus) || want < 0 || want >= modulus {
		panic(fmt.Sprintf("memsim: AllocAt(%q): invalid congruence %d mod %d", name, want, modulus))
	}
	cur := int(s.next) & (modulus - 1)
	delta := want - cur
	if delta < 0 {
		delta += modulus
	}
	s.next += Addr(delta)
	return s.Alloc(name, n, elemSize, elemSize)
}

// Pad advances the allocation cursor by n bytes without allocating an
// array. Useful for spacing allocations apart.
func (s *Space) Pad(n int) {
	if n < 0 {
		panic("memsim: Pad: negative pad")
	}
	s.next += Addr(n)
}

// Size returns the total extent of the address space in bytes, from the
// base address to the end of the highest allocation.
func (s *Space) Size() int64 {
	return int64(s.next - baseAddress)
}

// Arrays returns the allocated arrays in allocation order.
func (s *Space) Arrays() []*Array {
	out := make([]*Array, len(s.arrays))
	copy(out, s.arrays)
	return out
}

// FindByAddr returns the array containing addr, or nil if the address is
// not part of any allocation. It is O(log n) in the number of arrays.
func (s *Space) FindByAddr(addr Addr) *Array {
	// arrays are allocated at increasing addresses, so they are sorted by base.
	i := sort.Search(len(s.arrays), func(i int) bool {
		return s.arrays[i].base > addr
	})
	if i == 0 {
		return nil
	}
	a := s.arrays[i-1]
	if addr < a.base+Addr(a.SizeBytes()) {
		return a
	}
	return nil
}
