package memsim

import "fmt"

// Copy-on-write checkpointing for array values.
//
// A checkpoint seals every array: the SpaceState aliases each array's
// live backing slice and the array is marked copy-on-write, so the first
// subsequent mutation (Store, Fill, Restore, ...) copies the values into
// fresh private storage and leaves the sealed slice immutable. Taking a
// checkpoint is therefore O(arrays), not O(values), and a workload that
// writes only a few of its arrays between checkpoints pays the copy for
// only those arrays.
//
// RestoreState re-aliases the sealed slices (again copy-on-write), so
// repeatedly rewinding a space to the same checkpoint — one rewind per
// sweep point — is also O(arrays) per rewind for every array the
// previous point did not write.

// own gives the array private backing storage. Every mutating method
// calls it first, so sealed checkpoint values are never written through.
func (a *Array) own() {
	if !a.cow {
		return
	}
	fresh := make([]float64, len(a.data))
	copy(fresh, a.data)
	a.data = fresh
	a.cow = false
}

// Materialize forces the array to private backing storage now, as if it
// had been written. Callers that hand the array to concurrent writers
// (the cascade package's host-parallel engine) must materialize first:
// two goroutines racing to lazily copy-on-write the same sealed slice
// would each copy independently and one copy's writes would be lost.
func (a *Array) Materialize() { a.own() }

// Shared reports whether the array's backing storage is still sealed to
// a checkpoint (no write has occurred since the last Checkpoint or
// RestoreState covering it).
func (a *Array) Shared() bool { return a.cow }

// seal marks the array copy-on-write and returns its current backing
// slice, which must never be written again.
func (a *Array) seal() []float64 {
	a.cow = true
	return a.data
}

// SpaceState is a checkpoint of a Space: the allocation cursor, the
// identity of the allocated arrays, and their sealed values. It is
// immutable once taken and may be restored any number of times.
type SpaceState struct {
	next   Addr
	arrays []*Array
	sealed [][]float64
}

// Arrays returns how many allocations the checkpoint covers.
func (st *SpaceState) Arrays() int { return len(st.arrays) }

// Checkpoint seals the space's current values and allocation state.
func (s *Space) Checkpoint() *SpaceState {
	st := &SpaceState{
		next:   s.next,
		arrays: make([]*Array, len(s.arrays)),
		sealed: make([][]float64, len(s.arrays)),
	}
	copy(st.arrays, s.arrays)
	for i, a := range s.arrays {
		st.sealed[i] = a.seal()
	}
	return st
}

// RestoreState rewinds the space to a checkpoint taken on this same
// space: values of the checkpointed arrays are restored (copy-on-write),
// arrays allocated after the checkpoint are released, and the allocation
// cursor rewinds so subsequent allocations land at the same addresses
// they received after the checkpoint — which is what keeps warm-started
// runs address-identical to fresh ones. It panics if the checkpoint does
// not describe a prefix of this space's allocations.
func (s *Space) RestoreState(st *SpaceState) {
	if len(s.arrays) < len(st.arrays) {
		panic(fmt.Sprintf("memsim: RestoreState: space has %d arrays, checkpoint covers %d", len(s.arrays), len(st.arrays)))
	}
	for i, a := range st.arrays {
		if s.arrays[i] != a {
			panic(fmt.Sprintf("memsim: RestoreState: array %d (%s) is not the checkpointed allocation", i, s.arrays[i].name))
		}
	}
	s.arrays = s.arrays[:len(st.arrays)]
	s.next = st.next
	for i, a := range st.arrays {
		a.data = st.sealed[i]
		a.cow = true
	}
}
