package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddrLine(t *testing.T) {
	cases := []struct {
		addr Addr
		line int
		want Addr
	}{
		{0x0, 32, 0x0},
		{0x1f, 32, 0x0},
		{0x20, 32, 0x20},
		{0x21, 32, 0x20},
		{0x7f, 128, 0x0},
		{0x80, 128, 0x80},
		{0x12345, 64, 0x12340},
	}
	for _, c := range cases {
		if got := c.addr.Line(c.line); got != c.want {
			t.Errorf("Addr(%s).Line(%d) = %s, want %s", c.addr, c.line, got, c.want)
		}
	}
}

func TestAddrOffset(t *testing.T) {
	if got := Addr(0x25).Offset(32); got != 5 {
		t.Errorf("Offset = %d, want 5", got)
	}
	if got := Addr(0x20).Offset(32); got != 0 {
		t.Errorf("Offset = %d, want 0", got)
	}
}

func TestAddrAlignUp(t *testing.T) {
	if got := Addr(0x21).AlignUp(32); got != 0x40 {
		t.Errorf("AlignUp = %s, want 0x40", got)
	}
	if got := Addr(0x40).AlignUp(32); got != 0x40 {
		t.Errorf("AlignUp of aligned = %s, want 0x40", got)
	}
}

func TestAddrLineProperty(t *testing.T) {
	f := func(raw uint64, shift uint8) bool {
		lineSize := 1 << (3 + shift%6) // 8..256
		a := Addr(raw)
		l := a.Line(lineSize)
		return l <= a && a-l < Addr(lineSize) && l.Offset(lineSize) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []int{0, -2, 3, 6, 1023} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestSpaceAllocNonOverlapping(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100, 8, 8)
	b := s.Alloc("b", 50, 4, 64)
	c := s.Alloc("c", 1, 8, 8)
	arrays := []*Array{a, b, c}
	for i := range arrays {
		for j := i + 1; j < len(arrays); j++ {
			if arrays[i].Overlaps(arrays[j]) {
				t.Errorf("arrays %s and %s overlap", arrays[i], arrays[j])
			}
		}
	}
	if b.Base()%64 != 0 {
		t.Errorf("b not aligned to 64: %s", b.Base())
	}
}

func TestSpaceAllocAtCongruence(t *testing.T) {
	s := NewSpace()
	const waySize = 4096 // cache size / assoc
	a := s.AllocAt("a", 1000, 8, 128, waySize)
	b := s.AllocAt("b", 1000, 8, 128, waySize)
	if int(a.Base())&(waySize-1) != 128 {
		t.Errorf("a base congruence = %d, want 128", int(a.Base())&(waySize-1))
	}
	if int(b.Base())&(waySize-1) != 128 {
		t.Errorf("b base congruence = %d, want 128", int(b.Base())&(waySize-1))
	}
	if a.Overlaps(b) {
		t.Error("conflicting arrays overlap")
	}
}

func TestSpacePadAndSize(t *testing.T) {
	s := NewSpace()
	s.Alloc("a", 10, 8, 8)
	before := s.Size()
	s.Pad(100)
	if s.Size() != before+100 {
		t.Errorf("Size after Pad = %d, want %d", s.Size(), before+100)
	}
}

func TestSpaceFindByAddr(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 10, 8, 8)
	s.Pad(64)
	b := s.Alloc("b", 10, 8, 8)
	if got := s.FindByAddr(a.Addr(5)); got != a {
		t.Errorf("FindByAddr(a[5]) = %v, want a", got)
	}
	if got := s.FindByAddr(b.Addr(0)); got != b {
		t.Errorf("FindByAddr(b[0]) = %v, want b", got)
	}
	if got := s.FindByAddr(a.Addr(9) + 8); got != nil { // in the pad gap
		t.Errorf("FindByAddr(gap) = %v, want nil", got)
	}
	if got := s.FindByAddr(0); got != nil {
		t.Errorf("FindByAddr(0) = %v, want nil", got)
	}
}

func TestAllocPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(s *Space)
	}{
		{"zero n", func(s *Space) { s.Alloc("x", 0, 8, 8) }},
		{"negative n", func(s *Space) { s.Alloc("x", -1, 8, 8) }},
		{"bad elem", func(s *Space) { s.Alloc("x", 1, 3, 8) }},
		{"align lt elem", func(s *Space) { s.Alloc("x", 1, 8, 4) }},
		{"bad congruence", func(s *Space) { s.AllocAt("x", 1, 8, 8, 7) }},
		{"negative pad", func(s *Space) { s.Pad(-1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f(NewSpace())
		})
	}
}

func TestArrayAddressing(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100, 4, 4)
	if a.Addr(0) != a.Base() {
		t.Errorf("Addr(0) = %s, want base %s", a.Addr(0), a.Base())
	}
	if a.Addr(10)-a.Addr(9) != 4 {
		t.Errorf("element stride = %d, want 4", a.Addr(10)-a.Addr(9))
	}
	if a.SizeBytes() != 400 {
		t.Errorf("SizeBytes = %d, want 400", a.SizeBytes())
	}
}

func TestArrayLoadStore(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 10, 8, 8)
	a.Store(3, 42.5)
	if got := a.Load(3); got != 42.5 {
		t.Errorf("Load(3) = %v, want 42.5", got)
	}
	if got := a.Load(4); got != 0 {
		t.Errorf("Load(4) = %v, want 0 (zero-initialized)", got)
	}
}

func TestArrayLoadInt(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("ij", 10, 4, 4)
	a.Store(0, 7)
	if got := a.LoadInt(0); got != 7 {
		t.Errorf("LoadInt = %d, want 7", got)
	}
	a.Store(1, 1.5)
	defer func() {
		if recover() == nil {
			t.Error("LoadInt of non-integer should panic")
		}
	}()
	a.LoadInt(1)
}

func TestArrayFillSnapshotRestore(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100, 8, 8)
	a.Fill(func(i int) float64 { return float64(i * i) })
	snap := a.Snapshot()
	if eq, _ := a.Equal(snap); !eq {
		t.Error("array should equal its own snapshot")
	}
	a.Store(50, -1)
	if eq, idx := a.Equal(snap); eq || idx != 50 {
		t.Errorf("Equal after mutation = (%v, %d), want (false, 50)", eq, idx)
	}
	a.Restore(snap)
	if eq, _ := a.Equal(snap); !eq {
		t.Error("array should equal snapshot after Restore")
	}
	if a.Load(50) != 2500 {
		t.Errorf("restored value = %v, want 2500", a.Load(50))
	}
}

func TestArrayFillConst(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 5, 8, 8)
	a.FillConst(math.Pi)
	for i := 0; i < a.Len(); i++ {
		if a.Load(i) != math.Pi {
			t.Fatalf("element %d = %v, want pi", i, a.Load(i))
		}
	}
}

func TestArrayRestoreLengthMismatch(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 5, 8, 8)
	defer func() {
		if recover() == nil {
			t.Error("Restore with wrong length should panic")
		}
	}()
	a.Restore(make([]float64, 4))
}

func TestArrayEqualLengthMismatch(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 5, 8, 8)
	if eq, _ := a.Equal(make([]float64, 4)); eq {
		t.Error("Equal with wrong length should be false")
	}
}

func TestSpaceArraysCopy(t *testing.T) {
	s := NewSpace()
	s.Alloc("a", 1, 8, 8)
	got := s.Arrays()
	if len(got) != 1 {
		t.Fatalf("Arrays len = %d, want 1", len(got))
	}
	got[0] = nil // mutating the returned slice must not affect the space
	if s.Arrays()[0] == nil {
		t.Error("Arrays returned internal slice, want copy")
	}
}
