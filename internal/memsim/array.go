package memsim

import "fmt"

// Array is a simulated array: a contiguous range of simulated addresses
// backed by real values. Values are stored as float64 regardless of the
// simulated element size; integer index arrays store their indices as exact
// float64 values (exact up to 2^53, far beyond any simulated array length).
//
// The element size affects only the address layout (and therefore cache
// behaviour); it lets a workload model 4-byte integers or 8-byte doubles
// with the same value machinery.
type Array struct {
	name string
	base Addr
	elem int
	data []float64
	// cow marks the backing slice as sealed to a checkpoint: the next
	// mutation copies it into private storage first (see checkpoint.go).
	cow bool
}

// Name returns the array's name (used in diagnostics and reports).
func (a *Array) Name() string { return a.name }

// Base returns the simulated address of element 0.
func (a *Array) Base() Addr { return a.base }

// ElemSize returns the simulated size of one element in bytes.
func (a *Array) ElemSize() int { return a.elem }

// Len returns the number of elements.
func (a *Array) Len() int { return len(a.data) }

// SizeBytes returns the simulated footprint of the array in bytes.
func (a *Array) SizeBytes() int { return len(a.data) * a.elem }

// Addr returns the simulated address of element i.
func (a *Array) Addr(i int) Addr {
	return a.base + Addr(i*a.elem)
}

// Load returns the value of element i.
func (a *Array) Load(i int) float64 {
	return a.data[i]
}

// Store sets the value of element i.
func (a *Array) Store(i int, v float64) {
	a.own()
	a.data[i] = v
}

// LoadInt returns element i as an integer index. It panics if the value is
// not an exact integer; index arrays must hold integral values.
func (a *Array) LoadInt(i int) int {
	v := a.data[i]
	iv := int(v)
	if float64(iv) != v {
		panic(fmt.Sprintf("memsim: array %q element %d = %v is not an integer index", a.name, i, v))
	}
	return iv
}

// Fill sets every element to f(i).
func (a *Array) Fill(f func(i int) float64) {
	a.own()
	for i := range a.data {
		a.data[i] = f(i)
	}
}

// FillConst sets every element to v.
func (a *Array) FillConst(v float64) {
	a.own()
	for i := range a.data {
		a.data[i] = v
	}
}

// Snapshot returns a copy of the array's values, for result comparison
// between execution strategies.
func (a *Array) Snapshot() []float64 {
	out := make([]float64, len(a.data))
	copy(out, a.data)
	return out
}

// Restore overwrites the array's values from a snapshot taken earlier.
// It panics if the lengths differ.
func (a *Array) Restore(snap []float64) {
	if len(snap) != len(a.data) {
		panic(fmt.Sprintf("memsim: Restore(%q): snapshot length %d != array length %d", a.name, len(snap), len(a.data)))
	}
	a.own()
	copy(a.data, snap)
}

// Equal reports whether the array's values are bitwise identical to the
// snapshot and, if not, returns the first differing index.
func (a *Array) Equal(snap []float64) (bool, int) {
	if len(snap) != len(a.data) {
		return false, -1
	}
	for i, v := range a.data {
		if v != snap[i] {
			return false, i
		}
	}
	return true, 0
}

// Overlaps reports whether the simulated address ranges of a and b overlap.
func (a *Array) Overlaps(b *Array) bool {
	aEnd := a.base + Addr(a.SizeBytes())
	bEnd := b.base + Addr(b.SizeBytes())
	return a.base < bEnd && b.base < aEnd
}

// String implements fmt.Stringer.
func (a *Array) String() string {
	return fmt.Sprintf("%s[%d]x%dB@%s", a.name, len(a.data), a.elem, a.base)
}
