// Package memsim provides the simulated physical address space used by the
// cascaded-execution machine model.
//
// The simulator separates *values* from *timing*: arrays are backed by real
// Go slices (so that every execution strategy can be checked for bit-exact
// result equality against sequential execution), while each array element
// also has a stable simulated byte address that the cache model operates on.
// Allocation is explicit and supports alignment and deliberate padding so
// that workloads can reproduce the set-conflict behaviour the paper studies.
package memsim

import "fmt"

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// String formats the address in hex, the conventional notation for
// cache-line discussions.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Line returns the address of the cache line containing a, for the given
// line size in bytes. lineSize must be a power of two.
func (a Addr) Line(lineSize int) Addr {
	return a &^ Addr(lineSize-1)
}

// Offset returns the byte offset of a within its cache line.
func (a Addr) Offset(lineSize int) int {
	return int(a & Addr(lineSize-1))
}

// AlignUp rounds a up to the next multiple of align (a power of two).
func (a Addr) AlignUp(align int) Addr {
	m := Addr(align - 1)
	return (a + m) &^ m
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }
