// Package coherence implements a snooping, write-invalidate MSI bus
// connecting the private cache hierarchies of the simulated multiprocessor.
//
// The protocol is the textbook MSI protocol at L2-line granularity:
//
//   - a read miss (BusRd) is supplied by a remote Modified copy if one
//     exists (cache-to-cache transfer, with the owner downgrading to
//     Shared and the data written back), otherwise by memory;
//   - a write miss (BusRdX) invalidates every remote copy and installs the
//     line Modified;
//   - a write hit on a Shared line (BusUpgr) invalidates remote copies
//     without a data transfer.
//
// Bus occupancy/contention is not modelled (see DESIGN.md §4): each
// transaction pays its own fixed latency. The paper's workloads are
// latency-bound at 4-8 processors, and cascaded execution by construction
// has only one processor issuing demand traffic at a time.
package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memsim"
)

// Stats counts bus transactions.
type Stats struct {
	MemFetches       int64 // lines supplied by memory
	CacheToCache     int64 // lines supplied by a remote Modified copy
	InvalidationsOut int64 // remote copies invalidated (BusRdX/BusUpgr)
	Upgrades         int64 // BusUpgr transactions
	Writebacks       int64 // dirty lines written back to memory
}

// Bus is the shared interconnect. Hierarchies attach via Port, which gives
// each one a cache.LineSource view of the bus.
type Bus struct {
	memLatency     int64
	c2cLatency     int64
	upgradeLatency int64
	lineSize       memsim.Addr // L2 line size; all attached hierarchies agree

	nodes []*cache.Hierarchy
	stats Stats
}

// NewBus creates a bus. memLatency is the cost of a memory supply,
// c2cLatency the cost of a cache-to-cache supply, and upgradeLatency the
// cost of an invalidation broadcast when remote copies exist.
func NewBus(memLatency, c2cLatency, upgradeLatency int64, l2LineSize int) *Bus {
	if !memsim.IsPow2(l2LineSize) {
		panic(fmt.Sprintf("coherence: line size %d not a power of two", l2LineSize))
	}
	return &Bus{
		memLatency:     memLatency,
		c2cLatency:     c2cLatency,
		upgradeLatency: upgradeLatency,
		lineSize:       memsim.Addr(l2LineSize),
	}
}

// Stats returns a copy of the transaction counters.
func (b *Bus) Stats() Stats { return b.stats }

// ResetStats zeroes the transaction counters.
func (b *Bus) ResetStats() { b.stats = Stats{} }

// EmitMetrics reports the transaction counters (metrics Source contract;
// see internal/metrics). The bus is registered once per machine — its
// per-node ports carry no statistics of their own.
func (b *Bus) EmitMetrics(emit func(name string, value int64)) {
	emit("mem_fetches", b.stats.MemFetches)
	emit("cache_to_cache", b.stats.CacheToCache)
	emit("invalidations_out", b.stats.InvalidationsOut)
	emit("upgrades", b.stats.Upgrades)
	emit("writebacks", b.stats.Writebacks)
}

// Port returns the LineSource through which node id accesses the bus. The
// id must match the index the hierarchy is later attached at.
func (b *Bus) Port(id int) cache.LineSource {
	return &port{bus: b, self: id}
}

// Attach registers a hierarchy as node id. Hierarchies must be attached in
// id order, and their L2 line size must match the bus's.
func (b *Bus) Attach(id int, h *cache.Hierarchy) {
	if id != len(b.nodes) {
		panic(fmt.Sprintf("coherence: Attach(%d) out of order, have %d nodes", id, len(b.nodes)))
	}
	if h.L2.Config().LineSize != int(b.lineSize) {
		panic(fmt.Sprintf("coherence: node %d L2 line size %d != bus line size %d",
			id, h.L2.Config().LineSize, b.lineSize))
	}
	b.nodes = append(b.nodes, h)
}

// Nodes returns the number of attached hierarchies.
func (b *Bus) Nodes() int { return len(b.nodes) }

// port adapts the bus to cache.LineSource for one node.
type port struct {
	bus  *Bus
	self int
}

// FetchLine implements cache.LineSource: BusRd (read) or BusRdX (write).
func (p *port) FetchLine(lineAddr memsim.Addr, write bool) (int64, cache.State) {
	b := p.bus
	if lineAddr&(b.lineSize-1) != 0 {
		panic(fmt.Sprintf("coherence: FetchLine(%s) not line-aligned", lineAddr))
	}
	if write {
		// BusRdX: every remote copy dies; a remote Modified copy supplies
		// the data (and implicitly merges through memory).
		supplied := false
		for i, n := range b.nodes {
			if i == p.self {
				continue
			}
			st := n.Probe(lineAddr)
			if st == cache.Invalid {
				continue
			}
			if n.CoherenceInvalidate(lineAddr) {
				supplied = true
				b.stats.Writebacks++
			}
			b.stats.InvalidationsOut++
		}
		if supplied {
			b.stats.CacheToCache++
			return b.c2cLatency, cache.Modified
		}
		b.stats.MemFetches++
		return b.memLatency, cache.Modified
	}
	// BusRd: a remote Modified copy supplies and downgrades to Shared.
	for i, n := range b.nodes {
		if i == p.self {
			continue
		}
		if n.Probe(lineAddr) != cache.Modified {
			continue
		}
		if n.CoherenceDowngrade(lineAddr) {
			b.stats.CacheToCache++
			b.stats.Writebacks++ // owner flushes the dirty data
			return b.c2cLatency, cache.Shared
		}
	}
	b.stats.MemFetches++
	return b.memLatency, cache.Shared
}

// UpgradeLine implements cache.LineSource: BusUpgr.
func (p *port) UpgradeLine(lineAddr memsim.Addr) int64 {
	b := p.bus
	invalidated := 0
	for i, n := range b.nodes {
		if i == p.self {
			continue
		}
		if n.Probe(lineAddr) == cache.Invalid {
			continue
		}
		// A remote copy of a line we hold Shared can itself only be Shared.
		n.CoherenceInvalidate(lineAddr)
		invalidated++
	}
	b.stats.InvalidationsOut += int64(invalidated)
	if invalidated == 0 {
		// No remote copies: the upgrade is local (the MSI simplification of
		// an E state). No bus transaction is charged.
		return 0
	}
	b.stats.Upgrades++
	return b.upgradeLatency
}

// WritebackLine implements cache.LineSource.
func (p *port) WritebackLine(memsim.Addr) {
	p.bus.stats.Writebacks++
}
