// Package coherence implements a snooping, write-invalidate MSI bus
// connecting the private cache hierarchies of the simulated multiprocessor.
//
// The protocol is the textbook MSI protocol at L2-line granularity:
//
//   - a read miss (BusRd) is supplied by a remote Modified copy if one
//     exists (cache-to-cache transfer, with the owner downgrading to
//     Shared and the data written back), otherwise by memory;
//   - a write miss (BusRdX) invalidates every remote copy and installs the
//     line Modified;
//   - a write hit on a Shared line (BusUpgr) invalidates remote copies
//     without a data transfer.
//
// Bus occupancy/contention is not modelled (see DESIGN.md §4): each
// transaction pays its own fixed latency. The paper's workloads are
// latency-bound at 4-8 processors, and cascaded execution by construction
// has only one processor issuing demand traffic at a time.
package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memsim"
)

// Stats counts bus transactions.
type Stats struct {
	MemFetches       int64 // lines supplied by memory
	CacheToCache     int64 // lines supplied by a remote Modified copy
	InvalidationsOut int64 // remote copies invalidated (BusRdX/BusUpgr)
	Upgrades         int64 // BusUpgr transactions
	Writebacks       int64 // dirty lines written back to memory
}

// add accumulates o into s (shard merging).
func (s *Stats) add(o Stats) {
	s.MemFetches += o.MemFetches
	s.CacheToCache += o.CacheToCache
	s.InvalidationsOut += o.InvalidationsOut
	s.Upgrades += o.Upgrades
	s.Writebacks += o.Writebacks
}

// Bus is the shared interconnect. Hierarchies attach via Port, which gives
// each one a cache.LineSource view of the bus.
//
// Transaction counters are sharded per attached port (McKenney's
// partitioned-counter idiom): every transaction is counted on the shard of
// the node that issued it, and Stats/EmitMetrics sum the shards. Under
// serial simulation the sum is trivially the old global counter; under the
// parallel engine the shards let concurrently executing nodes count
// without sharing a cache line, and the per-issuer attribution is
// identical to serial because which node issues each transaction does not
// depend on the execution schedule.
type Bus struct {
	memLatency     int64
	c2cLatency     int64
	upgradeLatency int64
	lineSize       memsim.Addr // L2 line size; all attached hierarchies agree

	nodes  []*cache.Hierarchy
	shards []Stats // per-port transaction counters, indexed by issuer

	// isolated, when set, makes the bus answer every fetch from memory
	// without probing remote nodes, and every upgrade locally. The
	// parallel scheduler sets it only while each in-flight chunk's
	// footprint is proven disjoint from every line any other node could
	// hold — exactly the condition under which serial snooping would have
	// found no remote copy — so isolated answers (latency, state, and
	// counters alike) are bit-identical to what snooping would produce.
	// Toggled only while the simulation is quiescent, with the toggle
	// ordered against worker execution by the scheduler's channels.
	isolated bool
}

// NewBus creates a bus. memLatency is the cost of a memory supply,
// c2cLatency the cost of a cache-to-cache supply, and upgradeLatency the
// cost of an invalidation broadcast when remote copies exist.
func NewBus(memLatency, c2cLatency, upgradeLatency int64, l2LineSize int) *Bus {
	if !memsim.IsPow2(l2LineSize) {
		panic(fmt.Sprintf("coherence: line size %d not a power of two", l2LineSize))
	}
	return &Bus{
		memLatency:     memLatency,
		c2cLatency:     c2cLatency,
		upgradeLatency: upgradeLatency,
		lineSize:       memsim.Addr(l2LineSize),
	}
}

// Stats returns the transaction counters summed over all port shards.
func (b *Bus) Stats() Stats {
	var s Stats
	for i := range b.shards {
		s.add(b.shards[i])
	}
	return s
}

// ResetStats zeroes the transaction counters of every shard.
func (b *Bus) ResetStats() {
	for i := range b.shards {
		b.shards[i] = Stats{}
	}
}

// EmitMetrics reports the transaction counters (metrics Source contract;
// see internal/metrics). The bus is registered once per machine — the
// per-node shards are an implementation detail and are reported summed,
// so snapshots keep their pre-sharding shape.
func (b *Bus) EmitMetrics(emit func(name string, value int64)) {
	s := b.Stats()
	emit("mem_fetches", s.MemFetches)
	emit("cache_to_cache", s.CacheToCache)
	emit("invalidations_out", s.InvalidationsOut)
	emit("upgrades", s.Upgrades)
	emit("writebacks", s.Writebacks)
}

// SnapshotShards returns a copy of the per-port transaction counters, for
// machine snapshots. It panics if the bus is isolated: isolation is a
// transient parallel-scheduler state that must never appear at a
// snapshot's quiescent point.
func (b *Bus) SnapshotShards() []Stats {
	if b.isolated {
		panic("coherence: SnapshotShards on an isolated bus")
	}
	out := make([]Stats, len(b.shards))
	copy(out, b.shards)
	return out
}

// RestoreShards overwrites the per-port transaction counters from a
// snapshot taken on a bus with the same number of ports.
func (b *Bus) RestoreShards(shards []Stats) {
	if b.isolated {
		panic("coherence: RestoreShards on an isolated bus")
	}
	if len(shards) != len(b.shards) {
		panic(fmt.Sprintf("coherence: RestoreShards with %d shards, bus has %d ports", len(shards), len(b.shards)))
	}
	copy(b.shards, shards)
}

// SetIsolated switches the bus between snooping and isolated operation
// (see the Bus type comment). Callers must guarantee both that the
// simulation is quiescent at the moment of the toggle and that, while
// isolated, no access can touch a line a remote node holds — the parallel
// scheduler's admission predicate. Serial simulation never isolates.
func (b *Bus) SetIsolated(on bool) { b.isolated = on }

// Isolated reports whether the bus is in isolated operation.
func (b *Bus) Isolated() bool { return b.isolated }

// Port returns the LineSource through which node id accesses the bus. The
// id must match the index the hierarchy is later attached at.
func (b *Bus) Port(id int) cache.LineSource {
	return &port{bus: b, self: id}
}

// Attach registers a hierarchy as node id. Hierarchies must be attached in
// id order, and their L2 line size must match the bus's.
func (b *Bus) Attach(id int, h *cache.Hierarchy) {
	if id != len(b.nodes) {
		panic(fmt.Sprintf("coherence: Attach(%d) out of order, have %d nodes", id, len(b.nodes)))
	}
	if h.L2.Config().LineSize != int(b.lineSize) {
		panic(fmt.Sprintf("coherence: node %d L2 line size %d != bus line size %d",
			id, h.L2.Config().LineSize, b.lineSize))
	}
	b.nodes = append(b.nodes, h)
	b.shards = append(b.shards, Stats{})
}

// Nodes returns the number of attached hierarchies.
func (b *Bus) Nodes() int { return len(b.nodes) }

// port adapts the bus to cache.LineSource for one node.
type port struct {
	bus  *Bus
	self int
}

// FetchLine implements cache.LineSource: BusRd (read) or BusRdX (write).
func (p *port) FetchLine(lineAddr memsim.Addr, write bool) (int64, cache.State) {
	b := p.bus
	if lineAddr&(b.lineSize-1) != 0 {
		panic(fmt.Sprintf("coherence: FetchLine(%s) not line-aligned", lineAddr))
	}
	st := &b.shards[p.self]
	if b.isolated {
		// The admission predicate guarantees no remote node holds any copy
		// of this line, so snooping would have probed every node, found
		// nothing, and fallen through to a memory supply — which is
		// exactly what we charge, in the same shard serial would.
		st.MemFetches++
		if write {
			return b.memLatency, cache.Modified
		}
		return b.memLatency, cache.Shared
	}
	if write {
		// BusRdX: every remote copy dies; a remote Modified copy supplies
		// the data (and implicitly merges through memory).
		supplied := false
		for i, n := range b.nodes {
			if i == p.self {
				continue
			}
			s := n.Probe(lineAddr)
			if s == cache.Invalid {
				continue
			}
			if n.CoherenceInvalidate(lineAddr) {
				supplied = true
				st.Writebacks++
			}
			st.InvalidationsOut++
		}
		if supplied {
			st.CacheToCache++
			return b.c2cLatency, cache.Modified
		}
		st.MemFetches++
		return b.memLatency, cache.Modified
	}
	// BusRd: a remote Modified copy supplies and downgrades to Shared.
	for i, n := range b.nodes {
		if i == p.self {
			continue
		}
		if n.Probe(lineAddr) != cache.Modified {
			continue
		}
		if n.CoherenceDowngrade(lineAddr) {
			st.CacheToCache++
			st.Writebacks++ // owner flushes the dirty data
			return b.c2cLatency, cache.Shared
		}
	}
	st.MemFetches++
	return b.memLatency, cache.Shared
}

// UpgradeLine implements cache.LineSource: BusUpgr.
func (p *port) UpgradeLine(lineAddr memsim.Addr) int64 {
	b := p.bus
	if b.isolated {
		// No remote copies by the admission predicate, so snooping would
		// invalidate nothing and charge nothing (the local-upgrade case
		// below).
		return 0
	}
	invalidated := 0
	for i, n := range b.nodes {
		if i == p.self {
			continue
		}
		if n.Probe(lineAddr) == cache.Invalid {
			continue
		}
		// A remote copy of a line we hold Shared can itself only be Shared.
		n.CoherenceInvalidate(lineAddr)
		invalidated++
	}
	st := &b.shards[p.self]
	st.InvalidationsOut += int64(invalidated)
	if invalidated == 0 {
		// No remote copies: the upgrade is local (the MSI simplification of
		// an E state). No bus transaction is charged.
		return 0
	}
	st.Upgrades++
	return b.upgradeLatency
}

// WritebackLine implements cache.LineSource.
func (p *port) WritebackLine(memsim.Addr) {
	p.bus.shards[p.self].Writebacks++
}
