package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/memsim"
)

const (
	memLat = 58
	c2cLat = 58
	upgLat = 29
)

func twoNodeBus(t *testing.T) (*Bus, *cache.Hierarchy, *cache.Hierarchy) {
	t.Helper()
	return nNodeBus(t, 2)
}

func nNodeBus(t *testing.T, n int) (*Bus, *cache.Hierarchy, *cache.Hierarchy) {
	t.Helper()
	l1 := cache.Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3}
	l2 := cache.Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 32, HitLatency: 7}
	b := NewBus(memLat, c2cLat, upgLat, 32)
	var hs []*cache.Hierarchy
	for i := 0; i < n; i++ {
		h := cache.NewHierarchy(l1, l2, b.Port(i))
		b.Attach(i, h)
		hs = append(hs, h)
	}
	return b, hs[0], hs[1]
}

func TestReadMissSuppliedByMemory(t *testing.T) {
	b, h0, _ := twoNodeBus(t)
	r := h0.Access(0x1000, 8, false)
	if r.Cycles != 3+7+memLat {
		t.Errorf("cycles = %d, want %d", r.Cycles, 3+7+memLat)
	}
	if s := b.Stats(); s.MemFetches != 1 || s.CacheToCache != 0 {
		t.Errorf("stats = %+v", s)
	}
	if h0.Probe(0x1000) != cache.Shared {
		t.Errorf("state = %v, want S", h0.Probe(0x1000))
	}
}

func TestReadMissSuppliedByRemoteModified(t *testing.T) {
	b, h0, h1 := twoNodeBus(t)
	h1.Access(0x1000, 8, true) // h1 holds M
	r := h0.Access(0x1000, 8, false)
	if r.Cycles != 3+7+c2cLat {
		t.Errorf("cycles = %d, want %d", r.Cycles, 3+7+c2cLat)
	}
	if h1.Probe(0x1000) != cache.Shared {
		t.Errorf("remote owner state = %v, want S after downgrade", h1.Probe(0x1000))
	}
	if h0.Probe(0x1000) != cache.Shared {
		t.Errorf("reader state = %v, want S", h0.Probe(0x1000))
	}
	s := b.Stats()
	if s.CacheToCache != 1 {
		t.Errorf("CacheToCache = %d, want 1", s.CacheToCache)
	}
	if s.Writebacks == 0 {
		t.Error("owner flush should count a writeback")
	}
}

func TestWriteMissInvalidatesSharers(t *testing.T) {
	b, h0, h1 := twoNodeBus(t)
	h1.Access(0x2000, 8, false) // h1 holds S
	h0.Access(0x2000, 8, true)  // h0 writes
	if h1.Probe(0x2000) != cache.Invalid {
		t.Errorf("sharer state = %v, want I", h1.Probe(0x2000))
	}
	if h0.Probe(0x2000) != cache.Modified {
		t.Errorf("writer state = %v, want M", h0.Probe(0x2000))
	}
	if s := b.Stats(); s.InvalidationsOut != 1 {
		t.Errorf("InvalidationsOut = %d, want 1", s.InvalidationsOut)
	}
}

func TestWriteMissStealsRemoteModified(t *testing.T) {
	b, h0, h1 := twoNodeBus(t)
	h1.Access(0x2000, 8, true) // h1 holds M
	r := h0.Access(0x2000, 8, true)
	if r.Cycles != 3+7+c2cLat {
		t.Errorf("cycles = %d, want %d (cache-to-cache)", r.Cycles, 3+7+c2cLat)
	}
	if h1.Probe(0x2000) != cache.Invalid {
		t.Errorf("prior owner state = %v, want I", h1.Probe(0x2000))
	}
	if b.Stats().CacheToCache != 1 {
		t.Errorf("CacheToCache = %d, want 1", b.Stats().CacheToCache)
	}
}

func TestUpgradeOnSharedWriteHit(t *testing.T) {
	b, h0, h1 := twoNodeBus(t)
	h0.Access(0x3000, 8, false)
	h1.Access(0x3000, 8, false) // both S
	r := h0.Access(0x3000, 8, true)
	if r.Cycles != 3+upgLat {
		t.Errorf("upgrade write cycles = %d, want %d", r.Cycles, 3+upgLat)
	}
	if h1.Probe(0x3000) != cache.Invalid {
		t.Errorf("remote sharer = %v, want I", h1.Probe(0x3000))
	}
	if b.Stats().Upgrades != 1 {
		t.Errorf("Upgrades = %d, want 1", b.Stats().Upgrades)
	}
}

func TestUpgradeWithoutRemoteCopiesIsFree(t *testing.T) {
	b, h0, _ := twoNodeBus(t)
	h0.Access(0x3000, 8, false) // S, no other copies
	r := h0.Access(0x3000, 8, true)
	if r.Cycles != 3 {
		t.Errorf("exclusive upgrade cycles = %d, want 3 (free)", r.Cycles)
	}
	if b.Stats().Upgrades != 0 {
		t.Errorf("Upgrades = %d, want 0", b.Stats().Upgrades)
	}
}

func TestAttachValidation(t *testing.T) {
	b := NewBus(memLat, c2cLat, upgLat, 32)
	l1 := cache.Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3}
	l2 := cache.Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 32, HitLatency: 7}
	h := cache.NewHierarchy(l1, l2, b.Port(0))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order Attach should panic")
			}
		}()
		b.Attach(1, h)
	}()
	b.Attach(0, h)
	if b.Nodes() != 1 {
		t.Errorf("Nodes = %d, want 1", b.Nodes())
	}
	l2wide := cache.Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 64, HitLatency: 7}
	h2 := cache.NewHierarchy(l1, l2wide, b.Port(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("line-size mismatch Attach should panic")
			}
		}()
		b.Attach(1, h2)
	}()
}

func TestUnalignedFetchPanics(t *testing.T) {
	b := NewBus(memLat, c2cLat, upgLat, 32)
	p := b.Port(0)
	defer func() {
		if recover() == nil {
			t.Error("unaligned FetchLine should panic")
		}
	}()
	p.FetchLine(0x11, false)
}

func TestResetStats(t *testing.T) {
	b, h0, _ := twoNodeBus(t)
	h0.Access(0x0, 8, false)
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Errorf("stats after reset = %+v", b.Stats())
	}
}

// TestSingleWriterInvariant is the core MSI safety property: after any
// access sequence, a line Modified anywhere is present nowhere else, and a
// line is Modified in at most one hierarchy.
func TestSingleWriterInvariant(t *testing.T) {
	l1 := cache.Config{Name: "L1", Size: 1024, Assoc: 2, LineSize: 32, HitLatency: 3}
	l2 := cache.Config{Name: "L2", Size: 8192, Assoc: 4, LineSize: 32, HitLatency: 7}
	f := func(seed int64) bool {
		b := NewBus(memLat, c2cLat, upgLat, 32)
		const nodes = 4
		var hs []*cache.Hierarchy
		for i := 0; i < nodes; i++ {
			h := cache.NewHierarchy(l1, l2, b.Port(i))
			b.Attach(i, h)
			hs = append(hs, h)
		}
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 4000; step++ {
			p := rng.Intn(nodes)
			addr := memsim.Addr(rng.Intn(16 * 1024)).Line(32)
			hs[p].Access(addr, 8, rng.Intn(2) == 0)
		}
		// Check the invariant over the whole address range touched.
		for a := memsim.Addr(0); a < 16*1024; a += 32 {
			modified, present := 0, 0
			for _, h := range hs {
				switch h.Probe(a) {
				case cache.Modified:
					modified++
					present++
				case cache.Shared:
					present++
				}
			}
			if modified > 1 {
				return false
			}
			if modified == 1 && present > 1 {
				return false
			}
		}
		// Inclusion must hold everywhere too.
		for _, h := range hs {
			if h.CheckInclusion() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBadLineSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two line size should panic")
		}
	}()
	NewBus(1, 1, 1, 33)
}
