// Package canon produces canonical JSON serializations for
// content-addressed caching. A canonical serialization must be stable
// across refactors that do not change observable simulation semantics
// (struct field reordering, literal-vs-helper construction) and must
// change whenever an observable field changes value — cache keys are
// derived from these bytes, so instability means silent cache misses and
// laxity means stale results served as fresh.
package canon

import "encoding/json"

// JSON returns the canonical JSON encoding of v: v is marshalled, decoded
// into generic maps, and re-marshalled. The round-trip through
// map[string]interface{} makes the output independent of struct field
// declaration order (encoding/json sorts map keys), while still picking up
// every exported field automatically — a field added to a config struct
// changes the canonical bytes without anyone remembering to update a
// hand-written serializer.
func JSON(v interface{}) ([]byte, error) {
	m, err := Map(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(m)
}

// Map returns v's generic-JSON form (maps, slices, float64s), for callers
// that need to patch fields — normalize a default, replace a pointer with
// a presence marker — before canonical encoding with encoding/json.
func Map(v interface{}) (map[string]interface{}, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var m map[string]interface{}
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return m, nil
}
