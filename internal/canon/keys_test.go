package canon_test

import (
	"encoding/json"
	"testing"

	"repro/internal/canon"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/wave5"
)

// fixedSpecs are wire-stable point specs whose keys are pinned below.
// They are constructed through the real decomposition so the goldens
// break when either the spec shape or the plan construction changes.
func fixedSpecs(t *testing.T) []experiments.PointSpec {
	t.Helper()
	rc := experiments.DefaultRunConfig()
	rc.Scale = 0.25
	specs, ok := experiments.Decompose("fig6", rc)
	if !ok || len(specs) < 4 {
		t.Fatalf("fig6 decomposition unavailable (%d specs)", len(specs))
	}
	return []experiments.PointSpec{specs[0], specs[2], specs[3], specs[len(specs)-1]}
}

// TestPointKeyGoldens pins the per-point key derivation. An intentional
// change to the spec fields, the canonical encoding, or PointSchema must
// update these hex strings in the same commit — an accidental change is
// a silent fleet-wide cache invalidation (or worse, stale hits), which
// is exactly what this test exists to catch.
func TestPointKeyGoldens(t *testing.T) {
	want := []string{
		"ffbb07c3f42a80d310b6d0374de5ca23676510900568208ef5c5f22fe1f692e1",
		"5c621468b8bf7abf48e760d711771038d8608f3904cd9a2dd305bcb8cad4eeaf",
		"8643578aea9211c872076624acc4e05f7259fc1d377d02c4174b80b9780bfe8e",
		"2f1e9d412d3b6626f75a5546cb35b5869b9072466361a2edb8d285b8091f458f",
	}
	specs := fixedSpecs(t)
	for i, spec := range specs {
		got, err := canon.PointKey(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("point key %d drifted:\n got %s\nwant %s\nspec %+v", i, got, want[i], spec)
		}
	}
}

// TestPointKeyCoordinatorWorkerIdentity proves the fabric's cross-node
// caching premise: a key derived from the coordinator's typed PointSpec
// equals the key derived from the worker's view of the same spec — the
// generic map a JSON decode of the wire body produces. If these ever
// diverged, a worker would recompute (or mis-file) every point the
// coordinator shipped it.
func TestPointKeyCoordinatorWorkerIdentity(t *testing.T) {
	for i, spec := range fixedSpecs(t) {
		coord, err := canon.PointKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		// The worker's view: the spec as it arrives off the wire, decoded
		// twice — into the typed struct the worker actually uses, and into
		// an untyped map (field order gone, ints now float64s).
		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var typed experiments.PointSpec
		if err := json.Unmarshal(wire, &typed); err != nil {
			t.Fatal(err)
		}
		workerTyped, err := canon.PointKey(typed)
		if err != nil {
			t.Fatal(err)
		}
		var generic map[string]interface{}
		if err := json.Unmarshal(wire, &generic); err != nil {
			t.Fatal(err)
		}
		workerGeneric, err := canon.PointKey(generic)
		if err != nil {
			t.Fatal(err)
		}
		if coord != workerTyped || coord != workerGeneric {
			t.Errorf("spec %d: key differs by derivation site:\ncoordinator %s\nworker/typed %s\nworker/map   %s",
				i, coord, workerTyped, workerGeneric)
		}
	}
}

// TestPointKeySensitivity pins that every observable spec field moves
// the key: two specs differing in exactly one field must never collide.
func TestPointKeySensitivity(t *testing.T) {
	base := experiments.PointSpec{
		Experiment: "fig6", Index: 3, Machine: "R10000", Procs: 4,
		Strategy: "prefetched", ChunkKB: 64, Scale: 1.0,
	}
	baseKey, err := canon.PointKey(base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]experiments.PointSpec{
		"experiment": {Experiment: "fig2", Index: 3, Machine: "R10000", Procs: 4, Strategy: "prefetched", ChunkKB: 64, Scale: 1.0},
		"machine":    {Experiment: "fig6", Index: 3, Machine: "PentiumPro", Procs: 4, Strategy: "prefetched", ChunkKB: 64, Scale: 1.0},
		"procs":      {Experiment: "fig6", Index: 3, Machine: "R10000", Procs: 2, Strategy: "prefetched", ChunkKB: 64, Scale: 1.0},
		"strategy":   {Experiment: "fig6", Index: 3, Machine: "R10000", Procs: 4, Strategy: "restructured", ChunkKB: 64, Scale: 1.0},
		"chunk_kb":   {Experiment: "fig6", Index: 3, Machine: "R10000", Procs: 4, Strategy: "prefetched", ChunkKB: 128, Scale: 1.0},
		"scale":      {Experiment: "fig6", Index: 3, Machine: "R10000", Procs: 4, Strategy: "prefetched", ChunkKB: 64, Scale: 0.5},
	}
	for field, spec := range mutations {
		k, err := canon.PointKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		if k == baseKey {
			t.Errorf("changing %s did not change the point key", field)
		}
	}
	// Schema separation: the same value under a different schema gets a
	// different key, so point results can never alias job results.
	other, err := canon.Key("some-other-schema/v1", base)
	if err != nil {
		t.Fatal(err)
	}
	if other == baseKey {
		t.Error("schema tag does not separate key spaces")
	}
}

// TestPrefixKeyGoldens pins the warm-prefix key derivation through the
// real resolver (machine canonical bytes + dataset params + warm-up
// schedule under PrefixSchema). Workers share sealed machine snapshots
// across jobs keyed by these strings — accidental drift here is a silent
// warm-cache invalidation fleet-wide, or stale snapshot hits if a
// meaningful field stops being hashed.
func TestPrefixKeyGoldens(t *testing.T) {
	p := wave5.DefaultParams().Scaled(0.25)
	cases := []struct {
		cfg    machine.Config
		warmup int
		want   string
	}{
		{machine.R10000(8), 2, "a757a6ca54f61120c5dc55aeecf4049233bdf2b41b7997e019c556a526bfe080"},
		{machine.R10000(8), 0, "468bfc614baa927823d969471e18017e4ed8c847d55164436400c15ff263e0dd"},
		{machine.PentiumPro(4), 2, "72932d3cf80a145f218ba3301bd0a10e7ebad952a27ad7156d179a9f16210360"},
		{machine.PentiumPro(4), 0, "f2380f038737485fd600dbe45acf003556b7869876db5bb03e9c0cbb69327c46"},
	}
	seen := map[string]string{}
	for _, tc := range cases {
		got, err := experiments.PrefixKey(tc.cfg, p, tc.warmup)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("prefix key (%s warm=%d) drifted:\n got %s\nwant %s", tc.cfg.Name, tc.warmup, got, tc.want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("prefix key collision: %s and %s/warm=%d", prev, tc.cfg.Name, tc.warmup)
		}
		seen[got] = tc.cfg.Name
	}
	// Schema separation: a prefix key must never alias a point key even if
	// a descriptor and a spec were ever to hash the same bytes.
	pk, err := canon.PrefixKey(map[string]interface{}{"config": "x"})
	if err != nil {
		t.Fatal(err)
	}
	ptk, err := canon.PointKey(map[string]interface{}{"config": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if pk == ptk {
		t.Error("prefix and point key spaces alias")
	}
}

// TestReproKeyGoldens pins the repro-bundle key derivation the same way
// TestPointKeyGoldens pins point keys: an intentional change to
// ReproSchema or the canonical encoding must update these hex strings
// in the same commit. The inputs are written as the generic maps a JSON
// round-trip of server.reproInputs produces — by the canonical-encoding
// guarantee these hash identically to the typed struct, so the goldens
// also pin that a bundle re-keyed after `curl ... > bundle.json` still
// matches the key the server stamped.
func TestReproKeyGoldens(t *testing.T) {
	cases := []struct {
		name string
		in   map[string]interface{}
		want string
	}{
		{
			name: "whole experiment with faults",
			in: map[string]interface{}{
				"experiment": "fig2",
				"params":     map[string]interface{}{"scale": 0.25},
				"fault_spec": "exp.panic:n=1",
				"fault_seed": 1,
			},
			want: "6ec7d53965363a4775d1b60b44a3f4450fff2795e46fce9504d96760eb82aace",
		},
		{
			name: "failing point, no faults",
			in: map[string]interface{}{
				"experiment": "fig6",
				"params":     map[string]interface{}{"scale": 1.0},
				"point": map[string]interface{}{
					"experiment": "fig6", "index": 3, "machine": "R10000",
					"procs": 4, "strategy": "prefetched", "chunk_kb": 64, "scale": 1.0,
				},
			},
			want: "0c756164ccc12522e9629c9abf641208be6a693b52757e0ad417fcda9ead66ee",
		},
	}
	for _, tc := range cases {
		got, err := canon.ReproKey(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("repro key (%s) drifted:\n got %s\nwant %s", tc.name, got, tc.want)
		}
	}
	// Every replay input moves the key: same inputs under a different
	// fault seed (or with the seed absent) must not collide — a stale
	// bundle replaying under the wrong seed would chase a different bug.
	base := cases[0].in
	reseeded := map[string]interface{}{
		"experiment": "fig2",
		"params":     map[string]interface{}{"scale": 0.25},
		"fault_spec": "exp.panic:n=1",
		"fault_seed": 2,
	}
	k1, err := canon.ReproKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := canon.ReproKey(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("fault seed does not move the repro key")
	}
	// Schema separation from point keys: identical bytes under the two
	// schemas must never alias.
	if pk, _ := canon.PointKey(base); pk == k1 {
		t.Error("repro and point key spaces alias")
	}
}
