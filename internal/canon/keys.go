package canon

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
)

// PointSchema versions the fabric's per-point key derivation. Bump it
// whenever the point-spec semantics or the simulation itself changes in
// a way that stales previously-cached point results; the golden-hash
// tests in keys_test.go pin the current derivation so the constant and
// the goldens must move together.
// v2: prefetch wind-down — compiler-prefetch streams stop issuing at the
// end of the data their run-mode call touches, changing R10000 results.
const PointSchema = "cascade-point/v2"

// Key derives a content address: the hex SHA-256 of a schema tag and the
// canonical JSON of v. Because the canonical encoding is independent of
// struct field order and of whether v is a typed struct or its decoded
// generic-map form, two processes that hold semantically identical
// values — a coordinator holding a PointSpec struct and a worker holding
// the same spec freshly decoded from the wire — derive the same key.
// That property is what makes cross-node result caching sound: it is
// pinned by TestPointKeyCoordinatorWorkerIdentity.
func Key(schema string, v interface{}) (string, error) {
	b, err := JSON(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, schema)
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// PointKey derives the content address of one sweep point from its
// fully-resolved spec under PointSchema. The spec must determine the
// point's observable simulation behaviour completely — every knob that
// can change the result must be a field of v.
func PointKey(spec interface{}) (string, error) {
	return Key(PointSchema, spec)
}

// PrefixSchema versions the warm-prefix key derivation: the content
// address of a sweep's shared strategy-independent prefix (machine
// configuration, dataset parameters, warm-up schedule). Workers use it to
// share one sealed machine snapshot across every point of a job that
// declares the same prefix; bump it whenever the prefix construction
// changes meaning. v2: derivation moved to the canonical-JSON Key form
// and grew the distribute flag.
const PrefixSchema = "cascade-prefix/v2"

// PrefixKey derives the content address of a resolved warm-prefix
// descriptor under PrefixSchema. The descriptor must determine the
// post-prefix machine state completely — two equal keys promise
// interchangeable snapshots.
func PrefixKey(desc interface{}) (string, error) {
	return Key(PrefixSchema, desc)
}

// ReproSchema versions the repro-bundle key derivation. A bundle's key
// hashes only the deterministic replay inputs (experiment, resolved
// params, failing point spec, fault spec and seed) — never the captured
// error text or checkpoint, which are outputs. Two failures with the
// same key must replay identically; keys_test.go pins the derivation.
const ReproSchema = "cascade-repro/v1"

// ReproKey derives the content address of a repro bundle's replay
// inputs under ReproSchema.
func ReproKey(inputs interface{}) (string, error) {
	return Key(ReproSchema, inputs)
}
