// Compiled-plan execution: the fast engine's variants of the four run
// modes. Each mirrors its interpreter counterpart in interp.go access for
// access — same reference order, same dedup decisions, same timing calls —
// so the two engines are observably identical (the differential tests in
// internal/cascade assert bit-identical metrics). What the compiled
// variants shed is the per-iteration work that never changes: interface
// dispatch on index expressions, dynamic dedup scans, and per-iteration
// closures.
package interp

import (
	"repro/internal/loopir"
	"repro/internal/machine"
)

// planIndex resolves ref's element index for iteration i, performing the
// timed index-table load when this reference owns it (compiled form of
// readIndex).
func (r *Runner) planIndex(ref *planRef, i int) int {
	pos := ref.scale*i + ref.off
	if ref.tbl == nil {
		return pos
	}
	if ref.dupLoad < 0 {
		r.timed(ref.tbl, pos, false, ref.scale, true, r.left(i))
	}
	return ref.tbl.LoadInt(pos)
}

// planRead performs a timed read of ref at iteration i (compiled readRef).
func (r *Runner) planRead(ref *planRef, i int) float64 {
	idx := r.planIndex(ref, i)
	r.timed(ref.arr, idx, false, ref.stride, ref.strideOK, r.left(i))
	return ref.arr.Load(idx)
}

// planIter executes one full iteration from home locations and returns
// its memory cost (compiled preValues + finishIter).
func (r *Runner) planIter(p *plan, l *loopir.Loop, i int) int64 {
	r.results = r.results[:0]
	r.ro = r.ro[:0]
	for j := range p.ro {
		r.ro = append(r.ro, r.planRead(&p.ro[j], i))
	}
	pre := r.ro
	if r.pre != nil {
		pre = r.pre(i, r.ro)
	}
	r.rw = r.rw[:0]
	for j := range p.rw {
		r.rw = append(r.rw, r.planRead(&p.rw[j], i))
	}
	out := r.final(i, pre, r.rw)
	for j := range p.wr {
		ref := &p.wr[j]
		idx := r.planIndex(ref, i)
		ref.arr.Store(idx, out[j])
		r.timed(ref.arr, idx, true, ref.stride, ref.strideOK, r.left(i))
	}
	return machine.OverlapCost(r.results, r.maxOut)
}

// execPlan is the compiled ExecIters body.
func (r *Runner) execPlan(p *plan, l *loopir.Loop, lo, hi int) int64 {
	if r.coalesceOK(p) {
		return r.execPlanRuns(p, l, lo, hi)
	}
	var cycles int64
	for i := lo; i < hi; i++ {
		cycles += r.planIter(p, l, i) + l.PreCycles + l.FinalCycles
	}
	return cycles
}

// shadowPlan is the compiled ShadowIters body.
func (r *Runner) shadowPlan(p *plan, lo, hi int, budget int64) (done int, cycles int64) {
	if r.coalesceOK(p) {
		return r.shadowPlanRuns(p, lo, hi, budget)
	}
	for i := lo; i < hi; i++ {
		if budget != Unlimited && cycles >= budget {
			return i - lo, cycles
		}
		r.results = r.results[:0]
		for j := range p.ro {
			ref := &p.ro[j]
			idx := r.planIndex(ref, i)
			r.timed(ref.arr, idx, false, ref.stride, ref.strideOK, r.left(i))
		}
		for j := range p.rw {
			ref := &p.rw[j]
			idx := r.planIndex(ref, i)
			r.timed(ref.arr, idx, false, ref.stride, ref.strideOK, r.left(i))
		}
		for j := range p.wr {
			ref := &p.wr[j]
			idx := r.planIndex(ref, i)
			r.timed(ref.arr, idx, false, ref.stride, ref.strideOK, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut)
	}
	return hi - lo, cycles
}

// restructurePlan is the compiled RestructureIters body.
func (r *Runner) restructurePlan(p *plan, l *loopir.Loop, lo, hi int, buf *SeqBuf, budget int64, precompute bool) (done int, cycles int64) {
	if r.coalesceOK(p) {
		return r.restructurePlanRuns(p, l, lo, hi, buf, budget, precompute)
	}
	for i := lo; i < hi; i++ {
		if budget != Unlimited && cycles >= budget {
			return i - lo, cycles
		}
		r.results = r.results[:0]
		r.ro = r.ro[:0]
		for j := range p.ro {
			r.ro = append(r.ro, r.planRead(&p.ro[j], i))
		}
		vals := r.ro
		var computeCycles int64
		if precompute {
			if r.pre != nil {
				vals = r.pre(i, r.ro)
			}
			computeCycles = l.PreCycles
		}
		for _, v := range vals {
			idx := buf.Push(v)
			r.timed(buf.arr, idx, true, 1, true, streamUnbounded)
		}
		// Pack index values and shadow-load the home elements.
		for s := 0; s < len(p.rw)+len(p.wr); s++ {
			ref := p.rwwr(s)
			idx := r.planIndex(ref, i)
			if ref.tbl != nil && ref.dupPush < 0 {
				slot := buf.Push(float64(idx))
				r.timed(buf.arr, slot, true, 1, true, streamUnbounded)
			}
			r.timed(ref.arr, idx, false, ref.stride, ref.strideOK, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut) + computeCycles
	}
	return hi - lo, cycles
}

// resolveBuffered resolves the element index of the rw+wr reference in
// slot s during buffered execution: directly for affine references, from
// the sequential buffer (or an earlier slot's resolution) for indirect
// ones. pos is the buffer cursor, advanced on pops.
func (r *Runner) resolveBuffered(p *plan, s, i int, buf *SeqBuf, pos *int) int {
	ref := p.rwwr(s)
	if ref.tbl == nil {
		return ref.scale*i + ref.off
	}
	if ref.dupPush >= 0 {
		return r.packIdx[ref.dupPush]
	}
	idx := int(buf.At(*pos))
	r.timed(buf.arr, *pos, false, 1, true, streamUnbounded)
	*pos++
	r.packIdx[s] = idx
	return idx
}

// execBufferPlan is the compiled ExecFromBuffer body.
func (r *Runner) execBufferPlan(p *plan, l *loopir.Loop, lo, hi, buffered int, buf *SeqBuf, precompute bool) int64 {
	if r.coalesceOK(p) {
		return r.execBufferPlanRuns(p, l, lo, hi, buffered, buf, precompute)
	}
	if buffered > hi-lo {
		buffered = hi - lo
	}
	nVals := l.NPre
	if !precompute {
		nVals = len(p.ro)
	}
	if cap(r.scratch) < nVals {
		r.scratch = make([]float64, nVals)
	}
	vals := r.scratch[:nVals]
	if n := len(p.rw) + len(p.wr); cap(r.packIdx) < n {
		r.packIdx = make([]int, n)
	}
	r.packIdx = r.packIdx[:len(p.rw)+len(p.wr)]
	var cycles int64
	pos := 0
	for i := lo; i < lo+buffered; i++ {
		r.results = r.results[:0]
		for k := 0; k < nVals; k++ {
			vals[k] = buf.At(pos)
			r.timed(buf.arr, pos, false, 1, true, streamUnbounded)
			pos++
		}
		pre := vals
		computeCycles := l.FinalCycles
		if !precompute {
			if r.pre != nil {
				pre = r.pre(i, vals)
			}
			computeCycles += l.PreCycles
		}
		r.rw = r.rw[:0]
		for j := range p.rw {
			ref := &p.rw[j]
			idx := r.resolveBuffered(p, j, i, buf, &pos)
			r.timed(ref.arr, idx, false, ref.stride, ref.strideOK, r.left(i))
			r.rw = append(r.rw, ref.arr.Load(idx))
		}
		out := r.final(i, pre, r.rw)
		for j := range p.wr {
			ref := &p.wr[j]
			idx := r.resolveBuffered(p, len(p.rw)+j, i, buf, &pos)
			ref.arr.Store(idx, out[j])
			r.timed(ref.arr, idx, true, ref.stride, ref.strideOK, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut) + computeCycles
	}
	// Remainder the helper did not reach: full home-location execution.
	cycles += r.execPlan(p, l, lo+buffered, hi)
	return cycles
}
