// Package interp executes loopir loops on a simulated processor. It is the
// bridge between the loop IR's value semantics and the machine's timing
// model: every array reference performs both a real load/store on the
// backing slice and a timed cache access, and per-iteration access
// latencies are combined with the machine's bounded-overlap model.
//
// Four execution modes cover everything the paper needs:
//
//   - ExecIters: ordinary execution from the operands' home locations
//     (sequential baseline and the execution phase of prefetch-mode
//     cascading).
//   - ShadowIters: the prefetch helper — a shadow version of the loop
//     body that loads every operand the next execution phase will touch,
//     against a cycle budget (the paper's jump-out-on-signal refinement).
//   - RestructureIters: the restructuring helper — streams read-only
//     operands (after optional read-only precomputation) into a
//     sequential buffer, and prefetches the non-restructurable operands.
//   - ExecFromBuffer: the execution phase over a (possibly partially
//     filled) sequential buffer.
package interp

import (
	"fmt"

	"repro/internal/memsim"
)

// seqBufElemSize is the element size of sequential buffers. Restructured
// operands are stored as full-width values.
const seqBufElemSize = 8

// SeqBuf is a sequential buffer: a per-processor staging area into which a
// restructuring helper packs read-only operand values in dynamic reference
// order, so the execution phase can consume them with a pure sequential
// walk (full line utilization, no conflict misses, no index arithmetic).
type SeqBuf struct {
	arr *memsim.Array
	n   int
}

// NewSeqBuf allocates a buffer of capElems value slots in the given
// address space. Buffers are aligned to 4KB pages to keep their placement
// stable with respect to cache sets.
func NewSeqBuf(s *memsim.Space, name string, capElems int) *SeqBuf {
	if capElems <= 0 {
		panic(fmt.Sprintf("interp: NewSeqBuf(%q) with capacity %d", name, capElems))
	}
	return &SeqBuf{arr: s.Alloc(name, capElems, seqBufElemSize, 4096)}
}

// AttachSeqBuf re-adopts an existing buffer allocation instead of making
// a new one: it finds the most recent array named name in the space and
// wraps it (empty, like a freshly Reset buffer). Resuming a run from a
// checkpoint uses this — the checkpointed space already holds the run's
// buffers, and allocating fresh ones would shift every later address,
// breaking bit-identity with the uninterrupted run. It returns nil if no
// such array exists or its capacity differs.
func AttachSeqBuf(s *memsim.Space, name string, capElems int) *SeqBuf {
	arrays := s.Arrays()
	for i := len(arrays) - 1; i >= 0; i-- {
		a := arrays[i]
		if a.Name() == name {
			if a.Len() != capElems || a.ElemSize() != seqBufElemSize {
				return nil
			}
			return &SeqBuf{arr: a}
		}
	}
	return nil
}

// Reset empties the buffer for reuse by the next chunk. The underlying
// storage (and therefore its cache residency) is retained, which is the
// point: a processor's buffer stays hot in its own cache across chunks.
func (b *SeqBuf) Reset() { b.n = 0 }

// Len returns the number of values currently stored.
func (b *SeqBuf) Len() int { return b.n }

// Cap returns the buffer's capacity in values.
func (b *SeqBuf) Cap() int { return b.arr.Len() }

// Array exposes the backing simulated array (for footprint accounting).
func (b *SeqBuf) Array() *memsim.Array { return b.arr }

// Push appends v and returns the element index written, so the caller can
// charge the store to the cache model. It panics when full; the cascade
// runner sizes buffers to the chunk.
func (b *SeqBuf) Push(v float64) int {
	if b.n >= b.arr.Len() {
		panic(fmt.Sprintf("interp: sequential buffer %s overflow (cap %d)", b.arr.Name(), b.arr.Len()))
	}
	b.arr.Store(b.n, v)
	b.n++
	return b.n - 1
}

// At returns the k-th stored value.
func (b *SeqBuf) At(k int) float64 {
	if k < 0 || k >= b.n {
		panic(fmt.Sprintf("interp: sequential buffer %s read %d outside [0,%d)", b.arr.Name(), k, b.n))
	}
	return b.arr.Load(k)
}
