package interp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// syntheticLoop builds the paper's loop X(IJ(i)) = X(IJ(i))+A(i)+B(i) over
// n elements with the given index permutation.
func syntheticLoop(n int, perm func(i int) int) (*loopir.Loop, *memsim.Space, *memsim.Array) {
	s := memsim.NewSpace()
	x := s.Alloc("X", n, 8, 8)
	ij := s.Alloc("IJ", n, 4, 4)
	a := s.Alloc("A", n, 8, 8)
	b := s.Alloc("B", n, 8, 8)
	x.Fill(func(i int) float64 { return float64(i) })
	ij.Fill(func(i int) float64 { return float64(perm(i)) })
	a.Fill(func(i int) float64 { return float64(3 * i) })
	b.Fill(func(i int) float64 { return float64(7 * i) })
	xref := loopir.Ref{Array: x, Index: loopir.Indirect{Tbl: ij, Entry: loopir.Ident}}
	l := &loopir.Loop{
		Name:  "synth",
		Iters: n,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Ident},
			{Array: b, Index: loopir.Ident},
		},
		RW:          []loopir.Ref{xref},
		Writes:      []loopir.Ref{xref},
		PreCycles:   1,
		FinalCycles: 1,
		NPre:        1,
		Pre:         func(_ int, ro []float64) []float64 { return []float64{ro[0] + ro[1]} },
		Final: func(_ int, pre, rw []float64) []float64 {
			return []float64{rw[0] + pre[0]}
		},
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return l, s, x
}

func ppMachine(procs int) *machine.Machine {
	return machine.MustNew(machine.PentiumPro(procs))
}

func TestExecItersValues(t *testing.T) {
	const n = 200
	l, _, x := syntheticLoop(n, func(i int) int { return i })
	r := New(ppMachine(1).Proc(0))
	cycles := r.ExecIters(l, 0, n)
	if cycles <= 0 {
		t.Fatal("no cycles charged")
	}
	for i := 0; i < n; i++ {
		want := float64(i) + float64(3*i) + float64(7*i)
		if got := x.Load(i); got != want {
			t.Fatalf("X[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestExecItersPermutedScatter(t *testing.T) {
	const n = 128
	l, _, x := syntheticLoop(n, func(i int) int { return n - 1 - i })
	r := New(ppMachine(1).Proc(0))
	r.ExecIters(l, 0, n)
	for i := 0; i < n; i++ {
		j := n - 1 - i // X[j] updated at iteration i with A[i]+B[i]
		want := float64(j) + float64(3*i) + float64(7*i)
		if got := x.Load(j); got != want {
			t.Fatalf("X[%d] = %v, want %v", j, got, want)
		}
	}
}

func TestShadowDoesNotChangeValues(t *testing.T) {
	const n = 100
	l, _, x := syntheticLoop(n, func(i int) int { return i })
	before := x.Snapshot()
	r := New(ppMachine(1).Proc(0))
	done, cycles := r.ShadowIters(l, 0, n, Unlimited)
	if done != n {
		t.Errorf("done = %d, want %d", done, n)
	}
	if cycles <= 0 {
		t.Error("shadow charged no cycles")
	}
	if eq, idx := x.Equal(before); !eq {
		t.Errorf("shadow mutated X at %d", idx)
	}
}

func TestShadowWarmsCache(t *testing.T) {
	const n = 512
	l, _, _ := syntheticLoop(n, func(i int) int { return i })
	m := ppMachine(1)
	r := New(m.Proc(0))

	cold := r.ExecIters(l, 0, n)

	// Fresh machine: shadow first, then execute.
	l2, _, _ := syntheticLoop(n, func(i int) int { return i })
	m2 := ppMachine(1)
	r2 := New(m2.Proc(0))
	r2.ShadowIters(l2, 0, n, Unlimited)
	warm := r2.ExecIters(l2, 0, n)

	if warm >= cold {
		t.Errorf("warm execution (%d cy) not faster than cold (%d cy)", warm, cold)
	}
}

func TestShadowBudgetTruncates(t *testing.T) {
	const n = 1000
	l, _, _ := syntheticLoop(n, func(i int) int { return i })
	r := New(ppMachine(1).Proc(0))
	_, full := r.ShadowIters(l, 0, n, Unlimited)

	l2, _, _ := syntheticLoop(n, func(i int) int { return i })
	r2 := New(ppMachine(1).Proc(0))
	budget := full / 4
	done, cycles := r2.ShadowIters(l2, 0, n, budget)
	if done >= n {
		t.Errorf("budgeted shadow completed all %d iterations", n)
	}
	if done == 0 {
		t.Error("budgeted shadow did nothing")
	}
	// Jump-out granularity is one iteration, so overshoot is bounded by
	// one iteration's worst-case cost.
	if cycles > budget+1000 {
		t.Errorf("cycles %d grossly exceeds budget %d", cycles, budget)
	}
}

func TestShadowZeroBudget(t *testing.T) {
	const n = 10
	l, _, _ := syntheticLoop(n, func(i int) int { return i })
	r := New(ppMachine(1).Proc(0))
	done, cycles := r.ShadowIters(l, 0, n, 0)
	if done != 0 || cycles != 0 {
		t.Errorf("zero budget: done=%d cycles=%d, want 0,0", done, cycles)
	}
}

func TestRestructureThenExecValues(t *testing.T) {
	const n = 300
	// Reference result from plain execution.
	lRef, _, xRef := syntheticLoop(n, func(i int) int { return (i * 7) % n })
	New(ppMachine(1).Proc(0)).ExecIters(lRef, 0, n)
	want := xRef.Snapshot()

	// Restructured run: helper fills buffer, exec consumes it.
	l, s, x := syntheticLoop(n, func(i int) int { return (i * 7) % n })
	m := ppMachine(2)
	helper := New(m.Proc(1))
	exec := New(m.Proc(0))
	buf := NewSeqBuf(s, "seqbuf", n*l.BufSlotsPerIter())
	done, hc := helper.RestructureIters(l, 0, n, buf, Unlimited, true)
	if done != n {
		t.Fatalf("helper done = %d, want %d", done, n)
	}
	if hc <= 0 {
		t.Error("helper charged no cycles")
	}
	// Per iteration: 1 precomputed value + 1 packed IJ index (the RW and
	// Write references share it, so it is deduplicated).
	if buf.Len() != n*2 {
		t.Fatalf("buffer holds %d values, want %d", buf.Len(), n*2)
	}
	// Upper bound before dedup: max(NPre=1, len(RO)=2) + 2 table refs.
	if l.BufSlotsPerIter() != 4 {
		t.Fatalf("BufSlotsPerIter = %d, want 4", l.BufSlotsPerIter())
	}
	exec.ExecFromBuffer(l, 0, n, done, buf, true)
	if eq, idx := x.Equal(want); !eq {
		t.Errorf("restructured result differs from sequential at %d: %v vs %v",
			idx, x.Load(idx), want[idx])
	}
}

func TestPartialRestructureStillCorrect(t *testing.T) {
	const n = 300
	lRef, _, xRef := syntheticLoop(n, func(i int) int { return i })
	New(ppMachine(1).Proc(0)).ExecIters(lRef, 0, n)
	want := xRef.Snapshot()

	l, s, x := syntheticLoop(n, func(i int) int { return i })
	m := ppMachine(2)
	buf := NewSeqBuf(s, "seqbuf", n*l.BufSlotsPerIter())
	// Small budget: helper completes only part of the range.
	done, _ := New(m.Proc(1)).RestructureIters(l, 0, n, buf, 500, true)
	if done == 0 || done == n {
		t.Fatalf("budget produced done=%d, want partial", done)
	}
	New(m.Proc(0)).ExecFromBuffer(l, 0, n, done, buf, true)
	if eq, idx := x.Equal(want); !eq {
		t.Errorf("partial-restructure result differs at %d", idx)
	}
}

func TestExecFromBufferClampsBuffered(t *testing.T) {
	const n = 50
	l, s, x := syntheticLoop(n, func(i int) int { return i })
	m := ppMachine(1)
	buf := NewSeqBuf(s, "seqbuf", n*l.BufSlotsPerIter())
	r := New(m.Proc(0))
	done, _ := r.RestructureIters(l, 0, n, buf, Unlimited, true)
	// Claim more buffered iterations than the range holds: must clamp.
	r.ExecFromBuffer(l, 0, n, done+10, buf, true)
	want := float64(0) + float64(0) + float64(0)
	_ = want
	if x.Load(0) != 0+0+0 {
		t.Errorf("X[0] = %v", x.Load(0))
	}
}

// TestStrategyEquivalenceProperty is the central correctness property:
// for random loop shapes, sequential, shadow+exec, and restructure+exec
// produce bitwise-identical results.
func TestStrategyEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		perm := rng.Perm(n)
		mk := func() (*loopir.Loop, *memsim.Space, *memsim.Array) {
			return syntheticLoop(n, func(i int) int { return perm[i] })
		}

		l1, _, x1 := mk()
		New(ppMachine(1).Proc(0)).ExecIters(l1, 0, n)
		want := x1.Snapshot()

		l2, _, x2 := mk()
		m2 := ppMachine(2)
		New(m2.Proc(1)).ShadowIters(l2, 0, n, int64(rng.Intn(5000)))
		New(m2.Proc(0)).ExecIters(l2, 0, n)
		if eq, _ := x2.Equal(want); !eq {
			return false
		}

		l3, s3, x3 := mk()
		m3 := ppMachine(2)
		buf := NewSeqBuf(s3, "seqbuf", n*l3.BufSlotsPerIter())
		done, _ := New(m3.Proc(1)).RestructureIters(l3, 0, n, buf, int64(rng.Intn(20000)), seed%2 == 0)
		New(m3.Proc(0)).ExecFromBuffer(l3, 0, n, done, buf, seed%2 == 0)
		eq, _ := x3.Equal(want)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCompilerPrefetchHidesStridedMisses(t *testing.T) {
	// On an R10000-style machine, a dense conflict-free strided walk
	// should run substantially faster than on the same machine with
	// compiler prefetching disabled. (With set-conflicting arrays the
	// benefit vanishes — that is the paper's own R10000 observation and
	// is exercised by the figure-level tests.)
	const n = 16384
	run := func(pfEnabled bool) int64 {
		cfg := machine.R10000(1)
		cfg.CompilerPrefetch.Enabled = pfEnabled
		m := machine.MustNew(cfg)
		s := memsim.NewSpace()
		a := s.Alloc("A", n, 8, 8)
		c := s.Alloc("C", 1, 8, 8)
		l := &loopir.Loop{
			Name:   "walk",
			Iters:  n,
			RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
			Writes: []loopir.Ref{{Array: c, Index: loopir.Affine{}}},
			Final:  func(_ int, pre, _ []float64) []float64 { return pre },
		}
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		return New(m.Proc(0)).ExecIters(l, 0, n)
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("prefetch enabled (%d cy) not faster than disabled (%d cy)", with, without)
	}
	if float64(with) > 0.8*float64(without) {
		t.Errorf("prefetch saved too little: %d vs %d cycles", with, without)
	}
}

func TestSeqBuf(t *testing.T) {
	s := memsim.NewSpace()
	b := NewSeqBuf(s, "buf", 4)
	if b.Cap() != 4 || b.Len() != 0 {
		t.Fatalf("fresh buf: cap=%d len=%d", b.Cap(), b.Len())
	}
	if idx := b.Push(1.5); idx != 0 {
		t.Errorf("first Push idx = %d", idx)
	}
	b.Push(2.5)
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	if v := b.At(1); v != 2.5 {
		t.Errorf("At(1) = %v", v)
	}
	if b.Array().Base()%4096 != 0 {
		t.Error("buffer not page-aligned")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset did not empty buffer")
	}
}

func TestSeqBufOverflowPanics(t *testing.T) {
	s := memsim.NewSpace()
	b := NewSeqBuf(s, "buf", 1)
	b.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("overflow should panic")
		}
	}()
	b.Push(2)
}

func TestSeqBufBadReadPanics(t *testing.T) {
	s := memsim.NewSpace()
	b := NewSeqBuf(s, "buf", 2)
	b.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("read past Len should panic")
		}
	}()
	b.At(1)
}

func TestSeqBufBadCapacityPanics(t *testing.T) {
	s := memsim.NewSpace()
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewSeqBuf(s, "buf", 0)
}

func TestIndexTableDedup(t *testing.T) {
	// The synthetic loop reads X(IJ(i)) and writes X(IJ(i)): IJ(i) must be
	// loaded once per iteration, not twice.
	const n = 64
	l, _, _ := syntheticLoop(n, func(i int) int { return i })
	m := ppMachine(1)
	r := New(m.Proc(0))
	r.ExecIters(l, 0, n)
	// Accesses per iteration: A, B (RO) + IJ (once) + X read + X write = 5.
	got := m.L1Stats().Accesses
	if got != int64(n*5) {
		t.Errorf("L1 accesses = %d, want %d (IJ dedup)", got, n*5)
	}
}

func TestRunnerProc(t *testing.T) {
	m := ppMachine(2)
	r := New(m.Proc(1))
	if r.Proc() != m.Proc(1) {
		t.Error("Proc mismatch")
	}
}
