package interp

import (
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// TestRestructureWithoutPrecompute verifies the raw-operand buffer path:
// values match, the buffer holds len(RO) values per iteration, and the
// execution phase still applies Pre.
func TestRestructureWithoutPrecompute(t *testing.T) {
	const n = 200
	lRef, _, xRef := syntheticLoop(n, func(i int) int { return (i * 3) % n })
	New(ppMachine(1).Proc(0)).ExecIters(lRef, 0, n)
	want := xRef.Snapshot()

	l, s, x := syntheticLoop(n, func(i int) int { return (i * 3) % n })
	m := ppMachine(2)
	buf := NewSeqBuf(s, "seqbuf", n*l.BufSlotsPerIter())
	done, _ := New(m.Proc(1)).RestructureIters(l, 0, n, buf, Unlimited, false)
	if done != n {
		t.Fatalf("done = %d", done)
	}
	// Raw mode: 2 RO values (A, B) + 1 packed index per iteration.
	if buf.Len() != n*3 {
		t.Fatalf("buffer holds %d values, want %d", buf.Len(), n*3)
	}
	New(m.Proc(0)).ExecFromBuffer(l, 0, n, done, buf, false)
	if eq, idx := x.Equal(want); !eq {
		t.Errorf("raw-mode result differs at %d", idx)
	}
}

// TestPrecomputeModesAgree: both buffer modes produce identical values.
func TestPrecomputeModesAgree(t *testing.T) {
	const n = 150
	run := func(precompute bool) []float64 {
		l, s, x := syntheticLoop(n, func(i int) int { return (i * 11) % n })
		m := ppMachine(2)
		buf := NewSeqBuf(s, "seqbuf", n*l.BufSlotsPerIter())
		done, _ := New(m.Proc(1)).RestructureIters(l, 0, n, buf, Unlimited, precompute)
		New(m.Proc(0)).ExecFromBuffer(l, 0, n, done, buf, precompute)
		return x.Snapshot()
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("modes disagree at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPrecomputeShiftsCyclesToHelper: with precompute the helper spends
// more cycles and the execution phase fewer.
func TestPrecomputeShiftsCyclesToHelper(t *testing.T) {
	const n = 2000
	run := func(precompute bool) (helper, exec int64) {
		l, s, _ := syntheticLoop(n, func(i int) int { return i })
		l.PreCycles = 20 // make the shift visible
		m := ppMachine(2)
		buf := NewSeqBuf(s, "seqbuf", n*l.BufSlotsPerIter())
		done, hc := New(m.Proc(1)).RestructureIters(l, 0, n, buf, Unlimited, precompute)
		ec := New(m.Proc(0)).ExecFromBuffer(l, 0, n, done, buf, precompute)
		return hc, ec
	}
	h1, e1 := run(true)
	h0, e0 := run(false)
	if h1 <= h0 {
		t.Errorf("precompute helper cycles %d not above raw %d", h1, h0)
	}
	if e1 >= e0 {
		t.Errorf("precompute exec cycles %d not below raw %d", e1, e0)
	}
}

// TestNoCompilerPrefetchRespected: a loop that opts out of compiler
// prefetching gets no prefetch fills even on the R10000.
func TestNoCompilerPrefetchRespected(t *testing.T) {
	const n = 4096
	build := func(noPF bool) (*loopir.Loop, *machine.Machine) {
		s := memsim.NewSpace()
		a := s.Alloc("A", n, 8, 8)
		c := s.Alloc("C", n, 8, 8)
		l := &loopir.Loop{
			Name:               "walk",
			Iters:              n,
			RO:                 []loopir.Ref{{Array: a, Index: loopir.Ident}},
			Writes:             []loopir.Ref{{Array: c, Index: loopir.Ident}},
			Final:              func(_ int, pre, _ []float64) []float64 { return pre },
			NoCompilerPrefetch: noPF,
		}
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		return l, machine.MustNew(machine.R10000(1))
	}
	l, m := build(true)
	New(m.Proc(0)).ExecIters(l, 0, n)
	if got := m.L1Stats().PrefetchFills; got != 0 {
		t.Errorf("opted-out loop got %d prefetch fills", got)
	}
	l2, m2 := build(false)
	New(m2.Proc(0)).ExecIters(l2, 0, n)
	if got := m2.L1Stats().PrefetchFills; got == 0 {
		t.Error("opted-in loop got no prefetch fills")
	}
}

// TestDistinctTablePacking: two indirect write refs through different
// tables pack two index values per iteration and still agree with
// sequential execution.
func TestDistinctTablePacking(t *testing.T) {
	const n = 300
	build := func() (*loopir.Loop, *memsim.Space, *memsim.Array, *memsim.Array) {
		s := memsim.NewSpace()
		x := s.Alloc("X", n, 8, 8)
		y := s.Alloc("Y", n, 8, 8)
		t1 := s.Alloc("T1", n, 4, 4)
		t2 := s.Alloc("T2", n, 4, 4)
		a := s.Alloc("A", n, 8, 8)
		t1.Fill(func(i int) float64 { return float64((i * 7) % n) })
		t2.Fill(func(i int) float64 { return float64((i * 13) % n) })
		a.Fill(func(i int) float64 { return float64(i % 19) })
		x.Fill(func(i int) float64 { return float64(i) })
		y.Fill(func(i int) float64 { return float64(2 * i) })
		xr := loopir.Ref{Array: x, Index: loopir.Indirect{Tbl: t1, Entry: loopir.Ident}}
		yr := loopir.Ref{Array: y, Index: loopir.Indirect{Tbl: t2, Entry: loopir.Ident}}
		l := &loopir.Loop{
			Name:   "twoscatter",
			Iters:  n,
			RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
			RW:     []loopir.Ref{xr, yr},
			Writes: []loopir.Ref{xr, yr},
			Final: func(_ int, pre, rw []float64) []float64 {
				return []float64{rw[0] + pre[0], rw[1] - pre[0]}
			},
		}
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		return l, s, x, y
	}

	lRef, _, xRef, yRef := build()
	New(ppMachine(1).Proc(0)).ExecIters(lRef, 0, n)
	wantX, wantY := xRef.Snapshot(), yRef.Snapshot()

	l, s, x, y := build()
	// Upper bound: 1 RO + 4 table refs (each scatter ref appears in both
	// RW and Writes); runtime dedup packs only 2 index values.
	if l.BufSlotsPerIter() != 5 {
		t.Fatalf("BufSlotsPerIter = %d, want 5", l.BufSlotsPerIter())
	}
	m := ppMachine(2)
	buf := NewSeqBuf(s, "seqbuf", n*l.BufSlotsPerIter())
	done, _ := New(m.Proc(1)).RestructureIters(l, 0, n, buf, Unlimited, true)
	if buf.Len() != n*3 {
		t.Fatalf("buffer holds %d, want %d", buf.Len(), n*3)
	}
	New(m.Proc(0)).ExecFromBuffer(l, 0, n, done, buf, true)
	if eq, idx := x.Equal(wantX); !eq {
		t.Errorf("X differs at %d", idx)
	}
	if eq, idx := y.Equal(wantY); !eq {
		t.Errorf("Y differs at %d", idx)
	}
}

// TestStoreBufferReducesWriteCost: the same write-heavy loop costs less
// on a store-buffered machine.
func TestStoreBufferReducesWriteCost(t *testing.T) {
	const n = 4096
	run := func(buffered bool) int64 {
		cfg := machine.PentiumPro(1)
		cfg.StoreBuffered = buffered
		m := machine.MustNew(cfg)
		s := memsim.NewSpace()
		a := s.Alloc("A", n, 8, 8)
		c := s.Alloc("C", n, 8, 8)
		l := &loopir.Loop{
			Name:   "copy",
			Iters:  n,
			RO:     []loopir.Ref{{Array: a, Index: loopir.Ident}},
			Writes: []loopir.Ref{{Array: c, Index: loopir.Ident}},
			Final:  func(_ int, pre, _ []float64) []float64 { return pre },
		}
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		return New(m.Proc(0)).ExecIters(l, 0, n)
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("store-buffered run (%d) not cheaper than unbuffered (%d)", with, without)
	}
}
