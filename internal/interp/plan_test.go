package interp

import (
	"testing"

	"repro/internal/gallery"
	"repro/internal/loopir"
	"repro/internal/memsim"
	"repro/internal/wave5"
)

// TestPlanCoversPaperWorkloads pins down that the plan compiler accepts
// every loop the experiments actually run — all fifteen PARMVR loops and
// the full kernel gallery. If a loop here started falling back to the
// reference interpreter, the differential tests would still pass (both
// engines would interpret) but the fast engine's speedup would silently
// vanish.
func TestPlanCoversPaperWorkloads(t *testing.T) {
	w := wave5.MustBuild(wave5.DefaultParams().Scaled(0.01))
	for i, l := range w.Loops {
		if compilePlan(l) == nil {
			t.Errorf("PARMVR loop %d (%s) did not compile", i, l.Name)
		}
	}
	for _, k := range gallery.Kernels() {
		_, l, err := k.Build(1 << 10)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if compilePlan(l) == nil {
			t.Errorf("gallery kernel %s did not compile", k.Name)
		}
	}
}

// TestPlanRefGroups checks the compiled plan preserves the IR's reference
// order and group boundaries.
func TestPlanRefGroups(t *testing.T) {
	w := wave5.MustBuild(wave5.DefaultParams().Scaled(0.01))
	for i, l := range w.Loops {
		p := compilePlan(l)
		if p == nil {
			t.Fatalf("loop %d did not compile", i)
		}
		if len(p.ro) != len(l.RO) || len(p.rw) != len(l.RW) || len(p.wr) != len(l.Writes) {
			t.Errorf("loop %d: group sizes (%d,%d,%d) want (%d,%d,%d)", i,
				len(p.ro), len(p.rw), len(p.wr), len(l.RO), len(l.RW), len(l.Writes))
		}
	}
}

// TestPlanRefusesCrossingIndirects verifies the compiler bails out when
// two index-table walks coincide at an iteration inside the loop range —
// the case whose dedup the interpreter decides dynamically and a static
// plan cannot express.
func TestPlanRefusesCrossingIndirects(t *testing.T) {
	space := memsim.NewSpace()
	tbl := space.Alloc("tbl", 64, 8, 8)
	tbl.Fill(func(i int) float64 { return float64(i) })
	a := space.Alloc("a", 64, 8, 8)
	b := space.Alloc("b", 64, 8, 8)

	mk := func(s1, o1, s2, o2 int, iters int) *loopir.Loop {
		return &loopir.Loop{
			Name:  "crossing",
			Iters: iters,
			RO: []loopir.Ref{
				{Array: a, Index: loopir.Indirect{Tbl: tbl, Entry: loopir.Affine{Scale: s1, Offset: o1}}},
				{Array: b, Index: loopir.Indirect{Tbl: tbl, Entry: loopir.Affine{Scale: s2, Offset: o2}}},
			},
			Writes: []loopir.Ref{{Array: a, Index: loopir.Affine{Scale: 1}}},
			Final:  func(i int, pre, rw []float64) []float64 { return []float64{pre[0] + pre[1]} },
		}
	}

	// Positions 2i and i+4 coincide at i=4, inside [0,8): must refuse.
	if compilePlan(mk(2, 0, 1, 4, 8)) != nil {
		t.Error("compiled a loop whose indirect walks cross inside the range")
	}
	// Same crossing, but the loop ends at i=4: compilable.
	if compilePlan(mk(2, 0, 1, 4, 4)) == nil {
		t.Error("refused a loop whose crossing lies outside the range")
	}
	// Same scale, different offsets never coincide: compilable.
	if compilePlan(mk(1, 0, 1, 4, 8)) == nil {
		t.Error("refused non-coinciding same-stride walks")
	}
	// Identical walks coincide always: compilable, second marked dup.
	p := compilePlan(mk(1, 2, 1, 2, 8))
	if p == nil {
		t.Fatal("refused identical walks")
	}
	if p.ro[1].dupLoad < 0 {
		t.Error("second identical walk not marked as a duplicate load")
	}
}
