package interp

import (
	"repro/internal/cache"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// Unlimited is the budget value meaning "run the helper to completion"
// (used by the unbounded-processor simulation of §3.4).
const Unlimited int64 = -1

// Runner executes loop iterations on one processor. It is cheap to create
// but reusable; internal scratch buffers avoid per-iteration allocation,
// which matters at tens of millions of simulated iterations.
type Runner struct {
	proc   *machine.Processor
	maxOut int
	pf     machine.PrefetchConfig
	line   int // L1 line size, the granularity of prefetch issue

	pfOn     bool
	pfEnd    int // exclusive end iteration of the current run-mode call (prefetch wind-down)
	results  []cache.Result
	tblSeen  []tblRead
	packSeen []tblRead
	packIdx  []int
	ro, rw   []float64
	scratch  []float64

	// Compiled-plan engine state: compiled selects the fast engine (from
	// the machine's Engine configuration); the runner caches the access
	// plan of the loop it last executed. A nil plan for a non-nil
	// planLoop records that the loop is not statically compilable and the
	// interpreter must be used.
	compiled bool
	plan     *plan
	planLoop *loopir.Loop

	// Run-coalescing state: coalesce resolves the machine's Coalesce
	// knob, hitLat caches the L1 hit latency (the per-access cost of a
	// retired tail access — every coalesced access is an L1 hit, and an
	// all-hit group's overlap cost is its serial sum for any
	// MaxOutstanding).
	coalesce bool
	hitLat   int64
	// toks holds the verified stream tokens of the window currently being
	// coalesced, in intra-iteration reference order (scratch, reused).
	toks []cache.RunToken
	// vfails counts consecutive window-verification failures of the run
	// currently executing (reset at the start of every windowed run-mode
	// call and on every verified window); past coalesceGiveUp the runner
	// backs off to periodic retries.
	vfails int

	// Per-runner instances of the bound loop's value closures. A loop's
	// shared Pre/Final instances may reuse internal scratch (see
	// loopir.Loop.NewPre), so a runner that may execute concurrently with
	// others instantiates private closures from the loop's factories;
	// loops without factories fall back to the shared instances, which is
	// exactly the serial behaviour. Cached per loop like the access plan.
	bodyLoop *loopir.Loop
	pre      func(i int, ro []float64) []float64
	final    func(i int, pre, rw []float64) []float64
}

// bind caches the runner-private Pre/Final closures for l, preferring the
// loop's factories (reentrant instances) over its shared closures.
func (r *Runner) bind(l *loopir.Loop) {
	if r.bodyLoop == l {
		return
	}
	r.bodyLoop = l
	if l.NewPre != nil {
		r.pre = l.NewPre()
	} else {
		r.pre = l.Pre
	}
	if l.NewFinal != nil {
		r.final = l.NewFinal()
	} else {
		r.final = l.Final
	}
}

// tblRead records an index-table element already loaded this iteration, so
// a reference appearing as both read and write (X(IJ(i)) on both sides)
// charges its index load once, as compiled code would.
type tblRead struct {
	arr *memsim.Array
	pos int
}

// New builds a Runner for proc, taking the overlap and compiler-prefetch
// parameters from the owning machine's configuration.
func New(proc *machine.Processor) *Runner {
	cfg := proc.Machine().Config()
	return &Runner{
		proc:     proc,
		maxOut:   cfg.MaxOutstanding,
		pf:       cfg.CompilerPrefetch,
		line:     cfg.L1.LineSize,
		compiled: cfg.Engine == machine.EngineFast,
		coalesce: cfg.CoalesceEnabled(),
		hitLat:   cfg.L1.HitLatency,
	}
}

// Proc returns the processor this runner executes on.
func (r *Runner) Proc() *machine.Processor { return r.proc }

// beginIter resets the per-iteration scratch state.
func (r *Runner) beginIter() {
	r.results = r.results[:0]
	r.tblSeen = r.tblSeen[:0]
}

// timed performs one demand access and records its latency, issuing a
// compiler prefetch when the machine models one and the reference's stride
// is statically known.
//
// left is the number of iterations the reference's stream still executes
// after this one within the current run-mode call, or streamUnbounded for
// streams not tied to the call's iteration range (the sequential buffer).
// It implements the compiler's prefetch wind-down: software-pipelined
// prefetch streams stop issuing once the target lies beyond the data the
// remaining iterations of this call will touch, so a chunk's prefetches
// never escape the chunk's own footprint (DESIGN.md §4.3 relies on this
// for cross-chunk disjointness).
func (r *Runner) timed(arr *memsim.Array, idx int, write bool, strideElems int, strideKnown bool, left int) {
	addr := arr.Addr(idx)
	r.results = append(r.results, r.proc.Access(addr, arr.ElemSize(), write))
	if !r.pfOn || !strideKnown || strideElems == 0 {
		return
	}
	// Issue one prefetch per new line entered by this reference stream:
	// fire when the access lands within the first strideBytes of its line
	// (exactly once per line for a regular walk).
	strideBytes := strideElems
	if strideBytes < 0 {
		strideBytes = -strideBytes
	}
	strideBytes *= arr.ElemSize()
	if addr.Offset(r.line) >= strideBytes {
		return
	}
	dist := memsim.Addr(r.pf.Distance * r.line)
	// Wind-down: the stream's final access of this call is strideBytes*left
	// bytes ahead; a target beyond it would touch data this call never
	// uses, which compiled wind-down code does not prefetch.
	if left >= 0 && memsim.Addr(strideBytes)*memsim.Addr(left) < dist {
		return
	}
	var target memsim.Addr
	if strideElems > 0 {
		target = addr + dist
	} else {
		if addr < arr.Base()+dist {
			return
		}
		target = addr - dist
	}
	if target < arr.Base() || target >= arr.Base()+memsim.Addr(arr.SizeBytes()) {
		return
	}
	r.proc.Prefetch(target)
	r.results = append(r.results, cache.Result{Cycles: r.pf.IssueCost})
}

// streamUnbounded is the `left` value for reference streams whose extent
// is not bounded by the current call's iteration range: sequential-buffer
// streams run to the buffer the compiler sized for the whole chunk, so
// only the array-bounds clamp applies. The buffer is part of the chunk's
// own footprint either way.
const streamUnbounded = -1

// left returns the wind-down bound for a loop-indexed reference stream at
// iteration i of the current run-mode call (set by the call entries).
func (r *Runner) left(i int) int { return r.pfEnd - 1 - i }

// readIndex resolves a reference's element index for iteration i,
// performing (and timing) the index-table load if one is needed and not
// already done this iteration.
func (r *Runner) readIndex(ref loopir.Ref, i int) int {
	if tbl, pos := ref.Index.Table(i); tbl != nil {
		seen := false
		for _, t := range r.tblSeen {
			if t.arr == tbl && t.pos == pos {
				seen = true
				break
			}
		}
		if !seen {
			r.tblSeen = append(r.tblSeen, tblRead{tbl, pos})
			// Index tables are walked affinely; their stride is the
			// Entry's scale.
			stride := 1
			if s, ok := affineEntryStride(ref.Index); ok {
				stride = s
			}
			r.timed(tbl, pos, false, stride, true, r.left(i))
		}
	}
	return ref.Index.At(i)
}

// affineEntryStride extracts the table-walk stride of an indirect index.
func affineEntryStride(ix loopir.IndexExpr) (int, bool) {
	if ind, ok := ix.(loopir.Indirect); ok {
		return ind.Entry.Scale, true
	}
	return 0, false
}

// readRef performs a timed read of ref at iteration i and returns the value.
func (r *Runner) readRef(ref loopir.Ref, i int) float64 {
	idx := r.readIndex(ref, i)
	stride, known := ref.Index.StrideElems()
	r.timed(ref.Array, idx, false, stride, known, r.left(i))
	return ref.Array.Load(idx)
}

// writeRef performs a timed write of v through ref at iteration i.
func (r *Runner) writeRef(ref loopir.Ref, i int, v float64) {
	idx := r.readIndex(ref, i)
	ref.Array.Store(idx, v)
	stride, known := ref.Index.StrideElems()
	r.timed(ref.Array, idx, true, stride, known, r.left(i))
}

// preValues computes the read-only stage of iteration i, reading the RO
// operands (timed) and applying Pre. The returned slice aliases Runner
// scratch space and is valid until the next iteration.
func (r *Runner) preValues(l *loopir.Loop, i int) []float64 {
	r.ro = r.ro[:0]
	for _, ref := range l.RO {
		r.ro = append(r.ro, r.readRef(ref, i))
	}
	if r.pre != nil {
		return r.pre(i, r.ro)
	}
	return r.ro
}

// finishIter computes Final over pre and the (timed) RW reads, performs
// the writes, and returns the iteration's memory cost under the overlap
// model. Compute cycles are added by the caller, which knows which phases
// it represents.
func (r *Runner) finishIter(l *loopir.Loop, i int, pre []float64) int64 {
	r.rw = r.rw[:0]
	for _, ref := range l.RW {
		r.rw = append(r.rw, r.readRef(ref, i))
	}
	out := r.final(i, pre, r.rw)
	for j, ref := range l.Writes {
		r.writeRef(ref, i, out[j])
	}
	return machine.OverlapCost(r.results, r.maxOut)
}

// ExecIters executes iterations [lo,hi) of l from the operands' home
// locations and returns the cycles consumed. This is both the sequential
// baseline (on one processor) and the execution phase of prefetch-mode
// cascaded execution.
func (r *Runner) ExecIters(l *loopir.Loop, lo, hi int) int64 {
	r.bind(l)
	r.pfOn = r.pf.Enabled && !l.NoCompilerPrefetch
	r.pfEnd = hi
	if p := r.planFor(l); p != nil {
		return r.execPlan(p, l, lo, hi)
	}
	var cycles int64
	for i := lo; i < hi; i++ {
		r.beginIter()
		pre := r.preValues(l, i)
		cycles += r.finishIter(l, i, pre) + l.PreCycles + l.FinalCycles
	}
	return cycles
}

// ShadowIters runs the prefetch helper over iterations [lo,hi): a shadow
// version of the loop body that performs every operand and index-table
// load (touching to-be-written lines too) without computing or storing.
// It stops after the iteration during which the cycle budget is exhausted,
// modelling a helper that jumps out when signaled; budget Unlimited runs
// to completion. It returns the number of iterations fully shadowed and
// the cycles spent.
func (r *Runner) ShadowIters(l *loopir.Loop, lo, hi int, budget int64) (done int, cycles int64) {
	r.bind(l)
	r.pfOn = r.pf.Enabled && !l.NoCompilerPrefetch
	r.pfEnd = hi
	if p := r.planFor(l); p != nil {
		return r.shadowPlan(p, lo, hi, budget)
	}
	for i := lo; i < hi; i++ {
		if budget != Unlimited && cycles >= budget {
			return i - lo, cycles
		}
		r.beginIter()
		for _, ref := range l.RO {
			idx := r.readIndex(ref, i)
			stride, known := ref.Index.StrideElems()
			r.timed(ref.Array, idx, false, stride, known, r.left(i))
		}
		for _, ref := range l.RW {
			idx := r.readIndex(ref, i)
			stride, known := ref.Index.StrideElems()
			r.timed(ref.Array, idx, false, stride, known, r.left(i))
		}
		for _, ref := range l.Writes {
			idx := r.readIndex(ref, i)
			stride, known := ref.Index.StrideElems()
			r.timed(ref.Array, idx, false, stride, known, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut)
	}
	return hi - lo, cycles
}

// RestructureIters runs the restructuring helper over iterations [lo,hi):
// all read-only data is streamed into buf in dynamic reference order —
// the read-only operand values, then the index values of indirect
// RW/Write references (deduplicated within the iteration) — so the
// execution phase neither gathers operands nor touches index arrays. The
// remaining non-restructurable data (the RW elements and write targets
// themselves) is shadow-loaded exactly as ShadowIters does, since it must
// still be accessed at home during execution.
//
// With precompute set, the helper additionally applies the loop's
// read-only computation Pre — charging PreCycles to the helper instead of
// the execution phase — and stores the (usually fewer) precomputed values
// instead of the raw operands. This is §2.1's optional "computation that
// involves only read-only data values can be done during the helper
// phase".
//
// The budget semantics match ShadowIters. The buffer must be freshly
// Reset and hold at least (hi-lo)*l.BufSlotsPerIter() values.
func (r *Runner) RestructureIters(l *loopir.Loop, lo, hi int, buf *SeqBuf, budget int64, precompute bool) (done int, cycles int64) {
	r.bind(l)
	r.pfOn = r.pf.Enabled && !l.NoCompilerPrefetch
	r.pfEnd = hi
	if p := r.planFor(l); p != nil {
		return r.restructurePlan(p, l, lo, hi, buf, budget, precompute)
	}
	for i := lo; i < hi; i++ {
		if budget != Unlimited && cycles >= budget {
			return i - lo, cycles
		}
		r.beginIter()
		var vals []float64
		var computeCycles int64
		if precompute {
			vals = r.preValues(l, i)
			computeCycles = l.PreCycles
		} else {
			r.ro = r.ro[:0]
			for _, ref := range l.RO {
				r.ro = append(r.ro, r.readRef(ref, i))
			}
			vals = r.ro
		}
		for _, v := range vals {
			idx := buf.Push(v)
			r.timed(buf.arr, idx, true, 1, true, streamUnbounded)
		}
		// Pack index values and shadow-load the home elements.
		packIndex := func(ref loopir.Ref) {
			idx := r.readIndex(ref, i) // timed table load, deduplicated
			if tbl, pos := ref.Index.Table(i); tbl != nil && !r.indexPacked(tbl, pos) {
				r.markPacked(tbl, pos)
				slot := buf.Push(float64(idx))
				r.timed(buf.arr, slot, true, 1, true, streamUnbounded)
			}
			stride, known := ref.Index.StrideElems()
			r.timed(ref.Array, idx, false, stride, known, r.left(i))
		}
		r.packSeen = r.packSeen[:0]
		for _, ref := range l.RW {
			packIndex(ref)
		}
		for _, ref := range l.Writes {
			packIndex(ref)
		}
		cycles += machine.OverlapCost(r.results, r.maxOut) + computeCycles
	}
	return hi - lo, cycles
}

// indexPacked reports whether the (table, position) pair's value was
// already pushed to the buffer this iteration.
func (r *Runner) indexPacked(tbl *memsim.Array, pos int) bool {
	for _, t := range r.packSeen {
		if t.arr == tbl && t.pos == pos {
			return true
		}
	}
	return false
}

// markPacked records a packed (table, position) pair for this iteration.
func (r *Runner) markPacked(tbl *memsim.Array, pos int) {
	r.packSeen = append(r.packSeen, tblRead{tbl, pos})
}

// ExecFromBuffer executes iterations [lo,hi) given that the restructuring
// helper completed the first `buffered` of them into buf (with the same
// precompute setting). Buffered iterations stream their read-only operand
// values — and the index values of indirect RW/Write references —
// sequentially out of the buffer, touching neither the read-only arrays
// nor the index arrays. With precompute the buffered values are already
// through Pre and only FinalCycles of compute is charged; without it the
// execution phase applies Pre itself. The remainder falls back to the
// full home-location path (the helper jumped out early).
func (r *Runner) ExecFromBuffer(l *loopir.Loop, lo, hi, buffered int, buf *SeqBuf, precompute bool) int64 {
	r.bind(l)
	r.pfOn = r.pf.Enabled && !l.NoCompilerPrefetch
	r.pfEnd = hi
	if p := r.planFor(l); p != nil {
		return r.execBufferPlan(p, l, lo, hi, buffered, buf, precompute)
	}
	if buffered > hi-lo {
		buffered = hi - lo
	}
	nVals := l.NPre
	if !precompute {
		nVals = len(l.RO)
	}
	var cycles int64
	pos := 0
	if cap(r.scratch) < nVals {
		r.scratch = make([]float64, nVals)
	}
	vals := r.scratch[:nVals]
	for i := lo; i < lo+buffered; i++ {
		r.beginIter()
		for k := 0; k < nVals; k++ {
			vals[k] = buf.At(pos)
			r.timed(buf.arr, pos, false, 1, true, streamUnbounded)
			pos++
		}
		pre := vals
		var computeCycles int64 = l.FinalCycles
		if !precompute {
			if r.pre != nil {
				pre = r.pre(i, vals)
			}
			computeCycles += l.PreCycles
		}
		// Resolve indirect indices from the buffer, mirroring the
		// helper's dedup order exactly.
		r.packSeen = r.packSeen[:0]
		r.packIdx = r.packIdx[:0]
		resolve := func(ref loopir.Ref) int {
			tbl, tpos := ref.Index.Table(i)
			if tbl == nil {
				return ref.Index.At(i)
			}
			for k, t := range r.packSeen {
				if t.arr == tbl && t.pos == tpos {
					return r.packIdx[k]
				}
			}
			idx := int(buf.At(pos))
			r.timed(buf.arr, pos, false, 1, true, streamUnbounded)
			pos++
			r.markPacked(tbl, tpos)
			r.packIdx = append(r.packIdx, idx)
			return idx
		}
		r.rw = r.rw[:0]
		for _, ref := range l.RW {
			idx := resolve(ref)
			stride, known := ref.Index.StrideElems()
			r.timed(ref.Array, idx, false, stride, known, r.left(i))
			r.rw = append(r.rw, ref.Array.Load(idx))
		}
		out := r.final(i, pre, r.rw)
		for j, ref := range l.Writes {
			idx := resolve(ref)
			ref.Array.Store(idx, out[j])
			stride, known := ref.Index.StrideElems()
			r.timed(ref.Array, idx, true, stride, known, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut) + computeCycles
	}
	for i := lo + buffered; i < hi; i++ {
		r.beginIter()
		p := r.preValues(l, i)
		cycles += r.finishIter(l, i, p) + l.PreCycles + l.FinalCycles
	}
	return cycles
}
