package interp

import (
	"reflect"
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// coherenceGuardLoop builds a purely affine unit-stride loop — the best
// case for run coalescing — over its own space, so twin machines can
// execute structurally identical copies without sharing mutable state.
func coherenceGuardLoop(n int) (*memsim.Space, *loopir.Loop) {
	space := memsim.NewSpace()
	a := space.Alloc("a", n, 8, 8)
	a.Fill(func(i int) float64 { return float64(i) })
	b := space.Alloc("b", n, 8, 8)
	b.Fill(func(i int) float64 { return 0.5 * float64(i) })

	pre := make([]float64, 1)
	out := make([]float64, 1)
	l := &loopir.Loop{
		Name:   "coherenceguard",
		Iters:  n,
		RO:     []loopir.Ref{{Array: a, Index: loopir.Affine{Scale: 1}}},
		RW:     []loopir.Ref{{Array: b, Index: loopir.Affine{Scale: 1}}},
		Writes: []loopir.Ref{{Array: b, Index: loopir.Affine{Scale: 1}}},
		NPre:   1,
		Pre: func(_ int, ro []float64) []float64 {
			pre[0] = 3 * ro[0]
			return pre
		},
		Final: func(_ int, p, rw []float64) []float64 {
			out[0] = p[0] + rw[0]
			return out
		},
		PreCycles: 2, FinalCycles: 2,
	}
	return space, l
}

// The mid-line split index for the coherence tests: with 8-byte elements
// on 32-byte lines, index 510 sits inside a line, so the line holding the
// split is resident when the remote writes land and the first window
// after resuming starts on an invalidated line.
const coherenceSplit = 510

// remoteSweep makes processor 1 write every line of every array the loop
// references; each write-miss broadcast invalidates processor 0's copies.
func remoteSweep(m *machine.Machine, l *loopir.Loop) {
	for _, ref := range l.Refs() {
		for i := 0; i < l.Iters; i += 4 {
			m.Proc(1).Access(ref.Array.Addr(i), 8, true)
		}
	}
}

// TestCoalesceCoherenceTrigger proves the fallback trigger actually
// fires mid-execution: after half the loop has run coalesced, the lines
// it just verified runs on stop being verifiable the moment a remote
// processor's writes invalidate them.
func TestCoalesceCoherenceTrigger(t *testing.T) {
	const n = 1024
	_, l := coherenceGuardLoop(n)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.PentiumPro(2).WithEngine(machine.EngineFast))
	if err != nil {
		t.Fatal(err)
	}
	r := New(m.Proc(0))

	// Qualification: the loop must actually be coalescing, otherwise this
	// test degenerates into a plain per-access differential.
	p := r.planFor(l)
	if p == nil || !p.runOK {
		t.Fatal("guard loop did not compile to a run-coalescible plan")
	}
	if p.maxTail < coalesceMinTail {
		t.Fatalf("guard loop maxTail %d below coalesceMinTail %d; no windows would form",
			p.maxTail, coalesceMinTail)
	}

	r.ExecIters(l, 0, coherenceSplit)
	h := m.Proc(0).Hierarchy()
	addr := l.RO[0].Array.Addr(coherenceSplit - 1)
	if !h.VerifyRun(addr, 8, false) {
		t.Fatal("resident line not verifiable before remote invalidation")
	}
	remoteSweep(m, l)
	if h.VerifyRun(addr, 8, false) {
		t.Error("run still verifiable after remote invalidation; the fallback would never trigger")
	}
	// And execution recovers: the rest of the loop re-fills and completes.
	if c := r.ExecIters(l, coherenceSplit, n); c <= 0 {
		t.Errorf("post-invalidation execution returned %d cycles", c)
	}
}

// TestCoalesceCoherenceDifferential drives the exact same interleaving —
// half the loop, a remote invalidation sweep, the other half — through
// the fast coalescing engine and the reference interpreter on twin
// machines, and demands bit-identical cycles, cache statistics, metric
// snapshots, and output values. The second half is the interesting part:
// its opening windows fail verification on the invalidated lines, so
// identical results prove the per-access fallback is exact.
func TestCoalesceCoherenceDifferential(t *testing.T) {
	const n = 1024
	run := func(engine machine.Engine) (*machine.Machine, *loopir.Loop, int64, int64) {
		_, l := coherenceGuardLoop(n)
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(machine.PentiumPro(2).WithEngine(engine))
		if err != nil {
			t.Fatal(err)
		}
		r := New(m.Proc(0))
		c1 := r.ExecIters(l, 0, coherenceSplit)
		remoteSweep(m, l)
		c2 := r.ExecIters(l, coherenceSplit, n)
		return m, l, c1, c2
	}

	fastM, fastL, fc1, fc2 := run(machine.EngineFast)
	refM, refL, rc1, rc2 := run(machine.EngineReference)

	if fc1 != rc1 {
		t.Errorf("pre-invalidation cycles diverge: fast %d, reference %d", fc1, rc1)
	}
	if fc2 != rc2 {
		t.Errorf("post-invalidation cycles diverge: fast %d, reference %d", fc2, rc2)
	}
	if fastM.L1Stats() != refM.L1Stats() {
		t.Errorf("L1 stats diverge:\nfast      %+v\nreference %+v", fastM.L1Stats(), refM.L1Stats())
	}
	if fastM.L2Stats() != refM.L2Stats() {
		t.Errorf("L2 stats diverge:\nfast      %+v\nreference %+v", fastM.L2Stats(), refM.L2Stats())
	}
	if fastM.TLBStats() != refM.TLBStats() {
		t.Errorf("TLB stats diverge:\nfast      %+v\nreference %+v", fastM.TLBStats(), refM.TLBStats())
	}
	if !reflect.DeepEqual(fastM.Metrics().Snapshot(), refM.Metrics().Snapshot()) {
		t.Errorf("metric snapshots diverge:\nfast      %+v\nreference %+v",
			fastM.Metrics().Snapshot(), refM.Metrics().Snapshot())
	}
	if eq, idx := fastL.Writes[0].Array.Equal(refL.Writes[0].Array.Snapshot()); !eq {
		t.Errorf("output values diverge at element %d", idx)
	}
}
