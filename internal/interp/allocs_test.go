package interp

import (
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
)

// allocGuardLoop builds a loop exercising every compiled code path —
// affine and indirect reads, a read-modify-write, an indirect write
// sharing its index walk with a read — whose Pre/Final closures reuse
// preallocated result slices, so any allocation observed during steady-
// state execution is the engine's own.
func allocGuardLoop(space *memsim.Space, n int) *loopir.Loop {
	tbl := space.Alloc("tbl", n, 8, 8)
	tbl.Fill(func(i int) float64 { return float64((i * 7) % n) })
	a := space.Alloc("a", n, 8, 8)
	a.Fill(func(i int) float64 { return float64(i) })
	x := space.Alloc("x", n, 8, 8)
	x.Fill(func(i int) float64 { return 2 * float64(i) })
	b := space.Alloc("b", n, 8, 8)

	pre := make([]float64, 1)
	out := make([]float64, 1)
	ind := loopir.Indirect{Tbl: tbl, Entry: loopir.Affine{Scale: 1}}
	return &loopir.Loop{
		Name:  "allocguard",
		Iters: n,
		RO: []loopir.Ref{
			{Array: a, Index: loopir.Affine{Scale: 1}},
			{Array: x, Index: ind},
		},
		RW:     []loopir.Ref{{Array: b, Index: ind}},
		Writes: []loopir.Ref{{Array: b, Index: ind}},
		NPre:   1,
		Pre: func(_ int, ro []float64) []float64 {
			pre[0] = ro[0] + ro[1]
			return pre
		},
		Final: func(_ int, p, rw []float64) []float64 {
			out[0] = p[0] + rw[0]
			return out
		},
		PreCycles: 2, FinalCycles: 2,
	}
}

// TestFastPathZeroAllocs guards the compiled engine's hot paths against
// per-iteration allocation: after one warm-up pass (plan compilation,
// scratch-buffer growth), steady-state execution, shadow prefetch,
// restructuring, and buffered execution must all run allocation-free.
func TestFastPathZeroAllocs(t *testing.T) {
	const n = 512
	space := memsim.NewSpace()
	l := allocGuardLoop(space, n)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}

	m, err := machine.New(machine.PentiumPro(1).WithEngine(machine.EngineFast))
	if err != nil {
		t.Fatal(err)
	}
	r := New(m.Proc(0))
	if r.planFor(l) == nil {
		t.Fatal("guard loop did not compile; the test would measure the interpreter")
	}
	buf := NewSeqBuf(space, "seqbuf", 8*n)

	cases := []struct {
		name string
		run  func()
	}{
		{"exec", func() { r.ExecIters(l, 0, n) }},
		{"shadow", func() { r.ShadowIters(l, 0, n, Unlimited) }},
		{"restructure", func() {
			buf.Reset()
			r.RestructureIters(l, 0, n, buf, Unlimited, false)
		}},
		{"execFromBuffer", func() {
			buf.Reset()
			r.RestructureIters(l, 0, n, buf, Unlimited, false)
			r.ExecFromBuffer(l, 0, n, n, buf, false)
		}},
	}
	for _, c := range cases {
		c.run() // warm-up: compile the plan, grow scratch buffers
		if avg := testing.AllocsPerRun(10, c.run); avg != 0 {
			t.Errorf("%s: %.1f allocs per steady-state pass, want 0", c.name, avg)
		}
	}
}

// TestCoalescedZeroAllocs extends the allocation guard to the run-
// coalesced hot path. allocGuardLoop's indirect references disqualify it
// from coalescing, so this uses the purely affine coherence-guard loop —
// verified to compile to a coalescing plan — and demands that windowed
// execution (bound computation, run verification, token retirement)
// stays allocation-free after one warm-up pass grows the token slice.
func TestCoalescedZeroAllocs(t *testing.T) {
	const n = 1024
	space, l := coherenceGuardLoop(n)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}

	m, err := machine.New(machine.PentiumPro(1).WithEngine(machine.EngineFast))
	if err != nil {
		t.Fatal(err)
	}
	r := New(m.Proc(0))
	p := r.planFor(l)
	if p == nil || !p.runOK || p.maxTail < coalesceMinTail {
		t.Fatal("guard loop does not coalesce; the test would measure the uncoalesced path")
	}
	if !m.Proc(0).Hierarchy().CoalesceActive() {
		t.Fatal("coalescing inactive on the fast engine's hierarchy")
	}
	buf := NewSeqBuf(space, "seqbuf", 8*n)

	cases := []struct {
		name string
		run  func()
	}{
		{"exec", func() { r.ExecIters(l, 0, n) }},
		{"shadow", func() { r.ShadowIters(l, 0, n, Unlimited) }},
		{"restructure", func() {
			buf.Reset()
			r.RestructureIters(l, 0, n, buf, Unlimited, false)
		}},
		{"execFromBuffer", func() {
			buf.Reset()
			r.RestructureIters(l, 0, n, buf, Unlimited, false)
			r.ExecFromBuffer(l, 0, n, n, buf, false)
		}},
	}
	for _, c := range cases {
		c.run() // warm-up: compile the plan, grow scratch and token slices
		if avg := testing.AllocsPerRun(10, c.run); avg != 0 {
			t.Errorf("%s: %.1f allocs per steady-state pass, want 0", c.name, avg)
		}
	}
}
