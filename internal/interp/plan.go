package interp

import (
	"repro/internal/loopir"
	"repro/internal/memsim"
)

// planRef is one memory reference of a compiled access plan: the loop
// IR's Ref with everything resolvable before the first iteration already
// resolved — backing array, index coefficients, prefetch stride, and the
// intra-iteration reuse links that replace the interpreter's dynamic
// dedup scans. The hot loop then runs over a flat slice of these with no
// interface dispatch and no per-iteration searching.
type planRef struct {
	arr *memsim.Array

	// Index resolution. For a direct reference (tbl == nil) the element
	// index is scale*i + off. For an indirect reference the index-array
	// position is scale*i + off and the element index is the table's
	// value there.
	tbl        *memsim.Array
	scale, off int

	// dupLoad marks an indirect reference whose index-table load is
	// covered by an earlier reference of the same iteration (same table,
	// same position every iteration): -1 when this reference performs the
	// timed table load itself, >= 0 when it reuses one. This is the
	// static form of the interpreter's tblSeen scan; Compile refuses
	// loops where the equivalence cannot be decided statically.
	dupLoad int

	// dupPush is the same reuse link for the restructuring helper's
	// index-value packing, whose dedup scope is only the RW and Write
	// references: -1 when this reference pushes (helper) / pops
	// (buffered execution) the index value, otherwise the rw+wr slot
	// whose value it reuses.
	dupPush int

	// Compiler-prefetch annotations: the reference's per-iteration
	// stride in elements when statically known.
	stride   int
	strideOK bool
}

// plan is a compiled loop: the three reference groups in iteration
// order, preallocated and fully resolved. Plans are immutable once
// compiled and safe to share across runners; each Runner caches the plan
// of the loop it is currently executing.
type plan struct {
	ro, rw, wr []planRef

	// Run-coalescing classification, decided once at compile time.
	//
	// runOK marks a plan whose references are all affine: every stream's
	// per-iteration address advance is statically known, so the number of
	// consecutive iterations that stay on each reference's current L1
	// line is computable (runLen) and the runner may coalesce window
	// tails. Indirect references are excluded — a gather's runs are
	// data-dependent, and detecting them per-window costs more than it
	// saves on the paper's sparse workloads.
	runOK bool
	// hasNeg marks a plan with at least one negative-stride reference.
	// A negative-stride stream walks its lines from high offset to low,
	// so the compiler-prefetch fire condition (offset < |stride|) can
	// trigger mid-window; the runner disables coalescing for such plans
	// whenever prefetching is on, since retired tails issue no
	// prefetches.
	hasNeg bool
	// nRefs is the total reference count, the per-iteration access count
	// of a coalesced tail (every tail access is an L1 hit).
	nRefs int
	// maxTail is the largest tail count the arithmetic window bound can
	// ever report for this plan (computed by computeMaxTail; the stream
	// offset pattern is periodic in the iteration number, so the best
	// phase is decidable statically). Plans whose geometry never yields a
	// window worth coalescing — e.g. stencils, whose phase-shifted
	// streams pin every window to a single tail — are rejected up front,
	// making their windowed overhead exactly zero.
	maxTail int
}

// rwwr returns the slot'th reference of the concatenated RW+Writes
// groups (the restructuring dedup scope).
func (p *plan) rwwr(slot int) *planRef {
	if slot < len(p.rw) {
		return &p.rw[slot]
	}
	return &p.wr[slot-len(p.rw)]
}

// compilePlan builds the access plan for l, or returns nil when the loop
// cannot be compiled with guaranteed equivalence to the interpreter —
// an index expression the compiler does not know, or two index-table
// walks whose positions coincide on some but not all iterations (the
// interpreter's dynamic dedup would then fire on a data-dependent subset
// of iterations, which no static annotation can express). Callers fall
// back to the reference interpreter in that case.
func compilePlan(l *loopir.Loop) *plan {
	total := len(l.RO) + len(l.RW) + len(l.Writes)
	refs := make([]planRef, 0, total)
	compileRef := func(ref loopir.Ref) bool {
		pr := planRef{arr: ref.Array, dupLoad: -1, dupPush: -1}
		switch ix := ref.Index.(type) {
		case loopir.Affine:
			pr.scale, pr.off = ix.Scale, ix.Offset
			pr.stride, pr.strideOK = ix.Scale, true
		case loopir.Indirect:
			pr.tbl = ix.Tbl
			pr.scale, pr.off = ix.Entry.Scale, ix.Entry.Offset
			pr.stride, pr.strideOK = 0, false
		default:
			return false
		}
		refs = append(refs, pr)
		return true
	}
	for _, ref := range l.Refs() {
		if !compileRef(ref) {
			return nil
		}
	}

	// Resolve intra-iteration index-table reuse. Two walks of the same
	// table share a load on iteration i iff their positions coincide
	// there; statically that is either always (identical coefficients),
	// never, or on a single iteration (different scales crossing once) —
	// the last is the case we must detect and refuse.
	for j := range refs {
		if refs[j].tbl == nil {
			continue
		}
		for k := 0; k < j; k++ {
			if refs[k].tbl != refs[j].tbl {
				continue
			}
			switch {
			case refs[k].scale == refs[j].scale && refs[k].off == refs[j].off:
				if refs[j].dupLoad < 0 {
					refs[j].dupLoad = k
				}
			case refs[k].scale == refs[j].scale:
				// Same stride, different offset: never coincide.
			default:
				// Different strides cross at one iteration; bail if it
				// lies inside the loop's range.
				ds := refs[k].scale - refs[j].scale
				do := refs[j].off - refs[k].off
				if do%ds == 0 {
					if i := do / ds; i >= 0 && i < l.Iters {
						return nil
					}
				}
			}
		}
	}

	nRO, nRW := len(l.RO), len(l.RW)
	p := &plan{ro: refs[:nRO:nRO], rw: refs[nRO : nRO+nRW : nRO+nRW], wr: refs[nRO+nRW:]}
	p.nRefs = total
	p.runOK = true
	for j := range refs {
		if refs[j].tbl != nil {
			p.runOK = false
		}
		if refs[j].scale < 0 {
			p.hasNeg = true
		}
	}

	// dupPush links live in the RW+Writes scope only (the restructuring
	// helper packs index values after the RO stream; RO table loads do
	// not push).
	for j := nRO; j < total; j++ {
		if refs[j].tbl == nil {
			continue
		}
		for k := nRO; k < j; k++ {
			if refs[k].tbl == refs[j].tbl && refs[k].scale == refs[j].scale && refs[k].off == refs[j].off {
				refs[j].dupPush = k - nRO
				break
			}
		}
	}
	return p
}

// computeMaxTail fills p.maxTail for the given L1 line size. Every
// stream's line offset is periodic in the iteration number with a period
// dividing the line size (strides and element sizes are byte counts, and
// the line size is a power of two), so sampling one full period of
// iteration phases visits every offset configuration the loop can
// present. The per-phase bound mirrors lineBound exactly — including its
// rejection of line-entry accesses — so maxTail is a tight upper bound
// on what homeRuns can return.
func (p *plan) computeMaxTail(line int) {
	p.maxTail = 0
	if !p.runOK {
		return
	}
	groups := [3][]planRef{p.ro, p.rw, p.wr}
	for c := 0; c < line; c++ {
		w := line
		for _, g := range groups {
			for j := range g {
				ref := &g[j]
				size := ref.arr.ElemSize()
				off := ref.arr.Addr(ref.scale*c + ref.off).Offset(line)
				n := lineBound(off, size, ref.scale*size, line, w)
				if n < w {
					w = n
				}
			}
			if w == 0 {
				break
			}
		}
		if w > p.maxTail {
			p.maxTail = w
		}
	}
}

// planFor returns the compiled plan for l, compiling and caching it on
// first use, or nil when the runner is in reference mode or the loop is
// not statically compilable.
func (r *Runner) planFor(l *loopir.Loop) *plan {
	if !r.compiled {
		return nil
	}
	if r.planLoop != l {
		r.planLoop = l
		r.plan = compilePlan(l)
		if r.plan != nil {
			r.plan.computeMaxTail(r.line)
		}
	}
	return r.plan
}
