// Run-coalesced execution: windowed variants of the compiled run modes.
//
// The fast engine's remaining per-access cost is the cache/TLB state
// machine itself, and on the paper's stream-dominated workloads almost
// every access is a same-line hit. The windowed variants exploit that:
// each iteration executed on the ordinary per-access path (the probe —
// it performs every fill, upgrade, prefetch, and TLB refill faithfully)
// is followed by one verification pass over the plan's reference streams
// that simultaneously measures how many further iterations every stream
// spends on its current L1 line (computable because coalescible plans
// are all-affine) and proves each stream's next access a pure L1+TLB hit
// (cache.Hierarchy.BeginRun — the legality predicate). If every stream
// verifies, every access of those tail iterations is necessarily a pure
// hit: hits fill nothing and evict nothing, so the residency proof holds
// inductively across the whole tail. The tail's value semantics run
// normally (loads, Pre/Final, stores, buffer pushes and pops), while its
// memory timing collapses to an exact closed form (every access costs
// the L1 hit latency; an all-hit group's overlap cost is its serial sum
// for any MaxOutstanding) and its statistics retire analytically against
// the verified tokens (cache.Hierarchy.RetireToken). Whenever the
// predicate fails — a conflict eviction by the probe itself, a coherence
// invalidation between chunks, a missing translation — the engine simply
// probes the next iteration too; per-access execution is the default and
// coalescing the proven exception. DESIGN.md §4.2 spells out the
// invariants.
package interp

import (
	"repro/internal/cache"
	"repro/internal/loopir"
	"repro/internal/machine"
)

// coalesceMinTail is the smallest tail count worth verifying: a window's
// verification pass costs roughly one fast-path access per stream, so a
// single-tail window would spend about what it saves. Below this bound
// the engine stays on the per-access path (which is always equivalent —
// the threshold is a pure wall-clock heuristic).
const coalesceMinTail = 2

// coalesceGiveUp and coalesceRetryMask implement the verification
// backoff. A plan can be geometrically coalescible yet never hold a run:
// wave5's class-0 loops stream three or more arrays through one 2-way L1
// set, so every access is a genuine conflict miss and BeginRun always
// fails. After coalesceGiveUp consecutive verification failures the
// runner stops paying for cache lookups and only re-probes coalescibility
// on iterations aligned to coalesceRetryMask+1, in case the loop's
// residency behaviour changes mid-range.
const (
	coalesceGiveUp    = 8
	coalesceRetryMask = 63
)

// coalesceOK reports whether windowed execution may be used for plan p
// on this runner right now. Beyond the machine knob (Coalesce resolved
// at construction) and the plan's static classification (all-affine,
// with a window geometry that can ever reach coalesceMinTail), coalescing
// stays off when an access observer wants to see every access, when the
// hierarchy attached a miss-classification shadow, and when compiler
// prefetching meets a negative-stride reference (whose line-entry
// accesses sit at high offsets, where lineBound's entry rejection —
// written for the walk direction — must also suppress the prefetch fire
// of a partially covered line).
func (r *Runner) coalesceOK(p *plan) bool {
	if p == nil || !p.runOK || p.maxTail < coalesceMinTail || !r.coalesce || r.proc.Observed() {
		return false
	}
	if r.pfOn && p.hasNeg {
		return false
	}
	return r.proc.Hierarchy().CoalesceActive()
}

// seqRunOK reports whether an iteration's consecutive SeqBuf accesses
// may be batched through one AccessRun call. The aggregate Result merges
// the batch's miss penalties, which is exact only when demand misses
// retire serially (MaxOutstanding 1, true of both paper machines), and
// AccessRun issues no compiler prefetches, so the batch is also off when
// prefetching is on (SeqBuf walks are unit-stride and would prefetch).
func (r *Runner) seqRunOK() bool {
	return r.maxOut == 1 && !r.pfOn
}

// lineBound is the arithmetic half of stream verification: for an access
// at byte offset off within its L1 line (size bytes, advancing stepBytes
// per iteration), it returns how many consecutive iterations, the
// current one included and capped at avail, stay on that line. It
// returns 0 — the caller must fall back to per-access execution — for a
// line-crossing access and for a line-entry access (one whose previous
// iteration sat on a different line): entering a line is exactly when a
// stream can miss and when the compiler-prefetch model fires, so entry
// accesses always belong to the per-access probe. The rejection makes
// the subsequent BeginRun worth attempting at all — a line the stream
// just entered was never touched by the probe, so verifying it would
// almost always fail after paying a full lookup. Zero-stride streams
// repeat the probe's own address and pass unconditionally.
func lineBound(off, size, stepBytes, line, avail int) int {
	if off+size > line {
		return 0
	}
	n := avail
	switch {
	case stepBytes > 0:
		if off < stepBytes {
			return 0
		}
		if m := (line-off-size)/stepBytes + 1; m < n {
			n = m
		}
	case stepBytes < 0:
		if off-stepBytes+size > line {
			return 0
		}
		if m := off/-stepBytes + 1; m < n {
			n = m
		}
	}
	return n
}

// groupBound applies lineBound to one reference group at iteration i,
// returning the group's window bound (the minimum stream bound, at most
// avail) or 0 when any stream rejects. Pure arithmetic — no cache state
// is consulted, so a rejected window costs a few integer operations.
func (r *Runner) groupBound(refs []planRef, i, avail int) int {
	w := avail
	for j := range refs {
		ref := &refs[j]
		size := ref.arr.ElemSize()
		n := lineBound(ref.arr.Addr(ref.scale*i+ref.off).Offset(r.line), size, ref.scale*size, r.line, avail)
		if n == 0 {
			return 0
		}
		if n < w {
			w = n
		}
	}
	return w
}

// bufBound is groupBound for the perIter sequential-buffer slot streams
// of the iteration whose first slot is start (slot k advances perIter
// elements per iteration).
func (r *Runner) bufBound(buf *SeqBuf, start, perIter, avail int) int {
	w := avail
	step := perIter * seqBufElemSize
	for k := 0; k < perIter; k++ {
		n := lineBound(buf.arr.Addr(start+k).Offset(r.line), seqBufElemSize, step, r.line, avail)
		if n == 0 {
			return 0
		}
		if n < w {
			w = n
		}
	}
	return w
}

// groupVerify proves every stream of one reference group a pure L1+TLB
// hit at iteration i (cache.Hierarchy.BeginRun — the legality
// predicate), appending the verified hit tokens to r.toks. It runs only
// after the arithmetic bounds have already justified the window.
func (r *Runner) groupVerify(h *cache.Hierarchy, refs []planRef, i int, write bool) bool {
	for j := range refs {
		ref := &refs[j]
		tok, ok := h.BeginRun(ref.arr.Addr(ref.scale*i+ref.off), ref.arr.ElemSize(), write)
		if !ok {
			return false
		}
		r.toks = append(r.toks, tok)
	}
	return true
}

// bufVerify is groupVerify for perIter buffer slot streams starting at
// slot start.
func (r *Runner) bufVerify(h *cache.Hierarchy, buf *SeqBuf, start, perIter int, write bool) bool {
	for k := 0; k < perIter; k++ {
		tok, ok := h.BeginRun(buf.arr.Addr(start+k), seqBufElemSize, write)
		if !ok {
			return false
		}
		r.toks = append(r.toks, tok)
	}
	return true
}

// homeRuns verifies every home-location reference of p at iteration i
// and returns the all-streams window bound (0 on any failure). withRO
// excludes the read-only group (buffered execution never touches RO
// homes); shadow treats write references as reads (the shadow and
// restructure helpers load write targets instead of storing them).
//
// Verification is two-phase: the arithmetic bounds run first, and only a
// window of at least coalesceMinTail tails pays for the cache lookups.
// Tokens accumulate in r.toks in intra-iteration reference order, which
// is also the retirement order: the final relative LRU order of the
// touched lines — the only observable residue of hit ordering — then
// matches the interleaved per-access order exactly.
func (r *Runner) homeRuns(p *plan, i, avail int, withRO, shadow bool) int {
	if avail < coalesceMinTail {
		return 0
	}
	w := avail
	if withRO {
		if w = r.groupBound(p.ro, i, w); w == 0 {
			return 0
		}
	}
	if w = r.groupBound(p.rw, i, w); w == 0 {
		return 0
	}
	if w = r.groupBound(p.wr, i, w); w < coalesceMinTail {
		return 0
	}
	if r.vfails >= coalesceGiveUp && i&coalesceRetryMask != 0 {
		return 0
	}
	h := r.proc.Hierarchy()
	r.toks = r.toks[:0]
	if withRO && !r.groupVerify(h, p.ro, i, false) {
		r.vfails++
		return 0
	}
	if !r.groupVerify(h, p.rw, i, false) {
		r.vfails++
		return 0
	}
	if !r.groupVerify(h, p.wr, i, !shadow) {
		r.vfails++
		return 0
	}
	r.vfails = 0
	return w
}

// retireToks retires n iterations' worth of hits against every verified
// token, in order.
func (r *Runner) retireToks(n int64) {
	h := r.proc.Hierarchy()
	for _, t := range r.toks {
		h.RetireToken(t, n)
	}
}

// planIterValues executes one iteration's value semantics — loads, Pre,
// Final, stores — without timing, for window tails whose memory cost is
// retired analytically. The load/compute/store order matches planIter.
func (r *Runner) planIterValues(p *plan, l *loopir.Loop, i int) {
	r.ro = r.ro[:0]
	for j := range p.ro {
		ref := &p.ro[j]
		r.ro = append(r.ro, ref.arr.Load(ref.scale*i+ref.off))
	}
	pre := r.ro
	if r.pre != nil {
		pre = r.pre(i, r.ro)
	}
	r.rw = r.rw[:0]
	for j := range p.rw {
		ref := &p.rw[j]
		r.rw = append(r.rw, ref.arr.Load(ref.scale*i+ref.off))
	}
	out := r.final(i, pre, r.rw)
	for j := range p.wr {
		ref := &p.wr[j]
		ref.arr.Store(ref.scale*i+ref.off, out[j])
	}
}

// execPlanRuns is execPlan with window coalescing.
func (r *Runner) execPlanRuns(p *plan, l *loopir.Loop, lo, hi int) int64 {
	r.vfails = 0
	var cycles int64
	tail := int64(p.nRefs)*r.hitLat + l.PreCycles + l.FinalCycles
	for i := lo; i < hi; {
		cycles += r.planIter(p, l, i) + l.PreCycles + l.FinalCycles
		i++
		t := r.homeRuns(p, i, hi-i, true, false)
		if t == 0 {
			continue
		}
		for k := 0; k < t; k++ {
			r.planIterValues(p, l, i+k)
		}
		r.retireToks(int64(t))
		cycles += int64(t) * tail
		i += t
	}
	return cycles
}

// shadowPlanRuns is shadowPlan with window coalescing. The budget check
// keeps the original loop-top semantics: a tail iteration is only
// charged (and counted done) if the budget was not already exhausted
// when it would have started.
func (r *Runner) shadowPlanRuns(p *plan, lo, hi int, budget int64) (done int, cycles int64) {
	r.vfails = 0
	tail := int64(p.nRefs) * r.hitLat
	i := lo
	for i < hi {
		if budget != Unlimited && cycles >= budget {
			return i - lo, cycles
		}
		r.results = r.results[:0]
		for j := range p.ro {
			ref := &p.ro[j]
			r.timed(ref.arr, ref.scale*i+ref.off, false, ref.stride, ref.strideOK, r.left(i))
		}
		for j := range p.rw {
			ref := &p.rw[j]
			r.timed(ref.arr, ref.scale*i+ref.off, false, ref.stride, ref.strideOK, r.left(i))
		}
		for j := range p.wr {
			ref := &p.wr[j]
			r.timed(ref.arr, ref.scale*i+ref.off, false, ref.stride, ref.strideOK, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut)
		i++
		w := r.homeRuns(p, i, hi-i, true, true)
		t := 0
		for t < w {
			if budget != Unlimited && cycles >= budget {
				break
			}
			cycles += tail
			t++
		}
		if t > 0 {
			r.retireToks(int64(t))
			i += t
		}
	}
	return hi - lo, cycles
}

// restructurePlanRuns is restructurePlan with window coalescing: each
// probe iteration streams values into the buffer on the timed path
// (batching its consecutive pushes through AccessRun when exact), tail
// iterations push real values untimed and retire their access runs —
// RO streams, the iteration's buffer slots, then the shadow-loaded
// RW/Write homes, in reference order.
func (r *Runner) restructurePlanRuns(p *plan, l *loopir.Loop, lo, hi int, buf *SeqBuf, budget int64, precompute bool) (done int, cycles int64) {
	r.vfails = 0
	h := r.proc.Hierarchy()
	nVals := len(p.ro)
	var preCycles int64
	if precompute {
		nVals = l.NPre
		preCycles = l.PreCycles
	}
	seqOK := r.seqRunOK()
	tail := int64(p.nRefs+nVals)*r.hitLat + preCycles
	i := lo
	for i < hi {
		if budget != Unlimited && cycles >= budget {
			return i - lo, cycles
		}
		r.results = r.results[:0]
		r.ro = r.ro[:0]
		for j := range p.ro {
			r.ro = append(r.ro, r.planRead(&p.ro[j], i))
		}
		vals := r.ro
		var computeCycles int64
		if precompute {
			if r.pre != nil {
				vals = r.pre(i, r.ro)
			}
			computeCycles = l.PreCycles
		}
		if seqOK && len(vals) > 0 {
			start := buf.Len()
			for _, v := range vals {
				buf.Push(v)
			}
			r.results = append(r.results, h.AccessRun(buf.arr.Addr(start), seqBufElemSize, len(vals), seqBufElemSize, true))
		} else {
			for _, v := range vals {
				idx := buf.Push(v)
				r.timed(buf.arr, idx, true, 1, true, streamUnbounded)
			}
		}
		for s := 0; s < len(p.rw)+len(p.wr); s++ {
			ref := p.rwwr(s)
			r.timed(ref.arr, ref.scale*i+ref.off, false, ref.stride, ref.strideOK, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut) + computeCycles
		i++
		w := r.restructureRuns(p, i, hi-i, buf, nVals)
		t := 0
		for t < w {
			if budget != Unlimited && cycles >= budget {
				break
			}
			r.ro = r.ro[:0]
			for j := range p.ro {
				ref := &p.ro[j]
				r.ro = append(r.ro, ref.arr.Load(ref.scale*(i+t)+ref.off))
			}
			vals := r.ro
			if precompute && r.pre != nil {
				vals = r.pre(i+t, r.ro)
			}
			for _, v := range vals {
				buf.Push(v)
			}
			cycles += tail
			t++
		}
		if t > 0 {
			r.retireToks(int64(t))
			i += t
		}
	}
	return hi - lo, cycles
}

// restructureRuns is the restructure helper's verification pass at
// iteration i: RO streams (reads), the iteration's nVals buffer push
// slots (writes; the probe just pushed the preceding slots, so the
// current line is Modified whenever the slots stay on it), then the
// RW/Write homes as shadow reads.
func (r *Runner) restructureRuns(p *plan, i, avail int, buf *SeqBuf, nVals int) int {
	if avail < coalesceMinTail {
		return 0
	}
	w := r.groupBound(p.ro, i, avail)
	if w == 0 {
		return 0
	}
	start := buf.Len()
	if nVals > 0 {
		if w = r.bufBound(buf, start, nVals, w); w == 0 {
			return 0
		}
	}
	if w = r.groupBound(p.rw, i, w); w == 0 {
		return 0
	}
	if w = r.groupBound(p.wr, i, w); w < coalesceMinTail {
		return 0
	}
	if r.vfails >= coalesceGiveUp && i&coalesceRetryMask != 0 {
		return 0
	}
	h := r.proc.Hierarchy()
	r.toks = r.toks[:0]
	if !r.groupVerify(h, p.ro, i, false) ||
		(nVals > 0 && !r.bufVerify(h, buf, start, nVals, true)) ||
		!r.groupVerify(h, p.rw, i, false) ||
		!r.groupVerify(h, p.wr, i, false) {
		r.vfails++
		return 0
	}
	r.vfails = 0
	return w
}

// execBufferPlanRuns is execBufferPlan with window coalescing; the
// buffer pops — the restructured execution phase's pure unit-stride scan
// — are the flagship AccessRun consumer.
func (r *Runner) execBufferPlanRuns(p *plan, l *loopir.Loop, lo, hi, buffered int, buf *SeqBuf, precompute bool) int64 {
	r.vfails = 0
	h := r.proc.Hierarchy()
	if buffered > hi-lo {
		buffered = hi - lo
	}
	nVals := l.NPre
	if !precompute {
		nVals = len(p.ro)
	}
	if cap(r.scratch) < nVals {
		r.scratch = make([]float64, nVals)
	}
	vals := r.scratch[:nVals]
	seqOK := r.seqRunOK()
	tailCompute := l.FinalCycles
	if !precompute {
		tailCompute += l.PreCycles
	}
	tail := int64(nVals+len(p.rw)+len(p.wr))*r.hitLat + tailCompute
	var cycles int64
	pos := 0
	for i := lo; i < lo+buffered; {
		r.results = r.results[:0]
		if seqOK && nVals > 0 {
			r.results = append(r.results, h.AccessRun(buf.arr.Addr(pos), seqBufElemSize, nVals, seqBufElemSize, false))
			for k := 0; k < nVals; k++ {
				vals[k] = buf.At(pos)
				pos++
			}
		} else {
			for k := 0; k < nVals; k++ {
				vals[k] = buf.At(pos)
				r.timed(buf.arr, pos, false, 1, true, streamUnbounded)
				pos++
			}
		}
		pre := vals
		computeCycles := l.FinalCycles
		if !precompute {
			if r.pre != nil {
				pre = r.pre(i, vals)
			}
			computeCycles += l.PreCycles
		}
		r.rw = r.rw[:0]
		for j := range p.rw {
			ref := &p.rw[j]
			idx := ref.scale*i + ref.off
			r.timed(ref.arr, idx, false, ref.stride, ref.strideOK, r.left(i))
			r.rw = append(r.rw, ref.arr.Load(idx))
		}
		out := r.final(i, pre, r.rw)
		for j := range p.wr {
			ref := &p.wr[j]
			idx := ref.scale*i + ref.off
			ref.arr.Store(idx, out[j])
			r.timed(ref.arr, idx, true, ref.stride, ref.strideOK, r.left(i))
		}
		cycles += machine.OverlapCost(r.results, r.maxOut) + computeCycles
		i++
		w := r.bufferRuns(p, i, lo+buffered-i, buf, pos, nVals)
		for t := 0; t < w; t++ {
			j := i + t
			for k := 0; k < nVals; k++ {
				vals[k] = buf.At(pos)
				pos++
			}
			pre := vals
			if !precompute && r.pre != nil {
				pre = r.pre(j, vals)
			}
			r.rw = r.rw[:0]
			for jj := range p.rw {
				ref := &p.rw[jj]
				r.rw = append(r.rw, ref.arr.Load(ref.scale*j+ref.off))
			}
			out := r.final(j, pre, r.rw)
			for jj := range p.wr {
				ref := &p.wr[jj]
				ref.arr.Store(ref.scale*j+ref.off, out[jj])
			}
		}
		if w > 0 {
			r.retireToks(int64(w))
			cycles += int64(w) * tail
			i += w
		}
	}
	cycles += r.execPlan(p, l, lo+buffered, hi)
	return cycles
}

// bufferRuns is buffered execution's verification pass at iteration i:
// the iteration's nVals buffer pop slots (reads, starting at cursor
// pos), then the RW homes (reads) and Write homes (writes); RO homes are
// never touched during buffered execution.
func (r *Runner) bufferRuns(p *plan, i, avail int, buf *SeqBuf, pos, nVals int) int {
	if avail < coalesceMinTail {
		return 0
	}
	w := avail
	if nVals > 0 {
		if w = r.bufBound(buf, pos, nVals, avail); w == 0 {
			return 0
		}
	}
	if w = r.groupBound(p.rw, i, w); w == 0 {
		return 0
	}
	if w = r.groupBound(p.wr, i, w); w < coalesceMinTail {
		return 0
	}
	if r.vfails >= coalesceGiveUp && i&coalesceRetryMask != 0 {
		return 0
	}
	h := r.proc.Hierarchy()
	r.toks = r.toks[:0]
	if (nVals > 0 && !r.bufVerify(h, buf, pos, nVals, false)) ||
		!r.groupVerify(h, p.rw, i, false) ||
		!r.groupVerify(h, p.wr, i, true) {
		r.vfails++
		return 0
	}
	r.vfails = 0
	return w
}
