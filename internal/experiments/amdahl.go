package experiments

import (
	"context"
	"io"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/wave5"
)

// AmdahlPoint is one processor count of the application-level study.
type AmdahlPoint struct {
	Procs int
	// StdSpeedup is the whole-application speedup when the
	// unparallelized loops run sequentially (Figure 1a).
	StdSpeedup float64
	// CascSpeedup is the speedup when they run cascaded (Figure 1b,
	// restructured helper).
	CascSpeedup float64
	// SeqFraction is the fraction of the standard execution spent in the
	// unparallelized loops at this processor count — the Amdahl
	// bottleneck growing with P.
	SeqFraction float64
}

// AmdahlResult quantifies the paper's motivation: as the parallel
// sections speed up with more processors, the unparallelized loops
// dominate, and cascading them lifts the whole-application curve.
//
// The application is the PARMVR dataset's parallel per-particle update
// (run with RunParallel, which also produces the distributed cache state
// the loops then face) followed by the fifteen unparallelized loops. The
// parallel phase is repeated ParallelReps times per "time step" so the
// parallel:sequential work ratio at one processor resembles wave5's
// (PARMVR is ~50% of sequential execution).
type AmdahlResult struct {
	Machine      string
	ParallelReps int
	Points       []AmdahlPoint
}

// amdahlParallelReps balances the phases at ~50/50 on one processor.
const amdahlParallelReps = 10

// Amdahl runs the application study on one machine configuration across
// its processor sweep (1..Procs).
func Amdahl(ctx context.Context, cfg machine.Config, p wave5.Params, chunkBytes int) (*AmdahlResult, error) {
	out := &AmdahlResult{Machine: cfg.Name, ParallelReps: amdahlParallelReps}

	type appTime struct{ par, loops int64 }
	runApp := func(procs int, cascaded bool) (appTime, error) {
		w, err := wave5.Build(p)
		if err != nil {
			return appTime{}, err
		}
		m, err := machine.New(cfg.WithProcs(procs))
		if err != nil {
			return appTime{}, err
		}
		var t appTime
		for rep := 0; rep < amdahlParallelReps; rep++ {
			par, err := cascade.RunParallel(m, w.ParallelPhase(), rep > 0)
			if err != nil {
				return appTime{}, err
			}
			t.par += par.Cycles
		}
		for _, l := range w.Loops {
			if cascaded && procs > 1 {
				opts, err := cascade.NewOptions(
					cascade.WithHelper(cascade.HelperRestructure),
					cascade.WithSpace(w.Space),
					cascade.WithChunkBytes(chunkBytes),
					cascade.WithKeepState(true), // the parallel phase set the state
				)
				if err != nil {
					return appTime{}, err
				}
				r, err := cascade.Run(m, l, opts)
				if err != nil {
					return appTime{}, err
				}
				t.loops += r.Cycles
			} else {
				t.loops += cascade.RunSequentialWarm(m, l).Cycles
			}
		}
		return t, nil
	}

	base, err := runApp(1, false)
	if err != nil {
		return nil, err
	}
	baseTotal := base.par + base.loops
	for procs := 1; procs <= cfg.Procs; procs++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		std, err := runApp(procs, false)
		if err != nil {
			return nil, err
		}
		casc, err := runApp(procs, true)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AmdahlPoint{
			Procs:       procs,
			StdSpeedup:  float64(baseTotal) / float64(std.par+std.loops),
			CascSpeedup: float64(baseTotal) / float64(casc.par+casc.loops),
			SeqFraction: float64(std.loops) / float64(std.par+std.loops),
		})
	}
	return out, nil
}

// Render writes the study as a table.
func (r *AmdahlResult) Render(w io.Writer) {
	t := report.NewTable(
		"Application speedup with and without cascading — "+r.Machine+
			" (parallel phase x"+itoa(r.ParallelReps)+" + 15 unparallelized loops)",
		"Processors", "Standard app", "Cascaded app", "seq. fraction (std)")
	for _, pt := range r.Points {
		t.Addf(pt.Procs, pt.StdSpeedup, pt.CascSpeedup, report.Float(pt.SeqFraction))
	}
	t.Render(w)
	io.WriteString(w, "\n")
}

// RenderChart draws the two application curves.
func (r *AmdahlResult) RenderChart(w io.Writer) {
	var ticks []string
	std := report.Series{Name: "standard (Amdahl-limited)"}
	casc := report.Series{Name: "with cascaded execution"}
	for _, pt := range r.Points {
		ticks = append(ticks, itoa(pt.Procs))
		std.Y = append(std.Y, pt.StdSpeedup)
		casc.Y = append(casc.Y, pt.CascSpeedup)
	}
	p := &report.Plot{
		Title:  "Application speedup vs processors — " + r.Machine,
		XLabel: "processors",
		XTicks: ticks,
		Series: []report.Series{casc, std},
		Height: 12,
		YZero:  true,
	}
	p.Render(w)
	io.WriteString(w, "\n")
}
