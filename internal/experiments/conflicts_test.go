package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/wave5"
)

func TestConflictAnalysisPartition(t *testing.T) {
	c, err := ConflictAnalysis(context.Background(), machine.R10000(4), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]LoopMissClasses{c.L1, c.L2} {
		for _, r := range rows {
			if !r.partitionHolds() {
				t.Errorf("%s: classes %d+%d+%d != misses %d",
					r.Loop, r.Compulsory, r.Capacity, r.Conflict, r.Misses)
			}
		}
	}
	if len(c.L1) != 15 || len(c.L2) != 15 {
		t.Errorf("loops = %d/%d", len(c.L1), len(c.L2))
	}
}

func TestConflictAnalysisFindsCombineConflicts(t *testing.T) {
	// combine_t2 walks three congruence-class-0 streams: on the 2-way
	// R10000 L2 its misses must be conflict-dominated, and it must be the
	// dominant source of L2 conflict misses overall — the model mechanism
	// behind the paper's associativity observation.
	c, err := ConflictAnalysis(context.Background(), machine.R10000(4), testParams())
	if err != nil {
		t.Fatal(err)
	}
	var combine LoopMissClasses
	for _, r := range c.L2 {
		if r.Loop == "combine_t2" {
			combine = r
		}
	}
	if combine.Loop == "" {
		t.Fatal("combine_t2 missing")
	}
	if combine.Conflict < combine.Misses/2 {
		t.Errorf("combine_t2 L2 misses not conflict-dominated: %+v", combine)
	}
	// The Pentium Pro's 4-way L2 absorbs those conflicts.
	cp, err := ConflictAnalysis(context.Background(), machine.PentiumPro(4), testParams())
	if err != nil {
		t.Fatal(err)
	}
	var combinePP LoopMissClasses
	for _, r := range cp.L2 {
		if r.Loop == "combine_t2" {
			combinePP = r
		}
	}
	if combinePP.Conflict > combine.Conflict/4 {
		t.Errorf("PentiumPro 4-way L2 should absorb combine_t2 conflicts: PPro %d vs R10000 %d",
			combinePP.Conflict, combine.Conflict)
	}
}

func TestConflictAnalysisRender(t *testing.T) {
	c, err := ConflictAnalysis(context.Background(), machine.PentiumPro(2), testParams())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	c.Render(&b)
	for _, want := range []string{"L1", "L2", "TOTAL", "Conflict", "combine_t2"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	if c.L2Totals().Misses <= 0 || c.L1Totals().Misses <= 0 {
		t.Error("totals empty")
	}
}

func TestAblationPriorParallel(t *testing.T) {
	a, err := AblationPriorParallel(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range Machines() {
		dist, ok1 := a.Find(mc.Name, "data distributed by parallel section")
		cold, ok2 := a.Find(mc.Name, "cold caches")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing rows", mc.Name)
		}
		// On these machines a cache-to-cache supply costs about a memory
		// access, and the distribution leaves 1/P of the data in the
		// executing processor's own caches, so the two start states land
		// within ~15% of each other — the ablation documents that the
		// premise costs little here, it does not invert the result.
		lo, hi := float64(cold.Cycles)*0.85, float64(cold.Cycles)*1.15
		if float64(dist.Cycles) < lo || float64(dist.Cycles) > hi {
			t.Errorf("%s: distributed start %d outside 15%% of cold %d",
				mc.Name, dist.Cycles, cold.Cycles)
		}
		if dist.Cycles == cold.Cycles {
			t.Errorf("%s: distribution had no effect at all", mc.Name)
		}
	}
}

func TestRunPARMVRCallSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: steady-state run repeats the full PARMVR call")
	}
	p := testParams()
	cfg := machine.PentiumPro(4)
	// A steady-state call must be deterministic in its warm-up depth.
	call2a, err := RunPARMVRCall(cfg, p, Restructured, cascade.DefaultChunkBytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	call2b, err := RunPARMVRCall(cfg, p, Restructured, cascade.DefaultChunkBytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if TotalCycles(call2a) != TotalCycles(call2b) {
		t.Errorf("steady-state call nondeterministic: %d vs %d",
			TotalCycles(call2a), TotalCycles(call2b))
	}
	// Consecutive steady-state calls cost about the same (within 5%).
	call3, err := RunPARMVRCall(cfg, p, Restructured, cascade.DefaultChunkBytes, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := float64(TotalCycles(call2a)), float64(TotalCycles(call3))
	if a/b > 1.05 || b/a > 1.05 {
		t.Errorf("calls 3 and 4 differ by >5%%: %d vs %d", TotalCycles(call2a), TotalCycles(call3))
	}
	if len(call2a) != 15 {
		t.Errorf("loops = %d", len(call2a))
	}
}

func TestRunPARMVRCallSequential(t *testing.T) {
	p := testParams()
	res, err := RunPARMVRCall(machine.PentiumPro(2), p, Sequential, cascade.DefaultChunkBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if TotalCycles(res) <= 0 {
		t.Error("no cycles")
	}
	// The warm-call measurement must actually differ from the per-loop
	// cold measurement (KeepState carries real state between loops).
	cold, err := RunPARMVR(machine.PentiumPro(2), p, Sequential, cascade.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range res {
		if res[i].Cycles == cold[i].Cycles {
			same++
		}
	}
	if same == len(res) {
		t.Error("steady-state call identical to cold per-loop measurement; KeepState inert?")
	}
}

func TestAblationVictimCache(t *testing.T) {
	a, err := AblationVictimCache(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range Machines() {
		plain, ok1 := a.Find(mc.Name, "sequential, no victim buffer")
		victim, ok2 := a.Find(mc.Name, "sequential + victim buffer")
		restr, ok3 := a.Find(mc.Name, "restructured cascade")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s: missing rows", mc.Name)
		}
		if victim.Cycles > plain.Cycles {
			t.Errorf("%s: victim buffer slowed sequential execution: %d vs %d",
				mc.Name, victim.Cycles, plain.Cycles)
		}
		if restr.Cycles >= victim.Cycles {
			t.Errorf("%s: restructuring (%d) should beat a victim cache (%d)",
				mc.Name, restr.Cycles, victim.Cycles)
		}
	}
}

func TestAmdahlShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: the Amdahl study sweeps serial fractions end to end")
	}
	r, err := Amdahl(context.Background(), machine.PentiumPro(4), testParams(), 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	one := r.Points[0]
	if one.Procs != 1 || one.StdSpeedup < 0.99 || one.StdSpeedup > 1.01 {
		t.Errorf("1-proc baseline = %+v", one)
	}
	last := r.Points[len(r.Points)-1]
	// The motivation, quantified: the sequential fraction grows with P...
	if last.SeqFraction <= one.SeqFraction {
		t.Errorf("sequential fraction did not grow: %.2f -> %.2f", one.SeqFraction, last.SeqFraction)
	}
	// ...the standard curve saturates below the cascaded one...
	if last.CascSpeedup <= last.StdSpeedup*1.2 {
		t.Errorf("cascading lifted the app only %.2f vs %.2f", last.CascSpeedup, last.StdSpeedup)
	}
	// ...and both improve on one processor.
	if last.StdSpeedup <= 1 || last.CascSpeedup <= 1 {
		t.Errorf("no app speedup at 4 procs: %+v", last)
	}

	var b strings.Builder
	r.Render(&b)
	r.RenderChart(&b)
	if !strings.Contains(b.String(), "Application speedup") {
		t.Error("render missing title")
	}
}

func TestRunParallelDistributesState(t *testing.T) {
	w := wave5.MustBuild(testParams())
	m := machine.MustNew(machine.PentiumPro(4))
	res, err := cascade.RunParallel(m, w.ParallelPhase(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.ExecCycles < res.Cycles {
		t.Errorf("parallel result = %+v", res)
	}
	// Makespan is near ExecCycles/P for a balanced loop.
	ratio := float64(res.ExecCycles) / float64(res.Cycles)
	if ratio < 3.2 || ratio > 4.0 {
		t.Errorf("parallel efficiency = %.2f, want near 4 processors' worth", ratio)
	}
}

func TestGalleryShape(t *testing.T) {
	const n = 1 << 16
	g, err := Gallery(context.Background(), machine.R10000(8), n, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 6 {
		t.Fatalf("kernels = %d", len(g.Rows))
	}
	clean, _ := g.Find("triad")
	conflict, ok := g.Find("triad-conflict")
	if !ok {
		t.Fatal("triad-conflict missing")
	}
	// The conflicted placement must cost the sequential baseline far more
	// and restructuring must recover far more of it.
	if conflict.SeqCycles < clean.SeqCycles*4 {
		t.Errorf("conflict triad seq %d not >> clean %d", conflict.SeqCycles, clean.SeqCycles)
	}
	if conflict.RestructuredSpeed < clean.RestructuredSpeed*2 {
		t.Errorf("conflict restructure gain %.2f not >> clean %.2f",
			conflict.RestructuredSpeed, clean.RestructuredSpeed)
	}
	// Transpose (a gather the compiler cannot prefetch) must benefit.
	tr, _ := g.Find("transpose")
	if tr.RestructuredSpeed < 1.5 {
		t.Errorf("transpose restructured speedup = %.2f", tr.RestructuredSpeed)
	}
	var b strings.Builder
	g.Render(&b)
	if !strings.Contains(b.String(), "Kernel gallery") {
		t.Error("render missing title")
	}
}
