package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/wave5"
)

// Point-level decomposition of the sweep drivers. A decomposable
// experiment can be split into an ordered list of independent simulation
// points — each fully described by a serializable PointSpec — run
// anywhere (another goroutine, another process, another node), and
// reassembled by a merge step into exactly the Renderable the monolithic
// driver produces. The contract the fabric's byte-identity guarantee
// rests on:
//
//   - Points(rc) is deterministic: same RunConfig, same specs, same order.
//   - Run(ctx, spec) depends only on the spec (every knob that influences
//     the simulation is a spec field), so a point computes the same
//     result on every node — and content-addressing point results by the
//     canonical hash of the spec is sound.
//   - Merge(rc, results) consumes index-ordered results and performs the
//     exact arithmetic of the monolithic driver, so the merged result's
//     canonical JSON is byte-identical to a single-node run's.
//
// The equivalence tests in points_test.go pin all three properties for
// the built-in decompositions (fig2, fig6), including a JSON round-trip
// of every PointResult to prove identity survives wire transport.

// PointSpec fully describes one simulation point of a decomposed sweep.
// Every field that can influence the simulated result is here; the spec
// is the unit of work the fabric ships between processes and the input
// to the point's content-addressed cache key.
type PointSpec struct {
	// Experiment names the decomposition that produced (and can run) this
	// spec.
	Experiment string `json:"experiment"`
	// Index is the spec's position in the decomposition's point order.
	// Merge receives results sorted by it.
	Index int `json:"index"`
	// Machine is the machine preset name (see machine.Presets).
	Machine string `json:"machine"`
	// Procs overrides the preset's processor count.
	Procs int `json:"procs"`
	// Strategy is the execution strategy token (see Strategy.Token).
	Strategy string `json:"strategy"`
	// ChunkKB is the cascade chunk budget in KB.
	ChunkKB int `json:"chunk_kb"`
	// Scale is the PARMVR dataset scale factor.
	Scale float64 `json:"scale"`
	// N is the synthetic-loop / kernel array length (0 when unused).
	N int `json:"n,omitempty"`
	// ChunkBytes is the exact chunk budget in bytes for decompositions
	// whose budgets are not KB-quantized (warmsweep); 0 means ChunkKB
	// rules. Omitted from the canonical form when unused, so the fields'
	// addition left every existing point key unchanged.
	ChunkBytes int `json:"chunk_bytes,omitempty"`
	// Warmup is the number of sequential warm-up calls the point's shared
	// prefix runs before the measured call (warmsweep); 0 for cold sweeps.
	Warmup int `json:"warmup,omitempty"`
}

// PointResult is the serializable outcome of running one PointSpec: the
// raw measurements merges need, never derived ratios — speedups are
// computed at merge time from the same integers the monolithic driver
// divides, so distribution cannot perturb a single bit.
type PointResult struct {
	Index       int              `json:"index"`
	Cycles      int64            `json:"cycles"`
	HelperIters int64            `json:"helper_iters,omitempty"`
	TotalIters  int64            `json:"total_iters,omitempty"`
	Metrics     metrics.Snapshot `json:"metrics,omitempty"`
	// Shared counts the machine components a warm-started point's fork
	// still shared with its prefix snapshot after the measured call
	// (warmsweep rows report it; cold sweeps omit it).
	Shared int `json:"shared_components,omitempty"`
}

// Decomposition is a sweep driver split into its three distributable
// phases. Points and Merge run on the coordinating side; Run executes
// anywhere.
//
// The optional warm-prefix pair declares the strategy-independent work a
// point shares with its sweep siblings. Prefix maps a spec to its
// resolved PrefixSpec (ok=false for points with no shareable prefix);
// RunWarm executes the point's tail off a built PrefixState, and MUST
// produce byte-identical results to Run — the worker substitutes it
// freely whenever a cached snapshot is at hand. Callers serialize
// RunWarm invocations per state (PrefixCache holds the state lock).
type Decomposition struct {
	Points func(rc RunConfig) []PointSpec
	Run    func(ctx context.Context, ps PointSpec) (PointResult, error)
	Merge  func(rc RunConfig, results []PointResult) (Renderable, error)

	Prefix  func(ps PointSpec) (PrefixSpec, bool)
	RunWarm func(ctx context.Context, st *PrefixState, ps PointSpec) (PointResult, error)
}

// decompositions maps experiment name → decomposition. The built-ins
// register in init; tests may add synthetic sweeps via
// RegisterDecomposition.
var decompositions = map[string]Decomposition{}

// RegisterDecomposition adds (or replaces) a named decomposition. The
// built-in sweeps register themselves; tests register cheap synthetic
// sweeps to exercise the fabric without paper-scale simulations. Both
// sides of a distributed run must register the same name: the process
// that decomposes and merges, and the process that runs points.
func RegisterDecomposition(name string, d Decomposition) {
	decompositions[name] = d
}

// DecomposableExperiments returns the names with a registered
// decomposition, sorted.
func DecomposableExperiments() []string {
	names := make([]string, 0, len(decompositions))
	for n := range decompositions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Decomposable reports whether an experiment has a registered
// decomposition — whether the fabric can shard it point-by-point or must
// ship it whole.
func Decomposable(name string) bool {
	_, ok := decompositions[name]
	return ok
}

// Decompose returns the ordered point plan for an experiment, or false
// when the experiment has no registered decomposition.
func Decompose(experiment string, rc RunConfig) ([]PointSpec, bool) {
	d, ok := decompositions[experiment]
	if !ok {
		return nil, false
	}
	return d.Points(rc), true
}

// RunPoint executes one spec, dispatching on its Experiment field.
func RunPoint(ctx context.Context, ps PointSpec) (PointResult, error) {
	d, ok := decompositions[ps.Experiment]
	if !ok {
		return PointResult{}, fmt.Errorf("experiment %q has no point decomposition", ps.Experiment)
	}
	return d.Run(ctx, ps)
}

// MergePoints assembles an experiment's result from its complete point
// results. Results may arrive in any order; they are sorted by Index
// before the merge.
func MergePoints(experiment string, rc RunConfig, results []PointResult) (Renderable, error) {
	d, ok := decompositions[experiment]
	if !ok {
		return nil, fmt.Errorf("experiment %q has no point decomposition", experiment)
	}
	sorted := make([]PointResult, len(results))
	copy(sorted, results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for i, r := range sorted {
		if r.Index != i {
			return nil, fmt.Errorf("merge %s: incomplete results (missing index %d)", experiment, i)
		}
	}
	return d.Merge(rc, sorted)
}

// RunDecomposed runs a decomposable experiment locally — decompose, run
// every point through the experiment pool, merge — reporting point
// progress through the context (see WithPointProgress). It returns
// ok=false when the experiment has no decomposition. This is the
// single-node twin of the fabric's distributed path: both funnel through
// the same Run and Merge, which is what makes "byte-identical to a
// single-node run" a testable statement rather than a hope.
func RunDecomposed(ctx context.Context, experiment string, rc RunConfig) (Renderable, bool, error) {
	d, ok := decompositions[experiment]
	if !ok {
		return nil, false, nil
	}
	specs := d.Points(rc)
	results := make([]PointResult, len(specs))
	if err := parallelFor(ctx, len(specs), func(i int) error {
		r, err := d.Run(ctx, specs[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}); err != nil {
		return nil, true, err
	}
	r, err := d.Merge(rc, results)
	return r, true, err
}

// machineByName resolves a preset name against Machines(), so a point
// run on any node sees the same configuration — including the
// host-parallel knob — as a local sweep would.
func machineByName(name string) (machine.Config, error) {
	for _, cfg := range Machines() {
		if cfg.Name == name {
			return cfg, nil
		}
	}
	return machine.Config{}, fmt.Errorf("unknown machine preset %q", name)
}

// Token returns the strategy's spec token — lowercase, stable, part of
// the point-key derivation (unlike String, which is a display label).
func (s Strategy) Token() string {
	switch s {
	case Sequential:
		return "sequential"
	case Prefetched:
		return "prefetched"
	case Restructured:
		return "restructured"
	default:
		return fmt.Sprintf("strategy-%d", int(s))
	}
}

// ParseStrategy inverts Token.
func ParseStrategy(tok string) (Strategy, error) {
	for _, s := range Strategies {
		if s.Token() == tok {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy token %q", tok)
}

// runPARMVRPoint executes one PARMVR simulation described by a spec and
// reduces it to the raw measurements every PARMVR merge consumes.
func runPARMVRPoint(ps PointSpec) (PointResult, error) {
	cfg, err := machineByName(ps.Machine)
	if err != nil {
		return PointResult{}, err
	}
	strat, err := ParseStrategy(ps.Strategy)
	if err != nil {
		return PointResult{}, err
	}
	rr, err := RunPARMVR(cfg.WithProcs(ps.Procs), wave5.DefaultParams().Scaled(ps.Scale), strat, ps.ChunkKB*1024)
	if err != nil {
		return PointResult{}, err
	}
	res := PointResult{Index: ps.Index, Cycles: TotalCycles(rr), Metrics: MergeMetrics(rr)}
	for _, r := range rr {
		res.HelperIters += int64(r.HelperIters)
		res.TotalIters += int64(r.TotalIters)
	}
	return res, nil
}

// parmvrPrefix declares a fig2/fig6 point's shared prefix: the dataset
// build and machine construction, no distribution, no warm-up calls —
// exactly the strategy-independent head of RunPARMVR. Fig6 points share
// one prefix per machine (fixed procs, fixed scale); fig2's processor
// sweep gets one per (machine, procs).
func parmvrPrefix(ps PointSpec) (PrefixSpec, bool) {
	return PrefixSpec{Machine: ps.Machine, Procs: ps.Procs, Scale: ps.Scale}, true
}

// runPARMVRPointWarm is runPARMVRPoint off a shared prefix: the fork
// replaces machine.New, the restored space replaces wave5.Build, and the
// per-loop body is identical — cascade.Run resets caches per loop either
// way, so the fork of the freshly-constructed machine is observably the
// freshly-constructed machine.
func runPARMVRPointWarm(st *PrefixState, ps PointSpec) (PointResult, error) {
	strat, err := ParseStrategy(ps.Strategy)
	if err != nil {
		return PointResult{}, err
	}
	m, err := st.fork()
	if err != nil {
		return PointResult{}, err
	}
	results := make([]cascade.Result, 0, len(st.w.Loops))
	for _, l := range st.w.Loops {
		var r cascade.Result
		if strat == Sequential {
			r = cascade.RunSequential(m, l, true)
		} else {
			opts, oerr := cascade.NewOptions(
				cascade.WithHelper(strat.helper()),
				cascade.WithSpace(st.w.Space),
				cascade.WithChunkBytes(ps.ChunkKB*1024),
			)
			if oerr != nil {
				return PointResult{}, oerr
			}
			r, err = cascade.Run(m, l, opts)
			if err != nil {
				return PointResult{}, err
			}
		}
		results = append(results, r)
	}
	res := PointResult{Index: ps.Index, Cycles: TotalCycles(results), Metrics: MergeMetrics(results)}
	for _, r := range results {
		res.HelperIters += int64(r.HelperIters)
		res.TotalIters += int64(r.TotalIters)
	}
	return res, nil
}

func init() {
	RegisterDecomposition("fig2", Decomposition{
		Points: fig2Points,
		Run: func(ctx context.Context, ps PointSpec) (PointResult, error) {
			return runPARMVRPoint(ps)
		},
		Merge:  fig2Merge,
		Prefix: parmvrPrefix,
		RunWarm: func(ctx context.Context, st *PrefixState, ps PointSpec) (PointResult, error) {
			return runPARMVRPointWarm(st, ps)
		},
	})
	RegisterDecomposition("fig6", Decomposition{
		Points: fig6Points,
		Run: func(ctx context.Context, ps PointSpec) (PointResult, error) {
			return runPARMVRPoint(ps)
		},
		Merge:  fig6Merge,
		Prefix: parmvrPrefix,
		RunWarm: func(ctx context.Context, st *PrefixState, ps PointSpec) (PointResult, error) {
			return runPARMVRPointWarm(st, ps)
		},
	})
}

// fig2Points mirrors Fig2's spec construction exactly: one sequential
// baseline per machine at the preset's full processor count, then the
// (machine × procs × strategy) sweep in the driver's loop order.
func fig2Points(rc RunConfig) []PointSpec {
	chunkKB := rc.ChunkBytes / 1024
	var specs []PointSpec
	for _, cfg := range Machines() {
		specs = append(specs, PointSpec{
			Experiment: "fig2", Index: len(specs), Machine: cfg.Name, Procs: cfg.Procs,
			Strategy: Sequential.Token(), ChunkKB: chunkKB, Scale: rc.Scale,
		})
	}
	for _, cfg := range Machines() {
		for _, procs := range procSweep(cfg) {
			for _, strat := range []Strategy{Prefetched, Restructured} {
				specs = append(specs, PointSpec{
					Experiment: "fig2", Index: len(specs), Machine: cfg.Name, Procs: procs,
					Strategy: strat.Token(), ChunkKB: chunkKB, Scale: rc.Scale,
				})
			}
		}
	}
	return specs
}

// fig2Merge rebuilds Fig2Result with the driver's exact arithmetic:
// Speedup = baseline cycles / point cycles, HelperCompletion =
// helper/total iterations — the same integer inputs, the same float64
// divisions, the same bytes.
func fig2Merge(rc RunConfig, results []PointResult) (Renderable, error) {
	machines := Machines()
	if len(results) != len(fig2Points(rc)) {
		return nil, fmt.Errorf("fig2 merge: %d results, want %d", len(results), len(fig2Points(rc)))
	}
	res := &Fig2Result{
		Params:     rc.Params(),
		ChunkBytes: rc.ChunkBytes,
		Baselines:  make(map[string]int64),
	}
	bases := make(map[string]int64, len(machines))
	for i, cfg := range machines {
		bases[cfg.Name] = results[i].Cycles
		res.Baselines[cfg.Name] = results[i].Cycles
	}
	k := len(machines)
	for _, cfg := range machines {
		for _, procs := range procSweep(cfg) {
			for _, strat := range []Strategy{Prefetched, Restructured} {
				r := results[k]
				k++
				res.Points = append(res.Points, Fig2Point{
					Machine:          cfg.Name,
					Strategy:         strat,
					Procs:            procs,
					Speedup:          float64(bases[cfg.Name]) / float64(r.Cycles),
					HelperCompletion: float64(r.HelperIters) / float64(r.TotalIters),
					Metrics:          r.Metrics,
				})
			}
		}
	}
	return res, nil
}

// fig6Points mirrors Fig6: one 4-processor sequential baseline per
// machine at the driver's fixed 64KB chunk parameter, then the
// (machine × chunk size × strategy) sweep in loop order.
func fig6Points(rc RunConfig) []PointSpec {
	const procs = 4
	var specs []PointSpec
	for _, cfg := range Machines() {
		specs = append(specs, PointSpec{
			Experiment: "fig6", Index: len(specs), Machine: cfg.Name, Procs: procs,
			Strategy: Sequential.Token(), ChunkKB: 64, Scale: rc.Scale,
		})
	}
	for _, cfg := range Machines() {
		for _, kb := range Fig6ChunkSizesKB {
			for _, strat := range []Strategy{Prefetched, Restructured} {
				specs = append(specs, PointSpec{
					Experiment: "fig6", Index: len(specs), Machine: cfg.Name, Procs: procs,
					Strategy: strat.Token(), ChunkKB: kb, Scale: rc.Scale,
				})
			}
		}
	}
	return specs
}

// fig6Merge rebuilds Fig6Result from baseline and sweep measurements.
func fig6Merge(rc RunConfig, results []PointResult) (Renderable, error) {
	machines := Machines()
	if len(results) != len(fig6Points(rc)) {
		return nil, fmt.Errorf("fig6 merge: %d results, want %d", len(results), len(fig6Points(rc)))
	}
	res := &Fig6Result{Params: rc.Params(), Procs: 4}
	bases := make(map[string]int64, len(machines))
	for i, cfg := range machines {
		bases[cfg.Name] = results[i].Cycles
	}
	k := len(machines)
	for _, cfg := range machines {
		for _, kb := range Fig6ChunkSizesKB {
			for _, strat := range []Strategy{Prefetched, Restructured} {
				r := results[k]
				k++
				res.Points = append(res.Points, Fig6Point{
					Machine:    cfg.Name,
					Strategy:   strat,
					ChunkBytes: kb * 1024,
					Speedup:    float64(bases[cfg.Name]) / float64(r.Cycles),
					Metrics:    r.Metrics,
				})
			}
		}
	}
	return res, nil
}
