package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/wave5"
)

// warmTestParams shrinks the dataset so the differential finishes fast
// while every loop still has several chunks.
func warmTestParams() wave5.Params {
	return wave5.DefaultParams().Scaled(0.02)
}

// runWarmPointFresh measures a point the expensive way: a fresh machine
// runs the whole prefix (distribution + sequential warm-up calls) itself
// and then the point's steady-state call. This is the ground truth the
// warm sweep's forked rows must match bit for bit.
func runWarmPointFresh(t *testing.T, cfg machine.Config, p wave5.Params, warmupCalls int, pt WarmPoint) []cascade.Result {
	t.Helper()
	w, err := wave5.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runWarmPrefix(context.Background(), m, w, warmupCalls); err != nil {
		t.Fatal(err)
	}
	results, err := runWarmPoint(m, w, pt)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestWarmSweepBitIdentical is the sweep-level differential: every row of
// a warm-started sweep equals a fresh machine running the same prefix and
// point from scratch — cycles and full metrics snapshot.
func TestWarmSweepBitIdentical(t *testing.T) {
	cfg := machine.PentiumPro(3)
	p := warmTestParams()
	points := DefaultWarmPoints(16 * 1024)

	res, err := WarmSweep(context.Background(), cfg, p, 1, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(points) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(points))
	}
	for i, row := range res.Rows {
		fresh := runWarmPointFresh(t, cfg, p, 1, points[i])
		if got, want := row.Cycles, TotalCycles(fresh); got != want {
			t.Errorf("point %+v: warm cycles %d != fresh %d", points[i], got, want)
		}
		if !reflect.DeepEqual(row.Metrics, MergeMetrics(fresh)) {
			t.Errorf("point %+v: warm metrics differ from fresh", points[i])
		}
	}
	if res.Rows[0].Speedup != 1.0 {
		t.Errorf("sequential row speedup = %v, want 1.0", res.Rows[0].Speedup)
	}
	if res.PrefixKey == "" {
		t.Error("empty prefix key")
	}
}

// TestPrefixKeyDiscriminates pins the content-address semantics: the key
// is stable for equal inputs and distinct when the machine, dataset, or
// warm-up count changes.
func TestPrefixKeyDiscriminates(t *testing.T) {
	cfg := machine.PentiumPro(4)
	p := warmTestParams()
	k1, err := PrefixKey(cfg, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PrefixKey(cfg, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("prefix key not stable")
	}
	for name, alt := range map[string]func() (string, error){
		"procs":  func() (string, error) { return PrefixKey(cfg.WithProcs(2), p, 2) },
		"scale":  func() (string, error) { return PrefixKey(cfg, wave5.DefaultParams().Scaled(0.04), 2) },
		"warmup": func() (string, error) { return PrefixKey(cfg, p, 3) },
	} {
		k, err := alt()
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Errorf("prefix key ignores %s", name)
		}
	}
	// The Parallel knob changes simulation scheduling on the host only,
	// but it is part of the canonical config bytes when on (by design —
	// see SetParallel's rationale); just check it doesn't error.
	if _, err := PrefixKey(cfg.WithParallel(machine.ParallelOn), p, 2); err != nil {
		t.Fatal(err)
	}
}

// TestQuickstartCheckpoints exercises the server-facing checkpoint run:
// the checkpointed Result matches a plain quickstart Prefetched run, the
// stream is non-empty with increasing iteration marks, and resuming from
// any checkpoint reproduces the Result exactly.
func TestQuickstartCheckpoints(t *testing.T) {
	const n, chunk = 1 << 14, 16 * 1024
	qr, err := QuickstartCheckpoints(context.Background(), n, chunk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Checkpoints) == 0 {
		t.Fatal("no checkpoints captured")
	}
	last := -1
	for _, ck := range qr.Checkpoints {
		if ck.Iter <= last {
			t.Fatalf("checkpoint iters not increasing: %d after %d", ck.Iter, last)
		}
		last = ck.Iter
	}

	// Plain run, same construction: checkpointing must not perturb it.
	space, loop, err := quickstartLoop(n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.PentiumPro(4))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := cascade.NewOptions(
		cascade.WithHelper(cascade.HelperPrefetch),
		cascade.WithSpace(space),
		cascade.WithChunkBytes(chunk),
	)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cascade.Run(m, loop, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qr.Result, plain) {
		t.Error("checkpointed quickstart run differs from plain run")
	}

	// Resume out of order, including a repeat, to prove rewind works.
	for _, k := range []int{len(qr.Checkpoints) - 1, 0, len(qr.Checkpoints) / 2, 0} {
		r, err := qr.Resume(k)
		if err != nil {
			t.Fatalf("resume %d: %v", k, err)
		}
		if !reflect.DeepEqual(r, qr.Result) {
			t.Errorf("resume from checkpoint %d differs from original result", k)
		}
	}
	if _, err := qr.Resume(len(qr.Checkpoints)); err == nil {
		t.Error("resume past the stream should error")
	}
}
