// Package experiments contains one driver per table and figure of the
// paper's evaluation (§3). Each driver runs the relevant workloads on the
// simulated machines and produces the same rows or series the paper
// reports; renderers emit aligned text or CSV. The cmd/cascade-sim CLI
// and the repository's benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/wave5"
)

// Strategy identifies an execution strategy of the evaluation.
type Strategy int

const (
	// Sequential is the original single-processor execution (Figure 1a).
	Sequential Strategy = iota
	// Prefetched is cascaded execution with the prefetch helper.
	Prefetched
	// Restructured is cascaded execution with the data-restructuring
	// helper (sequential buffer).
	Restructured
)

// Strategies lists the three strategies in presentation order.
var Strategies = []Strategy{Sequential, Prefetched, Restructured}

// String implements fmt.Stringer, matching the paper's legend labels.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "Original Sequential"
	case Prefetched:
		return "Prefetched"
	case Restructured:
		return "Restructured"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MarshalJSON renders the strategy as its legend label, so exported
// experiment results are self-describing.
func (s Strategy) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// helper converts a cascaded Strategy to cascade.Helper.
func (s Strategy) helper() cascade.Helper {
	if s == Restructured {
		return cascade.HelperRestructure
	}
	return cascade.HelperPrefetch
}

// RunPARMVR executes the fifteen PARMVR loops in order on a fresh machine
// and freshly built workload, under the given strategy, returning one
// result per loop. Chunked strategies use chunkBytes chunks with the
// paper's jump-out refinement; the prior parallel section is modelled for
// every strategy.
func RunPARMVR(cfg machine.Config, p wave5.Params, strat Strategy, chunkBytes int) ([]cascade.Result, error) {
	w, err := wave5.Build(p)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	results := make([]cascade.Result, 0, len(w.Loops))
	for _, l := range w.Loops {
		var r cascade.Result
		if strat == Sequential {
			r = cascade.RunSequential(m, l, true)
		} else {
			opts, oerr := cascade.NewOptions(
				cascade.WithHelper(strat.helper()),
				cascade.WithSpace(w.Space),
				cascade.WithChunkBytes(chunkBytes),
			)
			if oerr != nil {
				return nil, oerr
			}
			r, err = cascade.Run(m, l, opts)
			if err != nil {
				return nil, err
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// RunPARMVRCall measures one call of PARMVR after warmupCalls prior calls
// on the same machine with warm caches. The paper's per-loop figures are
// for "the 12th call (out of 5000)" — a steady-state call whose caches
// carry the previous call's residue; warmupCalls = 0 reproduces
// RunPARMVR's cold-call behaviour except that no cache reset happens
// between loops.
//
// Unlike RunPARMVR, caches are NOT reset between loops or calls: the
// measurement captures the real call-to-call reuse (grid arrays stay
// L2-resident across calls; particle arrays never fit).
func RunPARMVRCall(cfg machine.Config, p wave5.Params, strat Strategy, chunkBytes, warmupCalls int) ([]cascade.Result, error) {
	w, err := wave5.Build(p)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	runCall := func() ([]cascade.Result, error) {
		results := make([]cascade.Result, 0, len(w.Loops))
		for _, l := range w.Loops {
			var r cascade.Result
			if strat == Sequential {
				r = cascade.RunSequentialWarm(m, l)
			} else {
				opts, oerr := cascade.NewOptions(
					cascade.WithHelper(strat.helper()),
					cascade.WithSpace(w.Space),
					cascade.WithChunkBytes(chunkBytes),
					cascade.WithKeepState(true), // state carries over between loops/calls
				)
				if oerr != nil {
					return nil, oerr
				}
				r, err = cascade.Run(m, l, opts)
				if err != nil {
					return nil, err
				}
			}
			results = append(results, r)
		}
		return results, nil
	}
	// Initial distribution models the parallel phases around the calls.
	var ranges []machine.AddrRange
	for _, l := range w.Loops {
		for _, ar := range l.AddrRanges() {
			ranges = append(ranges, machine.AddrRange{Base: ar.Base, Bytes: ar.Bytes})
		}
	}
	m.DistributeLines(ranges)
	for c := 0; c < warmupCalls; c++ {
		if _, err := runCall(); err != nil {
			return nil, err
		}
	}
	return runCall()
}

// MergeMetrics folds the per-loop metric snapshots of a multi-loop run
// into one snapshot for the whole point: counters and phase cycles sum,
// so the result reads as if the registry had covered all loops as one
// measured region.
func MergeMetrics(results []cascade.Result) metrics.Snapshot {
	snaps := make([]metrics.Snapshot, len(results))
	for i, r := range results {
		snaps[i] = r.Metrics
	}
	return metrics.Merge(snaps...)
}

// TotalCycles sums the per-loop cycle counts.
func TotalCycles(results []cascade.Result) int64 {
	var total int64
	for _, r := range results {
		total += r.Cycles
	}
	return total
}

// hostParallel is the machine-level Parallel knob Machines applies to
// every configuration it hands out. The CLI sets it once, before any
// experiment runs, so no synchronization is needed.
var hostParallel machine.Parallel

// SetParallel selects the host-parallel simulation engine for every
// machine the experiments build. The knob is semantically transparent —
// parallel runs are bit-identical to serial ones — but it stays in the
// canonical cache key when on, so parallel sweeps never share disk-cache
// entries with serial golden runs. Call before running experiments.
func SetParallel(on bool) {
	if on {
		hostParallel = machine.ParallelOn
	} else {
		hostParallel = machine.ParallelOff
	}
}

// Machines returns the evaluation's two machines at their full processor
// counts (Table 1).
func Machines() []machine.Config {
	cfgs := machine.Presets()
	for i := range cfgs {
		cfgs[i] = cfgs[i].WithParallel(hostParallel)
	}
	return cfgs
}

// procSweep returns the processor counts the paper's Figure 2 plots for a
// machine: 2..4 on the Pentium Pro, 2..8 on the R10000.
func procSweep(cfg machine.Config) []int {
	var out []int
	for p := 2; p <= cfg.Procs; p++ {
		out = append(out, p)
	}
	return out
}
