package experiments

import (
	"context"
	"io"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/synthetic"
)

// Fig7ChunkSizesKB are the chunk sizes of Figure 7's x-axis.
var Fig7ChunkSizesKB = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Fig7Point is one point of Figure 7: unbounded-processor cascaded
// speedup of the synthetic loop at one chunk size.
type Fig7Point struct {
	Machine    string
	Variant    string // "dense" or "sparse(k=8)"
	Strategy   Strategy
	ChunkBytes int
	Speedup    float64
}

// Fig7Result holds the future-machine sweep.
type Fig7Result struct {
	N      int
	Points []Fig7Point
}

// Fig7 reproduces Figure 7: cascaded-execution speedups for the synthetic
// loop with increased memory-access-to-computation ratio, simulated with
// unbounded processors (§3.4's single-processor alternation methodology),
// for dense and sparse variants, both helpers, chunk sizes 1KB-256KB, on
// both machines. Points run in parallel across the host's cores.
func Fig7(ctx context.Context, n int) (*Fig7Result, error) {
	res := &Fig7Result{N: n}
	machines := Machines()
	variants := []synthetic.Params{synthetic.Dense(n), synthetic.Sparse(n)}

	type baseKey struct {
		cfg     machine.Config
		variant synthetic.Params
	}
	var baseKeys []baseKey
	for _, cfg := range machines {
		for _, v := range variants {
			baseKeys = append(baseKeys, baseKey{cfg, v})
		}
	}
	bases := make([]cascade.Result, len(baseKeys))
	if err := parallelFor(ctx, len(baseKeys), func(i int) error {
		_, lbase, err := synthetic.Build(baseKeys[i].variant)
		if err != nil {
			return err
		}
		base, err := cascade.SequentialBaseline(baseKeys[i].cfg, lbase)
		if err != nil {
			return err
		}
		bases[i] = base
		return nil
	}); err != nil {
		return nil, err
	}

	type spec struct {
		cfg     machine.Config
		variant synthetic.Params
		base    cascade.Result
		strat   Strategy
		kb      int
	}
	var specs []spec
	for i, bk := range baseKeys {
		for _, kb := range Fig7ChunkSizesKB {
			for _, strat := range []Strategy{Prefetched, Restructured} {
				specs = append(specs, spec{bk.cfg, bk.variant, bases[i], strat, kb})
			}
		}
	}
	points := make([]Fig7Point, len(specs))
	if err := parallelFor(ctx, len(specs), func(k int) error {
		s := specs[k]
		space, l, err := synthetic.Build(s.variant)
		if err != nil {
			return err
		}
		opts, err := cascade.NewOptions(
			cascade.WithHelper(s.strat.helper()),
			cascade.WithChunkBytes(s.kb*1024),
			cascade.WithSpace(space),
			cascade.WithPriorParallel(false),
		)
		if err != nil {
			return err
		}
		r, err := cascade.RunUnbounded(s.cfg, l, opts)
		if err != nil {
			return err
		}
		points[k] = Fig7Point{
			Machine:    s.cfg.Name,
			Variant:    s.variant.Name(),
			Strategy:   s.strat,
			ChunkBytes: s.kb * 1024,
			Speedup:    r.SpeedupOver(s.base),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// Speedup returns the sweep value for a configuration (0 if absent).
func (r *Fig7Result) Speedup(machineName, variant string, strat Strategy, chunkBytes int) float64 {
	for _, pt := range r.Points {
		if pt.Machine == machineName && pt.Variant == variant &&
			pt.Strategy == strat && pt.ChunkBytes == chunkBytes {
			return pt.Speedup
		}
	}
	return 0
}

// Peak returns the highest speedup for a machine and variant across chunk
// sizes and helpers — the paper's "speedups as high as 16" statistic.
func (r *Fig7Result) Peak(machineName, variant string) float64 {
	var best float64
	for _, pt := range r.Points {
		if pt.Machine == machineName && pt.Variant == variant && pt.Speedup > best {
			best = pt.Speedup
		}
	}
	return best
}

// Render writes one table per machine with the four series of the paper's
// panels (restructured/prefetched x sparse/dense).
func (r *Fig7Result) Render(w io.Writer) {
	dense := synthetic.Dense(r.N).Name()
	sparse := synthetic.Sparse(r.N).Name()
	for _, cfg := range Machines() {
		t := report.NewTable(
			"Figure 7. Cascaded execution speedups with increased memory access costs — "+cfg.Name,
			"KBytes/chunk", "Restructured,Sparse", "Prefetched,Sparse",
			"Restructured,Dense", "Prefetched,Dense")
		for _, kb := range Fig7ChunkSizesKB {
			t.Addf(itoa(kb),
				r.Speedup(cfg.Name, sparse, Restructured, kb*1024),
				r.Speedup(cfg.Name, sparse, Prefetched, kb*1024),
				r.Speedup(cfg.Name, dense, Restructured, kb*1024),
				r.Speedup(cfg.Name, dense, Prefetched, kb*1024))
		}
		t.Render(w)
		io.WriteString(w, "\n")
	}
}
