package experiments

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/wave5"
)

// testParams shrinks PARMVR enough for fast tests while keeping every
// loop's structure (footprints still exceed the L1s).
func testParams() wave5.Params {
	return wave5.DefaultParams().Scaled(0.05)
}

func TestStrategyString(t *testing.T) {
	if Sequential.String() != "Original Sequential" ||
		Prefetched.String() != "Prefetched" ||
		Restructured.String() != "Restructured" {
		t.Error("strategy labels do not match the paper's legends")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should render")
	}
}

func TestTable1Content(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{
		"PentiumPro", "R10000",
		"8KB", "512KB", "32KB", "2MB",
		"100-200", "58",
		"32 bytes", "128 bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestRunPARMVRSequentialDeterministic(t *testing.T) {
	p := testParams()
	r1, err := RunPARMVR(machine.PentiumPro(4), p, Sequential, cascade.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunPARMVR(machine.PentiumPro(4), p, Sequential, cascade.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != wave5.NumLoops || len(r2) != wave5.NumLoops {
		t.Fatalf("loop counts: %d, %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Cycles != r2[i].Cycles {
			t.Errorf("loop %d nondeterministic: %d vs %d", i, r1[i].Cycles, r2[i].Cycles)
		}
	}
}

func TestRunPARMVRRejectsBadConfig(t *testing.T) {
	if _, err := RunPARMVR(machine.PentiumPro(0), testParams(), Sequential, 1024); err == nil {
		t.Error("expected error for bad machine config")
	}
	if _, err := RunPARMVR(machine.PentiumPro(2), wave5.Params{}, Sequential, 1024); err == nil {
		t.Error("expected error for bad workload params")
	}
}

// TestFig2Shape asserts the paper's Figure 2 claims (at reduced scale):
// restructuring wins overall on both machines, beats prefetching, gains
// from more processors, and prefetching alone gains ~nothing on the
// R10000 (the MIPSpro effect).
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: fig2 sweeps both machines at several processor counts")
	}
	res, err := Fig2(context.Background(), testParams(), cascade.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	ppRes := res.Speedup("PentiumPro", Restructured, 4)
	ppPre := res.Speedup("PentiumPro", Prefetched, 4)
	rkRes := res.Speedup("R10000", Restructured, 8)
	rkPre := res.Speedup("R10000", Prefetched, 8)

	if ppRes <= 1.1 {
		t.Errorf("PentiumPro restructured speedup = %.2f, want noticeable (>1.1)", ppRes)
	}
	if rkRes <= 1.2 {
		t.Errorf("R10000 restructured speedup = %.2f, want noticeable (>1.2)", rkRes)
	}
	if ppRes <= ppPre {
		t.Errorf("PentiumPro: restructured (%.2f) should beat prefetched (%.2f)", ppRes, ppPre)
	}
	if rkRes <= rkPre {
		t.Errorf("R10000: restructured (%.2f) should beat prefetched (%.2f)", rkRes, rkPre)
	}
	if rkPre > 1.15 {
		t.Errorf("R10000 prefetched speedup = %.2f; paper found ~none (compiler prefetch)", rkPre)
	}
	// Processor scaling: 4 procs at least as good as 2 (small tolerance).
	if s2, s4 := res.Speedup("PentiumPro", Restructured, 2), ppRes; s4 < s2*0.97 {
		t.Errorf("PentiumPro restructured speedup fell with processors: %.2f@2p vs %.2f@4p", s2, s4)
	}

	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "Figure 2") {
		t.Error("render missing title")
	}
}

// TestBreakdownShape asserts the Figure 3-5 claims: restructuring reduces
// execution-phase cache misses dramatically and no loop slows down
// catastrophically.
func TestBreakdownShape(t *testing.T) {
	b, err := LoopBreakdown(context.Background(), machine.PentiumPro(4), testParams(), cascade.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Stats[Sequential]) != wave5.NumLoops {
		t.Fatalf("loops = %d", len(b.Stats[Sequential]))
	}
	if red := b.MissReduction(Restructured); red < 0.5 {
		t.Errorf("restructured L2 miss reduction = %.0f%%, want most misses gone (paper: 93-94%%)", red*100)
	}
	for i := range b.Stats[Sequential] {
		seq := b.Stats[Sequential][i]
		res := b.Stats[Restructured][i]
		if seq.Cycles <= 0 {
			t.Errorf("loop %s: no sequential cycles", seq.Loop)
		}
		slowdown := float64(res.Cycles) / float64(seq.Cycles)
		if slowdown > 1.5 {
			t.Errorf("loop %s: restructured %.2fx slower than sequential (paper's worst: ~1.1x)",
				seq.Loop, slowdown)
		}
	}
	for _, render := range []func(io.Writer){b.RenderFig3, b.RenderFig4, b.RenderFig5} {
		var sb strings.Builder
		render(&sb)
		if !strings.Contains(sb.String(), "gather_ex") {
			t.Error("figure render missing loop rows")
		}
	}
}

// TestFig6Shape asserts Figure 6's claims: an interior optimum chunk size
// larger than L1, with degraded performance at the 2MB extreme.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: fig6 sweeps the full chunk-size grid")
	}
	res, err := Fig6(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range Machines() {
		bestChunk, bestSpeed := res.Best(mc.Name, Restructured)
		if bestSpeed <= 1 {
			t.Errorf("%s: best speedup %.2f <= 1", mc.Name, bestSpeed)
		}
		// The interior-optimum position (16-64KB in the paper) is a
		// full-scale property; at this test's reduced scale the cheap
		// 120-cycle PentiumPro transfer lets small chunks win there. The
		// R10000's 500-cycle transfer preserves the paper's shape even at
		// reduced scale.
		if mc.Name == "R10000" && bestChunk < 8*1024 {
			t.Errorf("%s: best chunk %d < 8KB; paper found optima at 16-64KB", mc.Name, bestChunk)
		}
		worst := res.Speedup(mc.Name, Restructured, 2048*1024)
		if worst >= bestSpeed {
			t.Errorf("%s: 2MB chunks (%.2f) not worse than best (%.2f)", mc.Name, worst, bestSpeed)
		}
	}
	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "Figure 6") {
		t.Error("render missing title")
	}
}

// TestFig7Shape asserts Figure 7's claims at reduced scale: the sparse
// (more memory-bound) variant speeds up more than the dense one, and
// restructuring at least matches prefetching at the peak.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: fig7 runs the synthetic gallery at a past-L2 array size")
	}
	const n = 1 << 17 // 512KB arrays: past both L2s at test scale
	res, err := Fig7(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range Machines() {
		dense := res.Peak(mc.Name, "dense")
		sparse := res.Peak(mc.Name, "sparse(k=8)")
		if dense <= 1.5 {
			t.Errorf("%s: dense peak %.2f, want clear speedup", mc.Name, dense)
		}
		if sparse <= dense {
			t.Errorf("%s: sparse peak %.2f not above dense %.2f", mc.Name, sparse, dense)
		}
	}
	var b strings.Builder
	res.Render(&b)
	if !strings.Contains(b.String(), "Figure 7") {
		t.Error("render missing title")
	}
}

func TestAblationJumpOut(t *testing.T) {
	a, err := AblationJumpOut(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range Machines() {
		jump, ok1 := a.Find(mc.Name, "jump out on signal")
		wait, ok2 := a.Find(mc.Name, "wait for helper completion")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing rows", mc.Name)
		}
		if jump.Cycles > wait.Cycles {
			t.Errorf("%s: jump-out (%d) slower than waiting (%d)", mc.Name, jump.Cycles, wait.Cycles)
		}
	}
}

func TestAblationPrecompute(t *testing.T) {
	a, err := AblationPrecompute(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range Machines() {
		raw, ok1 := a.Find(mc.Name, "store raw operands")
		pre, ok2 := a.Find(mc.Name, "precompute in helper")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing rows", mc.Name)
		}
		// Precomputation moves Pre cycles off the critical path; it should
		// not lose (small tolerance for cache noise).
		if float64(pre.Cycles) > float64(raw.Cycles)*1.02 {
			t.Errorf("%s: precompute (%d) worse than raw (%d)", mc.Name, pre.Cycles, raw.Cycles)
		}
	}
}

func TestAblationChunking(t *testing.T) {
	a, err := AblationChunking(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	strictWin := false
	for _, mc := range Machines() {
		budget, ok1 := a.Find(mc.Name, "64KB byte budget")
		block, ok2 := a.Find(mc.Name, "one block per processor")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing rows", mc.Name)
		}
		// At the reduced test scale the two policies can come close on one
		// machine; byte-budget chunking must never be meaningfully worse
		// and must win clearly somewhere.
		if float64(budget.Cycles) > float64(block.Cycles)*1.05 {
			t.Errorf("%s: byte-budget chunks (%d) worse than block partitioning (%d)",
				mc.Name, budget.Cycles, block.Cycles)
		}
		if float64(budget.Cycles) < float64(block.Cycles)*0.98 {
			strictWin = true
		}
	}
	if !strictWin {
		t.Error("byte-budget chunking should clearly beat block partitioning on at least one machine")
	}
}

func TestAblationCompilerPrefetch(t *testing.T) {
	a, err := AblationCompilerPrefetch(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	on, ok1 := a.Find("R10000", "MIPSpro prefetch on (prefetched helper)")
	off, ok2 := a.Find("R10000", "MIPSpro prefetch off (prefetched helper)")
	if !ok1 || !ok2 {
		t.Fatal("missing rows")
	}
	// The paper's hypothesis: with compiler prefetching the helper gains
	// ~nothing; without it, the helper should show a clear win.
	if on.Speedup > 1.15 {
		t.Errorf("prefetch helper gains %.2f with MIPSpro prefetch on; expected ~1", on.Speedup)
	}
	if off.Speedup <= on.Speedup {
		t.Errorf("prefetch helper should matter more without compiler prefetch: %.2f vs %.2f",
			off.Speedup, on.Speedup)
	}
	var b strings.Builder
	a.Render(&b)
	if !strings.Contains(b.String(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestAblationTLB(t *testing.T) {
	a, err := AblationTLB(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range Machines() {
		on, ok1 := a.Find(mc.Name, "TLB modelled")
		off, ok2 := a.Find(mc.Name, "TLB disabled")
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing rows", mc.Name)
		}
		if on.Cycles <= off.Cycles {
			t.Errorf("%s: TLB walks added no cycles (%d vs %d)", mc.Name, on.Cycles, off.Cycles)
		}
		// These loops have good page locality; translation must be a
		// small fraction of the total.
		if float64(on.Cycles) > 1.25*float64(off.Cycles) {
			t.Errorf("%s: TLB cost implausibly high: %d vs %d", mc.Name, on.Cycles, off.Cycles)
		}
	}
}
