package experiments

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 1000
	var hits [n]int32
	if err := parallelFor(n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	err := parallelFor(100, func(i int) error {
		if i == 57 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestParallelForSerialFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	count := 0
	if err := parallelFor(10, func(i int) error {
		count++ // safe: serial path
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d", count)
	}
}

func TestParallelForZero(t *testing.T) {
	if err := parallelFor(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("err = %v", err)
	}
}
