package experiments

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 1000
	var hits [n]int32
	if err := parallelFor(n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	err := parallelFor(100, func(i int) error {
		if i == 57 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestParallelForSerialFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	count := 0
	if err := parallelFor(10, func(i int) error {
		count++ // safe: serial path
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d", count)
	}
}

func TestParallelForZero(t *testing.T) {
	if err := parallelFor(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestParallelForFirstErrorByIndex(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Both indices fail; regardless of completion order the lower index's
	// error must be returned. The high index fails instantly while the low
	// one is delayed, biasing completion order against the expected result.
	for trial := 0; trial < 30; trial++ {
		err := parallelFor(100, func(i int) error {
			switch i {
			case 30:
				time.Sleep(200 * time.Microsecond)
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want the lowest-index error", trial, err)
		}
	}
}

func TestParallelForCancelsAfterError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	const n = 100000
	var ran int32
	err := parallelFor(n, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt32(&ran); got > n/2 {
		t.Errorf("%d of %d points ran after early failure; cancellation not effective", got, n)
	}
}
