package experiments

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 1000
	var hits [n]int32
	if err := parallelFor(context.Background(), n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	err := parallelFor(context.Background(), 100, func(i int) error {
		if i == 57 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestParallelForSerialFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	count := 0
	if err := parallelFor(context.Background(), 10, func(i int) error {
		count++ // safe: serial path
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d", count)
	}
}

func TestParallelForZero(t *testing.T) {
	if err := parallelFor(context.Background(), 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestParallelForFirstErrorByIndex(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Both indices fail; regardless of completion order the lower index's
	// error must be returned. The high index fails instantly while the low
	// one is delayed, biasing completion order against the expected result.
	for trial := 0; trial < 30; trial++ {
		err := parallelFor(context.Background(), 100, func(i int) error {
			switch i {
			case 30:
				time.Sleep(200 * time.Microsecond)
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want the lowest-index error", trial, err)
		}
	}
}

func TestParallelForCancelsAfterError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	const n = 100000
	var ran int32
	err := parallelFor(context.Background(), n, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt32(&ran); got > n/2 {
		t.Errorf("%d of %d points ran after early failure; cancellation not effective", got, n)
	}
}

func TestParallelForContextCancel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 100000
	var ran int32
	err := parallelFor(ctx, n, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got > n/2 {
		t.Errorf("%d of %d points ran after cancel; cancellation not effective", got, n)
	}
}

func TestParallelForSerialContextCancel(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := parallelFor(ctx, 100, func(i int) error {
		ran++
		if ran == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 5 {
		t.Errorf("ran = %d, want 5 (no index after cancel)", ran)
	}
}

// TestParallelForContainsPanics pins the failure model the serving
// daemon depends on: a panicking sweep point becomes that point's error
// (lowest failing index, stack attached) instead of killing the
// process, on both the parallel and serial paths.
func TestParallelForContainsPanics(t *testing.T) {
	for name, procs := range map[string]int{"parallel": 4, "serial": 1} {
		t.Run(name, func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			err := parallelFor(context.Background(), 100, func(i int) error {
				if i == 7 {
					panic("kaboom")
				}
				return nil
			})
			if err == nil {
				t.Fatal("panic was swallowed")
			}
			msg := err.Error()
			if !strings.Contains(msg, "point 7 panicked") || !strings.Contains(msg, "kaboom") {
				t.Errorf("err = %q, want point index and panic value", msg)
			}
			if !strings.Contains(msg, "pool_test.go") {
				t.Errorf("err lacks a stack trace:\n%s", msg)
			}
		})
	}
}

// TestParallelForPanicBeatsLaterError pins that a panic participates in
// the lowest-failing-index rule like any other error.
func TestParallelForPanicBeatsLaterError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	err := parallelFor(context.Background(), 100, func(i int) error {
		switch i {
		case 10:
			time.Sleep(200 * time.Microsecond)
			panic("early panic")
		case 11:
			return boom
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "point 10 panicked") {
		t.Errorf("err = %v, want the lower-index panic to win", err)
	}
}

func TestParallelForErrorBeatsCancel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := parallelFor(ctx, 100, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the fn error to win over cancellation", err)
	}
}
