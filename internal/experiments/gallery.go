package experiments

import (
	"context"
	"io"

	"repro/internal/cascade"
	"repro/internal/gallery"
	"repro/internal/machine"
	"repro/internal/report"
)

// GalleryRow is one kernel's measurement on one machine.
type GalleryRow struct {
	Kernel            string
	SeqCycles         int64
	PrefetchedSpeedup float64
	RestructuredSpeed float64
	HelperCompletion  float64 // restructured
}

// GalleryResult summarizes when cascading pays across the kernel gallery.
type GalleryResult struct {
	Machine string
	N       int
	Rows    []GalleryRow
}

// Gallery runs every gallery kernel under all three strategies on one
// machine at n elements per kernel. Kernels are measured in parallel
// across the host's cores (each builds its own arrays and machines).
func Gallery(ctx context.Context, cfg machine.Config, n, chunkBytes int) (*GalleryResult, error) {
	kernels := gallery.Kernels()
	rows := make([]GalleryRow, len(kernels))
	err := parallelFor(ctx, len(kernels), func(i int) error {
		k := kernels[i]
		_, lseq, err := k.Build(n)
		if err != nil {
			return err
		}
		m, err := machine.New(cfg)
		if err != nil {
			return err
		}
		base := cascade.RunSequential(m, lseq, true)
		want := lseq.Writes[0].Array.Snapshot()

		row := GalleryRow{Kernel: k.Name, SeqCycles: base.Cycles}
		for _, strat := range []Strategy{Prefetched, Restructured} {
			space, l, err := k.Build(n)
			if err != nil {
				return err
			}
			mm, err := machine.New(cfg)
			if err != nil {
				return err
			}
			opts, err := cascade.NewOptions(
				cascade.WithHelper(strat.helper()),
				cascade.WithSpace(space),
				cascade.WithChunkBytes(chunkBytes),
			)
			if err != nil {
				return err
			}
			res, err := cascade.Run(mm, l, opts)
			if err != nil {
				return err
			}
			if eq, _ := l.Writes[0].Array.Equal(want); !eq {
				return errKernelDiverged(k.Name, strat)
			}
			switch strat {
			case Prefetched:
				row.PrefetchedSpeedup = res.SpeedupOver(base)
			case Restructured:
				row.RestructuredSpeed = res.SpeedupOver(base)
				row.HelperCompletion = res.HelperCompletion()
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &GalleryResult{Machine: cfg.Name, N: n, Rows: rows}, nil
}

// errKernelDiverged reports a correctness violation — it should never
// fire; it exists so the gallery doubles as an integration check.
type kernelDivergedError struct {
	kernel string
	strat  Strategy
}

func errKernelDiverged(kernel string, strat Strategy) error {
	return kernelDivergedError{kernel, strat}
}

func (e kernelDivergedError) Error() string {
	return "experiments: kernel " + e.kernel + " diverged under " + e.strat.String()
}

// Render writes the gallery table.
func (g *GalleryResult) Render(w io.Writer) {
	t := report.NewTable(
		"Kernel gallery — "+g.Machine+" ("+report.Int(int64(g.N))+" elements/kernel, 64KB chunks)",
		"Kernel", "Sequential cycles", "Prefetched", "Restructured", "helper done")
	for _, r := range g.Rows {
		t.Add(r.Kernel, report.Int(r.SeqCycles),
			report.Float(r.PrefetchedSpeedup), report.Float(r.RestructuredSpeed),
			report.Float(r.HelperCompletion))
	}
	t.Render(w)
	io.WriteString(w, "\n")
}

// Find returns a kernel's row.
func (g *GalleryResult) Find(kernel string) (GalleryRow, bool) {
	for _, r := range g.Rows {
		if r.Kernel == kernel {
			return r, true
		}
	}
	return GalleryRow{}, false
}
