package experiments

import (
	"strings"
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
)

func TestTable1CSV(t *testing.T) {
	var b strings.Builder
	Table1().RenderCSV(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 7 { // header + 3 rows per machine
		t.Errorf("CSV lines = %d, want 7:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "Processor,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestSizeStr(t *testing.T) {
	cases := []struct {
		bytes int
		want  string
	}{
		{8 * 1024, "8KB"},
		{512 * 1024, "512KB"},
		{2 * 1024 * 1024, "2MB"},
		{1536 * 1024 * 1024, "1.5GB"},
	}
	for _, c := range cases {
		if got := sizeStr(c.bytes); got != c.want {
			t.Errorf("sizeStr(%d) = %q, want %q", c.bytes, got, c.want)
		}
	}
}

func TestFig2SpeedupAbsent(t *testing.T) {
	r := &Fig2Result{}
	if r.Speedup("nope", Prefetched, 2) != 0 {
		t.Error("absent configuration should return 0")
	}
}

func TestFig6SpeedupAbsent(t *testing.T) {
	r := &Fig6Result{}
	if r.Speedup("nope", Prefetched, 1024) != 0 {
		t.Error("absent configuration should return 0")
	}
	if c, s := r.Best("nope", Prefetched); c != 0 || s != 0 {
		t.Error("Best on empty result should be zero")
	}
}

func TestFig7SpeedupAbsent(t *testing.T) {
	r := &Fig7Result{}
	if r.Speedup("nope", "dense", Prefetched, 1024) != 0 {
		t.Error("absent configuration should return 0")
	}
	if r.Peak("nope", "dense") != 0 {
		t.Error("Peak on empty result should be 0")
	}
}

func TestAblationFindAbsent(t *testing.T) {
	a := &AblationResult{Name: "x"}
	if _, ok := a.Find("m", "c"); ok {
		t.Error("Find on empty ablation should be false")
	}
}

// TestBreakdownTotalsAndReduction sanity-checks the aggregate helpers on
// a tiny breakdown.
func TestBreakdownTotalsAndReduction(t *testing.T) {
	b := &BreakdownResult{Stats: map[Strategy][]LoopStats{
		Sequential:   {{L2Misses: 100, Cycles: 10}, {L2Misses: 100, Cycles: 20}},
		Restructured: {{L2Misses: 10, Cycles: 5}, {L2Misses: 40, Cycles: 10}},
	}}
	if got := b.Totals(Sequential, func(s LoopStats) int64 { return s.Cycles }); got != 30 {
		t.Errorf("Totals = %d", got)
	}
	if got := b.MissReduction(Restructured); got != 0.75 {
		t.Errorf("MissReduction = %v, want 0.75", got)
	}
	empty := &BreakdownResult{Stats: map[Strategy][]LoopStats{}}
	if empty.MissReduction(Restructured) != 0 {
		t.Error("empty MissReduction should be 0")
	}
}

// TestRunPARMVRStrategiesDiffer: a cheap smoke check that the cascaded
// strategies actually produce different timing results from sequential.
func TestRunPARMVRStrategiesDiffer(t *testing.T) {
	p := testParams()
	seq, err := RunPARMVR(machine.PentiumPro(4), p, Sequential, cascade.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPARMVR(machine.PentiumPro(4), p, Restructured, cascade.DefaultChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if TotalCycles(seq) == TotalCycles(res) {
		t.Error("restructured total equals sequential; simulation inert?")
	}
	if TotalCycles(res) <= 0 {
		t.Error("no cycles recorded")
	}
}
