package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// pointProgressKey carries a sweep-progress reporter in a context (see
// WithPointProgress).
type pointProgressKey struct{}

// WithPointProgress returns a context carrying fn. Every sweep that runs
// through parallelFor calls fn as points complete, with the number of
// completed points and the sweep's total — no driver changes required.
// An experiment with several sweep phases (baselines, then points)
// reports each phase's counts in turn. The serving layer installs a
// reporter here to expose points_done/points_total keep-alive progress
// on long-polled jobs. fn must be safe for concurrent calls.
func WithPointProgress(ctx context.Context, fn func(done, total int)) context.Context {
	return context.WithValue(ctx, pointProgressKey{}, fn)
}

// ReportPointProgress invokes ctx's progress reporter, if any. Exported
// so experiments defined outside this package (test stand-ins, custom
// workloads) can feed the same progress channel the built-in sweeps do.
func ReportPointProgress(ctx context.Context, done, total int) {
	if fn, ok := ctx.Value(pointProgressKey{}).(func(done, total int)); ok && fn != nil {
		fn(done, total)
	}
}

// DefaultJobWorkers is the bounded concurrency at which the serving
// layer (internal/server) executes experiment jobs: half the scheduler's
// processors, at least one. Each job's sweep already fans out across
// GOMAXPROCS via parallelFor below, so running every queued job at full
// width would oversubscribe the machine; halving keeps one job's sweep
// and the next job's warm-up overlapped without thrashing.
func DefaultJobWorkers() int {
	w := runtime.GOMAXPROCS(0) / 2
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for every i in [0, n) across up to
// runtime.GOMAXPROCS(0) workers. Every index's work must be independent —
// experiment sweeps are: each point builds its own workload and machine —
// and results must be written to distinct, pre-allocated slots so the
// output order is deterministic regardless of scheduling.
//
// On failure the sweep stops promptly: no new index is dispatched once an
// error is recorded, and already-queued indices above the failing one are
// skipped. Indices below a recorded failure still run, so the returned
// error is always the one with the lowest failing index — deterministic,
// not dependent on completion order.
//
// Cancelling ctx also stops the sweep promptly: no new index is
// dispatched, in-flight points finish (a point's work is not
// interruptible), and ctx.Err() is returned unless an fn error was
// recorded first. fn errors take precedence so that a failure racing a
// Ctrl-C is still reported.
//
// A panic in fn is contained: it becomes that point's error (stack
// included) instead of unwinding a pool goroutine and killing the
// process. This is what lets a long-running caller — the serving
// daemon — survive a buggy experiment: panics on the job's own
// goroutine are recovered there, and panics on sweep workers are
// recovered here.
//
// Each in-flight point holds its own simulated machine and dataset, so
// peak memory scales with the worker count; sweeps at full PARMVR scale
// hold tens of megabytes per worker.
func parallelFor(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var completed atomic.Int64
	finish := func() {
		ReportPointProgress(ctx, int(completed.Add(1)), n)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runPoint(i, fn); err != nil {
				return err
			}
			finish()
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		mu       sync.Mutex
		firstIdx = n // sentinel: no error recorded yet
		firstErr error
	)
	record := func(i int, e error) {
		if e == nil {
			return
		}
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, e
		}
		mu.Unlock()
	}
	// skip reports whether index i is moot: an error at a lower index is
	// already recorded. Indices below the recorded failure still run (one
	// of them may fail too, and the lowest failing index must win).
	skip := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return i > firstIdx
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstIdx < n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if skip(i) {
					continue
				}
				record(i, runPoint(i, fn))
				finish()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		if failed() || ctx.Err() != nil {
			break // cancel: don't dispatch points that will be thrown away
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runPoint runs one sweep point, converting a panic into the point's
// error so it is reported through the normal first-failing-index path
// rather than crashing the process.
func runPoint(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep point %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
