package experiments

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(i) for every i in [0, n) across up to
// runtime.GOMAXPROCS(0) workers and returns the first error encountered
// (other work still drains). Every index's work must be independent —
// experiment sweeps are: each point builds its own workload and machine —
// and results must be written to distinct, pre-allocated slots so the
// output order is deterministic regardless of scheduling.
//
// Each in-flight point holds its own simulated machine and dataset, so
// peak memory scales with the worker count; sweeps at full PARMVR scale
// hold tens of megabytes per worker.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		mu   sync.Mutex
		err  error
	)
	record := func(e error) {
		if e == nil {
			return
		}
		mu.Lock()
		if err == nil {
			err = e
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				record(fn(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return err
}
