package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/wave5"
)

// WarmPoint is one point of a warm-started sweep: a strategy and (for the
// cascaded strategies) a chunk budget, measured from the sweep's shared
// warm prefix. Sequential points ignore ChunkBytes.
type WarmPoint struct {
	Strat      Strategy `json:"strategy"`
	ChunkBytes int      `json:"chunk_bytes,omitempty"`
}

// DefaultWarmupCalls is the number of sequential full-PARMVR warm-up
// calls the warm sweep's shared prefix runs: enough for the grid arrays
// to reach their steady L2 residency, cheap enough to amortize.
const DefaultWarmupCalls = 2

// DefaultWarmPoints returns the default warm-sweep point set: every
// strategy at the configured chunk budget, plus a quarter-budget variant
// of each cascaded strategy so the sweep exercises chunk-size divergence
// off one prefix.
func DefaultWarmPoints(chunkBytes int) []WarmPoint {
	small := chunkBytes / 4
	if small < 4096 {
		small = 4096
	}
	return []WarmPoint{
		{Strat: Sequential},
		{Strat: Prefetched, ChunkBytes: chunkBytes},
		{Strat: Prefetched, ChunkBytes: small},
		{Strat: Restructured, ChunkBytes: chunkBytes},
		{Strat: Restructured, ChunkBytes: small},
	}
}

// WarmRow is one measured point of a warm-started sweep.
type WarmRow struct {
	Point WarmPoint `json:"point"`
	// Cycles is the simulated cost of the measured steady-state call.
	Cycles int64 `json:"cycles"`
	// Speedup is relative to the sweep's Sequential point (0 when the
	// point set has none).
	Speedup float64 `json:"speedup,omitempty"`
	// Shared counts the machine components the fork still shared with the
	// snapshot after the measured call — state the warm start never had
	// to copy.
	Shared int `json:"shared_components"`
	// Metrics is the registry snapshot of the measured call (a tail
	// delta: statistics reset when the measured call starts).
	Metrics metrics.Snapshot `json:"metrics"`
}

// WarmSweepResult is a warm-started strategy/chunk sweep on one machine:
// every row was forked from the same copy-on-write snapshot taken after
// the shared sequential warm-up prefix, so the prefix simulated once no
// matter how many points the sweep has.
type WarmSweepResult struct {
	Machine     string    `json:"machine"`
	Procs       int       `json:"procs"`
	WarmupCalls int       `json:"warmup_calls"`
	PrefixKey   string    `json:"prefix_key"`
	Rows        []WarmRow `json:"rows"`
}

// prefixDesc is the resolved warm-prefix descriptor canon.PrefixKey
// hashes: the machine configuration's canonical bytes, the dataset
// parameters, the warm-up call count, and whether the prefix models the
// surrounding parallel phases' data distribution.
type prefixDesc struct {
	Config      string       `json:"config"`
	Params      wave5.Params `json:"params"`
	WarmupCalls int          `json:"warmup_calls"`
	Distribute  bool         `json:"distribute,omitempty"`
}

// prefixKeyOf content-addresses a resolved warm prefix under
// canon.PrefixSchema.
func prefixKeyOf(cfg machine.Config, p wave5.Params, warmupCalls int, distribute bool) (string, error) {
	cb, err := cfg.CanonicalBytes()
	if err != nil {
		return "", fmt.Errorf("prefix key: machine config: %w", err)
	}
	return canon.PrefixKey(prefixDesc{
		Config: string(cb), Params: p,
		WarmupCalls: warmupCalls, Distribute: distribute,
	})
}

// PrefixKey content-addresses a warm-sweep prefix: the machine
// configuration, the dataset parameters, and the warm-up call count
// (distribution included — WarmSweep always models the surrounding
// parallel phases). Two sweeps with equal prefix keys may share one
// snapshot — the prefix is strategy-independent (sequential calls), so
// every tail is reachable from it.
func PrefixKey(cfg machine.Config, p wave5.Params, warmupCalls int) (string, error) {
	return prefixKeyOf(cfg, p, warmupCalls, true)
}

// WarmSweep measures every point against one shared warm prefix. The
// prefix — data distribution plus warmupCalls sequential full-PARMVR
// calls — is simulated once; the machine is then snapshotted
// (copy-on-write) and every point runs on a fork with the address space
// rewound to the snapshot instant. Each point's measured call is a
// steady-state call (KeepState), exactly what a fresh machine running
// the same prefix under that point's knobs would have measured — the
// differential tests assert bit-identity.
//
// The prefix uses sequential calls deliberately: they touch the same
// arrays every strategy's call does, so one prefix serves strategy AND
// chunk-size divergence, which is what makes the fork amortization pay.
func WarmSweep(ctx context.Context, cfg machine.Config, p wave5.Params, warmupCalls int, points []WarmPoint) (*WarmSweepResult, error) {
	if warmupCalls < 0 {
		return nil, fmt.Errorf("warmsweep: warmupCalls = %d", warmupCalls)
	}
	w, err := wave5.Build(p)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	key, err := PrefixKey(cfg, p, warmupCalls)
	if err != nil {
		return nil, err
	}

	if err := runWarmPrefix(ctx, m, w, warmupCalls); err != nil {
		return nil, err
	}

	snap, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	spaceCk := w.Space.Checkpoint()

	res := &WarmSweepResult{
		Machine:     cfg.Name,
		Procs:       cfg.Procs,
		WarmupCalls: warmupCalls,
		PrefixKey:   key,
	}
	var base int64
	for _, pt := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fork, err := snap.Fork()
		if err != nil {
			return nil, err
		}
		w.Space.RestoreState(spaceCk)
		results, err := runWarmPoint(fork, w, pt)
		if err != nil {
			return nil, err
		}
		cycles := TotalCycles(results)
		if pt.Strat == Sequential && base == 0 {
			base = cycles
		}
		res.Rows = append(res.Rows, WarmRow{
			Point:   pt,
			Cycles:  cycles,
			Shared:  len(fork.SharedComponents()),
			Metrics: MergeMetrics(results),
		})
	}
	if base > 0 {
		for i := range res.Rows {
			res.Rows[i].Speedup = float64(base) / float64(res.Rows[i].Cycles)
		}
	}
	return res, nil
}

// warmsweepPoints decomposes the warm sweep: per machine, every default
// warm point in row order. The spec carries the exact chunk budget in
// bytes (warm budgets are not KB-quantized) and the prefix's warm-up
// call count.
func warmsweepPoints(rc RunConfig) []PointSpec {
	var specs []PointSpec
	for _, cfg := range Machines() {
		for _, pt := range DefaultWarmPoints(rc.ChunkBytes) {
			specs = append(specs, PointSpec{
				Experiment: "warmsweep", Index: len(specs),
				Machine: cfg.Name, Procs: cfg.Procs,
				Strategy: pt.Strat.Token(), ChunkBytes: pt.ChunkBytes,
				Scale: rc.Scale, Warmup: DefaultWarmupCalls,
			})
		}
	}
	return specs
}

// warmsweepPrefix declares a warm point's shared prefix: dataset build,
// machine construction, data distribution, and the warm-up calls — the
// most prefix-heavy decomposition in the registry, which is exactly why
// worker-side snapshot reuse pays here.
func warmsweepPrefix(ps PointSpec) (PrefixSpec, bool) {
	return PrefixSpec{
		Machine: ps.Machine, Procs: ps.Procs, Scale: ps.Scale,
		WarmupCalls: ps.Warmup, Distribute: true,
	}, true
}

// warmsweepRunWarm measures one warm point off a built prefix, exactly
// as WarmSweep's loop body does: fork, rewind the space, run the
// steady-state call, count the still-shared components.
func warmsweepRunWarm(st *PrefixState, ps PointSpec) (PointResult, error) {
	strat, err := ParseStrategy(ps.Strategy)
	if err != nil {
		return PointResult{}, err
	}
	m, err := st.fork()
	if err != nil {
		return PointResult{}, err
	}
	results, err := runWarmPoint(m, st.w, WarmPoint{Strat: strat, ChunkBytes: ps.ChunkBytes})
	if err != nil {
		return PointResult{}, err
	}
	return PointResult{
		Index: ps.Index, Cycles: TotalCycles(results),
		Metrics: MergeMetrics(results), Shared: len(m.SharedComponents()),
	}, nil
}

// warmsweepMerge rebuilds the Group of per-machine WarmSweepResults with
// WarmSweep's exact arithmetic: rows in point order, Speedup from the
// first sequential row's cycles.
func warmsweepMerge(rc RunConfig, results []PointResult) (Renderable, error) {
	machines := Machines()
	points := DefaultWarmPoints(rc.ChunkBytes)
	if len(results) != len(machines)*len(points) {
		return nil, fmt.Errorf("warmsweep merge: %d results, want %d", len(results), len(machines)*len(points))
	}
	var g Group
	k := 0
	for _, cfg := range machines {
		key, err := PrefixKey(cfg, rc.Params(), DefaultWarmupCalls)
		if err != nil {
			return nil, err
		}
		res := &WarmSweepResult{
			Machine: cfg.Name, Procs: cfg.Procs,
			WarmupCalls: DefaultWarmupCalls, PrefixKey: key,
		}
		var base int64
		for _, pt := range points {
			r := results[k]
			k++
			if pt.Strat == Sequential && base == 0 {
				base = r.Cycles
			}
			res.Rows = append(res.Rows, WarmRow{
				Point: pt, Cycles: r.Cycles, Shared: r.Shared, Metrics: r.Metrics,
			})
		}
		if base > 0 {
			for i := range res.Rows {
				res.Rows[i].Speedup = float64(base) / float64(res.Rows[i].Cycles)
			}
		}
		g = append(g, res)
	}
	return g, nil
}

func init() {
	RegisterDecomposition("warmsweep", Decomposition{
		Points: warmsweepPoints,
		// The cold path IS the warm path off a private, freshly built
		// prefix — warm/cold byte-identity by construction; what the
		// snapshot cache changes is only how often the prefix is built.
		Run: func(ctx context.Context, ps PointSpec) (PointResult, error) {
			spec, _ := warmsweepPrefix(ps)
			st, err := BuildPrefix(ctx, spec)
			if err != nil {
				return PointResult{}, err
			}
			return warmsweepRunWarm(st, ps)
		},
		Merge:  warmsweepMerge,
		Prefix: warmsweepPrefix,
		RunWarm: func(ctx context.Context, st *PrefixState, ps PointSpec) (PointResult, error) {
			return warmsweepRunWarm(st, ps)
		},
	})
}

// runWarmPrefix simulates a sweep's shared prefix on m: the parallel
// phases around the calls distribute the data dirty across caches, then
// the warm-up calls run sequentially.
func runWarmPrefix(ctx context.Context, m *machine.Machine, w *wave5.PARMVR, warmupCalls int) error {
	var ranges []machine.AddrRange
	for _, l := range w.Loops {
		for _, ar := range l.AddrRanges() {
			ranges = append(ranges, machine.AddrRange{Base: ar.Base, Bytes: ar.Bytes})
		}
	}
	m.DistributeLines(ranges)
	for c := 0; c < warmupCalls; c++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, l := range w.Loops {
			cascade.RunSequentialWarm(m, l)
		}
	}
	return nil
}

// runWarmPoint runs one steady-state full-PARMVR call on a warm fork.
func runWarmPoint(m *machine.Machine, w *wave5.PARMVR, pt WarmPoint) ([]cascade.Result, error) {
	results := make([]cascade.Result, 0, len(w.Loops))
	for _, l := range w.Loops {
		if pt.Strat == Sequential {
			results = append(results, cascade.RunSequentialWarm(m, l))
			continue
		}
		opts, err := cascade.NewOptions(
			cascade.WithHelper(pt.Strat.helper()),
			cascade.WithSpace(w.Space),
			cascade.WithChunkBytes(pt.ChunkBytes),
			cascade.WithKeepState(true), // the warm prefix is the state
		)
		if err != nil {
			return nil, err
		}
		r, err := cascade.Run(m, l, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Render writes the sweep as an aligned table.
func (r *WarmSweepResult) Render(w io.Writer) {
	t := report.NewTable(
		fmt.Sprintf("Warm-start sweep — %s, %d procs. %d sequential warm-up calls simulated once, every point forked (prefix %s...)",
			r.Machine, r.Procs, r.WarmupCalls, r.PrefixKey[:12]),
		"Strategy", "Chunk", "Cycles", "Speedup", "Shared comps")
	for _, row := range r.Rows {
		chunk := "-"
		if row.Point.ChunkBytes > 0 {
			chunk = report.KB(row.Point.ChunkBytes)
		}
		t.Addf(row.Point.Strat.String(), chunk, report.Int(row.Cycles), row.Speedup, row.Shared)
	}
	t.Render(w)
}
