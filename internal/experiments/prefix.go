package experiments

import (
	"context"
	"sync"

	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/wave5"
)

// Worker-side prefix-snapshot reuse. Sweep points overwhelmingly share a
// strategy-independent prefix — the same dataset build, the same machine
// construction, the same warm-up calls — and differ only in the tail
// (strategy, chunk size, processor count). A decomposition that declares
// its points' prefixes lets a worker simulate each distinct prefix once,
// park the sealed machine.Snapshot in a bounded LRU, and Fork per point:
// O(points x full-run) becomes O(prefixes x prefix + points x tail).
//
// The contract that keeps the fabric's byte-identity guarantee intact:
// RunWarm(BuildPrefix(Prefix(ps)), ps) must produce exactly the bytes
// Run(ps) produces, for every point that declares a prefix. The
// decompositions here satisfy it by construction — the cold Run path is
// literally BuildPrefix followed by RunWarm on a private state — and the
// equivalence tests in prefix_test.go pin it.

// PrefixSpec is the serializable resolved description of a shared sweep
// prefix. Everything that determines the post-prefix machine state is a
// field; the canonical content address over the resolved form (machine
// config bytes, dataset params) is PrefixState.Key.
type PrefixSpec struct {
	// Machine is the machine preset name; Procs overrides its count.
	Machine string `json:"machine"`
	Procs   int    `json:"procs"`
	// Scale is the PARMVR dataset scale factor.
	Scale float64 `json:"scale"`
	// WarmupCalls sequential full-PARMVR calls run before the snapshot.
	WarmupCalls int `json:"warmup_calls"`
	// Distribute models the surrounding parallel phases by distributing
	// the dataset's lines dirty across caches before the warm-up calls.
	Distribute bool `json:"distribute,omitempty"`
}

// PrefixState is a built prefix: the workload, the sealed machine
// snapshot, and the space checkpoint every point forks from. Points
// sharing one state must serialize (they restore and mutate the shared
// Space); callers hold mu across RunWarm.
type PrefixState struct {
	Spec PrefixSpec
	Key  string

	mu   sync.Mutex
	cfg  machine.Config
	w    *wave5.PARMVR
	snap *machine.Snapshot
	ck   *memsim.SpaceState
	mem  int64
}

// MemBytes estimates the host memory the state retains: the snapshot's
// sealed component arrays plus the checkpointed address space.
func (st *PrefixState) MemBytes() int64 { return st.mem }

// BuildPrefix simulates a prefix from scratch: dataset build, machine
// construction, and — when the spec asks — data distribution plus the
// warm-up calls, sealed with a snapshot and a space checkpoint.
func BuildPrefix(ctx context.Context, spec PrefixSpec) (*PrefixState, error) {
	cfg, err := machineByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	cfg = cfg.WithProcs(spec.Procs)
	p := wave5.DefaultParams().Scaled(spec.Scale)
	key, err := prefixKeyOf(cfg, p, spec.WarmupCalls, spec.Distribute)
	if err != nil {
		return nil, err
	}
	w, err := wave5.Build(p)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if spec.Distribute {
		if err := runWarmPrefix(ctx, m, w, spec.WarmupCalls); err != nil {
			return nil, err
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	mem := snap.MemBytes()
	for _, a := range w.Space.Arrays() {
		mem += int64(a.SizeBytes())
	}
	return &PrefixState{
		Spec: spec, Key: key, cfg: cfg, w: w,
		snap: snap, ck: w.Space.Checkpoint(), mem: mem,
	}, nil
}

// fork rewinds the shared space to the checkpoint and builds a fresh
// machine off the snapshot. Callers hold st.mu.
func (st *PrefixState) fork() (*machine.Machine, error) {
	m, err := st.snap.Fork()
	if err != nil {
		return nil, err
	}
	st.w.Space.RestoreState(st.ck)
	return m, nil
}

// PrefixCacheStats is a point-in-time summary of a PrefixCache.
type PrefixCacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes, MaxBytes         int64
}

// PrefixCache is the worker's bounded snapshot LRU: prefix key -> built
// PrefixState, capped by estimated bytes. Concurrent requests for the
// same key single-flight the build; an evicted state stays usable by
// points already holding it (sealed snapshot arrays are immutable), the
// cache merely drops its reference.
type PrefixCache struct {
	mu      sync.Mutex
	max     int64
	used    int64
	entries map[string]*prefixEntry
	order   []string // LRU order, least recent first
	stats   PrefixCacheStats
}

type prefixEntry struct {
	once sync.Once
	st   *PrefixState
	err  error
}

// DefaultPrefixCacheBytes is the default snapshot-LRU ceiling: a few
// paper-scale prefixes (a PARMVR space is ~25 MB at scale 1.0, an 8-proc
// R10000 snapshot ~33 MB).
const DefaultPrefixCacheBytes = 256 << 20

// NewPrefixCache returns a cache bounded by maxBytes of estimated state
// (MemBytes); maxBytes <= 0 uses DefaultPrefixCacheBytes.
func NewPrefixCache(maxBytes int64) *PrefixCache {
	if maxBytes <= 0 {
		maxBytes = DefaultPrefixCacheBytes
	}
	return &PrefixCache{max: maxBytes, entries: map[string]*prefixEntry{}}
}

// Stats returns a snapshot of the cache's counters.
func (c *PrefixCache) Stats() PrefixCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes, s.MaxBytes = c.used, c.max
	return s
}

// state returns the built PrefixState for spec, building it on first use
// (single-flight per key) and recording the LRU touch.
func (c *PrefixCache) state(ctx context.Context, spec PrefixSpec) (*PrefixState, error) {
	cfg, err := machineByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	key, err := prefixKeyOf(cfg.WithProcs(spec.Procs), wave5.DefaultParams().Scaled(spec.Scale),
		spec.WarmupCalls, spec.Distribute)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &prefixEntry{}
		c.entries[key] = e
		c.stats.Misses++
	} else {
		c.stats.Hits++
	}
	c.touch(key)
	c.mu.Unlock()

	e.once.Do(func() {
		e.st, e.err = BuildPrefix(ctx, spec)
		if e.err != nil {
			c.mu.Lock()
			c.drop(key)
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		c.used += e.st.MemBytes()
		c.evictLocked(key)
		c.mu.Unlock()
	})
	return e.st, e.err
}

// touch moves key to the most-recent end of the LRU order (appending it
// when new). Callers hold c.mu.
func (c *PrefixCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
	c.order = append(c.order, key)
}

// drop removes key from the map and order without byte accounting (used
// for failed builds, which never charged bytes). Callers hold c.mu.
func (c *PrefixCache) drop(key string) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used entries until the byte ceiling
// holds, never evicting keep (the entry just built). Callers hold c.mu.
func (c *PrefixCache) evictLocked(keep string) {
	for c.used > c.max && len(c.order) > 1 {
		victim := c.order[0]
		if victim == keep {
			if len(c.order) < 2 {
				return
			}
			victim = c.order[1]
		}
		if e := c.entries[victim]; e != nil && e.st != nil {
			c.used -= e.st.MemBytes()
		}
		c.drop(victim)
		c.stats.Evictions++
	}
}

// RunPoint executes one spec through the warm path when its
// decomposition declares a prefix for it: the prefix state is fetched
// from (or built into) the cache and the point forks off it. ok is false
// when the point has no warm path — the caller falls back to the cold
// RunPoint. The per-state lock serializes points sharing one prefix;
// distinct prefixes run concurrently.
func (c *PrefixCache) RunPoint(ctx context.Context, ps PointSpec) (PointResult, bool, error) {
	d, reg := decompositions[ps.Experiment]
	if !reg || d.Prefix == nil || d.RunWarm == nil {
		return PointResult{}, false, nil
	}
	spec, ok := d.Prefix(ps)
	if !ok {
		return PointResult{}, false, nil
	}
	st, err := c.state(ctx, spec)
	if err != nil {
		return PointResult{}, true, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	res, err := d.RunWarm(ctx, st, ps)
	return res, true, err
}

// WarmRunnable reports whether an experiment's decomposition declares a
// warm path at all.
func WarmRunnable(experiment string) bool {
	d, ok := decompositions[experiment]
	return ok && d.Prefix != nil && d.RunWarm != nil
}
