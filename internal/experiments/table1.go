package experiments

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// Table1 reproduces Table 1 of the paper: the memory-hierarchy parameters
// of the two machines, as configured in the simulator.
func Table1() *report.Table {
	t := report.NewTable(
		"Table 1. Pentium Pro and R10000 memory characteristics (simulated)",
		"Processor", "Memory Level", "Access Time (Cycles)", "Size", "Assoc", "Line Size")
	for _, cfg := range Machines() {
		t.Add(cfg.Name, "L1", fmt.Sprintf("%d", cfg.L1.HitLatency),
			sizeStr(cfg.L1.Size), fmt.Sprintf("%d", cfg.L1.Assoc),
			fmt.Sprintf("%d bytes", cfg.L1.LineSize))
		t.Add("", "L2", fmt.Sprintf("%d", cfg.L2.HitLatency),
			sizeStr(cfg.L2.Size), fmt.Sprintf("%d", cfg.L2.Assoc),
			fmt.Sprintf("%d bytes", cfg.L2.LineSize))
		t.Add("", "Memory", cfg.MemDesc, "-", "-", "-")
	}
	return t
}

// sizeStr renders a capacity the way Table 1 does (KB or MB/GB).
func sizeStr(bytes int) string {
	switch {
	case bytes >= 1<<30:
		return fmt.Sprintf("%gGB", float64(bytes)/(1<<30))
	case bytes >= 1<<20:
		return fmt.Sprintf("%gMB", float64(bytes)/(1<<20))
	default:
		return fmt.Sprintf("%dKB", bytes/1024)
	}
}

// RenderTable1 writes Table 1 to w.
func RenderTable1(w io.Writer) {
	Table1().Render(w)
}
