package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestQuickstartRowsAndMetrics(t *testing.T) {
	const n = 1 << 14
	r, err := Quickstart(context.Background(), n, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Strategies) {
		t.Fatalf("got %d rows, want %d", len(r.Rows), len(Strategies))
	}
	if r.Procs != 4 {
		t.Fatalf("Procs = %d, want 4", r.Procs)
	}
	seq := r.Rows[0]
	if seq.Strategy != Sequential || seq.Speedup != 1.0 {
		t.Errorf("first row = %v speedup %v, want Sequential at 1.0", seq.Strategy, seq.Speedup)
	}
	if got := seq.Metrics.Get("cascade.p0.exec"); got != seq.Cycles {
		t.Errorf("sequential p0 exec = %d, want %d", got, seq.Cycles)
	}
	for _, row := range r.Rows[1:] {
		if row.Cycles <= 0 {
			t.Errorf("%v: cycles = %d", row.Strategy, row.Cycles)
		}
		if row.Metrics.Get("cascade.total.exec") == 0 {
			t.Errorf("%v: snapshot has no exec cycles", row.Strategy)
		}
		if row.Metrics.Get("cascade.total.helper") == 0 {
			t.Errorf("%v: snapshot has no helper cycles", row.Strategy)
		}
		// With more chunks than processors every processor executes.
		if row.Chunks >= r.Procs {
			for p := 0; p < r.Procs; p++ {
				if row.Metrics.Get("cascade.p"+itoa(p)+".exec") == 0 {
					t.Errorf("%v: processor %d never charged exec", row.Strategy, p)
				}
			}
		}
	}
}

func TestQuickstartRender(t *testing.T) {
	r, err := Quickstart(context.Background(), 1<<13, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Quickstart", "Original Sequential", "Prefetched", "Restructured",
		"per-processor cycles and misses", "helper", "exec", "transfer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
