package experiments

import (
	"context"
	"io"

	"repro/internal/cache"
	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/wave5"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Config  string
	Machine string
	Cycles  int64
	Speedup float64 // vs that machine's sequential baseline
}

// AblationResult is a generic ablation outcome.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Render writes the ablation as a table.
func (a *AblationResult) Render(w io.Writer) {
	t := report.NewTable("Ablation: "+a.Name, "Machine", "Configuration", "Cycles", "Speedup")
	for _, r := range a.Rows {
		t.Add(r.Machine, r.Config, report.Int(r.Cycles), report.Float(r.Speedup))
	}
	t.Render(w)
	io.WriteString(w, "\n")
}

// Find returns the row with the given machine and config label.
func (a *AblationResult) Find(machineName, config string) (AblationRow, bool) {
	for _, r := range a.Rows {
		if r.Machine == machineName && r.Config == config {
			return r, true
		}
	}
	return AblationRow{}, false
}

// runPARMVRWith runs the full PARMVR under restructured cascading with a
// caller-tweaked option set and returns total cycles.
func runPARMVRWith(cfg machine.Config, p wave5.Params, mutate func(*cascade.Options)) (int64, error) {
	w, err := wave5.Build(p)
	if err != nil {
		return 0, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, l := range w.Loops {
		opts := cascade.DefaultOptions(cascade.HelperRestructure, w.Space)
		mutate(&opts)
		if err := opts.Validate(); err != nil {
			return 0, err
		}
		r, err := cascade.Run(m, l, opts)
		if err != nil {
			return 0, err
		}
		total += r.Cycles
	}
	return total, nil
}

// AblationJumpOut quantifies §3.3's refinement: jumping out of the helper
// phase on signal versus waiting for helper completion.
func AblationJumpOut(ctx context.Context, p wave5.Params) (*AblationResult, error) {
	out := &AblationResult{Name: "jump-out-of-helper on signal (restructured, 64KB chunks)"}
	for _, cfg := range Machines() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seq, err := RunPARMVR(cfg, p, Sequential, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		base := TotalCycles(seq)
		for _, jump := range []bool{true, false} {
			label := "jump out on signal"
			if !jump {
				label = "wait for helper completion"
			}
			cycles, err := runPARMVRWith(cfg, p, func(o *cascade.Options) { o.JumpOut = jump })
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, AblationRow{
				Config: label, Machine: cfg.Name,
				Cycles: cycles, Speedup: float64(base) / float64(cycles),
			})
		}
	}
	return out, nil
}

// AblationPrecompute quantifies §2.1's optional read-only precomputation
// during the restructuring helper phase.
func AblationPrecompute(ctx context.Context, p wave5.Params) (*AblationResult, error) {
	out := &AblationResult{Name: "read-only precomputation in helper (restructured, 64KB chunks)"}
	for _, cfg := range Machines() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seq, err := RunPARMVR(cfg, p, Sequential, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		base := TotalCycles(seq)
		for _, pre := range []bool{false, true} {
			label := "store raw operands"
			if pre {
				label = "precompute in helper"
			}
			cycles, err := runPARMVRWith(cfg, p, func(o *cascade.Options) { o.Precompute = pre })
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, AblationRow{
				Config: label, Machine: cfg.Name,
				Cycles: cycles, Speedup: float64(base) / float64(cycles),
			})
		}
	}
	return out, nil
}

// AblationChunking compares the paper's byte-budget chunk sizing (§2.2)
// against naive block partitioning (one chunk per processor, the obvious
// alternative a scheduler might pick).
func AblationChunking(ctx context.Context, p wave5.Params) (*AblationResult, error) {
	out := &AblationResult{Name: "chunk sizing: 64KB byte budget vs one block per processor (restructured)"}
	for _, cfg := range Machines() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seq, err := RunPARMVR(cfg, p, Sequential, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		base := TotalCycles(seq)

		budget, err := runPARMVRWith(cfg, p, func(o *cascade.Options) {})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{
			Config: "64KB byte budget", Machine: cfg.Name,
			Cycles: budget, Speedup: float64(base) / float64(budget),
		})

		// Block partitioning: each loop split into exactly Procs chunks.
		w, err := wave5.Build(p)
		if err != nil {
			return nil, err
		}
		m, err := machine.New(cfg)
		if err != nil {
			return nil, err
		}
		var block int64
		for _, l := range w.Loops {
			opts, err := cascade.NewOptions(
				cascade.WithHelper(cascade.HelperRestructure),
				cascade.WithSpace(w.Space),
				cascade.WithChunkBytes((l.Iters*l.BytesPerIter()+cfg.Procs-1)/cfg.Procs),
			)
			if err != nil {
				return nil, err
			}
			r, err := cascade.Run(m, l, opts)
			if err != nil {
				return nil, err
			}
			block += r.Cycles
		}
		out.Rows = append(out.Rows, AblationRow{
			Config: "one block per processor", Machine: cfg.Name,
			Cycles: block, Speedup: float64(base) / float64(block),
		})
	}
	return out, nil
}

// AblationPriorParallel removes the simulated prior parallel section —
// the paper's premise that an unparallelized loop starts with its data
// "distributed among the other processors during a previous parallel
// section" — to quantify how much that start state costs the sequential
// baseline.
func AblationPriorParallel(ctx context.Context, p wave5.Params) (*AblationResult, error) {
	out := &AblationResult{Name: "prior-parallel-section start state (sequential baseline)"}
	for _, cfg := range Machines() {
		for _, prior := range []bool{true, false} {
			label := "data distributed by parallel section"
			if !prior {
				label = "cold caches"
			}
			w, err := wave5.Build(p)
			if err != nil {
				return nil, err
			}
			m, err := machine.New(cfg)
			if err != nil {
				return nil, err
			}
			var cycles int64
			for _, l := range w.Loops {
				cycles += cascade.RunSequential(m, l, prior).Cycles
			}
			out.Rows = append(out.Rows, AblationRow{
				Config: label, Machine: cfg.Name,
				Cycles: cycles, Speedup: 1,
			})
		}
	}
	return out, nil
}

// AblationTLB removes the TLB model to quantify how much of the
// sequential baseline's cost is address translation (the model's answer:
// little for these loops — their page-level locality is good even when
// their line-level locality is terrible).
func AblationTLB(ctx context.Context, p wave5.Params) (*AblationResult, error) {
	out := &AblationResult{Name: "data-TLB modelling (sequential baseline)"}
	for _, base := range Machines() {
		for _, tlbOn := range []bool{true, false} {
			cfg := base
			if !tlbOn {
				cfg.TLB = cache.TLBConfig{}
			}
			label := "TLB modelled"
			if !tlbOn {
				label = "TLB disabled"
			}
			seq, err := RunPARMVR(cfg, p, Sequential, cascade.DefaultChunkBytes)
			if err != nil {
				return nil, err
			}
			cycles := TotalCycles(seq)
			out.Rows = append(out.Rows, AblationRow{
				Config: label, Machine: cfg.Name,
				Cycles: cycles, Speedup: 1,
			})
		}
	}
	return out, nil
}

// AblationCompilerPrefetch removes the R10000's compiler-prefetch model
// to test the paper's hypothesis that MIPSpro's inserted prefetches are
// why helper prefetching gains nothing on that machine (§3.3).
func AblationCompilerPrefetch(ctx context.Context, p wave5.Params) (*AblationResult, error) {
	out := &AblationResult{Name: "R10000 compiler prefetching vs cascaded prefetch helper (64KB chunks)"}
	for _, pfEnabled := range []bool{true, false} {
		cfg := machine.R10000(8)
		cfg.CompilerPrefetch.Enabled = pfEnabled
		label := "MIPSpro prefetch on"
		if !pfEnabled {
			label = "MIPSpro prefetch off"
		}
		seq, err := RunPARMVR(cfg, p, Sequential, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		base := TotalCycles(seq)
		pre, err := RunPARMVR(cfg, p, Prefetched, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		cycles := TotalCycles(pre)
		out.Rows = append(out.Rows, AblationRow{
			Config: label + " (prefetched helper)", Machine: cfg.Name,
			Cycles: cycles, Speedup: float64(base) / float64(cycles),
		})
	}
	return out, nil
}

// AblationVictimCache asks whether a small hardware victim cache (an
// extension; neither 1997 machine had one) could substitute for
// restructuring: it compares the sequential baseline, the baseline with a
// 16-entry victim buffer beside each L1, and restructured cascading.
// The buffer absorbs L1 conflict thrashing but cannot touch L2 conflicts,
// capacity misses, or gather locality — restructuring still wins.
func AblationVictimCache(ctx context.Context, p wave5.Params) (*AblationResult, error) {
	out := &AblationResult{Name: "16-entry L1 victim cache vs restructuring"}
	for _, cfg := range Machines() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seq, err := RunPARMVR(cfg, p, Sequential, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		base := TotalCycles(seq)
		out.Rows = append(out.Rows, AblationRow{
			Config: "sequential, no victim buffer", Machine: cfg.Name,
			Cycles: base, Speedup: 1,
		})

		vcfg := cfg.WithVictim(16, 2)
		vseq, err := RunPARMVR(vcfg, p, Sequential, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		vc := TotalCycles(vseq)
		out.Rows = append(out.Rows, AblationRow{
			Config: "sequential + victim buffer", Machine: cfg.Name,
			Cycles: vc, Speedup: float64(base) / float64(vc),
		})

		restr, err := RunPARMVR(cfg, p, Restructured, cascade.DefaultChunkBytes)
		if err != nil {
			return nil, err
		}
		rc := TotalCycles(restr)
		out.Rows = append(out.Rows, AblationRow{
			Config: "restructured cascade", Machine: cfg.Name,
			Cycles: rc, Speedup: float64(base) / float64(rc),
		})
	}
	return out, nil
}
