package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// renderIndented marshals exactly as the serving layer renders results
// (indented, trailing newline), so byte comparisons here prove the same
// identity the fabric's merged responses rely on.
func renderIndented(t *testing.T, v interface{}) []byte {
	t.Helper()
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// runDecomposedOverWire runs every point of a decomposed experiment with
// a JSON round-trip on both the spec and the result — the exact
// transformation the fabric's HTTP transport applies — then merges.
func runDecomposedOverWire(t *testing.T, ctx context.Context, name string, rc RunConfig) Renderable {
	t.Helper()
	specs, ok := Decompose(name, rc)
	if !ok {
		t.Fatalf("experiment %q not decomposable", name)
	}
	results := make([]PointResult, len(specs))
	if err := parallelFor(ctx, len(specs), func(i int) error {
		sb, err := json.Marshal(specs[i])
		if err != nil {
			return err
		}
		var spec PointSpec
		if err := json.Unmarshal(sb, &spec); err != nil {
			return err
		}
		r, err := RunPoint(ctx, spec)
		if err != nil {
			return err
		}
		rb, err := json.Marshal(r)
		if err != nil {
			return err
		}
		var wire PointResult
		if err := json.Unmarshal(rb, &wire); err != nil {
			return err
		}
		results[i] = wire
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Merge in shuffled order to prove MergePoints' index sort.
	for i, j := 0, len(results)-1; i < j; i, j = i+1, j-1 {
		results[i], results[j] = results[j], results[i]
	}
	merged, err := MergePoints(name, rc, results)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestDecomposedFig6MatchesDriver pins the fabric's core identity: the
// chunk-size sweep decomposed into wire-serialized points and merged
// back is byte-identical to the monolithic Fig6 driver.
func TestDecomposedFig6MatchesDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	ctx := context.Background()
	rc := DefaultRunConfig()
	rc.Scale = 0.02

	driver, err := Fig6(ctx, rc.Params())
	if err != nil {
		t.Fatal(err)
	}
	merged := runDecomposedOverWire(t, ctx, "fig6", rc)
	if got, want := renderIndented(t, merged), renderIndented(t, driver); !bytes.Equal(got, want) {
		t.Errorf("decomposed fig6 differs from driver:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestDecomposedFig2MatchesDriver is the fig2 twin, and additionally
// checks RunDecomposed (the single-node driver the fabric's golden
// comparisons use) and the point-progress reporting contract.
func TestDecomposedFig2MatchesDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	rc := DefaultRunConfig()
	rc.Scale = 0.02

	var mu sync.Mutex
	var lastDone, lastTotal int
	ctx := WithPointProgress(context.Background(), func(done, total int) {
		mu.Lock()
		lastDone, lastTotal = done, total
		mu.Unlock()
	})

	driver, err := Fig2(ctx, rc.Params(), rc.ChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	want := renderIndented(t, driver)

	merged := runDecomposedOverWire(t, ctx, "fig2", rc)
	if got := renderIndented(t, merged); !bytes.Equal(got, want) {
		t.Errorf("decomposed fig2 differs from driver:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	local, ok, err := RunDecomposed(ctx, "fig2", rc)
	if !ok || err != nil {
		t.Fatalf("RunDecomposed = ok=%v err=%v", ok, err)
	}
	if got := renderIndented(t, local); !bytes.Equal(got, want) {
		t.Error("RunDecomposed fig2 differs from driver")
	}

	mu.Lock()
	defer mu.Unlock()
	if lastTotal == 0 || lastDone != lastTotal {
		t.Errorf("point progress never completed a phase: done=%d total=%d", lastDone, lastTotal)
	}
}

// TestDecomposeDeterministic pins that point plans are stable: two calls
// produce identical specs, and every spec round-trips through JSON
// unchanged — a prerequisite for content-addressing points by their
// canonical spec hash on different nodes.
func TestDecomposeDeterministic(t *testing.T) {
	rc := DefaultRunConfig()
	for _, name := range DecomposableExperiments() {
		a, _ := Decompose(name, rc)
		b, _ := Decompose(name, rc)
		if len(a) == 0 {
			t.Errorf("%s: empty point plan", name)
			continue
		}
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s: point plan not deterministic", name)
		}
		for i, spec := range a {
			if spec.Index != i {
				t.Errorf("%s: spec %d has index %d", name, i, spec.Index)
			}
			if spec.Experiment != name {
				t.Errorf("%s: spec %d names experiment %q", name, i, spec.Experiment)
			}
		}
	}
	if len(DecomposableExperiments()) < 2 {
		t.Errorf("DecomposableExperiments = %v, want at least fig2 and fig6", DecomposableExperiments())
	}
}

// TestStrategyTokens pins the spec tokens (they feed point keys — a
// change would silently invalidate every cached point) and their parse
// inverse.
func TestStrategyTokens(t *testing.T) {
	want := map[Strategy]string{Sequential: "sequential", Prefetched: "prefetched", Restructured: "restructured"}
	for s, tok := range want {
		if got := s.Token(); got != tok {
			t.Errorf("%v.Token() = %q, want %q", s, got, tok)
		}
		parsed, err := ParseStrategy(tok)
		if err != nil || parsed != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", tok, parsed, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted a bogus token")
	}
}
