package experiments

import (
	"context"
	"io"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/wave5"
)

// Fig6ChunkSizesKB are the chunk sizes of Figure 6's x-axis.
var Fig6ChunkSizesKB = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// Fig6Point is one point of Figure 6: overall PARMVR speedup at one chunk
// size on four processors.
type Fig6Point struct {
	Machine    string
	Strategy   Strategy
	ChunkBytes int
	Speedup    float64
	// Metrics is the registry snapshot for this point, summed over the
	// fifteen PARMVR loops.
	Metrics metrics.Snapshot `json:",omitempty"`
}

// Fig6Result holds the chunk-size sweep.
type Fig6Result struct {
	Params wave5.Params
	Procs  int
	Points []Fig6Point
}

// Fig6 reproduces Figure 6: the effect of chunk size (4KB-2048KB) on
// overall PARMVR speedup with four processors, for both helpers and both
// machines. The sweep's independent simulations run in parallel across
// the host's cores.
func Fig6(ctx context.Context, p wave5.Params) (*Fig6Result, error) {
	const procs = 4
	res := &Fig6Result{Params: p, Procs: procs}

	machines := Machines()
	bases := make([]int64, len(machines))
	if err := parallelFor(ctx, len(machines), func(i int) error {
		seq, err := RunPARMVR(machines[i].WithProcs(procs), p, Sequential, 64*1024)
		if err != nil {
			return err
		}
		bases[i] = TotalCycles(seq)
		return nil
	}); err != nil {
		return nil, err
	}

	type spec struct {
		cfg   machine.Config
		base  int64
		strat Strategy
		kb    int
	}
	var specs []spec
	for i, cfg := range machines {
		for _, kb := range Fig6ChunkSizesKB {
			for _, strat := range []Strategy{Prefetched, Restructured} {
				specs = append(specs, spec{cfg.WithProcs(procs), bases[i], strat, kb})
			}
		}
	}
	points := make([]Fig6Point, len(specs))
	if err := parallelFor(ctx, len(specs), func(k int) error {
		s := specs[k]
		rr, err := RunPARMVR(s.cfg, p, s.strat, s.kb*1024)
		if err != nil {
			return err
		}
		points[k] = Fig6Point{
			Machine:    s.cfg.Name,
			Strategy:   s.strat,
			ChunkBytes: s.kb * 1024,
			Speedup:    float64(s.base) / float64(TotalCycles(rr)),
			Metrics:    MergeMetrics(rr),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// Speedup returns the sweep value for a configuration (0 if absent).
func (r *Fig6Result) Speedup(machineName string, strat Strategy, chunkBytes int) float64 {
	for _, pt := range r.Points {
		if pt.Machine == machineName && pt.Strategy == strat && pt.ChunkBytes == chunkBytes {
			return pt.Speedup
		}
	}
	return 0
}

// Best returns the chunk size with the highest speedup for a machine and
// strategy.
func (r *Fig6Result) Best(machineName string, strat Strategy) (chunkBytes int, speedup float64) {
	for _, pt := range r.Points {
		if pt.Machine != machineName || pt.Strategy != strat {
			continue
		}
		if pt.Speedup > speedup {
			speedup = pt.Speedup
			chunkBytes = pt.ChunkBytes
		}
	}
	return chunkBytes, speedup
}

// Render writes one table per machine: chunk size vs speedup per helper.
func (r *Fig6Result) Render(w io.Writer) {
	for _, cfg := range Machines() {
		t := report.NewTable(
			"Figure 6. Effect of chunk size ("+itoa(r.Procs)+" processors) — "+cfg.Name,
			"KBytes/chunk", "Prefetched", "Restructured")
		for _, kb := range Fig6ChunkSizesKB {
			t.Addf(itoa(kb),
				r.Speedup(cfg.Name, Prefetched, kb*1024),
				r.Speedup(cfg.Name, Restructured, kb*1024))
		}
		t.Render(w)
		io.WriteString(w, "\n")
	}
}
