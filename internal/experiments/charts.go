package experiments

import (
	"io"

	"repro/internal/report"
	"repro/internal/synthetic"
)

// RenderChart draws Figure 2 as line plots (speedup vs processors), one
// per machine — the visual form of the paper's figure.
func (r *Fig2Result) RenderChart(w io.Writer) {
	for _, cfg := range Machines() {
		var ticks []string
		pre := report.Series{Name: Prefetched.String()}
		res := report.Series{Name: Restructured.String()}
		for _, procs := range procSweep(cfg) {
			ticks = append(ticks, itoa(procs))
			pre.Y = append(pre.Y, r.find(cfg.Name, Prefetched, procs).Speedup)
			res.Y = append(res.Y, r.find(cfg.Name, Restructured, procs).Speedup)
		}
		p := &report.Plot{
			Title:  "Figure 2. Overall speedup for PARMVR — " + cfg.Name,
			XLabel: "processors",
			XTicks: ticks,
			Series: []report.Series{res, pre},
			Height: 12,
			YZero:  true,
		}
		p.Render(w)
		io.WriteString(w, "\n")
	}
}

// renderChartMetric draws one per-loop bar chart for a breakdown metric.
func (b *BreakdownResult) renderChartMetric(w io.Writer, title string, metric func(LoopStats) int64) {
	labels := make([]string, 0, len(b.Stats[Sequential]))
	mk := func(strat Strategy) report.Series {
		s := report.Series{Name: strat.String()}
		for _, row := range b.Stats[strat] {
			s.Y = append(s.Y, float64(metric(row)))
		}
		return s
	}
	for _, row := range b.Stats[Sequential] {
		labels = append(labels, row.Loop)
	}
	h := &report.HBar{
		Title:  title,
		Labels: labels,
		Series: []report.Series{mk(Sequential), mk(Prefetched), mk(Restructured)},
	}
	h.Render(w)
	io.WriteString(w, "\n")
}

// RenderChartFig3 draws Figure 3 as grouped bars.
func (b *BreakdownResult) RenderChartFig3(w io.Writer) {
	b.renderChartMetric(w,
		"Figure 3. Execution times of PARMVR loops (cycles) — "+b.config(),
		func(s LoopStats) int64 { return s.Cycles })
}

// RenderChartFig4 draws Figure 4 as grouped bars.
func (b *BreakdownResult) RenderChartFig4(w io.Writer) {
	b.renderChartMetric(w,
		"Figure 4. L2 Cache Misses in PARMVR — "+b.config(),
		func(s LoopStats) int64 { return s.L2Misses })
}

// RenderChartFig5 draws Figure 5 as grouped bars.
func (b *BreakdownResult) RenderChartFig5(w io.Writer) {
	b.renderChartMetric(w,
		"Figure 5. L1 Data Cache Misses in PARMVR — "+b.config(),
		func(s LoopStats) int64 { return s.L1Misses })
}

// RenderChart draws Figure 6 as line plots (speedup vs chunk size).
func (r *Fig6Result) RenderChart(w io.Writer) {
	for _, cfg := range Machines() {
		var ticks []string
		pre := report.Series{Name: Prefetched.String()}
		res := report.Series{Name: Restructured.String()}
		for _, kb := range Fig6ChunkSizesKB {
			ticks = append(ticks, itoa(kb))
			pre.Y = append(pre.Y, r.Speedup(cfg.Name, Prefetched, kb*1024))
			res.Y = append(res.Y, r.Speedup(cfg.Name, Restructured, kb*1024))
		}
		p := &report.Plot{
			Title:   "Figure 6. Effect of chunk size — " + cfg.Name,
			XLabel:  "KB/chunk",
			XTicks:  ticks,
			Series:  []report.Series{res, pre},
			Height:  12,
			YZero:   true,
			ColWide: 5,
		}
		p.Render(w)
		io.WriteString(w, "\n")
	}
}

// RenderChart draws Figure 7 as line plots (four series per machine).
func (r *Fig7Result) RenderChart(w io.Writer) {
	dense := synthetic.Dense(r.N).Name()
	sparse := synthetic.Sparse(r.N).Name()
	for _, cfg := range Machines() {
		var ticks []string
		series := []report.Series{
			{Name: "Restructured,Sparse"},
			{Name: "Prefetched,Sparse"},
			{Name: "Restructured,Dense"},
			{Name: "Prefetched,Dense"},
		}
		for _, kb := range Fig7ChunkSizesKB {
			ticks = append(ticks, itoa(kb))
			series[0].Y = append(series[0].Y, r.Speedup(cfg.Name, sparse, Restructured, kb*1024))
			series[1].Y = append(series[1].Y, r.Speedup(cfg.Name, sparse, Prefetched, kb*1024))
			series[2].Y = append(series[2].Y, r.Speedup(cfg.Name, dense, Restructured, kb*1024))
			series[3].Y = append(series[3].Y, r.Speedup(cfg.Name, dense, Prefetched, kb*1024))
		}
		p := &report.Plot{
			Title:   "Figure 7. Speedups with increased memory access costs — " + cfg.Name,
			XLabel:  "KB/chunk",
			XTicks:  ticks,
			Series:  series,
			Height:  14,
			YZero:   true,
			ColWide: 5,
		}
		p.Render(w)
		io.WriteString(w, "\n")
	}
}
