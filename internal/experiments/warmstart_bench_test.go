package experiments

import (
	"context"
	"testing"

	"repro/internal/machine"
	"repro/internal/wave5"
)

// Snapshot benchmarks measure what copy-on-write warm starts buy in host
// wall-clock time. A warm-started sweep simulates its shared prefix
// (data distribution + sequential warm-up calls) once and forks every
// point from the snapshot; the fresh baseline re-simulates the whole
// prefix for every point. The forked rows are bit-identical to the
// fresh ones (TestWarmSweepBitIdentical and the snapshot differentials
// in internal/cascade), so the ratio is pure simulator speedup from
// prefix amortization. BENCH_snapshot.json records representative runs.

// benchWarmPoints is a prefix-heavy chunk-size sweep: nine points — one
// sequential anchor plus both cascaded strategies at four chunk budgets
// — all reachable from one strategy-independent warm prefix.
func benchWarmPoints() []WarmPoint {
	pts := []WarmPoint{{Strat: Sequential}}
	for _, chunk := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		pts = append(pts,
			WarmPoint{Strat: Prefetched, ChunkBytes: chunk},
			WarmPoint{Strat: Restructured, ChunkBytes: chunk})
	}
	return pts
}

// benchWarmParams follows the repo bench convention: short mode (the CI
// bench-smoke job) shrinks the dataset — there the point is keeping the
// benchmark paths compiling and running, not producing numbers.
func benchWarmParams() wave5.Params {
	if testing.Short() {
		return wave5.DefaultParams().Scaled(0.01)
	}
	return wave5.DefaultParams().Scaled(0.05)
}

// freshSweepPoint measures one point the expensive way: a fresh machine
// runs the whole prefix itself, then the point's steady-state call.
func freshSweepPoint(b *testing.B, cfg machine.Config, p wave5.Params, warmupCalls int, pt WarmPoint) int64 {
	b.Helper()
	w, err := wave5.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := runWarmPrefix(context.Background(), m, w, warmupCalls); err != nil {
		b.Fatal(err)
	}
	results, err := runWarmPoint(m, w, pt)
	if err != nil {
		b.Fatal(err)
	}
	return TotalCycles(results)
}

// BenchmarkSnapshotChunkSweep compares a nine-point chunk-size sweep
// under the two drivers: "fresh" re-simulates the shared prefix for
// every point, "warm" simulates it once and forks. One prefix group, so
// the warm variant's prefix cost is amortized across all nine points.
func BenchmarkSnapshotChunkSweep(b *testing.B) {
	cfg := machine.PentiumPro(4)
	p := benchWarmParams()
	points := benchWarmPoints()

	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, pt := range points {
				freshSweepPoint(b, cfg, p, DefaultWarmupCalls, pt)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := WarmSweep(context.Background(), cfg, p, DefaultWarmupCalls, points); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotProcSweep is the grouped-prefix shape of a Figure
// 2-style sweep: three processor counts, each its own prefix group of
// three strategy points. The warm variant amortizes within each group
// only (a fork cannot change the processor count), so its ceiling is
// lower than the chunk sweep's — this benchmark records that honestly.
func BenchmarkSnapshotProcSweep(b *testing.B) {
	p := benchWarmParams()
	procs := []int{2, 3, 4}
	points := []WarmPoint{
		{Strat: Sequential},
		{Strat: Prefetched, ChunkBytes: 16 << 10},
		{Strat: Restructured, ChunkBytes: 16 << 10},
	}

	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, np := range procs {
				for _, pt := range points {
					freshSweepPoint(b, machine.PentiumPro(np), p, DefaultWarmupCalls, pt)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, np := range procs {
				if _, err := WarmSweep(context.Background(), machine.PentiumPro(np), p, DefaultWarmupCalls, points); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
