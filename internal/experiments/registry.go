package experiments

import (
	"context"
	"encoding/json"
	"io"
	"sort"

	"repro/internal/cascade"
	"repro/internal/synthetic"
	"repro/internal/wave5"
)

// Renderable is the result of an experiment run. Every result renders
// itself as aligned text tables; results that also support CSV or ASCII
// chart output implement CSVRenderable or ChartRenderable, and JSON
// output is the result value itself (all result types marshal cleanly).
type Renderable interface {
	Render(w io.Writer)
}

// ChartRenderable is a result with an ASCII-chart rendering (figures).
type ChartRenderable interface {
	Renderable
	RenderChart(w io.Writer)
}

// CSVRenderable is a result with a CSV rendering (plain tables).
type CSVRenderable interface {
	Renderable
	RenderCSV(w io.Writer)
}

// RunConfig carries the experiment-independent knobs an Experiment.Run
// receives: every experiment interprets the subset it cares about, so one
// flag set drives the whole registry.
type RunConfig struct {
	// Scale shrinks the PARMVR dataset (1.0 = the paper-scale enlarged
	// dataset).
	Scale float64
	// ChunkBytes is the cascade chunk budget for experiments that take
	// one (fig2, breakdowns, quickstart, gallery, amdahl).
	ChunkBytes int
	// N is the array length for the synthetic loop (fig7) and the kernel
	// gallery.
	N int
	// Progress, when non-nil, receives human-readable progress lines.
	Progress func(format string, args ...interface{})
}

// Params returns the PARMVR dataset parameters at the configured scale.
func (rc RunConfig) Params() wave5.Params {
	return wave5.DefaultParams().Scaled(rc.Scale)
}

func (rc RunConfig) progress(format string, args ...interface{}) {
	if rc.Progress != nil {
		rc.Progress(format, args...)
	}
}

// Experiment is one registered reproduction: a name to dispatch on, a
// description for listings, and a run function. Run respects ctx
// cancellation (in-flight simulation points finish; no new ones start).
type Experiment struct {
	Name        string
	Description string
	Run         func(ctx context.Context, rc RunConfig) (Renderable, error)
}

// Info is an experiment's exported metadata: what `cascade-sim -exp list`
// prints and what the serving daemon's GET /v1/experiments returns — one
// source of truth for both.
type Info struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Defaults    Defaults `json:"defaults"`
}

// Defaults are an experiment's default run parameters in the units
// clients supply them (chunk budget in KB, as on the cascade-sim command
// line and in the serving API's job parameters).
type Defaults struct {
	// Scale is the PARMVR dataset scale factor (1.0 = paper-scale).
	Scale float64 `json:"scale"`
	// ChunkKB is the cascade chunk budget in KB.
	ChunkKB int `json:"chunk_kb"`
	// N is the synthetic-loop / kernel-gallery array length.
	N int `json:"n"`
}

// DefaultRunConfig returns the run configuration every experiment uses
// when the caller overrides nothing: paper-scale dataset, the paper's
// best chunk size, the synthetic loop's default length.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Scale:      1.0,
		ChunkBytes: cascade.DefaultChunkBytes,
		N:          synthetic.DefaultN,
	}
}

// Info returns the experiment's exported metadata.
func (e Experiment) Info() Info {
	rc := DefaultRunConfig()
	return Info{
		Name:        e.Name,
		Description: e.Description,
		Defaults: Defaults{
			Scale:   rc.Scale,
			ChunkKB: rc.ChunkBytes / 1024,
			N:       rc.N,
		},
	}
}

// Infos returns every registered experiment's metadata, sorted by name
// like Registry.
func Infos() []Info {
	reg := Registry()
	infos := make([]Info, len(reg))
	for i, e := range reg {
		infos[i] = e.Info()
	}
	return infos
}

// Registry returns every experiment sorted by name. Enumeration order is
// deterministic and shared by every consumer: the order "all" runs them,
// "-exp list" prints them, and the serving daemon's /v1/experiments
// returns them.
func Registry() []Experiment {
	reg := registry()
	sort.Slice(reg, func(i, j int) bool { return reg[i].Name < reg[j].Name })
	return reg
}

// registry lists the experiments in paper-presentation order; public
// enumeration sorts by name.
func registry() []Experiment {
	return []Experiment{
		{
			Name:        "quickstart",
			Description: "scatter-add demo of cascaded execution and the metrics layer",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				n := QuickstartScaledN(rc.Scale)
				rc.progress("quickstart: scatter-add metrics demo (n=%d)...", n)
				return Quickstart(ctx, n, rc.ChunkBytes)
			},
		},
		{
			Name:        "table1",
			Description: "machine memory-system characteristics (Table 1)",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				return Table1(), nil
			},
		},
		{
			Name:        "fig2",
			Description: "overall PARMVR speedup vs processor count (Figure 2)",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("fig2: PARMVR processor sweep (scale %.2f)...", rc.Scale)
				return Fig2(ctx, rc.Params(), rc.ChunkBytes)
			},
		},
		{
			Name:        "fig3",
			Description: "per-loop execution time by strategy (Figure 3)",
			Run:         breakdownExperiment(3),
		},
		{
			Name:        "fig4",
			Description: "per-loop L2 misses by strategy (Figure 4)",
			Run:         breakdownExperiment(4),
		},
		{
			Name:        "fig5",
			Description: "per-loop L1 misses by strategy (Figure 5)",
			Run:         breakdownExperiment(5),
		},
		{
			Name:        "fig6",
			Description: "effect of chunk size on PARMVR speedup (Figure 6)",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("fig6: chunk-size sweep (scale %.2f)...", rc.Scale)
				return Fig6(ctx, rc.Params())
			},
		},
		{
			Name:        "fig7",
			Description: "synthetic-loop speedups on future machines (Figure 7)",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("fig7: synthetic future-machine sweep (n=%d)...", rc.N)
				return Fig7(ctx, rc.N)
			},
		},
		{
			Name:        "warmsweep",
			Description: "warm-start sweep: every point forked from one shared warm prefix",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("warmsweep: fork-from-prefix strategy/chunk sweep (scale %.2f)...", rc.Scale)
				return perMachine(func(i int) (Renderable, error) {
					return WarmSweep(ctx, Machines()[i], rc.Params(),
						DefaultWarmupCalls, DefaultWarmPoints(rc.ChunkBytes))
				})
			},
		},
		{
			Name:        "conflicts",
			Description: "sequential miss classification per loop (§3.3's conflict claim)",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("conflicts: sequential miss classification (scale %.2f)...", rc.Scale)
				return perMachine(func(i int) (Renderable, error) {
					return ConflictAnalysis(ctx, Machines()[i], rc.Params())
				})
			},
		},
		{
			Name:        "amdahl",
			Description: "application-level speedup study (the paper's motivation)",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("amdahl: application-level study (scale %.2f)...", rc.Scale)
				return perMachine(func(i int) (Renderable, error) {
					return Amdahl(ctx, Machines()[i], rc.Params(), rc.ChunkBytes)
				})
			},
		},
		{
			Name:        "gallery",
			Description: "kernel gallery: when does cascading pay?",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("gallery: kernel suite (n=%d)...", rc.N)
				return perMachine(func(i int) (Renderable, error) {
					return Gallery(ctx, Machines()[i], rc.N, rc.ChunkBytes)
				})
			},
		},
		{
			Name:        "ablations",
			Description: "design-choice ablations (jump-out, precompute, chunking, ...)",
			Run: func(ctx context.Context, rc RunConfig) (Renderable, error) {
				rc.progress("ablations (scale %.2f)...", rc.Scale)
				studies := []func(context.Context, wave5.Params) (*AblationResult, error){
					AblationJumpOut,
					AblationPrecompute,
					AblationChunking,
					AblationCompilerPrefetch,
					AblationTLB,
					AblationPriorParallel,
					AblationVictimCache,
				}
				var g Group
				for _, f := range studies {
					a, err := f(ctx, rc.Params())
					if err != nil {
						return nil, err
					}
					g = append(g, a)
				}
				return g, nil
			},
		},
	}
}

// Names returns the registry's experiment names, sorted.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	return names
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// breakdownExperiment builds the run function for Figures 3, 4 and 5 —
// three views of the shared per-loop breakdown, measured per machine.
func breakdownExperiment(fig int) func(context.Context, RunConfig) (Renderable, error) {
	return func(ctx context.Context, rc RunConfig) (Renderable, error) {
		rc.progress("fig%d: per-loop breakdown (scale %.2f)...", fig, rc.Scale)
		return perMachine(func(i int) (Renderable, error) {
			b, err := LoopBreakdown(ctx, Machines()[i].WithProcs(4), rc.Params(), rc.ChunkBytes)
			if err != nil {
				return nil, err
			}
			return breakdownView{b, fig}, nil
		})
	}
}

// perMachine collects one result per paper machine into a Group.
func perMachine(f func(i int) (Renderable, error)) (Renderable, error) {
	var g Group
	for i := range Machines() {
		r, err := f(i)
		if err != nil {
			return nil, err
		}
		g = append(g, r)
	}
	return g, nil
}

// Group renders several results in sequence — per-machine sweeps and the
// ablation series. It charts each member that can chart (falling back to
// its table) and marshals as a JSON array of the member results.
type Group []Renderable

// Render writes each member in order.
func (g Group) Render(w io.Writer) {
	for _, r := range g {
		r.Render(w)
	}
}

// RenderChart writes each member's chart, or its table when it has none.
func (g Group) RenderChart(w io.Writer) {
	for _, r := range g {
		if c, ok := r.(ChartRenderable); ok {
			c.RenderChart(w)
		} else {
			r.Render(w)
		}
	}
}

// MarshalJSON emits the member results as a JSON array.
func (g Group) MarshalJSON() ([]byte, error) {
	return json.Marshal([]Renderable(g))
}

// breakdownView is one figure's view of the shared loop breakdown:
// Figures 3, 4 and 5 plot execution time, L2 misses and L1 misses of the
// same measurement.
type breakdownView struct {
	*BreakdownResult
	fig int
}

func (v breakdownView) Render(w io.Writer) {
	switch v.fig {
	case 3:
		v.RenderFig3(w)
	case 4:
		v.RenderFig4(w)
	default:
		v.RenderFig5(w)
	}
}

func (v breakdownView) RenderChart(w io.Writer) {
	switch v.fig {
	case 3:
		v.RenderChartFig3(w)
	case 4:
		v.RenderChartFig4(w)
	default:
		v.RenderChartFig5(w)
	}
}
