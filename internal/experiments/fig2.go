package experiments

import (
	"context"
	"io"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/wave5"
)

// Fig2Point is one point of Figure 2: the overall speedup of the PARMVR
// subroutine under cascaded execution with a given helper and processor
// count, relative to sequential execution of the original code.
type Fig2Point struct {
	Machine  string
	Strategy Strategy
	Procs    int
	Speedup  float64
	// HelperCompletion is the fraction of helper iterations that finished
	// before their processor was signaled (diagnostic; not in the paper's
	// plot but explains its processor scaling).
	HelperCompletion float64
	// Metrics is the registry snapshot for this point, summed over the
	// fifteen PARMVR loops: per-processor cache/TLB/victim counters, bus
	// traffic, and cascade phase cycles.
	Metrics metrics.Snapshot `json:",omitempty"`
}

// Fig2Result holds the Figure 2 sweep for both machines.
type Fig2Result struct {
	Params     wave5.Params
	ChunkBytes int
	Baselines  map[string]int64 // sequential PARMVR cycles per machine
	Points     []Fig2Point
}

// Fig2 reproduces Figure 2: overall PARMVR speedup for 2..4 processors on
// the Pentium Pro and 2..8 on the R10000, for both helper strategies,
// with the paper's best 64KB chunks (pass cascade.DefaultChunkBytes).
// Sweep points are independent simulations and run in parallel across the
// host's cores.
func Fig2(ctx context.Context, p wave5.Params, chunkBytes int) (*Fig2Result, error) {
	res := &Fig2Result{
		Params:     p,
		ChunkBytes: chunkBytes,
		Baselines:  make(map[string]int64),
	}
	machines := Machines()
	bases := make([]int64, len(machines))
	if err := parallelFor(ctx, len(machines), func(i int) error {
		seq, err := RunPARMVR(machines[i], p, Sequential, chunkBytes)
		if err != nil {
			return err
		}
		bases[i] = TotalCycles(seq)
		return nil
	}); err != nil {
		return nil, err
	}
	for i, cfg := range machines {
		res.Baselines[cfg.Name] = bases[i]
	}

	type spec struct {
		cfg   machine.Config
		base  int64
		strat Strategy
		procs int
	}
	var specs []spec
	for i, cfg := range machines {
		for _, procs := range procSweep(cfg) {
			for _, strat := range []Strategy{Prefetched, Restructured} {
				specs = append(specs, spec{cfg, bases[i], strat, procs})
			}
		}
	}
	points := make([]Fig2Point, len(specs))
	if err := parallelFor(ctx, len(specs), func(k int) error {
		s := specs[k]
		rr, err := RunPARMVR(s.cfg.WithProcs(s.procs), p, s.strat, chunkBytes)
		if err != nil {
			return err
		}
		var helperIters, totalIters int64
		for _, r := range rr {
			helperIters += int64(r.HelperIters)
			totalIters += int64(r.TotalIters)
		}
		points[k] = Fig2Point{
			Machine:          s.cfg.Name,
			Strategy:         s.strat,
			Procs:            s.procs,
			Speedup:          float64(s.base) / float64(TotalCycles(rr)),
			HelperCompletion: float64(helperIters) / float64(totalIters),
			Metrics:          MergeMetrics(rr),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// Speedup returns the recorded speedup for a configuration, or 0 if the
// sweep did not include it.
func (r *Fig2Result) Speedup(machineName string, strat Strategy, procs int) float64 {
	return r.find(machineName, strat, procs).Speedup
}

// Render writes the Figure 2 series as one table per machine, one row per
// processor count, matching the paper's two panels.
func (r *Fig2Result) Render(w io.Writer) {
	for _, cfg := range Machines() {
		t := report.NewTable(
			"Figure 2. Overall speedup for PARMVR — "+cfg.Name+
				" (chunks "+report.KB(r.ChunkBytes)+")",
			"Processors", "Prefetched", "Restructured", "helper done (P/R)")
		for _, procs := range procSweep(cfg) {
			pre := r.find(cfg.Name, Prefetched, procs)
			res := r.find(cfg.Name, Restructured, procs)
			t.Addf(procs, pre.Speedup, res.Speedup,
				report.Float(pre.HelperCompletion)+"/"+report.Float(res.HelperCompletion))
		}
		t.Render(w)
		io.WriteString(w, "\n")
	}
}

func (r *Fig2Result) find(m string, s Strategy, procs int) Fig2Point {
	for _, pt := range r.Points {
		if pt.Machine == m && pt.Strategy == s && pt.Procs == procs {
			return pt
		}
	}
	return Fig2Point{}
}
