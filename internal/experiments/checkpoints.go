package experiments

import (
	"context"
	"fmt"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
)

// QuickstartCheckpointRun is a checkpointed run of the quickstart
// scatter-add loop under the prefetch helper: the completed Result plus
// the checkpoint stream captured at the requested iteration cadence. The
// run keeps its loop and address space alive so any checkpoint can be
// resumed later — checkpoints hold copy-on-write references into that
// space.
type QuickstartCheckpointRun struct {
	N           int
	ChunkBytes  int
	Every       int
	Result      cascade.Result
	Checkpoints []*cascade.Checkpoint

	loop *loopir.Loop
	opts cascade.Options
}

// QuickstartCheckpoints runs the quickstart scatter-add loop under the
// prefetch helper on the 4-way Pentium Pro, capturing a checkpoint every
// `every` iterations (every chunk boundary when zero). The checkpointed
// run's Result is bit-identical to an un-checkpointed run's — the sink
// observes without perturbing.
func QuickstartCheckpoints(ctx context.Context, n, chunkBytes, every int) (*QuickstartCheckpointRun, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if every < 0 {
		return nil, fmt.Errorf("quickstart checkpoints: every = %d", every)
	}
	space, loop, err := quickstartLoop(n)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(machine.PentiumPro(4), machine.WithCheckpointEvery(every))
	if err != nil {
		return nil, err
	}
	run := &QuickstartCheckpointRun{N: n, ChunkBytes: chunkBytes, Every: every, loop: loop}
	opts, err := cascade.NewOptions(
		cascade.WithHelper(cascade.HelperPrefetch),
		cascade.WithSpace(space),
		cascade.WithChunkBytes(chunkBytes),
		cascade.WithCheckpointSink(func(ck *cascade.Checkpoint) {
			run.Checkpoints = append(run.Checkpoints, ck)
		}),
	)
	if err != nil {
		return nil, err
	}
	run.Result, err = cascade.Run(m, loop, opts)
	if err != nil {
		return nil, err
	}
	// The stored options describe the plain run: Resume replays it, it
	// does not re-checkpoint.
	opts.CheckpointSink = nil
	run.opts = opts
	return run, nil
}

// Resume re-executes the run from checkpoint k and returns the completed
// Result — bit-identical to the original run's. Resumes may be repeated
// and in any order: each rewinds the run's address space to the
// checkpoint instant before continuing.
func (qr *QuickstartCheckpointRun) Resume(k int) (cascade.Result, error) {
	if k < 0 || k >= len(qr.Checkpoints) {
		return cascade.Result{}, fmt.Errorf("quickstart checkpoints: no checkpoint %d (have %d)", k, len(qr.Checkpoints))
	}
	return cascade.Resume(qr.loop, qr.opts, qr.Checkpoints[k])
}
