package experiments

import (
	"context"
	"io"

	"repro/internal/cascade"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/wave5"
)

// LoopMissClasses is one loop's sequential-execution miss classification
// at one cache level (Hill's compulsory/capacity/conflict taxonomy).
type LoopMissClasses struct {
	Loop                           string
	Misses                         int64
	Compulsory, Capacity, Conflict int64
}

// ConflictResult classifies every PARMVR loop's sequential misses on one
// machine. The paper attributes restructuring's advantage "primarily
// [to] the elimination of conflict misses" (§3.3) and explains the
// R10000's higher sequential miss count by its L2's lower associativity;
// this analysis makes both claims checkable.
type ConflictResult struct {
	Machine string
	L1, L2  []LoopMissClasses
}

// ConflictAnalysis runs the PARMVR loops sequentially with miss
// classification enabled and returns per-loop, per-level classes.
func ConflictAnalysis(ctx context.Context, cfg machine.Config, p wave5.Params) (*ConflictResult, error) {
	w, err := wave5.Build(p)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	m.EnableClassification()
	out := &ConflictResult{Machine: cfg.Name}
	for _, l := range w.Loops {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// RunSequential resets caches (and therefore stats) at entry, so
		// the post-run counters cover exactly this loop. The simulated
		// prior parallel section touches every line first, so compulsory
		// counts stay near zero — as they would on the real application,
		// where the data was produced by earlier phases.
		cascade.RunSequential(m, l, true)
		l1, l2 := m.L1Stats(), m.L2Stats()
		out.L1 = append(out.L1, LoopMissClasses{
			Loop: l.Name, Misses: l1.Misses,
			Compulsory: l1.Compulsory, Capacity: l1.Capacity, Conflict: l1.Conflict,
		})
		out.L2 = append(out.L2, LoopMissClasses{
			Loop: l.Name, Misses: l2.Misses,
			Compulsory: l2.Compulsory, Capacity: l2.Capacity, Conflict: l2.Conflict,
		})
	}
	return out, nil
}

// Totals sums a level's classes.
func totalsOf(rows []LoopMissClasses) LoopMissClasses {
	t := LoopMissClasses{Loop: "TOTAL"}
	for _, r := range rows {
		t.Misses += r.Misses
		t.Compulsory += r.Compulsory
		t.Capacity += r.Capacity
		t.Conflict += r.Conflict
	}
	return t
}

// L2Totals returns the summed L2 classification.
func (c *ConflictResult) L2Totals() LoopMissClasses { return totalsOf(c.L2) }

// L1Totals returns the summed L1 classification.
func (c *ConflictResult) L1Totals() LoopMissClasses { return totalsOf(c.L1) }

// Render writes both levels' per-loop classifications.
func (c *ConflictResult) Render(w io.Writer) {
	render := func(level string, rows []LoopMissClasses) {
		t := report.NewTable(
			"Sequential miss classification ("+level+") — "+c.Machine,
			"Loop", "Misses", "Compulsory", "Capacity", "Conflict")
		all := append(append([]LoopMissClasses{}, rows...), totalsOf(rows))
		for _, r := range all {
			t.Add(r.Loop, report.Int(r.Misses), report.Int(r.Compulsory),
				report.Int(r.Capacity), report.Int(r.Conflict))
		}
		t.Render(w)
		io.WriteString(w, "\n")
	}
	render("L1", c.L1)
	render("L2", c.L2)
}

// classStats guards the classification partition invariant for tests.
func (r LoopMissClasses) partitionHolds() bool {
	return r.Compulsory+r.Capacity+r.Conflict == r.Misses
}
