package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestRegistryNamesAndLookup pins the registry's canonical contents and
// enumeration order: every paper artifact dispatches through it, names
// come back sorted, and Lookup agrees with Names.
func TestRegistryNamesAndLookup(t *testing.T) {
	want := []string{"ablations", "amdahl", "conflicts", "fig2", "fig3",
		"fig4", "fig5", "fig6", "fig7", "gallery", "quickstart", "table1",
		"warmsweep"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if e.Name != name || e.Description == "" || e.Run == nil {
			t.Errorf("Lookup(%q) = %+v: incomplete entry", name, e)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

// TestInfosMetadata pins the exported metadata: one Info per experiment,
// sorted like the registry, with non-empty descriptions and the shared
// defaults (paper scale, 64KB chunks, the synthetic default length).
func TestInfosMetadata(t *testing.T) {
	infos := Infos()
	names := Names()
	if len(infos) != len(names) {
		t.Fatalf("Infos() has %d entries, Names() %d", len(infos), len(names))
	}
	rc := DefaultRunConfig()
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("Infos()[%d].Name = %q, want %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
		d := info.Defaults
		if d.Scale != rc.Scale || d.ChunkKB != rc.ChunkBytes/1024 || d.N != rc.N {
			t.Errorf("%s: defaults = %+v, want scale %g chunk %dKB n %d",
				info.Name, d, rc.Scale, rc.ChunkBytes/1024, rc.N)
		}
	}
}

// TestRegistryRunsCancelled pins that every registered experiment honors a
// pre-cancelled context: sweeps must not run to completion when the user
// has already hit Ctrl-C.
func TestRegistryRunsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := RunConfig{Scale: 0.02, ChunkBytes: 64 * 1024, N: 1 << 12}
	for _, e := range Registry() {
		if e.Name == "table1" {
			continue // static table; nothing to cancel
		}
		if _, err := e.Run(ctx, rc); err == nil {
			t.Errorf("%s: ran to completion under a cancelled context", e.Name)
		}
	}
}

// TestRegistryQuickRun exercises one cheap registry entry end-to-end
// through the Experiment interface, including Renderable output.
func TestRegistryQuickRun(t *testing.T) {
	e, ok := Lookup("conflicts")
	if !ok {
		t.Fatal("conflicts not registered")
	}
	var msgs []string
	rc := RunConfig{
		Scale: 0.02, ChunkBytes: 64 * 1024, N: 1 << 12,
		Progress: func(format string, args ...interface{}) { msgs = append(msgs, format) },
	}
	r, err := e.Run(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "miss classification") {
		t.Errorf("render output missing expected header:\n%s", b.String())
	}
	if len(msgs) == 0 {
		t.Error("no progress messages emitted")
	}
}
