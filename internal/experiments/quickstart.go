package experiments

import (
	"context"
	"io"

	"repro/internal/cascade"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/report"
)

// QuickstartN is the default scatter-add length: 8MB of X, far beyond
// the simulated caches.
const QuickstartN = 1 << 20

// QuickstartScaledN is the quickstart loop length at a dataset scale,
// clamped so even tiny scales exercise several chunks. The registry and
// the serving daemon's checkpoint capture resolve n through this one
// function, so a job and its checkpoint stream agree on the workload.
func QuickstartScaledN(scale float64) int {
	n := int(float64(QuickstartN) * scale)
	if n < 1<<10 {
		n = 1 << 10
	}
	return n
}

// QuickstartRow is one strategy's run of the quickstart scatter-add
// loop, with the full registry snapshot for that measured region.
type QuickstartRow struct {
	Strategy Strategy
	Cycles   int64
	Speedup  float64 // vs the Sequential row
	Chunks   int
	// Metrics is the registry snapshot covering exactly this run:
	// per-processor cache counters plus cascade.p<i>.<phase> cycles.
	Metrics metrics.Snapshot
}

// QuickstartResult holds the quickstart demonstration: the scatter-add
// loop X(K(i)) += W(i) under each strategy on the 4-way Pentium Pro.
type QuickstartResult struct {
	Machine    string
	Procs      int
	N          int
	ChunkBytes int
	Rows       []QuickstartRow
}

// quickstartLoop allocates the arrays and describes the scatter-add loop
// (the same workload as examples/quickstart): X(K(i)) = X(K(i)) + W(i),
// unparallelizable because the scatter through K may collide. A fresh
// copy per run keeps strategies independent.
func quickstartLoop(n int) (*memsim.Space, *loopir.Loop, error) {
	space := memsim.NewSpace()
	x := space.Alloc("X", n, 8, 8)
	k := space.Alloc("K", n, 4, 4)
	w := space.Alloc("W", n, 8, 8)
	x.Fill(func(i int) float64 { return float64(i) })
	k.Fill(func(i int) float64 { return float64((i * 31) % n) })
	w.Fill(func(i int) float64 { return 0.25 * float64(i%17) })

	xref := loopir.Ref{Array: x, Index: loopir.Indirect{Tbl: k, Entry: loopir.Ident}}
	loop := &loopir.Loop{
		Name:        "scatter-add",
		Iters:       n,
		RO:          []loopir.Ref{{Array: w, Index: loopir.Ident}},
		RW:          []loopir.Ref{xref},
		Writes:      []loopir.Ref{xref},
		PreCycles:   1,
		FinalCycles: 2,
		Final: func(_ int, pre, rw []float64) []float64 {
			return []float64{rw[0] + pre[0]}
		},
	}
	if err := loop.Validate(); err != nil {
		return nil, nil, err
	}
	return space, loop, nil
}

// Quickstart runs the scatter-add loop sequentially and under both
// cascaded helpers on the 4-way Pentium Pro, collecting the registry
// snapshot of each run. It is the smallest end-to-end demonstration of
// the metrics layer: one loop, three strategies, per-processor phase
// and cache breakdowns.
func Quickstart(ctx context.Context, n, chunkBytes int) (*QuickstartResult, error) {
	cfg := machine.PentiumPro(4)
	res := &QuickstartResult{
		Machine:    cfg.Name,
		Procs:      cfg.Procs,
		N:          n,
		ChunkBytes: chunkBytes,
	}
	var base int64
	for _, strat := range Strategies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		space, loop, err := quickstartLoop(n)
		if err != nil {
			return nil, err
		}
		m, err := machine.New(cfg)
		if err != nil {
			return nil, err
		}
		var r cascade.Result
		if strat == Sequential {
			r = cascade.RunSequential(m, loop, true)
			base = r.Cycles
		} else {
			opts, err := cascade.NewOptions(
				cascade.WithHelper(strat.helper()),
				cascade.WithSpace(space),
				cascade.WithChunkBytes(chunkBytes),
			)
			if err != nil {
				return nil, err
			}
			r, err = cascade.Run(m, loop, opts)
			if err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, QuickstartRow{
			Strategy: strat,
			Cycles:   r.Cycles,
			Speedup:  float64(base) / float64(r.Cycles),
			Chunks:   r.Chunks,
			Metrics:  r.Metrics,
		})
	}
	return res, nil
}

// Render writes a summary table plus, per strategy, the per-processor
// phase-cycle and cache-miss breakdown drawn from the registry
// snapshots.
func (r *QuickstartResult) Render(w io.Writer) {
	t := report.NewTable(
		"Quickstart. scatter-add X(K(i)) += W(i), n="+itoa(r.N)+" — "+r.Machine+
			" (chunks "+report.KB(r.ChunkBytes)+")",
		"Strategy", "Cycles", "Chunks", "Speedup")
	for _, row := range r.Rows {
		t.Addf(row.Strategy.String(), report.Int(row.Cycles), row.Chunks, row.Speedup)
	}
	t.Render(w)
	io.WriteString(w, "\n")
	for _, row := range r.Rows {
		row.renderBreakdown(w, r.Procs)
	}
}

// renderBreakdown writes one strategy's per-processor table: simulated
// cycles by cascade phase alongside the cache activity the registry
// recorded for the same measured region.
func (row QuickstartRow) renderBreakdown(w io.Writer, procs int) {
	t := report.NewTable(
		row.Strategy.String()+" — per-processor cycles and misses",
		"Proc", "helper", "exec", "transfer", "wait", "L1 misses", "L2 misses")
	s := row.Metrics
	for p := 0; p < procs; p++ {
		pfx := "p" + itoa(p)
		t.Addf(p,
			report.Int(s.Get("cascade."+pfx+".helper")),
			report.Int(s.Get("cascade."+pfx+".exec")),
			report.Int(s.Get("cascade."+pfx+".transfer")),
			report.Int(s.Get("cascade."+pfx+".wait")),
			report.Int(s.Get(pfx+".l1.misses")),
			report.Int(s.Get(pfx+".l2.misses")))
	}
	t.Addf("total",
		report.Int(s.Get("cascade.total.helper")),
		report.Int(s.Get("cascade.total.exec")),
		report.Int(s.Get("cascade.total.transfer")),
		report.Int(s.Get("cascade.total.wait")),
		"", "")
	t.Render(w)
	io.WriteString(w, "\n")
}
