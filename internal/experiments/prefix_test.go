package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// warmOverWire runs every point of a decomposed experiment through the
// warm path — PrefixCache fetch, fork, RunWarm — with the fabric's JSON
// round-trip on both spec and result, then merges. The byte comparison
// against the monolithic driver is the warm fleet's core guarantee:
// snapshot reuse is a wall-clock optimization, never an observable one.
func warmOverWire(t *testing.T, ctx context.Context, c *PrefixCache, name string, rc RunConfig) Renderable {
	t.Helper()
	specs, ok := Decompose(name, rc)
	if !ok {
		t.Fatalf("experiment %q not decomposable", name)
	}
	results := make([]PointResult, len(specs))
	if err := parallelFor(ctx, len(specs), func(i int) error {
		sb, err := json.Marshal(specs[i])
		if err != nil {
			return err
		}
		var spec PointSpec
		if err := json.Unmarshal(sb, &spec); err != nil {
			return err
		}
		r, warm, err := c.RunPoint(ctx, spec)
		if err != nil {
			return err
		}
		if !warm {
			t.Errorf("%s point %d took the cold path", name, i)
			r, err = RunPoint(ctx, spec)
			if err != nil {
				return err
			}
		}
		rb, err := json.Marshal(r)
		if err != nil {
			return err
		}
		var wire PointResult
		if err := json.Unmarshal(rb, &wire); err != nil {
			return err
		}
		results[i] = wire
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	merged, err := MergePoints(name, rc, results)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestWarmsweepDecomposedMatchesDriver pins three-way identity for the
// most prefix-heavy sweep in the registry: the monolithic WarmSweep
// driver, the cold decomposed path (each point builds a private prefix),
// and the warm path (every point forked off one cached snapshot per
// machine) must render byte-identical results.
func TestWarmsweepDecomposedMatchesDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	ctx := context.Background()
	rc := DefaultRunConfig()
	rc.Scale = 0.02

	driver, err := perMachine(func(i int) (Renderable, error) {
		return WarmSweep(ctx, Machines()[i], rc.Params(),
			DefaultWarmupCalls, DefaultWarmPoints(rc.ChunkBytes))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := renderIndented(t, driver)

	cold, ok, err := RunDecomposed(ctx, "warmsweep", rc)
	if !ok || err != nil {
		t.Fatalf("RunDecomposed = ok=%v err=%v", ok, err)
	}
	if got := renderIndented(t, cold); !bytes.Equal(got, want) {
		t.Errorf("cold decomposed warmsweep differs from driver:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	c := NewPrefixCache(0)
	warm := warmOverWire(t, ctx, c, "warmsweep", rc)
	if got := renderIndented(t, warm); !bytes.Equal(got, want) {
		t.Errorf("warm decomposed warmsweep differs from driver:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	// One prefix per machine, every other point a snapshot hit.
	specs, _ := Decompose("warmsweep", rc)
	stats := c.Stats()
	if want := len(Machines()); stats.Misses != int64(want) || stats.Entries != want {
		t.Errorf("cache builds = %d misses / %d entries, want %d of each", stats.Misses, stats.Entries, want)
	}
	if want := int64(len(specs) - len(Machines())); stats.Hits != want {
		t.Errorf("cache hits = %d, want %d", stats.Hits, want)
	}
	if stats.Bytes <= 0 || stats.Bytes > stats.MaxBytes {
		t.Errorf("cache accounting out of range: %d bytes of %d", stats.Bytes, stats.MaxBytes)
	}
}

// TestWarmPointMatchesColdParmvr pins per-point warm/cold identity for
// the fig2 and fig6 decompositions: a point run off a cached prefix
// snapshot serializes to exactly the bytes the cold path produces.
func TestWarmPointMatchesColdParmvr(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	ctx := context.Background()
	rc := DefaultRunConfig()
	rc.Scale = 0.02
	c := NewPrefixCache(0)
	for _, name := range []string{"fig2", "fig6"} {
		specs, ok := Decompose(name, rc)
		if !ok {
			t.Fatalf("experiment %q not decomposable", name)
		}
		// The sequential baseline plus the first two sweep points: every
		// strategy class crosses the fork boundary.
		for _, i := range []int{0, len(Machines()), len(Machines()) + 1} {
			cold, err := RunPoint(ctx, specs[i])
			if err != nil {
				t.Fatal(err)
			}
			warm, ok, err := c.RunPoint(ctx, specs[i])
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s point %d has no warm path", name, i)
			}
			if got, want := renderIndented(t, warm), renderIndented(t, cold); !bytes.Equal(got, want) {
				t.Errorf("%s point %d warm result differs from cold:\n got %s\nwant %s", name, i, got, want)
			}
		}
	}
	if stats := c.Stats(); stats.Hits == 0 {
		t.Error("no snapshot reuse across points sharing a prefix")
	}
}

// TestPrefixCacheSingleFlight pins that concurrent points sharing one
// prefix build it exactly once, and that a state evicted while points
// still hold it stays usable (sealed snapshot arrays are immutable).
func TestPrefixCacheSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	ctx := context.Background()
	rc := DefaultRunConfig()
	rc.Scale = 0.02
	specs, _ := Decompose("fig6", rc)
	spec := specs[len(Machines())] // first sweep point

	c := NewPrefixCache(0)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, ok, err := c.RunPoint(ctx, spec)
			if err == nil && !ok {
				errs[g] = context.Canceled // sentinel: unexpected cold path
				return
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if stats := c.Stats(); stats.Misses != 1 || stats.Hits != 3 {
		t.Errorf("single-flight broken: %d misses, %d hits, want 1 and 3", stats.Misses, stats.Hits)
	}
}

// TestPrefixCacheEviction pins the byte ceiling: a cache far too small
// for two prefixes keeps only the most recent one, counts the eviction,
// and still returns correct results for every request.
func TestPrefixCacheEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	ctx := context.Background()
	rc := DefaultRunConfig()
	rc.Scale = 0.02
	specs, _ := Decompose("fig6", rc)
	if len(Machines()) < 2 {
		t.Skip("needs two machine presets")
	}
	// The two machines' sequential baselines: distinct prefixes.
	a, b := specs[0], specs[1]

	c := NewPrefixCache(1) // 1 byte: nothing fits, LRU always at ceiling
	coldA, err := RunPoint(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	warmA, _, err := c.RunPoint(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunPoint(ctx, b); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats.Entries != 1 || stats.Evictions == 0 {
		t.Errorf("eviction did not hold the ceiling: %d entries, %d evictions", stats.Entries, stats.Evictions)
	}
	// A's state was evicted; re-requesting rebuilds it and the result is
	// still byte-identical to the cold path.
	warmA2, _, err := c.RunPoint(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	wantA := renderIndented(t, coldA)
	if got := renderIndented(t, warmA); !bytes.Equal(got, wantA) {
		t.Error("pre-eviction warm result differs from cold")
	}
	if got := renderIndented(t, warmA2); !bytes.Equal(got, wantA) {
		t.Error("post-eviction rebuilt result differs from cold")
	}
	if s := c.Stats(); s.Misses != 3 {
		t.Errorf("rebuild accounting: %d misses, want 3", s.Misses)
	}
}
