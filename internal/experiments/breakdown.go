package experiments

import (
	"context"
	"io"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/wave5"
)

// LoopStats is one strategy's measurement of one PARMVR loop, carrying
// everything Figures 3, 4 and 5 plot.
type LoopStats struct {
	Loop     string
	Strategy Strategy
	Cycles   int64
	// L1Misses and L2Misses are the misses observed by the execution
	// phases (the running loop), the paper's Figures 5 and 4. Helper
	// traffic is off the critical path and excluded, as in the paper's
	// measurements.
	L1Misses int64
	L2Misses int64
}

// BreakdownResult holds the per-loop measurements of all three strategies
// on one machine — the shared substance of Figures 3, 4 and 5.
type BreakdownResult struct {
	Machine    string
	Procs      int
	ChunkBytes int
	Params     wave5.Params
	// Stats[strategy][loopIndex]
	Stats map[Strategy][]LoopStats
}

// LoopBreakdown measures the fifteen PARMVR loops under all three
// strategies on the given machine, with the paper's Figure 3-5
// configuration (4 processors, 64KB chunks, unless overridden by cfg and
// chunkBytes). The paper presents "the 12th call out of 5000" —
// deterministic workload construction plays that role here.
func LoopBreakdown(ctx context.Context, cfg machine.Config, p wave5.Params, chunkBytes int) (*BreakdownResult, error) {
	out := &BreakdownResult{
		Machine:    cfg.Name,
		Procs:      cfg.Procs,
		ChunkBytes: chunkBytes,
		Params:     p,
		Stats:      make(map[Strategy][]LoopStats),
	}
	for _, strat := range Strategies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		results, err := RunPARMVR(cfg, p, strat, chunkBytes)
		if err != nil {
			return nil, err
		}
		names := wave5.MustBuild(p).LoopNames()
		stats := make([]LoopStats, len(results))
		for i, r := range results {
			stats[i] = LoopStats{
				Loop:     names[i],
				Strategy: strat,
				Cycles:   r.Cycles,
				L1Misses: r.ExecL1.Misses,
				L2Misses: r.ExecL2.Misses,
			}
		}
		out.Stats[strat] = stats
	}
	return out, nil
}

// renderMetric writes one per-loop table with the given title and metric
// extractor.
func (b *BreakdownResult) renderMetric(w io.Writer, title string, metric func(LoopStats) int64) {
	t := report.NewTable(title,
		"Loop", Sequential.String(), Prefetched.String(), Restructured.String())
	for i := range b.Stats[Sequential] {
		t.Add(b.Stats[Sequential][i].Loop,
			report.Int(metric(b.Stats[Sequential][i])),
			report.Int(metric(b.Stats[Prefetched][i])),
			report.Int(metric(b.Stats[Restructured][i])))
	}
	t.Render(w)
	io.WriteString(w, "\n")
}

// RenderFig3 writes Figure 3: execution times (cycles) of the fifteen
// loops under each strategy.
func (b *BreakdownResult) RenderFig3(w io.Writer) {
	b.renderMetric(w,
		"Figure 3. Execution times of PARMVR loops (cycles) — "+b.config(),
		func(s LoopStats) int64 { return s.Cycles })
}

// RenderFig4 writes Figure 4: L2 cache misses per loop.
func (b *BreakdownResult) RenderFig4(w io.Writer) {
	b.renderMetric(w,
		"Figure 4. L2 Cache Misses in PARMVR — "+b.config(),
		func(s LoopStats) int64 { return s.L2Misses })
}

// RenderFig5 writes Figure 5: L1 data cache misses per loop.
func (b *BreakdownResult) RenderFig5(w io.Writer) {
	b.renderMetric(w,
		"Figure 5. L1 Data Cache Misses in PARMVR — "+b.config(),
		func(s LoopStats) int64 { return s.L1Misses })
}

func (b *BreakdownResult) config() string {
	return b.Machine + " (" + report.KB(b.ChunkBytes) + " chunks, " +
		itoa(b.Procs) + " procs)"
}

// Totals sums a metric over all loops for one strategy.
func (b *BreakdownResult) Totals(strat Strategy, metric func(LoopStats) int64) int64 {
	var total int64
	for _, s := range b.Stats[strat] {
		total += metric(s)
	}
	return total
}

// MissReduction returns 1 - cascaded/sequential for total L2 misses under
// the given cascaded strategy — the "eliminates 93-94% of the L2 cache
// misses" statistic of §3.3.
func (b *BreakdownResult) MissReduction(strat Strategy) float64 {
	seq := b.Totals(Sequential, func(s LoopStats) int64 { return s.L2Misses })
	if seq == 0 {
		return 0
	}
	c := b.Totals(strat, func(s LoopStats) int64 { return s.L2Misses })
	return 1 - float64(c)/float64(seq)
}

func itoa(v int) string {
	return report.Int(int64(v))
}
