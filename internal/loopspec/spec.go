package loopspec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/loopir"
	"repro/internal/memsim"
)

// Spec is the JSON description of one loop and its arrays.
type Spec struct {
	Name  string `json:"name"`
	Iters int    `json:"iters"`
	// Seed feeds rand()/randint() in initializer expressions.
	Seed uint64 `json:"seed,omitempty"`

	Arrays []ArraySpec `json:"arrays"`
	Reads  []RefSpec   `json:"reads"`
	Writes []RefSpec   `json:"writes"`

	// Pre is the optional read-only computation stage; its expressions
	// see i and r0..rK (the read-only operands, in Reads order).
	Pre *StageSpec `json:"pre,omitempty"`
	// Final produces one value per write reference; its expressions see
	// i, the pre results p0.. (or the raw read-only operands r0.. when
	// there is no pre stage), and the read-write operands rw0...
	Final StageSpec `json:"final"`

	// NoCompilerPrefetch marks the loop as unanalyzable by the modelled
	// compiler prefetcher (see loopir.Loop.NoCompilerPrefetch).
	NoCompilerPrefetch bool `json:"no_compiler_prefetch,omitempty"`
}

// ArraySpec describes one simulated array.
type ArraySpec struct {
	Name string `json:"name"`
	Len  int    `json:"len"`
	// Elem is the element size in bytes (default 8).
	Elem int `json:"elem,omitempty"`
	// Init is an expression over i and n giving each element's initial
	// value (default 0). Index arrays must initialize to integral values.
	Init string `json:"init,omitempty"`
	// Congruence pins the array's base address to Offset modulo Modulus,
	// the tool for engineering cache-set conflicts.
	Congruence *CongruenceSpec `json:"congruence,omitempty"`
	// Align sets base alignment in bytes (default: element size). Ignored
	// when Congruence is set.
	Align int `json:"align,omitempty"`
}

// CongruenceSpec is a base-address congruence constraint.
type CongruenceSpec struct {
	Offset  int `json:"offset"`
	Modulus int `json:"modulus"`
}

// IndexSpec selects an element per iteration: Scale*i+Offset, indirected
// through Table when set (Table[Scale*i+Offset]).
type IndexSpec struct {
	Scale  *int   `json:"scale,omitempty"` // default 1
	Offset int    `json:"offset,omitempty"`
	Table  string `json:"table,omitempty"`
}

// RefSpec is one memory reference.
type RefSpec struct {
	Array string    `json:"array"`
	Index IndexSpec `json:"index"`
	// ReadWrite marks a read of data the loop also writes (ineligible for
	// restructuring). Only meaningful in Reads.
	ReadWrite bool `json:"readwrite,omitempty"`
}

// StageSpec is a computation stage: expressions plus a cycle cost.
type StageSpec struct {
	Exprs  []string `json:"exprs"`
	Cycles int64    `json:"cycles,omitempty"`
}

// Parse decodes a JSON spec, rejecting unknown fields so typos surface.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loopspec: %w", err)
	}
	return &s, nil
}

// Build materializes the spec: allocates and initializes the arrays in a
// fresh address space, compiles the expressions, and assembles a
// validated loop.
func Build(s *Spec) (*memsim.Space, *loopir.Loop, error) {
	if s.Name == "" {
		return nil, nil, fmt.Errorf("loopspec: spec has no name")
	}
	if s.Iters <= 0 {
		return nil, nil, fmt.Errorf("loopspec: %s: iters = %d", s.Name, s.Iters)
	}
	if len(s.Arrays) == 0 {
		return nil, nil, fmt.Errorf("loopspec: %s: no arrays", s.Name)
	}
	if len(s.Writes) == 0 {
		return nil, nil, fmt.Errorf("loopspec: %s: no writes", s.Name)
	}
	if len(s.Final.Exprs) != len(s.Writes) {
		return nil, nil, fmt.Errorf("loopspec: %s: final has %d expressions for %d writes",
			s.Name, len(s.Final.Exprs), len(s.Writes))
	}

	space := memsim.NewSpace()
	arrays := make(map[string]*memsim.Array, len(s.Arrays))
	for _, a := range s.Arrays {
		if a.Name == "" || a.Len <= 0 {
			return nil, nil, fmt.Errorf("loopspec: %s: array %q with len %d", s.Name, a.Name, a.Len)
		}
		if _, dup := arrays[a.Name]; dup {
			return nil, nil, fmt.Errorf("loopspec: %s: duplicate array %q", s.Name, a.Name)
		}
		elem := a.Elem
		if elem == 0 {
			elem = 8
		}
		var arr *memsim.Array
		if a.Congruence != nil {
			arr = space.AllocAt(a.Name, a.Len, elem, a.Congruence.Offset, a.Congruence.Modulus)
		} else {
			align := a.Align
			if align == 0 {
				align = elem
			}
			arr = space.Alloc(a.Name, a.Len, elem, align)
		}
		if a.Init != "" {
			expr, err := Compile(a.Init, []string{"i", "n"})
			if err != nil {
				return nil, nil, fmt.Errorf("loopspec: %s: array %s init: %w", s.Name, a.Name, err)
			}
			n := float64(a.Len)
			vals := make([]float64, 2)
			arr.Fill(func(i int) float64 {
				vals[0], vals[1] = float64(i), n
				return expr.Eval(vals, s.Seed)
			})
		}
		arrays[a.Name] = arr
	}

	mkRef := func(r RefSpec) (loopir.Ref, error) {
		arr, ok := arrays[r.Array]
		if !ok {
			return loopir.Ref{}, fmt.Errorf("loopspec: %s: unknown array %q", s.Name, r.Array)
		}
		scale := 1
		if r.Index.Scale != nil {
			scale = *r.Index.Scale
		}
		aff := loopir.Affine{Scale: scale, Offset: r.Index.Offset}
		var ix loopir.IndexExpr = aff
		if r.Index.Table != "" {
			tbl, ok := arrays[r.Index.Table]
			if !ok {
				return loopir.Ref{}, fmt.Errorf("loopspec: %s: unknown index table %q", s.Name, r.Index.Table)
			}
			ix = loopir.Indirect{Tbl: tbl, Entry: aff}
		}
		return loopir.Ref{Array: arr, Index: ix}, nil
	}

	var ro, rw []loopir.Ref
	for _, r := range s.Reads {
		ref, err := mkRef(r)
		if err != nil {
			return nil, nil, err
		}
		if r.ReadWrite {
			rw = append(rw, ref)
		} else {
			ro = append(ro, ref)
		}
	}
	writes := make([]loopir.Ref, 0, len(s.Writes))
	for _, r := range s.Writes {
		ref, err := mkRef(r)
		if err != nil {
			return nil, nil, err
		}
		writes = append(writes, ref)
	}

	l := &loopir.Loop{
		Name:               s.Name,
		Iters:              s.Iters,
		RO:                 ro,
		RW:                 rw,
		Writes:             writes,
		FinalCycles:        s.Final.Cycles,
		NoCompilerPrefetch: s.NoCompilerPrefetch,
	}

	// Compile the pre stage.
	nPreInputs := len(ro)
	preNames := varNames("r", nPreInputs)
	if s.Pre != nil {
		if len(s.Pre.Exprs) == 0 {
			return nil, nil, fmt.Errorf("loopspec: %s: pre stage with no expressions", s.Name)
		}
		exprs, err := compileAll(s.Pre.Exprs, append([]string{"i"}, preNames...))
		if err != nil {
			return nil, nil, fmt.Errorf("loopspec: %s: pre: %w", s.Name, err)
		}
		l.PreCycles = s.Pre.Cycles
		l.NPre = len(exprs)
		seed := s.Seed
		scratchIn := make([]float64, 1+nPreInputs)
		scratchOut := make([]float64, len(exprs))
		l.Pre = func(i int, roVals []float64) []float64 {
			scratchIn[0] = float64(i)
			copy(scratchIn[1:], roVals)
			for k, e := range exprs {
				scratchOut[k] = e.Eval(scratchIn, seed)
			}
			return scratchOut
		}
	}

	// Compile the final stage.
	finalPreNames := varNames("p", l.NPre)
	if s.Pre == nil {
		finalPreNames = preNames // raw operands keep their r names
	}
	finalVars := append(append([]string{"i"}, finalPreNames...), varNames("rw", len(rw))...)
	finalExprs, err := compileAll(s.Final.Exprs, finalVars)
	if err != nil {
		return nil, nil, fmt.Errorf("loopspec: %s: final: %w", s.Name, err)
	}
	seed := s.Seed
	nPre := l.NPre
	if s.Pre == nil {
		nPre = nPreInputs
	}
	finIn := make([]float64, 1+nPre+len(rw))
	finOut := make([]float64, len(finalExprs))
	l.Final = func(i int, pre, rwVals []float64) []float64 {
		finIn[0] = float64(i)
		copy(finIn[1:], pre)
		copy(finIn[1+len(pre):], rwVals)
		for k, e := range finalExprs {
			finOut[k] = e.Eval(finIn, seed)
		}
		return finOut
	}

	if err := l.Validate(); err != nil {
		return nil, nil, err
	}
	if err := l.CheckBounds(); err != nil {
		return nil, nil, err
	}
	return space, l, nil
}

// compileAll compiles a list of expressions against one scope.
func compileAll(srcs, vars []string) ([]*Expr, error) {
	out := make([]*Expr, len(srcs))
	for k, src := range srcs {
		e, err := Compile(src, vars)
		if err != nil {
			return nil, err
		}
		out[k] = e
	}
	return out, nil
}

// varNames generates prefix0..prefix(n-1).
func varNames(prefix string, n int) []string {
	out := make([]string, n)
	for k := range out {
		out[k] = fmt.Sprintf("%s%d", prefix, k)
	}
	return out
}
