package loopspec_test

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/loopspec"
	"repro/internal/machine"
)

// Example defines a loop in JSON, builds it, and cascades it.
func Example() {
	spec, err := loopspec.Parse([]byte(`{
		"name": "saxpy",
		"iters": 16384,
		"arrays": [
			{"name": "X", "len": 16384, "init": "i % 10"},
			{"name": "Y", "len": 16384, "init": "i % 3"},
			{"name": "OUT", "len": 16384}
		],
		"reads": [
			{"array": "X", "index": {}},
			{"array": "Y", "index": {}}
		],
		"writes": [{"array": "OUT", "index": {}}],
		"final": {"exprs": ["2.5*r0 + r1"], "cycles": 2}
	}`))
	if err != nil {
		panic(err)
	}
	space, loop, err := loopspec.Build(spec)
	if err != nil {
		panic(err)
	}
	res, err := cascade.Run(machine.MustNew(machine.PentiumPro(4)), loop,
		cascade.DefaultOptions(cascade.HelperRestructure, space))
	if err != nil {
		panic(err)
	}
	out := loop.Writes[0].Array
	fmt.Println("OUT[7] =", out.Load(7))
	fmt.Println("chunks >= 4:", res.Chunks >= 4)
	// Output:
	// OUT[7] = 18.5
	// chunks >= 4: true
}

// ExampleCompile shows the expression language directly.
func ExampleCompile() {
	expr, err := loopspec.Compile("max(a, b) + floor(a/2)", []string{"a", "b"})
	if err != nil {
		panic(err)
	}
	fmt.Println(expr.Eval([]float64{5, 3}, 0))
	// Output:
	// 7
}
