package loopspec

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func evalOne(t *testing.T, src string, vars []string, vals []float64) float64 {
	t.Helper()
	e, err := Compile(src, vars)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return e.Eval(vals, 42)
}

func TestExprArithmetic(t *testing.T) {
	vars := []string{"i", "a", "b"}
	vals := []float64{5, 2, 3}
	cases := []struct {
		src  string
		want float64
	}{
		{"1", 1},
		{"1.5", 1.5},
		{"2e3", 2000},
		{"1e-2", 0.01},
		{"i", 5},
		{"a+b", 5},
		{"a-b", -1},
		{"a*b", 6},
		{"b/a", 1.5},
		{"i%a", 1},
		{"-a", -2},
		{"--a", 2},
		{"a+b*i", 17},
		{"(a+b)*i", 25},
		{"2*i + 3*a - b", 13},
		{"min(a, b)", 2},
		{"max(a, b)", 3},
		{"abs(a-b)", 1},
		{"floor(b/a)", 1},
		{"a + min(i, b) * 2", 8},
		{"  a  +  b ", 5},
	}
	for _, c := range cases {
		if got := evalOne(t, c.src, vars, vals); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	vars := []string{"i"}
	cases := []struct {
		src  string
		want string
	}{
		{"", "unexpected"},
		{"i +", "unexpected"},
		{"(i", "missing )"},
		{"i)", "after expression"},
		{"foo", "unknown variable"},
		{"foo(1)", "unknown function"},
		{"min(1)", "takes 2 arguments"},
		{"rand(1)", "takes 0 arguments"},
		{"min(1, 2", "missing )"},
		{"1..2", "bad number"},
		{"i @ 2", "unexpected"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, vars)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestExprRandDeterministic(t *testing.T) {
	e, err := Compile("rand()", []string{"i"})
	if err != nil {
		t.Fatal(err)
	}
	a := e.Eval([]float64{7}, 1)
	b := e.Eval([]float64{7}, 1)
	if a != b {
		t.Error("rand not deterministic for fixed (i, seed)")
	}
	if a == e.Eval([]float64{8}, 1) {
		t.Error("rand constant across indices")
	}
	if a == e.Eval([]float64{7}, 2) {
		t.Error("rand constant across seeds")
	}
	if a < 0 || a >= 1 {
		t.Errorf("rand out of [0,1): %v", a)
	}
}

func TestExprRandintRange(t *testing.T) {
	e, err := Compile("randint(10)", []string{"i"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := e.Eval([]float64{float64(i)}, 3)
		if v != math.Trunc(v) || v < 0 || v >= 10 {
			t.Fatalf("randint(10) at i=%d -> %v", i, v)
		}
	}
	if e.Eval([]float64{1}, 3) == e.Eval([]float64{2}, 3) &&
		e.Eval([]float64{3}, 3) == e.Eval([]float64{4}, 3) &&
		e.Eval([]float64{5}, 3) == e.Eval([]float64{6}, 3) {
		t.Error("randint suspiciously constant")
	}
	zero, _ := Compile("randint(0)", []string{"i"})
	if zero.Eval([]float64{1}, 3) != 0 {
		t.Error("randint(0) should be 0")
	}
}

func TestExprPrecedenceProperty(t *testing.T) {
	// a + b*c always equals a + (b*c) for random values.
	f := func(a, b, c int16) bool {
		vars := []string{"a", "b", "c"}
		vals := []float64{float64(a), float64(b), float64(c)}
		e1, err := Compile("a + b*c", vars)
		if err != nil {
			return false
		}
		e2, err := Compile("a + (b*c)", vars)
		if err != nil {
			return false
		}
		return e1.Eval(vals, 0) == e2.Eval(vals, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExprString(t *testing.T) {
	e, _ := Compile("a+1", []string{"a"})
	if e.String() != "a+1" {
		t.Errorf("String = %q", e.String())
	}
}

func TestLeftAssociativity(t *testing.T) {
	if got := evalOne(t, "10-3-2", nil, nil); got != 5 {
		t.Errorf("10-3-2 = %v, want 5", got)
	}
	if got := evalOne(t, "16/4/2", nil, nil); got != 2 {
		t.Errorf("16/4/2 = %v, want 2", got)
	}
}
