package loopspec

import (
	"strings"
	"testing"

	"repro/internal/cascade"
	"repro/internal/machine"
)

// scatterSpec is the paper's synthetic loop as JSON.
const scatterSpec = `{
	"name": "scatter-add",
	"iters": 4096,
	"seed": 7,
	"arrays": [
		{"name": "X",  "len": 4096, "elem": 8, "init": "i % 97"},
		{"name": "IJ", "len": 4096, "elem": 4, "init": "randint(4096)"},
		{"name": "A",  "len": 4096, "elem": 8, "init": "i % 13",
		 "congruence": {"offset": 0, "modulus": 4096}},
		{"name": "B",  "len": 4096, "elem": 8, "init": "i % 7",
		 "congruence": {"offset": 0, "modulus": 4096}}
	],
	"reads": [
		{"array": "A", "index": {}},
		{"array": "B", "index": {}},
		{"array": "X", "index": {"table": "IJ"}, "readwrite": true}
	],
	"writes": [
		{"array": "X", "index": {"table": "IJ"}}
	],
	"pre":   {"exprs": ["r0 + 2*r1"], "cycles": 2},
	"final": {"exprs": ["rw0 + p0"], "cycles": 1},
	"no_compiler_prefetch": true
}`

func TestParseAndBuild(t *testing.T) {
	s, err := Parse([]byte(scatterSpec))
	if err != nil {
		t.Fatal(err)
	}
	space, l, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "scatter-add" || l.Iters != 4096 {
		t.Errorf("loop = %s", l)
	}
	if len(l.RO) != 2 || len(l.RW) != 1 || len(l.Writes) != 1 {
		t.Errorf("ref split: %d ro, %d rw, %d writes", len(l.RO), len(l.RW), len(l.Writes))
	}
	if !l.NoCompilerPrefetch {
		t.Error("no_compiler_prefetch not propagated")
	}
	if l.PreCycles != 2 || l.FinalCycles != 1 {
		t.Errorf("cycles = %d/%d", l.PreCycles, l.FinalCycles)
	}
	if len(space.Arrays()) != 4 {
		t.Errorf("arrays = %d", len(space.Arrays()))
	}
	// Congruence honored.
	for _, a := range space.Arrays() {
		if a.Name() == "A" || a.Name() == "B" {
			if int(a.Base())%4096 != 0 {
				t.Errorf("%s congruence violated: %s", a.Name(), a.Base())
			}
		}
	}
}

func TestBuiltLoopValueSemantics(t *testing.T) {
	s, err := Parse([]byte(scatterSpec))
	if err != nil {
		t.Fatal(err)
	}
	_, l, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	// Capture inputs before execution mutates X.
	arrays := map[string][]float64{}
	for _, a := range l.Arrays() {
		arrays[a.Name()] = a.Snapshot()
	}
	m := machine.MustNew(machine.PentiumPro(1))
	cascade.RunSequential(m, l, false)

	// Independent reference computation.
	want := append([]float64(nil), arrays["X"]...)
	for i := 0; i < l.Iters; i++ {
		j := int(arrays["IJ"][i])
		want[j] += arrays["A"][i] + 2*arrays["B"][i]
	}
	x := l.Writes[0].Array
	for j := range want {
		if x.Load(j) != want[j] {
			t.Fatalf("X[%d] = %v, want %v", j, x.Load(j), want[j])
		}
	}
}

func TestSpecCascadedEquivalence(t *testing.T) {
	run := func(helper cascade.Helper, useCascade bool) []float64 {
		s, err := Parse([]byte(scatterSpec))
		if err != nil {
			t.Fatal(err)
		}
		space, l, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.MustNew(machine.PentiumPro(4))
		if useCascade {
			opts := cascade.DefaultOptions(helper, space)
			opts.ChunkBytes = 2048
			cascade.MustRun(m, l, opts)
		} else {
			cascade.RunSequential(m, l, true)
		}
		return l.Writes[0].Array.Snapshot()
	}
	want := run(0, false)
	for _, h := range []cascade.Helper{cascade.HelperPrefetch, cascade.HelperRestructure} {
		got := run(h, true)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%v: X[%d] = %v, want %v", h, j, got[j], want[j])
			}
		}
	}
}

func TestSpecWithoutPre(t *testing.T) {
	src := `{
		"name": "copy",
		"iters": 64,
		"arrays": [
			{"name": "A", "len": 64, "init": "3*i"},
			{"name": "C", "len": 64}
		],
		"reads":  [{"array": "A", "index": {}}],
		"writes": [{"array": "C", "index": {}}],
		"final":  {"exprs": ["r0 + 1"], "cycles": 1}
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	_, l, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MustNew(machine.PentiumPro(1))
	cascade.RunSequential(m, l, false)
	c := l.Writes[0].Array
	for i := 0; i < 64; i++ {
		if c.Load(i) != float64(3*i+1) {
			t.Fatalf("C[%d] = %v", i, c.Load(i))
		}
	}
}

func TestSpecStrideAndOffset(t *testing.T) {
	src := `{
		"name": "strided",
		"iters": 32,
		"arrays": [
			{"name": "A", "len": 70, "init": "i"},
			{"name": "C", "len": 32}
		],
		"reads":  [{"array": "A", "index": {"scale": 2, "offset": 1}}],
		"writes": [{"array": "C", "index": {}}],
		"final":  {"exprs": ["r0"]}
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	_, l, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	cascade.RunSequential(machine.MustNew(machine.PentiumPro(1)), l, false)
	c := l.Writes[0].Array
	for i := 0; i < 32; i++ {
		if c.Load(i) != float64(2*i+1) {
			t.Fatalf("C[%d] = %v, want %d", i, c.Load(i), 2*i+1)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name": "x", "bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	base := func(mutate func(*Spec)) error {
		s, err := Parse([]byte(scatterSpec))
		if err != nil {
			t.Fatal(err)
		}
		mutate(s)
		_, _, err = Build(s)
		return err
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "no name"},
		{"no iters", func(s *Spec) { s.Iters = 0 }, "iters"},
		{"no arrays", func(s *Spec) { s.Arrays = nil }, "no arrays"},
		{"no writes", func(s *Spec) { s.Writes = nil }, "no writes"},
		{"final arity", func(s *Spec) { s.Final.Exprs = nil }, "final has 0 expressions"},
		{"dup array", func(s *Spec) { s.Arrays = append(s.Arrays, s.Arrays[0]) }, "duplicate array"},
		{"bad read array", func(s *Spec) { s.Reads[0].Array = "NOPE" }, "unknown array"},
		{"bad table", func(s *Spec) { s.Reads[2].Index.Table = "NOPE" }, "unknown index table"},
		{"bad init", func(s *Spec) { s.Arrays[0].Init = "qq+" }, "unknown variable"},
		{"bad pre expr", func(s *Spec) { s.Pre.Exprs = []string{"nope"} }, "unknown variable"},
		{"empty pre", func(s *Spec) { s.Pre.Exprs = nil }, "no expressions"},
		{"bad final expr", func(s *Spec) { s.Final.Exprs = []string{"zz"} }, "unknown variable"},
		{"zero-len array", func(s *Spec) { s.Arrays[0].Len = 0 }, "len 0"},
		{"iters beyond arrays", func(s *Spec) { s.Iters = 100000 }, "out of"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := base(c.mutate)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestVarNames(t *testing.T) {
	got := varNames("r", 3)
	if len(got) != 3 || got[0] != "r0" || got[2] != "r2" {
		t.Errorf("varNames = %v", got)
	}
	if len(varNames("p", 0)) != 0 {
		t.Error("varNames(0) should be empty")
	}
}
