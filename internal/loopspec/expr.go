// Package loopspec loads loop descriptions from JSON, so workloads can be
// defined, shared and cascaded without writing Go. A spec names the
// simulated arrays (with sizes, element widths, placement and value
// initializers), the loop's references (affine or indirect, read-only or
// read-write), and its value semantics as arithmetic expressions over the
// loaded operands. loopspec compiles the expressions and produces a
// ready-to-run loopir.Loop.
//
// The expression language is deliberately small: floating-point
// arithmetic (+ - * / %), parentheses, unary minus, numeric literals,
// variables, and the functions min, max, abs, floor, rand and randint.
// Which variables are in scope depends on context:
//
//   - array initializers: i (element index), n (array length)
//   - the pre stage: i, and r0..rK for the read-only operand values
//   - the final stage: i, p0..pK for the pre results (or r0..rK when
//     there is no pre stage), and rw0..rwK for the read-write operands
//
// rand() is a deterministic hash of the evaluation index and the spec's
// seed, uniform in [0,1); randint(k) is floor(rand()*k). Determinism
// keeps runs reproducible and strategies comparable.
package loopspec

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Expr is a compiled expression.
type Expr struct {
	src  string
	node node
	vars []string // variable names in scope, in slot order
}

// Compile parses src with the given variable names in scope.
func Compile(src string, vars []string) (*Expr, error) {
	p := &parser{input: src, vars: vars}
	p.next()
	n, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("loopspec: %q: %w", src, err)
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("loopspec: %q: unexpected %q after expression", src, p.tok.text)
	}
	return &Expr{src: src, node: n, vars: vars}, nil
}

// Eval evaluates the expression. vals must be ordered like the vars slice
// passed to Compile; seed feeds rand().
func (e *Expr) Eval(vals []float64, seed uint64) float64 {
	return e.node.eval(vals, seed)
}

// String returns the source text.
func (e *Expr) String() string { return e.src }

// node is an AST node.
type node interface {
	eval(vals []float64, seed uint64) float64
}

type numNode float64

func (n numNode) eval([]float64, uint64) float64 { return float64(n) }

type varNode int

func (n varNode) eval(vals []float64, _ uint64) float64 { return vals[n] }

type binNode struct {
	op   byte
	l, r node
}

func (n binNode) eval(vals []float64, seed uint64) float64 {
	l := n.l.eval(vals, seed)
	r := n.r.eval(vals, seed)
	switch n.op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '/':
		return l / r
	case '%':
		return math.Mod(l, r)
	}
	panic("loopspec: unknown operator")
}

type negNode struct{ x node }

func (n negNode) eval(vals []float64, seed uint64) float64 {
	return -n.x.eval(vals, seed)
}

type callNode struct {
	fn   string
	args []node
}

func (n callNode) eval(vals []float64, seed uint64) float64 {
	arg := func(k int) float64 { return n.args[k].eval(vals, seed) }
	switch n.fn {
	case "min":
		return math.Min(arg(0), arg(1))
	case "max":
		return math.Max(arg(0), arg(1))
	case "abs":
		return math.Abs(arg(0))
	case "floor":
		return math.Floor(arg(0))
	case "rand":
		// Hash the first in-scope variable (the evaluation index by
		// convention) with the seed: splitmix64 finalizer.
		x := seed ^ uint64(int64(vals[0]))*0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		return float64(x>>11) / float64(uint64(1)<<53)
	case "randint":
		k := arg(0)
		if k <= 0 {
			return 0
		}
		r := callNode{fn: "rand"}.eval(vals, seed)
		return math.Floor(r * k)
	}
	panic("loopspec: unknown function " + n.fn)
}

// arity maps function names to argument counts.
var arity = map[string]int{
	"min": 2, "max": 2, "abs": 1, "floor": 1, "rand": 0, "randint": 1,
}

// --- lexer/parser -------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp     // + - * / %
	tokLParen // (
	tokRParen // )
	tokComma
)

type token struct {
	kind tokKind
	text string
	num  float64
}

type parser struct {
	input string
	pos   int
	tok   token
	vars  []string
}

// next advances to the next token; lexical errors surface as tokens with
// empty text handled by the parser's expectations.
func (p *parser) next() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "("}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")"}
	case c == ',':
		p.pos++
		p.tok = token{kind: tokComma, text: ","}
	case strings.IndexByte("+-*/%", c) >= 0:
		p.pos++
		p.tok = token{kind: tokOp, text: string(c)}
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.input) {
			c := p.input[p.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				p.pos++
				continue
			}
			// allow exponent sign
			if (c == '+' || c == '-') && p.pos > start &&
				(p.input[p.pos-1] == 'e' || p.input[p.pos-1] == 'E') {
				p.pos++
				continue
			}
			break
		}
		text := p.input[start:p.pos]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.tok = token{kind: tokNum, text: text, num: math.NaN()}
			return
		}
		p.tok = token{kind: tokNum, text: text, num: v}
	case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		start := p.pos
		for p.pos < len(p.input) {
			c := p.input[p.pos]
			if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
				p.pos++
				continue
			}
			break
		}
		p.tok = token{kind: tokIdent, text: p.input[start:p.pos]}
	default:
		p.tok = token{kind: tokOp, text: string(c)} // parser will reject
		p.pos++
	}
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text[0]
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/" || p.tok.text == "%") {
		op := p.tok.text[0]
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negNode{x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	switch p.tok.kind {
	case tokNum:
		if math.IsNaN(p.tok.num) {
			return nil, fmt.Errorf("bad number %q", p.tok.text)
		}
		n := numNode(p.tok.num)
		p.next()
		return n, nil
	case tokIdent:
		name := p.tok.text
		p.next()
		if p.tok.kind == tokLParen {
			want, ok := arity[name]
			if !ok {
				return nil, fmt.Errorf("unknown function %q", name)
			}
			p.next()
			var args []node
			if p.tok.kind != tokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.tok.kind != tokComma {
						break
					}
					p.next()
				}
			}
			if p.tok.kind != tokRParen {
				return nil, fmt.Errorf("missing ) after %s(", name)
			}
			p.next()
			if len(args) != want {
				return nil, fmt.Errorf("%s takes %d arguments, got %d", name, want, len(args))
			}
			return callNode{fn: name, args: args}, nil
		}
		for slot, v := range p.vars {
			if v == name {
				return varNode(slot), nil
			}
		}
		return nil, fmt.Errorf("unknown variable %q (in scope: %s)", name, strings.Join(p.vars, ", "))
	case tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("missing )")
		}
		p.next()
		return inner, nil
	default:
		return nil, fmt.Errorf("unexpected %q", p.tok.text)
	}
}
