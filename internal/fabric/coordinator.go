// Package fabric is the distributed sweep fabric: a coordinator that
// accepts experiment jobs through the same versioned envelope API the
// single-node server speaks, decomposes each sweep into point-level
// work units (internal/experiments' decompositions), shards the points
// across a fleet of cascade-server workers by consistent hashing, and
// merges the returned point results into a response byte-identical to a
// single-node run.
//
// Fleet mechanics:
//
//   - Workers enlist with POST /v1/workers and stay registered by
//     heartbeating; a worker that misses its heartbeat window is
//     declared dead, removed from the hash ring, and its in-flight
//     points are retried on the survivors (fabric.points.retried).
//   - A point dispatch is a lease bounded by the RPC deadline: a worker
//     that dies mid-point fails the RPC, and the coordinator reassigns
//     the point to the next candidate on the ring. Work is only ever
//     lost to terminal experiment errors, never to worker death.
//   - Results are content-addressed end to end: the coordinator checks
//     its own cache index before shipping a point (fabric.cache.hits),
//     workers answer from their local cache when they can ("cached"
//     responses count in fabric.cache.remote_hits), and merged job
//     results land under the same render key a single-node server uses
//     — so a fleet and a server sharing a cache directory memoize each
//     other's work.
//   - Admission control: per-tenant quotas (X-Tenant header) bound how
//     many jobs a tenant may have in flight, on top of the workers' own
//     503 load shedding.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric/journal"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/server"
)

// SiteAssign is the fabric's fault-injection site: armed, it fails a
// point dispatch before the RPC is sent, indistinguishable from a
// worker dying at assignment — the deterministic half of the chaos
// tests' worker-kill coverage.
const SiteAssign = "fabric.assign"

// FaultSites returns every injection site the coordinator consults.
// journal.SiteAppend tears write-ahead appends (short write, no fsync)
// to exercise crash-recovery's torn-tail repair.
func FaultSites() []string { return []string{SiteAssign, journal.SiteAppend} }

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrUnknownExperiment is returned for a name the registry lacks.
	ErrUnknownExperiment = errors.New("unknown experiment")
	// ErrShuttingDown is returned for submissions after Shutdown began.
	ErrShuttingDown = errors.New("coordinator shutting down")
	// ErrQuotaExceeded is returned when the tenant is at its in-flight
	// job quota.
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	// errNoWorkers fails a dispatch when no live worker exists.
	errNoWorkers = errors.New("no live workers")
)

// Config configures a Coordinator. The zero value coordinates the full
// experiment registry with a memory-only result index and no quotas.
type Config struct {
	// Experiments is the served registry (tests inject synthetic
	// sweeps). Default: experiments.Registry(). Workers must serve a
	// superset: decomposition names are resolved on both sides.
	Experiments []experiments.Experiment
	// CacheDir persists the coordinator's result index under this
	// directory; empty keeps it in memory. Pointing it at the same
	// directory as the workers' caches turns disk into a shared
	// result store for the whole fleet.
	CacheDir string
	// JournalDir enables the write-ahead journal (see the journal
	// package and recovery.go): every job and point transition is
	// durably logged, and a coordinator restarted against the same
	// directory re-adopts in-flight jobs instead of losing them. Empty
	// disables durability (the pre-journal, memory-only behaviour).
	JournalDir string
	// Metrics receives the fleet counters. Default: a fresh registry.
	Metrics *metrics.Synced
	// Faults arms the coordinator's injection sites (see FaultSites).
	Faults *faults.Injector
	// FaultSpec and FaultSeed record what Faults was parsed from, so
	// repro bundles carry the exact injection configuration as a
	// replayable input. Informational: they arm nothing themselves.
	FaultSpec string
	FaultSeed int64
	// QuarantineTTL ages out stale .corrupt files from the result
	// index's disk directory at startup, exactly as the server's
	// sweep does. 0 means server.DefaultQuarantineTTL; negative
	// disables.
	QuarantineTTL time.Duration
	// Client performs worker RPCs. Default: an http.Client whose
	// Timeout is LeaseTimeout.
	Client *http.Client
	// LeaseTimeout bounds one point dispatch end to end: a worker that
	// holds a point longer has lost its lease, the RPC fails, and the
	// point is reassigned. Size it above the workers' point deadline.
	// Default: 2m.
	LeaseTimeout time.Duration
	// HeartbeatTimeout is how long a worker may go silent before it is
	// declared dead. Default: 15s.
	HeartbeatTimeout time.Duration
	// MaxInflight bounds concurrent lease dispatches per job (each lease
	// carries up to Batch points). Default: 16.
	MaxInflight int
	// Batch bounds how many points one lease carries: a dispatch ships up
	// to Batch points in one RPC and the worker streams per-point
	// outcomes back. 1 disables batching. 0 — the default — adapts the
	// size per lease from measured point cost vs. RPC overhead (see
	// batch.go); fabric.batch.size gauges the current choice.
	Batch int
	// MaxPointAttempts bounds how many workers one point is tried on
	// before the job fails with the last transport error. Default: 8.
	MaxPointAttempts int
	// RetryBackoff is the base delay between a failed dispatch and its
	// retry, doubling per attempt (capped at 1s). Default: 50ms.
	RetryBackoff time.Duration
	// DefaultQuota bounds any tenant's in-flight jobs; 0 = unlimited.
	// Quotas overrides it per tenant (a 0 entry means unlimited for
	// that tenant).
	DefaultQuota int
	Quotas       map[string]int
	// ProgressInterval is the keep-alive cadence of streaming ?wait
	// responses. Default: server.DefaultProgressInterval.
	ProgressInterval time.Duration
}

// Coordinator owns the fleet: worker membership, the hash ring, the
// job table, and the shared result index. Create with New, expose
// Handler over HTTP, stop with Shutdown.
type Coordinator struct {
	cfg     Config
	metrics *metrics.Synced
	cache   *server.Cache
	faults  *faults.Injector
	client  *http.Client
	infos   []experiments.Info
	exps    map[string]bool

	// Durability (nil journal = memory-only coordination). epoch is
	// this incarnation's fencing token: one greater than any epoch the
	// journal has seen, immutable after New.
	journal *journal.Journal
	epoch   uint64

	// tuner sizes batched leases when Config.Batch is adaptive.
	tuner batchTuner

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup // job runners + reaper

	stopReap chan struct{} // closed once by Shutdown

	mu      sync.Mutex
	closed  bool
	nextID  int
	jobs    map[string]*fjob
	order   []*fjob
	workers map[string]*workerRec
	ring    *ring
	tenants map[string]int // tenant → in-flight jobs
	wake    chan struct{}  // closed+replaced when membership grows
}

// workerRec is one enlisted worker.
type workerRec struct {
	Name     string    `json:"name"`
	URL      string    `json:"url"`
	LastSeen time.Time `json:"last_seen"`
	Alive    bool      `json:"alive"`
}

// New builds a coordinator and starts its heartbeat reaper.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Experiments == nil {
		cfg.Experiments = experiments.Registry()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewSynced()
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 15 * time.Second
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 16
	}
	if cfg.MaxPointAttempts <= 0 {
		cfg.MaxPointAttempts = 8
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = server.DefaultProgressInterval
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.LeaseTimeout}
	}
	initMetrics(cfg.Metrics)
	cache, err := server.NewCache(cfg.CacheDir, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	if cfg.QuarantineTTL == 0 {
		cfg.QuarantineTTL = server.DefaultQuarantineTTL
	}
	if cfg.QuarantineTTL > 0 {
		cache.PurgeQuarantine(cfg.QuarantineTTL)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:       cfg,
		metrics:   cfg.Metrics,
		cache:     cache,
		faults:    cfg.Faults,
		client:    cfg.Client,
		exps:      make(map[string]bool, len(cfg.Experiments)),
		runCtx:    runCtx,
		cancelRun: cancel,
		stopReap:  make(chan struct{}),
		jobs:      make(map[string]*fjob),
		workers:   make(map[string]*workerRec),
		ring:      buildRing(nil),
		tenants:   make(map[string]int),
		wake:      make(chan struct{}),
		nextID:    1,
	}
	for _, e := range cfg.Experiments {
		if c.exps[e.Name] {
			cancel()
			return nil, fmt.Errorf("fabric: duplicate experiment %q", e.Name)
		}
		c.exps[e.Name] = true
		c.infos = append(c.infos, e.Info())
	}
	if err := c.openJournal(); err != nil {
		cancel()
		return nil, err
	}
	c.metrics.Set(mEpoch, int64(c.epoch))
	c.wg.Add(1)
	go c.reaper()
	return c, nil
}

// Epoch returns this incarnation's fencing token: 1 for a fresh
// coordinator, one greater than the predecessor's for each recovery.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// jappend durably journals records, degrading on failure: coordination
// continues memory-only for this batch (the record is lost to a future
// recovery, never to the running job) and fabric.journal.errors counts
// the loss. A closed journal (Kill) is silent — the incarnation is dead
// and its remaining goroutines are just draining.
func (c *Coordinator) jappend(recs ...journal.Record) {
	if c.journal == nil {
		return
	}
	if err := c.journal.Append(recs...); err != nil {
		if !errors.Is(err, journal.ErrClosed) {
			c.metrics.Inc(mJournalErrors)
		}
		return
	}
	c.metrics.Add(mJournalRecords, int64(len(recs)))
}

// Kill simulates a coordinator crash for recovery tests: submissions
// stop, the journal's descriptor closes without compaction or a final
// sync (releasing the incarnation flock exactly as process death
// would), and in-flight work dies with the run context — no drain, no
// terminal journal records. The instance is unusable afterwards;
// recover by calling New against the same JournalDir.
func (c *Coordinator) Kill() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stopReap)
	}
	c.mu.Unlock()
	// Fence the journal before cancelling work so dying dispatch loops
	// cannot journal outcomes a real crash would never have written.
	if c.journal != nil {
		c.journal.Kill()
	}
	c.cancelRun()
	c.wg.Wait()
}

// Shutdown stops the coordinator: new submissions are rejected and
// in-flight jobs drain (their point RPCs are bounded by LeaseTimeout).
// If ctx expires first, the run context is cancelled — dispatch loops
// stop and the affected jobs fail — and ctx's error is returned.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stopReap)
	}
	c.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		c.cancelRun()
		<-drained
		err = ctx.Err()
	}
	c.cancelRun()
	if c.journal != nil {
		c.journal.Close()
	}
	return err
}

// Draining reports whether Shutdown has begun.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Metrics returns a snapshot of the fleet metrics.
func (c *Coordinator) Metrics() metrics.Snapshot {
	return c.metrics.Snapshot()
}

// Experiments returns the coordinated experiments' metadata.
func (c *Coordinator) Experiments() []experiments.Info {
	return c.infos
}

// Register enlists (or re-enlists — registration doubles as the
// heartbeat) a worker under a stable name at a base URL. A worker
// changing URLs mid-life is treated as the same ring member at a new
// address.
func (c *Coordinator) Register(name, url string) error {
	if name == "" || url == "" {
		return errors.New("worker registration needs name and url")
	}
	c.metrics.Inc(mWorkersRegistered)
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[name]
	if !ok {
		w = &workerRec{Name: name}
		c.workers[name] = w
	}
	revived := !w.Alive
	w.URL = url
	w.LastSeen = time.Now()
	w.Alive = true
	if revived {
		c.rebuildRingLocked()
		c.wakeLocked()
	}
	return nil
}

// Workers returns the current membership, sorted by name.
func (c *Coordinator) Workers() []workerRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]workerRec, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// reaper declares silent workers dead. It runs at a quarter of the
// heartbeat window so death detection lags silence by at most ~1.25
// windows.
func (c *Coordinator) reaper() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HeartbeatTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.reapOnce(time.Now())
		case <-c.stopReap:
			return
		case <-c.runCtx.Done():
			return
		}
	}
}

// reapOnce marks every worker silent past the heartbeat window dead and
// rebuilds the ring if membership changed.
func (c *Coordinator) reapOnce(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for _, w := range c.workers {
		if w.Alive && now.Sub(w.LastSeen) > c.cfg.HeartbeatTimeout {
			w.Alive = false
			changed = true
			c.metrics.Inc(mWorkersDeaths)
		}
	}
	if changed {
		c.rebuildRingLocked()
	}
}

// rebuildRingLocked rebuilds the hash ring from live members and
// refreshes the alive gauge. Callers must hold c.mu.
func (c *Coordinator) rebuildRingLocked() {
	var names []string
	for _, w := range c.workers {
		if w.Alive {
			names = append(names, w.Name)
		}
	}
	sort.Strings(names)
	c.ring = buildRing(names)
	c.metrics.Set(mWorkersAlive, int64(len(names)))
}

// wakeLocked signals dispatchers blocked on an empty fleet. Callers
// must hold c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// candidates resolves a key's failover sequence to live worker URLs,
// plus the channel a dispatcher waits on when the fleet is empty.
func (c *Coordinator) candidates(key string) (urls []string, wake <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range c.ring.candidates(key) {
		if w, ok := c.workers[name]; ok && w.Alive {
			urls = append(urls, w.URL)
		}
	}
	return urls, c.wake
}

// quota returns the tenant's in-flight job bound (0 = unlimited).
func (c *Coordinator) quota(tenant string) int {
	if q, ok := c.cfg.Quotas[tenant]; ok {
		return q
	}
	return c.cfg.DefaultQuota
}
