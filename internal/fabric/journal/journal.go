// Package journal is the coordinator's write-ahead log: an append-only
// record of every job and point state transition, durable enough that a
// coordinator killed mid-sweep can restart, replay the log, and resume
// exactly the work that was genuinely unfinished.
//
// Format (wal.log inside the journal directory):
//
//	magic   "cascade-journal/v1\n"
//	frame*  4-byte big-endian payload length
//	        4-byte big-endian CRC32 (IEEE) of the payload
//	        payload: one Record as compact JSON
//
// Appends are batched: one Append call writes all its frames and issues
// one fsync, so a record returned from Append survives a crash. A crash
// mid-write leaves a torn tail — a frame whose length, checksum, or JSON
// doesn't hold — which Open truncates back to the last intact frame
// (the write-ahead contract: an unacknowledged record may be lost, an
// acknowledged one may not).
//
// Open also takes an exclusive flock on the log, so two coordinator
// incarnations can never interleave writes: a partitioned predecessor
// that still holds the file blocks its successor from starting at all,
// and a crashed one releases the lock with its process.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faults"
)

// Magic is the journal file header. A file that exists but doesn't
// start with it belongs to something else; Open refuses to touch it.
const Magic = "cascade-journal/v1\n"

// SiteAppend is the journal's fault-injection site: armed, an Append
// writes only half of its batch (a real torn tail, not a simulated
// one) and reports failure — the crash-mid-write case the replay
// truncation exists for.
const SiteAppend = "fabric.journal"

// logName is the journal file within its directory.
const logName = "wal.log"

// maxFrame bounds one record's payload. A length prefix beyond it is
// treated as a torn tail rather than an allocation request.
const maxFrame = 1 << 20

// Record types, in the order a job's life emits them.
const (
	// TypeEpoch opens a coordinator incarnation. Every journal begins
	// with one; each recovery appends the next.
	TypeEpoch = "epoch"
	// TypeJobAccepted admits a job that missed the result cache and is
	// about to run. Cache-answered jobs never reach the journal: they
	// hold no state worth recovering.
	TypeJobAccepted = "job_accepted"
	// TypePointAssigned leases one point to a worker. Epoch stamps the
	// incarnation that issued the lease, so a recovered coordinator can
	// fence assignments its predecessor left in flight.
	TypePointAssigned = "point_assigned"
	// TypePointCompleted records a point result landing in the
	// content-addressed index under Key.
	TypePointCompleted = "point_completed"
	// TypePointRetried closes a lease that died (worker death, load
	// shed, fenced predecessor assignment) and was reissued.
	TypePointRetried = "point_retried"
	// TypePointFailed closes a lease terminally (experiment error).
	TypePointFailed = "point_failed"
	// TypeJobMerged finishes a job: points merged, result cached under
	// Key. Compaction drops the whole job once this lands.
	TypeJobMerged = "job_merged"
	// TypeJobFailed finishes a job terminally, carrying the typed code
	// and the repro bundle attached to the failure.
	TypeJobFailed = "job_failed"
)

// Record is one journal entry. Every type uses Type plus the subset of
// fields its grammar names (see the Type constants); the rest stay at
// their zero values and are omitted from the wire.
type Record struct {
	Type   string `json:"type"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`

	// Job admission (job_accepted).
	Experiment string          `json:"experiment,omitempty"`
	Params     json.RawMessage `json:"params,omitempty"`

	// Content addresses: the point key on point records, the render key
	// on job_accepted/job_merged.
	Key string `json:"key,omitempty"`

	// Point index within the job's decomposition. Always serialized:
	// index 0 is a real point.
	Index int `json:"index"`

	// Failure details (point_failed, job_failed).
	Error string          `json:"error,omitempty"`
	Code  string          `json:"code,omitempty"`
	Repro json.RawMessage `json:"repro,omitempty"`
}

// ErrClosed fails appends after Close or Kill.
var ErrClosed = errors.New("journal closed")

// Journal is an open write-ahead log. Appends are serialized
// internally; one Journal is safe for concurrent use.
type Journal struct {
	dir  string
	inj  *faults.Injector
	mu   sync.Mutex
	f    *os.File
	size int64 // bytes durably framed (excludes any torn half-write)
}

// Replay is what Open recovered from an existing log.
type Replay struct {
	// Records, in append order, up to the last intact frame.
	Records []Record
	// TruncatedBytes is how much torn tail Open dropped (0 = clean).
	TruncatedBytes int64
}

// Open opens (or creates) the journal under dir, replays every intact
// record, truncates any torn tail, and locks the log against other
// incarnations. The injector arms SiteAppend; nil runs clean.
func Open(dir string, inj *faults.Injector) (*Journal, Replay, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Replay{}, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Replay{}, fmt.Errorf("journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, Replay{}, fmt.Errorf("journal: %s held by another coordinator: %w", path, err)
	}
	j := &Journal{dir: dir, inj: inj, f: f}
	rep, err := j.replayAndRepair()
	if err != nil {
		f.Close()
		return nil, Replay{}, err
	}
	return j, rep, nil
}

// replayAndRepair scans the log, returns every intact record, and
// truncates the file back to the last intact frame. A fresh (empty)
// file gets its magic written and synced.
func (j *Journal) replayAndRepair() (Replay, error) {
	info, err := j.f.Stat()
	if err != nil {
		return Replay{}, fmt.Errorf("journal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := j.f.WriteString(Magic); err != nil {
			return Replay{}, fmt.Errorf("journal: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return Replay{}, fmt.Errorf("journal: %w", err)
		}
		j.size = int64(len(Magic))
		return Replay{}, nil
	}
	recs, good, err := scan(j.f)
	if err != nil {
		return Replay{}, err
	}
	rep := Replay{Records: recs, TruncatedBytes: info.Size() - good}
	if rep.TruncatedBytes > 0 {
		if err := j.f.Truncate(good); err != nil {
			return Replay{}, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return Replay{}, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return Replay{}, fmt.Errorf("journal: %w", err)
	}
	j.size = good
	return rep, nil
}

// scan reads intact frames from the start of f and reports the offset
// of the first byte past the last intact frame. Any malformed frame —
// short header, oversized length, checksum or JSON mismatch — ends the
// scan there: everything after a tear is unacknowledged by contract.
func scan(f *os.File) (recs []Record, good int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	r := bufio.NewReader(f)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != Magic {
		return nil, 0, fmt.Errorf("journal: not a cascade journal (bad magic)")
	}
	good = int64(len(Magic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return recs, good, nil // clean EOF or torn header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxFrame {
			return recs, good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, good, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil {
			return recs, good, nil
		}
		recs = append(recs, rec)
		good += int64(len(hdr)) + int64(n)
	}
}

// frame appends one encoded record to buf.
func frame(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal record: %w", err)
	}
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("journal: record exceeds %d bytes", maxFrame)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...), nil
}

// Append durably writes a batch of records: all frames in one write,
// one fsync. On return without error the batch survives a crash. With
// SiteAppend armed and firing, only half the batch's bytes reach the
// file and no sync happens — a genuine torn tail for recovery to repair.
func (j *Journal) Append(recs ...Record) error {
	var buf []byte
	for _, rec := range recs {
		var err error
		if buf, err = frame(buf, rec); err != nil {
			return err
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if err := j.inj.Fail(SiteAppend); err != nil {
		j.f.Write(buf[:len(buf)/2]) // the tear: half a batch, never synced
		return fmt.Errorf("journal append: %w", err)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal sync: %w", err)
	}
	j.size += int64(len(buf))
	return nil
}

// Rewrite compacts the log: the given records become its entire
// contents, written to a temp file, synced, and atomically renamed over
// the old log (which stays intact if anything fails part-way).
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	path := filepath.Join(j.dir, logName)
	tmp, err := os.CreateTemp(j.dir, logName+".compact-*")
	if err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	buf := []byte(Magic)
	for _, rec := range recs {
		if buf, err = frame(buf, rec); err != nil {
			tmp.Close()
			return err
		}
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal compact: %w", err)
	}
	// The rename orphaned the locked fd; reopen and relock the new file
	// so the incarnation fence follows the live log.
	nf, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal compact: reopen: %w", err)
	}
	if err := lockFile(nf); err != nil {
		nf.Close()
		return fmt.Errorf("journal compact: relock: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.size = int64(len(buf))
	return nil
}

// Size returns the log's durable length in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close syncs and closes the log, releasing the incarnation lock.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Kill closes the log without a final sync — the crash path for
// recovery tests. The kernel releases the flock with the descriptor,
// exactly as a killed process would.
func (j *Journal) Kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// Read scans a journal file read-only and returns its intact records
// plus how many torn-tail bytes follow them. It takes no lock and
// repairs nothing — safe to run against a live coordinator's log (every
// acknowledged batch is fully framed before Append returns).
func Read(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	recs, good, err := scan(f)
	if err != nil {
		return nil, 0, err
	}
	return recs, info.Size() - good, nil
}

// Path returns the location of a journal directory's log file.
func Path(dir string) string { return filepath.Join(dir, logName) }
