package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

func openClean(t *testing.T, dir string) (*Journal, Replay) {
	t.Helper()
	j, rep, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep := openClean(t, dir)
	if len(rep.Records) != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("fresh journal replayed %+v", rep)
	}
	want := []Record{
		{Type: TypeEpoch, Epoch: 1},
		{Type: TypeJobAccepted, Job: "f1", Tenant: "acme", Experiment: "fig6",
			Params: json.RawMessage(`{"scale":0.25}`), Key: "k-render"},
		{Type: TypePointAssigned, Job: "f1", Index: 0, Key: "k-p0", Epoch: 1},
		{Type: TypePointCompleted, Job: "f1", Index: 0, Key: "k-p0"},
		{Type: TypeJobMerged, Job: "f1", Key: "k-render"},
	}
	if err := j.Append(want[:2]...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Append(want[2:]...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rep2 := openClean(t, dir)
	defer j2.Close()
	if rep2.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rep2.TruncatedBytes)
	}
	if len(rep2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rep2.Records), len(want))
	}
	for i, rec := range rep2.Records {
		got, _ := json.Marshal(rec)
		exp, _ := json.Marshal(want[i])
		if string(got) != string(exp) {
			t.Errorf("record %d: got %s want %s", i, got, exp)
		}
	}
}

// TestTornTailTruncation hand-tears the log at every possible byte
// boundary inside the last frame and asserts replay always recovers the
// prefix and repairs the file.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir)
	recs := []Record{
		{Type: TypeEpoch, Epoch: 1},
		{Type: TypePointAssigned, Job: "f1", Index: 3, Key: "abc", Epoch: 1},
	}
	if err := j.Append(recs...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	goodSize := j.Size()
	if err := j.Append(Record{Type: TypePointCompleted, Job: "f1", Index: 3, Key: "abc"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fullSize := j.Size()
	j.Close()

	path := Path(dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := goodSize + 1; cut < fullSize; cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rep, err := Open(dir, nil)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(rep.Records) != len(recs) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(rep.Records), len(recs))
		}
		if rep.TruncatedBytes != cut-goodSize {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, rep.TruncatedBytes, cut-goodSize)
		}
		// The repair must leave a clean log: appendable and re-replayable.
		if err := j2.Append(Record{Type: TypePointRetried, Job: "f1", Index: 3}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		j2.Close()
		again, _, err := Read(path)
		if err != nil {
			t.Fatalf("cut %d: reread: %v", cut, err)
		}
		if len(again) != len(recs)+1 {
			t.Fatalf("cut %d: after repair+append got %d records, want %d", cut, len(again), len(recs)+1)
		}
	}
}

// TestCorruptFrameStopsReplay flips a payload byte mid-log: the frame's
// CRC no longer holds, so replay must stop at the previous record and
// truncate — checksummed frames, not just length-prefixed ones.
func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir)
	if err := j.Append(Record{Type: TypeEpoch, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	prefix := j.Size()
	if err := j.Append(Record{Type: TypeJobMerged, Job: "f9", Key: "zzz"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := Path(dir)
	raw, _ := os.ReadFile(path)
	raw[prefix+8+2] ^= 0xff // a byte inside the second frame's payload
	os.WriteFile(path, raw, 0o644)

	_, rep, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rep.Records) != 1 || rep.Records[0].Type != TypeEpoch {
		t.Fatalf("replay past a corrupt frame: %+v", rep.Records)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("corrupt frame not truncated")
	}
}

func TestRefusesForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, nil); err == nil {
		t.Fatal("opened a non-journal file")
	}
}

func TestRewriteCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir)
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Type: TypePointAssigned, Job: "f1", Index: i, Epoch: 1}); err != nil {
			t.Fatal(err)
		}
	}
	keep := []Record{
		{Type: TypeEpoch, Epoch: 2},
		{Type: TypeJobAccepted, Job: "f2", Experiment: "fig2", Key: "k2"},
	}
	if err := j.Rewrite(keep); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// The compacted log must stay appendable (fresh fd, lock carried over).
	if err := j.Append(Record{Type: TypePointAssigned, Job: "f2", Index: 0, Epoch: 2}); err != nil {
		t.Fatalf("append after Rewrite: %v", err)
	}
	j.Close()
	recs, torn, err := Read(Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("torn bytes after compaction: %d", torn)
	}
	if len(recs) != 3 || recs[0].Epoch != 2 || recs[1].Job != "f2" || recs[2].Index != 0 {
		t.Fatalf("compacted log replayed %+v", recs)
	}
}

// TestAppendFaultTearsTail arms the fabric.journal site: the poisoned
// Append must report failure, leave a half-written batch, and the next
// Open must truncate it back to the acknowledged prefix.
func TestAppendFaultTearsTail(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(1)
	inj.Arm(SiteAppend, faults.Trigger{OnCall: 2})
	j, _, err := Open(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeEpoch, Epoch: 1}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	// Asymmetric frames so half the batch's bytes land mid-frame: the
	// second record's key pushes the cut point inside it.
	err = j.Append(
		Record{Type: TypePointAssigned, Job: "f1", Index: 0, Epoch: 1},
		Record{Type: TypePointAssigned, Job: "f1", Index: 1, Epoch: 1,
			Key: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"},
	)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("poisoned append returned %v, want injected fault", err)
	}
	j.Kill() // crash without sync, as the fault site intends

	j2, rep, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer j2.Close()
	// The acknowledged prefix must survive; the unacknowledged batch
	// must not survive whole (half its bytes were never written). A
	// leading intact frame of the torn batch may legally be recovered —
	// the contract is about acknowledged records only.
	if len(rep.Records) == 0 || rep.Records[0].Type != TypeEpoch {
		t.Fatalf("acknowledged epoch record lost: %+v", rep.Records)
	}
	if len(rep.Records) >= 3 {
		t.Fatalf("entire poisoned batch recovered: %+v", rep.Records)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("half-written batch left no torn tail to truncate")
	}
}

func TestLockFencesSecondIncarnation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir)
	if _, _, err := Open(dir, nil); err == nil {
		t.Fatal("second Open on a held journal succeeded")
	}
	j.Close()
	j2, _, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open after release: %v", err)
	}
	j2.Close()
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, _ := openClean(t, dir)
	j.Close()
	if err := j.Append(Record{Type: TypeEpoch, Epoch: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}
