//go:build !unix

package journal

import "os"

// lockFile is a no-op where flock is unavailable; the epoch token in
// the journal itself still fences worker-visible state across
// incarnations, only same-host double-start protection is lost.
func lockFile(f *os.File) error { return nil }
