//go:build unix

package journal

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive flock on the journal so two
// coordinator incarnations can never write the same log: a split-brain
// successor fails Open instead of interleaving frames with a live
// predecessor. The kernel releases the lock when the holder's
// descriptor closes — including by process death, which is the point.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
