package fabric

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic pins that membership order does not matter: any
// permutation of the same worker set builds an identical ring, so every
// coordinator (or one coordinator across rebuilds) agrees on point
// placement.
func TestRingDeterministic(t *testing.T) {
	a := buildRing([]string{"w1", "w2", "w3"})
	b := buildRing([]string{"w3", "w1", "w2"})
	if !reflect.DeepEqual(a.vnodes, b.vnodes) {
		t.Fatal("ring depends on membership order")
	}
	for _, key := range []string{"k0", "k1", "deadbeef", "5bce9c0c"} {
		if got, want := a.candidates(key), b.candidates(key); !reflect.DeepEqual(got, want) {
			t.Fatalf("candidates(%q) differ across permutations: %v vs %v", key, got, want)
		}
	}
}

// TestRingCandidates pins the failover contract: every live worker
// appears exactly once, owner first, and removing a worker leaves the
// other keys' owners untouched (the consistent-hashing point).
func TestRingCandidates(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4"}
	r := buildRing(workers)
	owner := make(map[string]string)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		cands := r.candidates(key)
		if len(cands) != len(workers) {
			t.Fatalf("key %q: got %d candidates, want %d", key, len(cands), len(workers))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %q: duplicate candidate %q", key, c)
			}
			seen[c] = true
		}
		owner[key] = cands[0]
	}

	// Drop w2: only keys w2 owned may move.
	small := buildRing([]string{"w1", "w3", "w4"})
	moved := 0
	for key, before := range owner {
		after := small.candidates(key)[0]
		if before == "w2" {
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %q moved from %q to %q though its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by w2 — ring badly imbalanced")
	}
}

// TestRingBalance checks vnode smoothing: across many keys no worker
// owns a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	r := buildRing([]string{"w1", "w2", "w3", "w4"})
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.candidates(fmt.Sprintf("point-%d", i))[0]]++
	}
	for w, n := range counts {
		share := float64(n) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("worker %s owns %.1f%% of keys (counts: %v)", w, 100*share, counts)
		}
	}
}

// TestRingEmpty pins nil-safety: no workers means no candidates, not a
// panic.
func TestRingEmpty(t *testing.T) {
	if got := buildRing(nil).candidates("k"); got != nil {
		t.Fatalf("empty ring returned candidates %v", got)
	}
	var r *ring
	if got := r.candidates("k"); got != nil {
		t.Fatalf("nil ring returned candidates %v", got)
	}
}
