package fabric

import "repro/internal/metrics"

// Fleet metric names, all under the fabric. prefix so a scrape of the
// coordinator's /metrics separates fleet behaviour from any colocated
// server's job counters.
//
// The point counters obey a conservation identity mirroring the
// server's job identity (DESIGN.md §6): every assignment ends in
// exactly one of completed, retried, or failed, so at any quiescent
// moment
//
//	fabric.points.assigned = fabric.points.completed
//	                       + fabric.points.retried
//	                       + fabric.points.failed
//
// and while dispatches are in flight the left side exceeds the right by
// exactly the in-flight count. The multi-node chaos test asserts this
// after killing a worker mid-sweep: a lease that died with its worker
// must surface in fabric.points.retried, never vanish.
const (
	// Job counters.
	mJobsSubmitted     = "fabric.jobs.submitted"      // jobs accepted (a record exists)
	mJobsCompleted     = "fabric.jobs.completed"      // jobs finished done
	mJobsFailed        = "fabric.jobs.failed"         // jobs finished failed
	mJobsCacheHits     = "fabric.jobs.cache_hits"     // jobs answered from the merged-result cache
	mJobsForwarded     = "fabric.jobs.forwarded"      // non-decomposable jobs shipped whole to a worker
	mJobsQuotaRejected = "fabric.jobs.quota_rejected" // submissions refused by tenant quota
	mJobsRejected      = "fabric.jobs.rejected"       // submissions refused (shutdown)

	// Point counters (see the conservation identity above). Batched
	// leases change nothing here: every point in a batch counts one
	// assignment per dispatch attempt and retires through exactly one of
	// the three outcomes, so the identity holds at any batch size.
	mPointsAssigned  = "fabric.points.assigned"  // point dispatches started (one per attempt)
	mPointsCompleted = "fabric.points.completed" // dispatches that returned a result
	mPointsRetried   = "fabric.points.retried"   // dispatches lost to a dead/saturated worker and reassigned
	mPointsFailed    = "fabric.points.failed"    // dispatches that failed terminally (experiment error)

	// Batched-lease counters and gauges (see batch.go).
	mBatchesDispatched = "fabric.batches.dispatched" // lease RPCs sent (any size)
	mBatchSize         = "fabric.batch.size"         // gauge: points per lease chosen most recently

	// Cross-node cache counters — the observable proof that the fleet
	// shares results instead of recomputing them.
	mCacheHits       = "fabric.cache.hits"        // points answered from the coordinator's own index
	mCacheRemoteHits = "fabric.cache.remote_hits" // points a worker answered from its cache ("cached": true)

	// Worker-fleet counters and gauges.
	mWorkersRegistered = "fabric.workers.registered" // registration requests (incl. heartbeats)
	mWorkersDeaths     = "fabric.workers.deaths"     // workers declared dead by heartbeat timeout
	mWorkersAlive      = "fabric.workers.alive"      // gauge: workers currently serving

	// Durability counters and gauges (journal + crash recovery; see
	// DESIGN.md §13). Recovery events deliberately do NOT feed the live
	// point counters above — the conservation identity is a property of
	// one incarnation's dispatches, and replayed history would skew it.
	mJournalRecords     = "fabric.journal.records"      // records durably appended this incarnation
	mJournalReplayed    = "fabric.journal.replayed"     // records replayed from the log at startup
	mJournalTruncations = "fabric.journal.truncations"  // startups that repaired a torn tail
	mJournalErrors      = "fabric.journal.errors"       // append batches that failed to reach disk
	mJobsRecovered      = "fabric.jobs.recovered"       // in-flight jobs re-adopted after a restart
	mPointsRecovered    = "fabric.points.recovered"     // journaled completions verified against the result index
	mPointsRecoveryLost = "fabric.points.recovery_lost" // journaled completions whose result had vanished
	mPointsFenced       = "fabric.points.fenced"        // stale prior-epoch leases closed as retried at recovery
	mEpoch              = "fabric.epoch"                // gauge: this incarnation's fencing epoch
)

// initMetrics pre-registers every fabric metric at zero, the same
// stable-exposition convention the server follows.
func initMetrics(m *metrics.Synced) {
	for _, name := range []string{
		mJobsSubmitted, mJobsCompleted, mJobsFailed, mJobsCacheHits,
		mJobsForwarded, mJobsQuotaRejected, mJobsRejected,
		mPointsAssigned, mPointsCompleted, mPointsRetried, mPointsFailed,
		mBatchesDispatched,
		mCacheHits, mCacheRemoteHits,
		mWorkersRegistered, mWorkersDeaths,
		mJournalRecords, mJournalReplayed, mJournalTruncations, mJournalErrors,
		mJobsRecovered, mPointsRecovered, mPointsRecoveryLost, mPointsFenced,
	} {
		m.Add(name, 0)
	}
	m.Set(mWorkersAlive, 0)
	m.Set(mEpoch, 0)
	m.Set(mBatchSize, 0)
}
