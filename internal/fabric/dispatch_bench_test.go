package fabric

// Fleet dispatch benchmarks behind `make bench-fabric` (recorded runs
// live in BENCH_fabric.json):
//
//   BenchmarkPointDispatch  isolates per-point RPC overhead: a sweep of
//     near-zero-cost synthetic points through one serialized
//     coordinator→worker loop, at fixed lease sizes and under the
//     adaptive tuner. batch1 ns/point ≈ R + P with P ~ 0, so it reads
//     as the fixed dispatch cost a batch amortizes; the spread between
//     batch1 and batch16 is the win ceiling, and break-even is where a
//     real point's execution cost dwarfs R (size() caps amortized
//     overhead at P/4).
//
//   BenchmarkWarmFleetSweep  is the tentpole's end-to-end claim: the
//     prefix-heavy warmsweep experiment (per point, the shared prefix —
//     distribution + warm-up calls — costs a multiple of the measured
//     call) run through a real coordinator + worker pair, cold and
//     unbatched vs batched vs batched + warm-prefix snapshot reuse.
//     Each iteration boots a fresh fleet so no cache answers points and
//     the warm variant pays its prefix builds inside the measurement.

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/server"
)

// dispatchSeq keeps every benchmark job's params distinct so neither the
// coordinator's merged-result cache nor the worker's point cache can
// answer an iteration for free.
var dispatchSeq atomic.Int64

func BenchmarkPointDispatch(b *testing.B) {
	const pointsPerSweep = 32
	registerSweep("fab-bench-dispatch", pointsPerSweep, nil)
	for _, bc := range []struct {
		name  string
		batch int
	}{{"batch1", 1}, {"batch4", 4}, {"batch16", 16}, {"adaptive", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			url, stop := newWorker(b, "")
			defer stop()
			c, err := New(Config{
				Experiments: []experiments.Experiment{syntheticExperiment("fab-bench-dispatch")},
				Batch:       bc.batch,
				MaxInflight: 1, // serialize so ns/point is not hidden by pipelining
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Shutdown(context.Background())
			c.Register("w", url)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := server.JobParams{N: int(dispatchSeq.Add(1))}
				v, err := c.Submit("", "fab-bench-dispatch", p)
				if err != nil {
					b.Fatal(err)
				}
				awaitDone(b, c, v.ID)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pointsPerSweep), "ns/point")
		})
	}
}

func BenchmarkWarmFleetSweep(b *testing.B) {
	for _, bc := range []struct {
		name  string
		batch int
		warm  bool
	}{{"cold_batch1", 1, false}, {"cold_batch4", 4, false}, {"warm_batch4", 4, true}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := server.New(server.Config{
					Workers:      4,
					WarmPrefixes: bc.warm,
					Experiments:  experiments.Registry(),
				})
				if err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(s.Handler())
				c, err := New(Config{
					Experiments: experiments.Registry(),
					Batch:       bc.batch,
					MaxInflight: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				c.Register("w", ts.URL)
				// A fractionally distinct scale per iteration keeps the point
				// keys unique without changing the workload measurably.
				p := server.JobParams{Scale: 0.01 + float64(dispatchSeq.Add(1))*1e-9}
				b.StartTimer()

				v, err := c.Submit("", "warmsweep", p)
				if err != nil {
					b.Fatal(err)
				}
				awaitDone(b, c, v.ID)

				b.StopTimer()
				c.Shutdown(context.Background())
				ts.Close()
				s.Shutdown(context.Background())
				b.StartTimer()
			}
		})
	}
}
