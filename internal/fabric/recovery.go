package fabric

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fabric/journal"
	"repro/internal/server"
)

// Crash recovery: openJournal replays the write-ahead log into the
// coordinator a New() is building, so a restart against the same
// JournalDir resumes exactly the work its predecessor left unfinished.
//
// The replay rules, per job:
//
//   - job_merged seen        → the job is done; its result lives in the
//     content-addressed cache, so the job's records are compacted away
//     entirely (a resubmission is a cache hit).
//   - job_failed seen        → the job is terminal; it is rehydrated in
//     StateFailed with its error, code, and repro bundle, so GET
//     /v1/jobs/{id} and /repro keep answering across the restart.
//   - neither                → the job was in flight when the process
//     died; it is re-adopted under its original id and re-run.
//
// Re-running an in-flight job does not redo finished work: every
// point_completed record is verified against the result index
// (canon.PointKey keeps coordinator and workers deriving identical
// addresses), and a verified point short-circuits through the cache
// when the re-run reaches it (fabric.points.recovered). A completed
// record whose result has vanished from the index is simply
// re-dispatched (fabric.points.recovery_lost) — the journal is a
// promise about bookkeeping, the cache about bytes, and recovery
// trusts each only for its own half.
//
// Epoch fencing: point_assigned records carry the epoch that issued
// the lease. Assignments from a previous epoch that never reached an
// outcome are fenced — closed with a point_retried record at recovery
// (fabric.points.fenced) — so the conservation identity
// assigned = completed + retried + failed holds across the crash, and
// no stale lease from the dead incarnation can ever count twice. A
// worker that survived the partition and still holds such a lease
// does its work for nothing; its completion RPC response has nobody
// listening, and the re-issued lease produces the (identical,
// content-addressed) result exactly once.

// rjob accumulates one job's replayed state.
type rjob struct {
	accepted journal.Record
	seq      []journal.Record // every record of the job, in order
	pending  map[int]bool     // assigned without an outcome (stale leases)
	done     map[int]string   // point index → result key (completed)
	merged   bool
	failRec  *journal.Record
}

// openJournal opens cfg.JournalDir (no-op when empty), replays the log,
// re-adopts in-flight jobs, rehydrates failed ones, picks this
// incarnation's epoch, and compacts the log down to what the next
// recovery will need. Called from New before the reaper starts.
func (c *Coordinator) openJournal() error {
	if c.cfg.JournalDir == "" {
		c.epoch = 1
		return nil
	}
	jn, rep, err := journal.Open(c.cfg.JournalDir, c.faults)
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	c.journal = jn
	c.metrics.Add(mJournalReplayed, int64(len(rep.Records)))
	if rep.TruncatedBytes > 0 {
		c.metrics.Inc(mJournalTruncations)
	}

	// Fold the log into per-job state.
	var maxEpoch uint64
	byID := make(map[string]*rjob)
	var order []string
	maxNum := 0
	for _, rec := range rep.Records {
		if rec.Epoch > maxEpoch {
			maxEpoch = rec.Epoch
		}
		if rec.Type == journal.TypeEpoch || rec.Job == "" {
			continue
		}
		r := byID[rec.Job]
		if r == nil {
			r = &rjob{pending: make(map[int]bool), done: make(map[int]string)}
			byID[rec.Job] = r
			order = append(order, rec.Job)
			if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "f")); err == nil && n > maxNum {
				maxNum = n
			}
		}
		r.seq = append(r.seq, rec)
		switch rec.Type {
		case journal.TypeJobAccepted:
			r.accepted = rec
		case journal.TypePointAssigned:
			r.pending[rec.Index] = true
		case journal.TypePointCompleted:
			delete(r.pending, rec.Index)
			r.done[rec.Index] = rec.Key
		case journal.TypePointRetried, journal.TypePointFailed:
			delete(r.pending, rec.Index)
		case journal.TypeJobMerged:
			r.merged = true
		case journal.TypeJobFailed:
			rc := rec
			r.failRec = &rc
		}
	}
	c.epoch = maxEpoch + 1
	if maxNum >= c.nextID {
		c.nextID = maxNum + 1
	}

	// Compact: the new epoch record, then every record of every
	// unmerged job, then a fence-closing point_retried for each stale
	// lease the dead incarnation left open.
	keep := []journal.Record{{Type: journal.TypeEpoch, Epoch: c.epoch}}
	var fences []journal.Record
	for _, id := range order {
		r := byID[id]
		if r.merged {
			continue
		}
		keep = append(keep, r.seq...)
		if r.failRec != nil {
			continue
		}
		for idx := range r.pending {
			fences = append(fences, journal.Record{Type: journal.TypePointRetried, Job: id, Index: idx})
		}
	}
	keep = append(keep, fences...)
	if err := c.journal.Rewrite(keep); err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	c.metrics.Add(mPointsFenced, int64(len(fences)))

	// Rehydrate terminal failures and re-adopt the in-flight remainder.
	for _, id := range order {
		r := byID[id]
		if r.merged {
			continue
		}
		if r.accepted.Type == "" {
			continue // point records without an accept: torn past repair
		}
		j, err := c.rehydrate(id, r)
		if err != nil {
			return err
		}
		c.jobs[id] = j
		c.order = append(c.order, j)
		if r.failRec != nil {
			continue
		}
		c.metrics.Inc(mJobsRecovered)
		c.tenants[j.tenant]++
		c.wg.Add(1)
		go c.runJob(j)
	}
	return nil
}

// rehydrate rebuilds one journaled job. Failed jobs come back terminal;
// in-flight jobs come back queued with their verified completions
// marked, ready for runJob to re-drive.
func (c *Coordinator) rehydrate(id string, r *rjob) (*fjob, error) {
	var p server.JobParams
	if err := json.Unmarshal(r.accepted.Params, &p); err != nil {
		return nil, fmt.Errorf("fabric: journaled params of job %s: %w", id, err)
	}
	j := &fjob{
		id:         id,
		experiment: r.accepted.Experiment,
		params:     p,
		key:        r.accepted.Key,
		tenant:     r.accepted.Tenant,
		state:      server.StateQueued,
		created:    time.Now(),
		done:       make(chan struct{}),
	}
	if r.failRec != nil {
		j.state = server.StateFailed
		j.errMsg = r.failRec.Error
		j.errCode = r.failRec.Code
		j.repro = r.failRec.Repro
		j.finished = time.Now()
		close(j.done)
		return j, nil
	}
	j.jdone = make(map[int]bool, len(r.done))
	for idx, key := range r.done {
		// Trust the journal's bookkeeping only as far as the index still
		// holds the bytes: a verified point is reused (the re-run cache-
		// hits it), a lost one re-dispatches from scratch.
		if _, ok := c.cache.Get(key); ok {
			j.jdone[idx] = true
			c.metrics.Inc(mPointsRecovered)
		} else {
			c.metrics.Inc(mPointsRecoveryLost)
		}
	}
	return j, nil
}
