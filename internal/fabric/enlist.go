package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/server"
)

// Enlist is the worker side of fleet membership: a cascade-server that
// wants sweep shards announces itself to the coordinator and then keeps
// heartbeating so the coordinator's reaper knows it is alive. The same
// POST /v1/workers request serves as both registration and heartbeat —
// there is no separate liveness protocol to get out of sync with
// membership.
//
// The loop is built to survive the coordinator, not just talk to it:
// heartbeat failures back off exponentially with jitter (so a restarted
// coordinator is not stampeded by its whole fleet reconnecting on the
// same tick), and every successful heartbeat carries the coordinator's
// fencing epoch back. An epoch change means the coordinator died and
// recovered from its journal — the worker is already re-enlisted by the
// very heartbeat that noticed, and OnEpochChange lets it resync any
// local assumptions (in-flight leases from the old epoch will be fenced
// on the coordinator side, never double-counted).

// DefaultHeartbeatInterval is how often an enlisted worker re-announces
// itself. It must be comfortably under the coordinator's
// HeartbeatTimeout (default 15s) so one dropped request does not get a
// healthy worker declared dead.
const DefaultHeartbeatInterval = 3 * time.Second

// maxBackoffIntervals caps the heartbeat retry delay, as a multiple of
// the heartbeat interval. Deep backoff would outlive the coordinator's
// HeartbeatTimeout and get a healthy worker reaped for politeness.
const maxBackoffIntervals = 4

// EnlistConfig configures a worker's membership loop.
type EnlistConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8081".
	Coordinator string
	// Name uniquely identifies this worker within the fleet.
	Name string
	// Advertise is the URL the coordinator should dispatch points to —
	// this worker's own listen address as reachable from the coordinator.
	Advertise string
	// Interval between heartbeats. Zero means DefaultHeartbeatInterval.
	Interval time.Duration
	// Client used for heartbeat requests. Nil means a client with a
	// timeout of Interval (a heartbeat slower than the next one is due
	// is as good as lost).
	Client *http.Client
	// OnError, if non-nil, observes heartbeat failures. The loop keeps
	// retrying regardless: coordinator restarts are expected, and
	// re-registration after one is exactly how the fleet heals.
	OnError func(error)
	// OnEpochChange, if non-nil, observes coordinator epoch bumps: the
	// coordinator restarted and recovered between two successful
	// heartbeats. By the time it fires the worker is already re-enlisted
	// under the new epoch; the hook exists for logging and for dropping
	// any state keyed to the dead incarnation.
	OnEpochChange func(prev, next uint64)
}

// Enlist registers with the coordinator and heartbeats until ctx is
// cancelled. The first registration is attempted immediately and its
// error returned if ctx dies before any attempt succeeds; after that
// the loop only ever exits with ctx.Err().
func Enlist(ctx context.Context, cfg EnlistConfig) error {
	if cfg.Coordinator == "" || cfg.Name == "" || cfg.Advertise == "" {
		return fmt.Errorf("fabric: enlist needs coordinator, name and advertise URLs")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHeartbeatInterval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Interval}
	}

	body, err := json.Marshal(workerRequest{Name: cfg.Name, URL: cfg.Advertise})
	if err != nil {
		return fmt.Errorf("fabric: marshal enlist request: %w", err)
	}
	beat := func() (uint64, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.Coordinator+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.VersionHeader, server.APIVersion)
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var wr workersResponse
		derr := json.NewDecoder(resp.Body).Decode(&wr)
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("fabric: coordinator rejected heartbeat: %s", resp.Status)
		}
		if derr != nil {
			return 0, fmt.Errorf("fabric: bad heartbeat response: %w", derr)
		}
		return wr.Epoch, nil
	}

	sleep := func(d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}

	var lastEpoch uint64
	enlisted := false
	delay := cfg.Interval
	for {
		epoch, err := beat()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if cfg.OnError != nil {
				cfg.OnError(err)
			}
			// Jittered exponential backoff: the retry lands somewhere in
			// [delay/2, delay), so a fleet that lost its coordinator
			// together does not come back in lockstep.
			d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
			if delay *= 2; delay > maxBackoffIntervals*cfg.Interval {
				delay = maxBackoffIntervals * cfg.Interval
			}
			if serr := sleep(d); serr != nil {
				return serr
			}
			continue
		}
		delay = cfg.Interval
		if enlisted && epoch != lastEpoch && cfg.OnEpochChange != nil {
			cfg.OnEpochChange(lastEpoch, epoch)
		}
		lastEpoch, enlisted = epoch, true
		if serr := sleep(cfg.Interval); serr != nil {
			return serr
		}
	}
}
