package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/server"
)

// Enlist is the worker side of fleet membership: a cascade-server that
// wants sweep shards announces itself to the coordinator and then keeps
// heartbeating so the coordinator's reaper knows it is alive. The same
// POST /v1/workers request serves as both registration and heartbeat —
// there is no separate liveness protocol to get out of sync with
// membership.

// DefaultHeartbeatInterval is how often an enlisted worker re-announces
// itself. It must be comfortably under the coordinator's
// HeartbeatTimeout (default 15s) so one dropped request does not get a
// healthy worker declared dead.
const DefaultHeartbeatInterval = 3 * time.Second

// EnlistConfig configures a worker's membership loop.
type EnlistConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8081".
	Coordinator string
	// Name uniquely identifies this worker within the fleet.
	Name string
	// Advertise is the URL the coordinator should dispatch points to —
	// this worker's own listen address as reachable from the coordinator.
	Advertise string
	// Interval between heartbeats. Zero means DefaultHeartbeatInterval.
	Interval time.Duration
	// Client used for heartbeat requests. Nil means a client with a
	// timeout of Interval (a heartbeat slower than the next one is due
	// is as good as lost).
	Client *http.Client
	// OnError, if non-nil, observes heartbeat failures. The loop keeps
	// retrying regardless: coordinator restarts are expected, and
	// re-registration after one is exactly how the fleet heals.
	OnError func(error)
}

// Enlist registers with the coordinator and heartbeats until ctx is
// cancelled. The first registration is attempted immediately and its
// error returned if ctx dies before any attempt succeeds; after that
// the loop only ever exits with ctx.Err().
func Enlist(ctx context.Context, cfg EnlistConfig) error {
	if cfg.Coordinator == "" || cfg.Name == "" || cfg.Advertise == "" {
		return fmt.Errorf("fabric: enlist needs coordinator, name and advertise URLs")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHeartbeatInterval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Interval}
	}

	body, err := json.Marshal(workerRequest{Name: cfg.Name, URL: cfg.Advertise})
	if err != nil {
		return fmt.Errorf("fabric: marshal enlist request: %w", err)
	}
	beat := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.Coordinator+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.VersionHeader, server.APIVersion)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fabric: coordinator rejected heartbeat: %s", resp.Status)
		}
		return nil
	}

	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		if err := beat(); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if cfg.OnError != nil {
				cfg.OnError(err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
