package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server"
)

// The coordinator's HTTP API deliberately mirrors the server's job
// surface — same paths, same envelope, same version header — so a
// client (or the cascade CLI) pointed at a coordinator instead of a
// server needs zero changes. On top of it ride the fleet endpoints:
//
//	POST /v1/workers          enlist / heartbeat {"name": "...", "url": "..."}
//	GET  /v1/workers          fleet membership
//	GET  /v1/cache/{key}      shared result-index probe (raw bytes or 404)
//
// The coordinator speaks only the current API version: it postdates the
// legacy wire format, so legacy requests are refused rather than
// answered in a shape that never existed here.

// TenantHeader names the request header carrying the tenant identity
// that quota admission is keyed by. Absent means the anonymous tenant.
const TenantHeader = "X-Tenant"

// retryAfterSeconds is the Retry-After hint on every load-shedding
// response (429 quota_exceeded, 503 shutting_down): long enough for a
// quota slot to open or a restart to finish, short enough that a
// well-behaved client keeps up with the fleet.
const retryAfterSeconds = "5"

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", c.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/repro", c.handleRepro)
	mux.HandleFunc("POST /v1/workers", c.handleWorkerRegister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkerList)
	mux.HandleFunc("GET /v1/cache/{key}", c.handleCacheProbe)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

// checkVersion enforces current-version-only requests.
func checkVersion(w http.ResponseWriter, r *http.Request) bool {
	switch v := r.Header.Get(server.VersionHeader); v {
	case "", server.APIVersion:
		return true
	default:
		writeEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Sprintf("coordinator serves only %s %s (got %q)", server.VersionHeader, server.APIVersion, v))
		return false
	}
}

func (c *Coordinator) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if !checkVersion(w, r) {
		return
	}
	writeEnvelope(w, http.StatusOK, server.Envelope{Experiments: c.infos})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !checkVersion(w, r) {
		return
	}
	var req struct {
		Experiment string           `json:"experiment"`
		Params     server.JobParams `json:"params"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	v, err := c.Submit(r.Header.Get(TenantHeader), req.Experiment, req.Params)
	switch {
	case errors.Is(err, ErrUnknownExperiment):
		writeEnvelopeError(w, http.StatusNotFound, server.CodeNotFound, err.Error())
	case errors.Is(err, ErrQuotaExceeded):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeEnvelopeError(w, http.StatusTooManyRequests, server.CodeQuotaExceeded, err.Error())
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeEnvelopeError(w, http.StatusServiceUnavailable, server.CodeShuttingDown, err.Error())
	case err != nil:
		writeEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
	case v.State == server.StateDone:
		writeEnvelope(w, http.StatusOK, jobEnvelope(v))
	default:
		writeEnvelope(w, http.StatusAccepted, jobEnvelope(v))
	}
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	if !checkVersion(w, r) {
		return
	}
	writeEnvelope(w, http.StatusOK, server.Envelope{Jobs: c.Jobs()})
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if !checkVersion(w, r) {
		return
	}
	id := r.PathValue("id")
	var wait time.Duration
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			writeEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("bad wait duration %q", raw))
			return
		}
		wait = d
	}
	if wantsNDJSON(r) {
		c.streamJob(w, r, id, wait)
		return
	}
	v, ok := c.Await(id, wait, r.Context().Done())
	if !ok {
		writeEnvelopeError(w, http.StatusNotFound, server.CodeNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	env := jobEnvelope(v)
	if env.Error == nil && v.State != server.StateDone && r.Context().Err() != nil {
		env.Error = &server.APIError{Code: server.CodeCancelled,
			Message: fmt.Sprintf("request cancelled while waiting for job %q", id)}
	}
	writeEnvelope(w, http.StatusOK, env)
}

// streamJob is the coordinator's ndjson long-poll: keep-alive frames
// carrying live points_done/points_total while the fleet chews through
// the sweep, then the final merged envelope — the "partial results
// stream before the sweep completes" half of the fabric contract.
func (c *Coordinator) streamJob(w http.ResponseWriter, r *http.Request, id string, wait time.Duration) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		writeEnvelopeError(w, http.StatusNotFound, server.CodeNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", server.NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	tick := time.NewTicker(c.cfg.ProgressInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.done:
		case <-deadline.C:
		case <-r.Context().Done():
		case <-tick.C:
			c.mu.Lock()
			frame := server.Envelope{}
			view := j.view(false)
			frame.Job = &view
			c.mu.Unlock()
			frame.Progress = j.progress()
			if writeFrame(w, flusher, frame) != nil {
				return
			}
			continue
		}
		break
	}
	v, _ := c.Job(id)
	env := jobEnvelope(v)
	if env.Error == nil && v.State != server.StateDone {
		if r.Context().Err() != nil {
			env.Error = &server.APIError{Code: server.CodeCancelled,
				Message: fmt.Sprintf("request cancelled while waiting for job %q", id)}
		} else {
			env.Progress = j.progress()
		}
	}
	writeFrame(w, flusher, env)
}

// handleRepro serves the repro bundle of a terminal-failed job as a
// bare JSON document (not an envelope): the bundle is a self-contained
// artifact meant to be saved to a file and fed to cascade-sim -repro.
func (c *Coordinator) handleRepro(w http.ResponseWriter, r *http.Request) {
	if !checkVersion(w, r) {
		return
	}
	id := r.PathValue("id")
	raw, err := c.Repro(id)
	if err != nil {
		var fe *fabricError
		status := http.StatusBadRequest
		code := server.CodeBadRequest
		if errors.As(err, &fe) {
			code = fe.code
			if code == server.CodeNotFound {
				status = http.StatusNotFound
			}
		}
		writeEnvelopeError(w, status, code, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// workerRequest is the POST /v1/workers body.
type workerRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// workersResponse is the fleet-membership wire shape. Epoch is the
// coordinator incarnation's fencing epoch: it bumps exactly once per
// restart, so an enlisted worker observing a change knows its
// coordinator died and healed, and that any leases it still holds from
// the previous epoch will be fenced, not double-counted.
type workersResponse struct {
	Version string      `json:"api_version"`
	Epoch   uint64      `json:"epoch"`
	Workers []workerRec `json:"workers"`
}

func (c *Coordinator) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	if !checkVersion(w, r) {
		return
	}
	var req workerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := c.Register(req.Name, req.URL); err != nil {
		writeEnvelopeError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, workersResponse{Version: server.APIVersion, Epoch: c.epoch, Workers: c.Workers()})
}

func (c *Coordinator) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	if !checkVersion(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, workersResponse{Version: server.APIVersion, Epoch: c.epoch, Workers: c.Workers()})
}

// handleCacheProbe answers the shared result-index protocol: raw cached
// bytes for a content address, or 404. Workers (and sibling fleets) can
// probe before simulating; the response is the exact canonical bytes,
// so a prober can serve them directly.
func (c *Coordinator) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	val, ok := c.cache.Get(key)
	if !ok {
		writeEnvelopeError(w, http.StatusNotFound, server.CodeNotFound, fmt.Sprintf("no cached result for %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(val)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap := c.metrics.Snapshot()
	for _, name := range snap.Names() {
		fmt.Fprintf(w, "%s %d\n", name, snap.Get(name))
	}
}

// handleHealthz reports coordinator liveness:
//
//	ok        200  serving, at least one live worker
//	idle      200  serving, but no live workers (jobs will wait)
//	draining  503  shutdown begun
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	switch {
	case c.Draining():
		status, code = "draining", http.StatusServiceUnavailable
	case c.metrics.Snapshot().Get(mWorkersAlive) == 0:
		status = "idle"
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintln(w, status)
}

// wantsNDJSON mirrors the server's streaming opt-in.
func wantsNDJSON(r *http.Request) bool {
	return r.Header.Get("Accept") != "" &&
		bytes.Contains([]byte(r.Header.Get("Accept")), []byte(server.NDJSONContentType))
}

// jobEnvelope mirrors the server's rendering: result hoisted beside the
// job, failures carrying their typed error.
func jobEnvelope(v server.JobView) server.Envelope {
	env := server.Envelope{Result: v.Result}
	v.Result = nil
	env.Job = &v
	if v.State == server.StateFailed {
		code := v.ErrorCode
		if code == "" {
			code = server.CodeExperimentFailed
		}
		env.Error = &server.APIError{Code: code, Message: v.Error}
	}
	return env
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeEnvelope(w http.ResponseWriter, status int, env server.Envelope) {
	env.Version = server.APIVersion
	writeJSON(w, status, env)
}

func writeEnvelopeError(w http.ResponseWriter, status int, code, message string) {
	writeEnvelope(w, status, server.Envelope{Error: &server.APIError{Code: code, Message: message}})
}

// writeFrame writes one envelope as a single compacted ndjson line and
// flushes it.
func writeFrame(w http.ResponseWriter, flusher http.Flusher, env server.Envelope) error {
	env.Version = server.APIVersion
	raw, err := json.Marshal(env)
	if err != nil {
		return err
	}
	var line bytes.Buffer
	if err := json.Compact(&line, raw); err != nil {
		return err
	}
	line.WriteByte('\n')
	if _, err := w.Write(line.Bytes()); err != nil {
		return err
	}
	if flusher != nil {
		flusher.Flush()
	}
	return nil
}
