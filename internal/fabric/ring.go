package fabric

import (
	"fmt"
	"sort"
)

// Consistent-hash ring mapping point keys to workers. Each worker owns
// vnodesPerWorker pseudo-random arcs of the 64-bit hash circle, so keys
// spread evenly and a membership change (a worker joining, or dying
// mid-sweep) remaps only the arcs that worker owned — every other
// point's affinity is untouched, which keeps retry traffic and cache
// locality stable while the fleet churns.

// vnodesPerWorker trades balance (more vnodes = smoother key spread)
// against ring-rebuild cost. 64 keeps worst-case imbalance within a few
// percent for small fleets, and rebuilds are trivial at fleet sizes the
// fabric targets.
const vnodesPerWorker = 64

type vnode struct {
	hash   uint64
	worker string
}

type ring struct {
	vnodes []vnode // sorted by hash
}

// fnvHash is FNV-1a over s with a 64-bit avalanche finalizer. Plain
// FNV-1a (what the server's cache striping uses, where only the low
// bits matter) leaves the high bits of similar short strings like
// "w3#17" correlated — sorted on the full hash that clusters one
// worker's vnodes into huge arcs and breaks ring balance. The fmix64
// finalizer (MurmurHash3's) diffuses every input bit across the word.
func fnvHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// buildRing places every worker's vnodes on the circle. Deterministic:
// the same worker set (any order) builds the same ring.
func buildRing(workers []string) *ring {
	r := &ring{vnodes: make([]vnode, 0, len(workers)*vnodesPerWorker)}
	for _, w := range workers {
		for i := 0; i < vnodesPerWorker; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: fnvHash(fmt.Sprintf("%s#%d", w, i)), worker: w})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.worker < b.worker // total order even on hash collisions
	})
	return r
}

// candidates returns every distinct worker in ring order starting from
// the key's successor vnode: the key's owner first, then the failover
// sequence a retry walks when the owner is saturated or dead.
func (r *ring) candidates(key string) []string {
	if r == nil || len(r.vnodes) == 0 {
		return nil
	}
	h := fnvHash(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	seen := make(map[string]bool)
	var out []string
	for n := 0; n < len(r.vnodes); n++ {
		v := r.vnodes[(start+n)%len(r.vnodes)]
		if !seen[v.worker] {
			seen[v.worker] = true
			out = append(out, v.worker)
		}
	}
	return out
}
