package fabric

import (
	"math"
	"sync"
	"time"
)

// Batched lease sizing. A lease is one dispatch RPC carrying up to N
// points; the worker streams one outcome frame per retired point. N
// trades per-point RPC overhead (serialization, connection handling,
// admission) against lease granularity: a bigger batch amortizes the
// fixed overhead, a smaller one loses less work when a worker dies
// mid-lease and rebalances faster across the fleet.
//
// With Config.Batch unset the coordinator adapts: a streamed batch's
// timing separates the two costs for free — the gaps between outcome
// frames estimate one point's execution cost P, and the time to the
// first frame, less one point, estimates the fixed RPC overhead R. The
// lease is then sized so the amortized overhead stays at or below a
// quarter of a point's cost (N >= R / (P/4)), clamped to
// [1, maxAdaptiveBatch]. Cheap points on a chatty link get big batches;
// expensive points make batching pointless and N collapses to 1.

// maxAdaptiveBatch caps the adaptive lease size: past ~16 points the
// overhead amortization is negligible and bigger leases only concentrate
// loss on worker death.
const maxAdaptiveBatch = 16

// seedBatch is the lease size used before any timing exists. Two, not
// one: a streamed two-point batch is the smallest dispatch whose frame
// timing separates RPC overhead from point cost, so the tuner gets its
// first real observation from the first lease.
const seedBatch = 2

// ewmaAlpha weights new observations; ~0.3 follows a changing fleet
// within a few leases without chasing single-outlier RPCs.
const ewmaAlpha = 0.3

// batchTuner holds the coordinator's running estimates.
type batchTuner struct {
	mu         sync.Mutex
	pointNanos float64 // EWMA of one point's execution time
	rpcNanos   float64 // EWMA of one dispatch RPC's fixed overhead
}

func ewma(old, sample float64) float64 {
	if old <= 0 {
		return sample
	}
	return old + ewmaAlpha*(sample-old)
}

// observe feeds one measured (overhead, per-point cost) pair.
func (t *batchTuner) observe(overhead, perPoint time.Duration) {
	if perPoint <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pointNanos = ewma(t.pointNanos, float64(perPoint))
	if overhead >= 0 {
		t.rpcNanos = ewma(t.rpcNanos, float64(overhead))
	}
}

// observeStream reduces one streamed lease's frame timing to an
// observation: start is when the RPC was issued, first/last bracket the
// outcome frames, n counts them.
func (t *batchTuner) observeStream(start, first, last time.Time, n int) {
	if n <= 0 || first.IsZero() {
		return
	}
	if n == 1 {
		// One frame cannot separate R from P; with a P estimate in hand,
		// attribute the rest of the round trip to overhead.
		t.mu.Lock()
		p := t.pointNanos
		t.mu.Unlock()
		if p > 0 {
			if over := float64(first.Sub(start)) - p; over > 0 {
				t.observe(time.Duration(over), time.Duration(p))
			}
		}
		return
	}
	per := last.Sub(first) / time.Duration(n-1)
	over := first.Sub(start) - per
	if over < 0 {
		over = 0
	}
	t.observe(over, per)
}

// size returns the lease size: the configured fixed size when set,
// otherwise the adaptive estimate (seedBatch until timing exists).
func (t *batchTuner) size(configured int) int {
	if configured > 0 {
		return configured
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pointNanos <= 0 {
		return seedBatch
	}
	if t.rpcNanos <= 0 {
		return 1
	}
	n := int(math.Ceil(4 * t.rpcNanos / t.pointNanos))
	if n < 1 {
		n = 1
	}
	if n > maxAdaptiveBatch {
		n = maxAdaptiveBatch
	}
	return n
}
