package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
	"repro/internal/fabric/journal"
	"repro/internal/faults"
	"repro/internal/server"
)

// swappableHandler gives a fleet one stable coordinator URL across
// coordinator incarnations: the httptest server stays up while the
// handler behind it is swapped from C1 to "down" to C2 — the test-rig
// equivalent of a daemon restarting behind a fixed address.
type swappableHandler struct{ h atomic.Value }

// hbox keeps atomic.Value's concrete type stable across swaps between
// different handler implementations.
type hbox struct{ h http.Handler }

func newSwappable(h http.Handler) *swappableHandler {
	s := &swappableHandler{}
	s.swap(h)
	return s
}

func (s *swappableHandler) swap(h http.Handler) { s.h.Store(hbox{h}) }

func (s *swappableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(hbox).h.ServeHTTP(w, r)
}

// coordinatorDown is the handler between incarnations: every request
// fails the way a dead process's address does (as close as a handler
// can get — connection refused is not expressible here).
var coordinatorDown = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "coordinator down", http.StatusServiceUnavailable)
})

// TestChaosCoordinatorKillMidSweep is the durability chaos test: the
// coordinator is killed mid-sweep — journal fenced without a final
// sync, no drain, exactly as a crash — and a second incarnation against
// the same journal and cache directories must
//
//   - re-adopt the in-flight job under its original id and finish it
//     byte-identical to a single-node run,
//   - preserve the journal conservation identity across the restart
//     (every assigned record has exactly one outcome record),
//   - never journal a point's completion twice (epoch fencing), and
//   - come up with a bumped epoch and the recovery observable in the
//     fabric.jobs.recovered / fabric.points.recovered counters.
func TestChaosCoordinatorKillMidSweep(t *testing.T) {
	const points = 24
	var slow atomic.Bool
	slow.Store(true)
	registerSweep("fab-durable", points, func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		if slow.Load() {
			time.Sleep(50 * time.Millisecond) // keep leases in flight while C1 dies
		}
		return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index*7 + ps.N)}, nil
	})

	cacheDir := t.TempDir()   // shared by workers and both incarnations
	journalDir := t.TempDir() // survives the crash

	urlA, stopA := newWorker(t, cacheDir)
	defer stopA()
	urlB, stopB := newWorker(t, cacheDir)
	defer stopB()

	newCoordinator := func() *Coordinator {
		c, err := New(Config{
			Experiments:      []experiments.Experiment{syntheticExperiment("fab-durable")},
			CacheDir:         cacheDir,
			JournalDir:       journalDir,
			HeartbeatTimeout: 500 * time.Millisecond,
			RetryBackoff:     5 * time.Millisecond,
			MaxPointAttempts: 64,
			MaxInflight:      4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := newCoordinator()

	// One stable coordinator URL for the fleet, outliving C1.
	front := newSwappable(c1.Handler())
	cts := httptest.NewServer(front)
	defer cts.Close()

	enlistCtx, stopEnlist := context.WithCancel(context.Background())
	defer stopEnlist()
	for name, url := range map[string]string{"a": urlA, "b": urlB} {
		c1.Register(name, url) // don't race the sweep against the first heartbeat
		go Enlist(enlistCtx, EnlistConfig{
			Coordinator: cts.URL, Name: name, Advertise: url, Interval: 25 * time.Millisecond,
		})
	}

	p := server.JobParams{N: 7}
	v, err := c1.Submit("", "fab-durable", p)
	if err != nil {
		t.Fatal(err)
	}
	jobID := v.ID

	// Kill C1 once progress is real AND leases are demonstrably open:
	// completed points exist, and assigned exceeds settled outcomes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := c1.Metrics()
		settled := snap.Get(mPointsCompleted) + snap.Get(mPointsRetried) + snap.Get(mPointsFailed)
		if snap.Get(mPointsCompleted) >= 3 && snap.Get(mPointsAssigned) > settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached the kill window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	front.swap(coordinatorDown)
	c1.Kill()

	// The crash left the journal with open leases: assigned records from
	// epoch 1 with no outcome.
	recs, _, err := journal.Read(journal.Path(journalDir))
	if err != nil {
		t.Fatalf("reading journal after kill: %v", err)
	}
	counts := countRecords(recs, jobID)
	if counts.assigned <= counts.completed+counts.retried+counts.failed {
		t.Fatalf("kill left no open leases to fence: %+v", counts)
	}
	if counts.merged != 0 {
		t.Fatal("job journaled as merged before it finished")
	}

	// Second incarnation: same dirs, bumped epoch, job re-adopted.
	slow.Store(false)
	c2 := newCoordinator()
	defer c2.Shutdown(context.Background())
	front.swap(c2.Handler())

	if got := c2.Epoch(); got != 2 {
		t.Fatalf("recovered epoch = %d, want 2", got)
	}
	snap := c2.Metrics()
	if got := snap.Get(mJobsRecovered); got != 1 {
		t.Fatalf("jobs.recovered = %d, want 1", got)
	}
	if got := snap.Get(mPointsRecovered); got == 0 {
		t.Fatal("no completed point survived recovery (points.recovered = 0)")
	}
	if got := snap.Get(mPointsFenced); got == 0 {
		t.Fatal("open leases were not fenced (points.fenced = 0)")
	}

	v2, ok := c2.Await(jobID, 30*time.Second, nil)
	if !ok {
		t.Fatalf("job %s not re-adopted by the second incarnation", jobID)
	}
	if v2.State != server.StateDone {
		t.Fatalf("re-adopted job finished %s: %s (%s)", v2.State, v2.Error, v2.ErrorCode)
	}
	if want := expectedRender(t, "fab-durable", p); !bytes.Equal(v2.Result, want) {
		t.Fatalf("result after crash recovery differs from single-node run:\n got: %q\nwant: %q", v2.Result, want)
	}

	// Journal accounting across both incarnations: conservation restored
	// (recovery fenced every orphan), exactly one merge, and no point
	// ever completed twice.
	recs, _, err = journal.Read(journal.Path(journalDir))
	if err != nil {
		t.Fatalf("reading journal after recovery: %v", err)
	}
	counts = countRecords(recs, jobID)
	if counts.assigned != counts.completed+counts.retried+counts.failed {
		t.Fatalf("conservation violated across restart: assigned %d != completed %d + retried %d + failed %d",
			counts.assigned, counts.completed, counts.retried, counts.failed)
	}
	if counts.merged != 1 {
		t.Fatalf("job_merged records = %d, want exactly 1", counts.merged)
	}
	for idx, n := range counts.completedByIndex {
		if n > 1 {
			t.Fatalf("point %d journaled completed %d times — double merge", idx, n)
		}
	}
	if epochs := countEpochs(recs); epochs[1] != 0 {
		// Compaction rewrote the log under epoch 2; stale epoch-1
		// assignments may legitimately remain (they were fenced), but no
		// epoch-1 *epoch record* should survive.
		t.Fatalf("epoch-1 epoch record survived compaction (%d)", epochs[1])
	}
}

// recordCounts aggregates one job's journal records.
type recordCounts struct {
	assigned, completed, retried, failed, merged int
	completedByIndex                             map[int]int
}

func countRecords(recs []journal.Record, jobID string) recordCounts {
	c := recordCounts{completedByIndex: make(map[int]int)}
	for _, r := range recs {
		if r.Job != jobID {
			continue
		}
		switch r.Type {
		case journal.TypePointAssigned:
			c.assigned++
		case journal.TypePointCompleted:
			c.completed++
			c.completedByIndex[r.Index]++
		case journal.TypePointRetried:
			c.retried++
		case journal.TypePointFailed:
			c.failed++
		case journal.TypeJobMerged:
			c.merged++
		}
	}
	return c
}

func countEpochs(recs []journal.Record) map[uint64]int {
	out := make(map[uint64]int)
	for _, r := range recs {
		if r.Type == journal.TypeEpoch {
			out[r.Epoch]++
		}
	}
	return out
}

// TestEnlistEpochResync pins the worker side of partition tolerance: an
// enlisted worker's heartbeat loop survives a coordinator restart —
// backing off while the coordinator is down, re-enlisting on its own
// when it returns, and reporting the epoch bump through OnEpochChange.
func TestEnlistEpochResync(t *testing.T) {
	journalDir := t.TempDir()
	newCoordinator := func() *Coordinator {
		c, err := New(Config{
			Experiments: []experiments.Experiment{syntheticExperiment("fab-resync")},
			JournalDir:  journalDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := newCoordinator()

	front := newSwappable(c1.Handler())
	cts := httptest.NewServer(front)
	defer cts.Close()

	type bump struct{ prev, next uint64 }
	bumps := make(chan bump, 4)
	enlistCtx, stopEnlist := context.WithCancel(context.Background())
	defer stopEnlist()
	go Enlist(enlistCtx, EnlistConfig{
		Coordinator: cts.URL,
		Name:        "w",
		Advertise:   "http://w.invalid",
		Interval:    20 * time.Millisecond,
		OnEpochChange: func(prev, next uint64) {
			bumps <- bump{prev, next}
		},
	})

	waitRegistered := func(c *Coordinator) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			for _, w := range c.Workers() {
				if w.Name == "w" && w.Alive {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("worker never enlisted")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitRegistered(c1)

	// Crash and recover the coordinator behind the same URL.
	front.swap(coordinatorDown)
	c1.Kill()
	c2 := newCoordinator()
	defer c2.Shutdown(context.Background())
	if got := c2.Epoch(); got != 2 {
		t.Fatalf("second incarnation epoch = %d, want 2", got)
	}
	front.swap(c2.Handler())

	// The loop must re-enlist with C2 unassisted and observe 1 → 2.
	select {
	case b := <-bumps:
		if b.prev != 1 || b.next != 2 {
			t.Fatalf("epoch change %d → %d, want 1 → 2", b.prev, b.next)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("OnEpochChange never fired after coordinator restart")
	}
	waitRegistered(c2)
}

// TestQuotaRetryAfterHeader pins the load-shedding contract on 429
// quota_exceeded responses: a Retry-After hint rides along, so a capped
// tenant knows when resubmitting is worth it.
func TestQuotaRetryAfterHeader(t *testing.T) {
	registerSweep("fab-429", 2, nil)
	c, err := New(Config{
		Experiments:      []experiments.Experiment{syntheticExperiment("fab-429")},
		DefaultQuota:     1,
		RetryBackoff:     5 * time.Millisecond,
		MaxPointAttempts: 1000, // the in-flight job waits on an empty fleet
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// No workers: the first job is admitted and stays in flight, pinning
	// the tenant at its quota.
	if status, _ := httpSubmit(t, ts.URL, "t1", "fab-429", server.JobParams{N: 1}); status != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", status)
	}
	body, _ := json.Marshal(map[string]interface{}{"experiment": "fab-429", "params": server.JobParams{N: 2}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.VersionHeader, server.APIVersion)
	req.Header.Set(TenantHeader, "t1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Fatalf("Retry-After = %q, want %q", got, retryAfterSeconds)
	}
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != server.CodeQuotaExceeded {
		t.Fatalf("error = %+v, want code %s", env.Error, server.CodeQuotaExceeded)
	}

	// Release the stuck job by cancelling the run context (expired drain).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	c.Shutdown(ctx)
}

// TestFabricReproBundle pins the coordinator's failure forensics end to
// end: a sweep whose point 2 fails terminally yields a failed job whose
// repro bundle names that exact point, is served over GET
// /v1/jobs/{id}/repro as a bare document, and replays to the identical
// failure through server.RunRepro — the same path cascade-sim -repro
// drives.
func TestFabricReproBundle(t *testing.T) {
	const failMsg = "synthetic deterministic point failure"
	registerSweep("fab-repro", 5, func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		if ps.Index == 2 {
			return experiments.PointResult{}, errors.New(failMsg)
		}
		return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index*7 + ps.N)}, nil
	})
	url, stop := newWorker(t, "")
	defer stop()

	journalDir := t.TempDir()
	c, err := New(Config{
		Experiments:  []experiments.Experiment{syntheticExperiment("fab-repro")},
		JournalDir:   journalDir,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", url)

	p := server.JobParams{N: 3}
	v, err := c.Submit("", "fab-repro", p)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = c.Await(v.ID, 30*time.Second, nil)
	if v.State != server.StateFailed {
		t.Fatalf("job finished %s, want failed", v.State)
	}

	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/repro", nil)
	req.Header.Set(server.VersionHeader, server.APIVersion)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET repro: status %d, want 200", resp.StatusCode)
	}
	var b server.ReproBundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Schema != canon.ReproSchema {
		t.Fatalf("bundle schema %q, want %q", b.Schema, canon.ReproSchema)
	}
	if b.Point == nil || b.Point.Index != 2 {
		t.Fatalf("bundle point = %+v, want the lowest failing index 2", b.Point)
	}
	if b.PointKey == "" || b.Error != failMsg || b.ErrorCode != server.CodeExperimentFailed {
		t.Fatalf("bundle forensics: key=%q error=%q code=%q", b.PointKey, b.Error, b.ErrorCode)
	}
	recorded := b.Key
	if derived, err := b.DeriveKey(); err != nil || derived != recorded {
		t.Fatalf("bundle key not reproducible: recorded %q derived %q (%v)", recorded, derived, err)
	}

	// Replay locally: the identical failure must come back.
	replayed := server.RunRepro(context.Background(), &b)
	if !b.SameFailure(replayed) {
		t.Fatalf("replay diverged: recorded %q (%s), replayed %v", b.Error, b.ErrorCode, replayed)
	}

	// A non-failed job has no bundle.
	if _, err := c.Repro("f404"); err == nil {
		t.Fatal("Repro of an unknown job did not error")
	}

	// And the failed job survives a restart with its bundle intact.
	c.Shutdown(context.Background())
	c2, err := New(Config{
		Experiments: []experiments.Experiment{syntheticExperiment("fab-repro")},
		JournalDir:  journalDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Shutdown(context.Background())
	v2, ok := c2.Job(v.ID)
	if !ok || v2.State != server.StateFailed || v2.ErrorCode != v.ErrorCode {
		t.Fatalf("failed job not rehydrated: ok=%v %+v", ok, v2)
	}
	raw, err := c2.Repro(v.ID)
	if err != nil {
		t.Fatalf("rehydrated repro: %v", err)
	}
	var b2 server.ReproBundle
	if err := json.Unmarshal(raw, &b2); err != nil {
		t.Fatal(err)
	}
	if b2.Key != recorded {
		t.Fatalf("rehydrated bundle key %q, want %q", b2.Key, recorded)
	}
	// Failed jobs must not be re-run on recovery.
	if got := c2.Metrics().Get(mJobsRecovered); got != 0 {
		t.Fatalf("jobs.recovered = %d, want 0 (terminal jobs rehydrate, not re-run)", got)
	}
}

// TestJournalAppendFaultDegrades pins journal-failure degradation: an
// armed fabric.journal fault tears an append mid-frame, the loss is
// counted in fabric.journal.errors, and the job still completes — the
// journal protects restarts, never the running job.
func TestJournalAppendFaultDegrades(t *testing.T) {
	registerSweep("fab-jfault", 3, nil)
	url, stop := newWorker(t, "")
	defer stop()

	inj := faults.New(1)
	inj.Arm(journal.SiteAppend, faults.Trigger{OnCall: 2})
	c, err := New(Config{
		Experiments:  []experiments.Experiment{syntheticExperiment("fab-jfault")},
		JournalDir:   t.TempDir(),
		Faults:       inj,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", url)

	v, err := c.Submit("", "fab-jfault", server.JobParams{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	v = awaitDone(t, c, v.ID)
	if want := expectedRender(t, "fab-jfault", server.JobParams{N: 2}); !bytes.Equal(v.Result, want) {
		t.Fatal("result differs after journal append fault")
	}
	if got := c.Metrics().Get(mJournalErrors); got != 1 {
		t.Fatalf("journal.errors = %d, want 1", got)
	}
}
