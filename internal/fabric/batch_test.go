package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

// TestBatchTunerSizing pins the adaptive lease-size policy: fixed
// configuration wins outright, no timing means the seed size, negligible
// RPC overhead collapses to single-point leases, and otherwise the size
// keeps amortized overhead at or below a quarter of a point's cost,
// clamped to maxAdaptiveBatch.
func TestBatchTunerSizing(t *testing.T) {
	var tn batchTuner
	if got := tn.size(5); got != 5 {
		t.Errorf("configured size ignored: got %d, want 5", got)
	}
	if got := tn.size(0); got != seedBatch {
		t.Errorf("untrained tuner: got %d, want seed %d", got, seedBatch)
	}

	tn.observe(0, 10*time.Millisecond)
	if got := tn.size(0); got != 1 {
		t.Errorf("free RPC: got %d, want 1 (batching buys nothing)", got)
	}

	tn = batchTuner{}
	tn.observe(5*time.Millisecond, 10*time.Millisecond)
	if got := tn.size(0); got != 2 {
		t.Errorf("R=5ms P=10ms: got %d, want ceil(4*5/10)=2", got)
	}

	tn = batchTuner{}
	tn.observe(time.Second, time.Millisecond)
	if got := tn.size(0); got != maxAdaptiveBatch {
		t.Errorf("chatty link: got %d, want clamp at %d", got, maxAdaptiveBatch)
	}

	// observeStream with one frame cannot separate R from P and must not
	// poison the estimates; with several frames the gaps carry P.
	tn = batchTuner{}
	start := time.Unix(0, 0)
	tn.observeStream(start, start.Add(10*time.Millisecond), start.Add(10*time.Millisecond), 1)
	if got := tn.size(0); got != seedBatch {
		t.Errorf("single-frame stream trained an untrained tuner: size %d", got)
	}
	tn.observeStream(start, start.Add(25*time.Millisecond), start.Add(45*time.Millisecond), 3)
	// per = 20ms/2 = 10ms, over = 25ms-10ms = 15ms, N = ceil(4*15/10) = 6.
	if got := tn.size(0); got != 6 {
		t.Errorf("streamed timing: got %d, want 6", got)
	}
}

// TestBatchedStreamProgress pins the ?wait granularity satellite: even
// with every point of a sweep riding one single lease, the streamed
// ndjson progress frames advance points_done per completed point —
// lease-level accounting would only ever show 0 or total.
func TestBatchedStreamProgress(t *testing.T) {
	const points = 6
	registerSweep("fab-batch-progress", points, func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		time.Sleep(20 * time.Millisecond) // space the outcome frames out
		return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index)}, nil
	})
	url, stop := newWorker(t, "")
	defer stop()
	c, err := New(Config{
		Experiments:      []experiments.Experiment{syntheticExperiment("fab-batch-progress")},
		Batch:            points, // the whole sweep is one lease
		MaxInflight:      1,
		RetryBackoff:     5 * time.Millisecond,
		ProgressInterval: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", url)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	_, env := httpSubmit(t, ts.URL, "", "fab-batch-progress", server.JobParams{N: 3})
	if env.Job == nil {
		t.Fatal("submit returned no job")
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+env.Job.ID+"?wait=15s", nil)
	req.Header.Set(server.VersionHeader, server.APIVersion)
	req.Header.Set("Accept", server.NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	partials := make(map[int]bool)
	var final server.Envelope
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var f server.Envelope
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if f.Progress != nil && f.Progress.PointsDone > 0 && f.Progress.PointsDone < f.Progress.PointsTotal {
			partials[f.Progress.PointsDone] = true
		}
		final = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(partials) < 2 {
		t.Fatalf("progress under a single %d-point lease showed %d distinct partial values %v, want per-point advancement",
			points, len(partials), partials)
	}
	if final.Job == nil || final.Job.State != server.StateDone {
		t.Fatalf("final frame not a done job: %+v", final)
	}
	if want := expectedRender(t, "fab-batch-progress", server.JobParams{N: 3}); !jsonEqualCompact(t, final.Result, want) {
		t.Fatal("batched streamed result differs from single-node run")
	}
}

// TestChaosWorkerDeathMidBatch is the batched-lease chaos variant: a
// worker dies (connection reset) partway through streaming a lease that
// carries the whole sweep. The outcomes it delivered before dying must
// stand — only the unfinished remainder is retried — and the merged
// result stays byte-identical to a single-node run with the
// conservation identity exact:
//
//	assigned = 6 (first lease) + 3 (remainder) = completed 6 + retried 3.
func TestChaosWorkerDeathMidBatch(t *testing.T) {
	const points = 6
	const delivered = 3 // outcomes streamed before the connection dies
	release := make(chan struct{})
	var gate atomic.Bool // armed only for the fabric run, not the local reference run
	var execs [points]atomic.Int64
	registerSweep("fab-batch-chaos", points, func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		execs[ps.Index].Add(1)
		if ps.Index >= delivered && gate.Load() {
			select {
			case <-release:
			case <-ctx.Done():
				return experiments.PointResult{}, ctx.Err()
			}
		}
		return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index*7 + ps.N)}, nil
	})

	s, err := server.New(server.Config{Workers: 4,
		Experiments: []experiments.Experiment{syntheticExperiment("fab-batch-chaos")}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ws := httptest.NewServer(s.Handler())
	defer ws.Close()

	c, err := New(Config{
		Experiments:  []experiments.Experiment{syntheticExperiment("fab-batch-chaos")},
		Batch:        points, // one lease carries the whole sweep
		MaxInflight:  1,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", ws.URL)

	p := server.JobParams{N: 7}
	// Render the single-node answer first: it runs every point
	// in-process, and the execution counts below must see only the
	// fabric's dispatches.
	want := expectedRender(t, "fab-batch-chaos", p)
	for i := range execs {
		execs[i].Store(0)
	}
	gate.Store(true)
	v, err := c.Submit("", "fab-batch-chaos", p)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the first `delivered` outcomes have streamed back (the
	// next point blocks on release), then reset every connection: the
	// lease stream dies with the remainder undelivered.
	deadline := time.Now().Add(10 * time.Second)
	for c.Metrics().Get(mPointsCompleted) < delivered {
		if time.Now().After(deadline) {
			t.Fatal("lease never streamed its first outcomes")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ws.CloseClientConnections()
	close(release)

	v = awaitDone(t, c, v.ID)
	if !bytes.Equal(v.Result, want) {
		t.Fatalf("merged result after mid-batch death differs from single-node run:\n got: %q\nwant: %q", v.Result, want)
	}

	snap := c.Metrics()
	if got := snap.Get(mPointsRetried); got != points-delivered {
		t.Fatalf("points.retried = %d, want exactly the unfinished remainder %d", got, points-delivered)
	}
	if got := snap.Get(mPointsCompleted); got != points {
		t.Fatalf("points.completed = %d, want %d (each point exactly once)", got, points)
	}
	if got := snap.Get(mPointsAssigned); got != points+(points-delivered) {
		t.Fatalf("points.assigned = %d, want %d", got, points+(points-delivered))
	}
	if got := snap.Get(mPointsFailed); got != 0 {
		t.Fatalf("points.failed = %d, want 0 (death must retry, not fail)", got)
	}
	if a, cmp, rt, f := snap.Get(mPointsAssigned), snap.Get(mPointsCompleted), snap.Get(mPointsRetried), snap.Get(mPointsFailed); a != cmp+rt+f {
		t.Fatalf("conservation violated: assigned %d != completed %d + retried %d + failed %d", a, cmp, rt, f)
	}

	// The pin that makes this the *remainder-only* test: outcomes the
	// worker delivered before dying were never re-dispatched, so their
	// points executed exactly once.
	for i := 0; i < delivered; i++ {
		if got := execs[i].Load(); got != 1 {
			t.Errorf("delivered point %d executed %d times, want 1 (must not ride the retry)", i, got)
		}
	}
	for i := delivered; i < points; i++ {
		if got := execs[i].Load(); got < 1 || got > 2 {
			t.Errorf("remainder point %d executed %d times, want 1 or 2", i, got)
		}
	}
}
