package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/server"
)

// fakeResult is a minimal Renderable for injected test experiments.
type fakeResult struct {
	Value string `json:"value"`
}

func (f fakeResult) Render(w io.Writer) { fmt.Fprintln(w, f.Value) }

// syntheticExperiment is a registry entry for a synthetic sweep: the
// coordinator only needs the name (it decomposes instead of calling
// Run), but workers serving forwarded jobs run it directly.
func syntheticExperiment(name string) experiments.Experiment {
	return experiments.Experiment{
		Name:        name,
		Description: "synthetic test sweep",
		Run: func(ctx context.Context, rc experiments.RunConfig) (experiments.Renderable, error) {
			return fakeResult{Value: fmt.Sprintf("%s n=%d", name, rc.N)}, nil
		},
	}
}

// registerSweep installs a cheap decomposition: points points, each
// resolved by fn (nil = deterministic arithmetic from the spec).
func registerSweep(name string, points int, fn func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error)) {
	if fn == nil {
		fn = func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
			return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index*7 + ps.N)}, nil
		}
	}
	experiments.RegisterDecomposition(name, experiments.Decomposition{
		Points: func(rc experiments.RunConfig) []experiments.PointSpec {
			specs := make([]experiments.PointSpec, points)
			for i := range specs {
				specs[i] = experiments.PointSpec{Experiment: name, Index: i, N: rc.N}
			}
			return specs
		},
		Run: fn,
		Merge: func(rc experiments.RunConfig, rs []experiments.PointResult) (experiments.Renderable, error) {
			var total int64
			for _, r := range rs {
				total += r.Cycles
			}
			return fakeResult{Value: fmt.Sprintf("%s total=%d", name, total)}, nil
		},
	})
}

// newWorker boots a cascade-server worker over httptest and returns its
// base URL plus a shutdown func.
func newWorker(t testing.TB, cacheDir string) (string, func()) {
	t.Helper()
	s, err := server.New(server.Config{
		Workers:     4,
		CacheDir:    cacheDir,
		Experiments: []experiments.Experiment{syntheticExperiment("fab-fwd")},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return ts.URL, func() {
		ts.CloseClientConnections()
		ts.Close()
		s.Shutdown(context.Background())
	}
}

// expectedRender is the byte-exact single-node answer for a synthetic
// sweep: run the decomposition locally and render canonically.
func expectedRender(t testing.TB, name string, p server.JobParams) []byte {
	t.Helper()
	res, ok, err := experiments.RunDecomposed(context.Background(), name, p.WithDefaults().RunConfig())
	if err != nil || !ok {
		t.Fatalf("single-node run of %s: ok=%v err=%v", name, ok, err)
	}
	val, err := server.RenderJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	return val
}

func awaitDone(t testing.TB, c *Coordinator, id string) server.JobView {
	t.Helper()
	v, ok := c.Await(id, 30*time.Second, nil)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	if v.State != server.StateDone {
		t.Fatalf("job %s finished %s: %s (%s)", id, v.State, v.Error, v.ErrorCode)
	}
	return v
}

// TestShardedSweepByteIdentity is the fabric's core contract: a sweep
// sharded across two workers merges to exactly the bytes a single-node
// run produces, and resubmitting answers from the merged-result cache.
func TestShardedSweepByteIdentity(t *testing.T) {
	registerSweep("fab-basic", 9, nil)
	urlA, stopA := newWorker(t, "")
	defer stopA()
	urlB, stopB := newWorker(t, "")
	defer stopB()

	c, err := New(Config{
		Experiments:  []experiments.Experiment{syntheticExperiment("fab-basic")},
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("a", urlA)
	c.Register("b", urlB)

	p := server.JobParams{N: 5}
	v, err := c.Submit("", "fab-basic", p)
	if err != nil {
		t.Fatal(err)
	}
	v = awaitDone(t, c, v.ID)
	want := expectedRender(t, "fab-basic", p)
	if !bytes.Equal(v.Result, want) {
		t.Fatalf("sharded result differs from single-node run:\n got: %q\nwant: %q", v.Result, want)
	}

	snap := c.Metrics()
	if got := snap.Get(mPointsCompleted); got != 9 {
		t.Fatalf("points completed = %d, want 9", got)
	}
	if a, cmp, rt, f := snap.Get(mPointsAssigned), snap.Get(mPointsCompleted), snap.Get(mPointsRetried), snap.Get(mPointsFailed); a != cmp+rt+f {
		t.Fatalf("conservation violated: assigned %d != completed %d + retried %d + failed %d", a, cmp, rt, f)
	}

	// Resubmit: answered from the merged-result cache without dispatch.
	v2, err := c.Submit("", "fab-basic", p)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || v2.State != server.StateDone {
		t.Fatalf("resubmit not cache-answered: cached=%v state=%s", v2.Cached, v2.State)
	}
	if !bytes.Equal(v2.Result, want) {
		t.Fatal("cached result bytes differ")
	}
	if got := c.Metrics().Get(mJobsCacheHits); got != 1 {
		t.Fatalf("jobs.cache_hits = %d, want 1", got)
	}
}

// TestAssignFaultRetry pins deterministic lease-loss recovery: an armed
// fabric.assign fault kills the first dispatch before the RPC, and the
// point is reassigned — the injected counterpart of a worker dying at
// assignment.
func TestAssignFaultRetry(t *testing.T) {
	registerSweep("fab-fault", 4, nil)
	url, stop := newWorker(t, "")
	defer stop()

	inj := faults.New(1)
	inj.Arm(SiteAssign, faults.Trigger{OnCall: 1})
	c, err := New(Config{
		Experiments:  []experiments.Experiment{syntheticExperiment("fab-fault")},
		Faults:       inj,
		RetryBackoff: time.Millisecond,
		MaxInflight:  1, // serialize so OnCall:1 hits a real dispatch deterministically
		Batch:        1, // one point per lease so the fault costs exactly one retry
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", url)

	p := server.JobParams{N: 3}
	v, err := c.Submit("", "fab-fault", p)
	if err != nil {
		t.Fatal(err)
	}
	v = awaitDone(t, c, v.ID)
	if want := expectedRender(t, "fab-fault", p); !bytes.Equal(v.Result, want) {
		t.Fatal("result differs from single-node run after injected dispatch fault")
	}
	snap := c.Metrics()
	if got := snap.Get(mPointsRetried); got != 1 {
		t.Fatalf("points.retried = %d, want exactly 1 (OnCall:1 trigger)", got)
	}
	if a, cmp, rt, f := snap.Get(mPointsAssigned), snap.Get(mPointsCompleted), snap.Get(mPointsRetried), snap.Get(mPointsFailed); a != cmp+rt+f {
		t.Fatalf("conservation violated: assigned %d != completed %d + retried %d + failed %d", a, cmp, rt, f)
	}
}

// TestChaosWorkerDeathMidSweep is the multi-node chaos test: a
// coordinator and two enlisted workers share one cache directory, one
// worker is killed mid-sweep, and the sweep must still complete with
//
//   - point-level retry observable in fabric.points.retried,
//   - the conservation identity intact,
//   - the merged result byte-identical to a single-node run,
//   - the death observable in fabric.workers.deaths.
func TestChaosWorkerDeathMidSweep(t *testing.T) {
	const points = 16
	var slow atomic.Bool
	slow.Store(true)
	registerSweep("fab-chaos", points, func(_ context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		if slow.Load() {
			time.Sleep(30 * time.Millisecond) // keep the sweep in flight while we kill a worker
		}
		return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index*7 + ps.N)}, nil
	})

	cacheDir := t.TempDir() // shared by both workers and the coordinator
	urlA, stopA := newWorker(t, cacheDir)
	urlB, stopB := newWorker(t, cacheDir)
	defer stopB()

	c, err := New(Config{
		Experiments:      []experiments.Experiment{syntheticExperiment("fab-chaos")},
		CacheDir:         cacheDir,
		HeartbeatTimeout: 300 * time.Millisecond,
		RetryBackoff:     5 * time.Millisecond,
		MaxPointAttempts: 16,
		MaxInflight:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	// Enlist both workers with live heartbeats, as a real fleet would.
	// Register directly as well so the sweep is not racing the first
	// heartbeat (registration and heartbeat are the same call).
	enlistCtx, stopEnlist := context.WithCancel(context.Background())
	defer stopEnlist()
	ctxA, killA := context.WithCancel(enlistCtx)
	for _, w := range []struct {
		ctx  context.Context
		name string
		url  string
	}{{ctxA, "a", urlA}, {enlistCtx, "b", urlB}} {
		c.Register(w.name, w.url)
		go Enlist(w.ctx, EnlistConfig{
			Coordinator: cts.URL, Name: w.name, Advertise: w.url, Interval: 50 * time.Millisecond,
		})
	}

	p := server.JobParams{N: 7}
	v, err := c.Submit("", "fab-chaos", p)
	if err != nil {
		t.Fatal(err)
	}

	// Kill worker A once the sweep is demonstrably in flight.
	deadline := time.Now().Add(5 * time.Second)
	for c.Metrics().Get(mPointsCompleted) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started completing points")
		}
		time.Sleep(5 * time.Millisecond)
	}
	killA()
	stopA() // closes client connections: in-flight leases on A die now
	slow.Store(false)

	v = awaitDone(t, c, v.ID)
	if want := expectedRender(t, "fab-chaos", p); !bytes.Equal(v.Result, want) {
		t.Fatalf("merged result after worker death differs from single-node run:\n got: %q\nwant: %q", v.Result, want)
	}

	snap := c.Metrics()
	if got := snap.Get(mPointsRetried); got == 0 {
		t.Fatal("worker death lost no lease: fabric.points.retried = 0")
	}
	if got := snap.Get(mPointsFailed); got != 0 {
		t.Fatalf("points.failed = %d, want 0 (death must retry, not fail)", got)
	}
	if a, cmp, rt, f := snap.Get(mPointsAssigned), snap.Get(mPointsCompleted), snap.Get(mPointsRetried), snap.Get(mPointsFailed); a != cmp+rt+f {
		t.Fatalf("conservation violated: assigned %d != completed %d + retried %d + failed %d", a, cmp, rt, f)
	}

	// The reaper must eventually declare A dead (its heartbeats stopped).
	deadline = time.Now().Add(5 * time.Second)
	for c.Metrics().Get(mWorkersDeaths) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker A was never declared dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := c.Metrics().Get(mWorkersAlive); got != 1 {
		t.Fatalf("workers.alive = %d, want 1", got)
	}
}

// TestCrossNodeCacheHits pins the shared-result protocol: a second
// coordinator with a cold index, pointed at a worker that already
// computed a sweep, gets every point answered from the worker's cache —
// observable in fabric.cache.remote_hits.
func TestCrossNodeCacheHits(t *testing.T) {
	const points = 5
	registerSweep("fab-xcache", points, nil)
	url, stop := newWorker(t, t.TempDir())
	defer stop()

	p := server.JobParams{N: 11}
	want := expectedRender(t, "fab-xcache", p)

	run := func() (*Coordinator, server.JobView) {
		c, err := New(Config{
			Experiments:  []experiments.Experiment{syntheticExperiment("fab-xcache")},
			RetryBackoff: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Register("w", url)
		v, err := c.Submit("", "fab-xcache", p)
		if err != nil {
			t.Fatal(err)
		}
		return c, awaitDone(t, c, v.ID)
	}

	c1, v1 := run()
	defer c1.Shutdown(context.Background())
	if got := c1.Metrics().Get(mCacheRemoteHits); got != 0 {
		t.Fatalf("first run saw %d remote hits, want 0", got)
	}

	c2, v2 := run() // cold coordinator, warm worker
	defer c2.Shutdown(context.Background())
	if got := c2.Metrics().Get(mCacheRemoteHits); got != points {
		t.Fatalf("cache.remote_hits = %d, want %d (all points warm on the worker)", got, points)
	}
	if !bytes.Equal(v1.Result, want) || !bytes.Equal(v2.Result, want) {
		t.Fatal("cross-node cached results differ from single-node run")
	}
}

// TestForwardedJob pins whole-job forwarding for experiments without a
// decomposition: the relayed result is byte-identical to the worker's
// own rendering.
func TestForwardedJob(t *testing.T) {
	url, stop := newWorker(t, "")
	defer stop()
	c, err := New(Config{
		Experiments:  []experiments.Experiment{syntheticExperiment("fab-fwd")},
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", url)

	p := server.JobParams{N: 21}.WithDefaults()
	v, err := c.Submit("", "fab-fwd", p)
	if err != nil {
		t.Fatal(err)
	}
	v = awaitDone(t, c, v.ID)
	want, err := server.RenderJSON(fakeResult{Value: fmt.Sprintf("fab-fwd n=%d", p.N)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Result, want) {
		t.Fatalf("forwarded result differs:\n got: %q\nwant: %q", v.Result, want)
	}
	if got := c.Metrics().Get(mJobsForwarded); got != 1 {
		t.Fatalf("jobs.forwarded = %d, want 1", got)
	}
}

// TestReaperAndRevival drives death detection directly: a silent worker
// is reaped, its ring membership drops, and a fresh heartbeat revives
// it.
func TestReaperAndRevival(t *testing.T) {
	c, err := New(Config{
		Experiments:      []experiments.Experiment{syntheticExperiment("fab-reap")},
		HeartbeatTimeout: time.Hour, // reaper ticks are irrelevant; we drive reapOnce by hand
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	c.Register("w1", "http://w1")
	c.Register("w2", "http://w2")
	if got := c.Metrics().Get(mWorkersAlive); got != 2 {
		t.Fatalf("alive = %d, want 2", got)
	}

	c.reapOnce(time.Now().Add(2 * time.Hour))
	ws := c.Workers()
	if len(ws) != 2 || ws[0].Alive || ws[1].Alive {
		t.Fatalf("workers not reaped: %+v", ws)
	}
	if got := c.Metrics().Get(mWorkersDeaths); got != 2 {
		t.Fatalf("deaths = %d, want 2", got)
	}
	if urls, _ := c.candidates("any-key"); len(urls) != 0 {
		t.Fatalf("dead workers still candidates: %v", urls)
	}

	c.Register("w1", "http://w1-new") // revival, possibly at a new address
	if urls, _ := c.candidates("any-key"); len(urls) != 1 || urls[0] != "http://w1-new" {
		t.Fatalf("revived worker not serving at new URL: %v", urls)
	}
}

// httpSubmit posts a job to a coordinator's HTTP API under a tenant.
func httpSubmit(t *testing.T, base, tenant, experiment string, p server.JobParams) (int, server.Envelope) {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{"experiment": experiment, "params": p})
	req, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.VersionHeader, server.APIVersion)
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, env
}

// TestQuotaAdmission pins per-tenant admission control over HTTP: a
// tenant at its in-flight quota gets 429 quota_exceeded while another
// tenant (with a larger per-tenant override) is still admitted, and
// finishing a job frees the slot.
func TestQuotaAdmission(t *testing.T) {
	registerSweep("fab-quota", 3, nil)
	c, err := New(Config{
		Experiments:      []experiments.Experiment{syntheticExperiment("fab-quota")},
		DefaultQuota:     1,
		Quotas:           map[string]int{"gold": 2},
		RetryBackoff:     5 * time.Millisecond,
		MaxPointAttempts: 1000, // jobs must outlive the fleet's empty phase
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// No workers yet: submissions are admitted and wait for the fleet.
	status, env := httpSubmit(t, ts.URL, "t1", "fab-quota", server.JobParams{N: 1})
	if status != http.StatusAccepted || env.Job == nil {
		t.Fatalf("first submit: status %d env %+v", status, env)
	}
	firstID := env.Job.ID

	status, env = httpSubmit(t, ts.URL, "t1", "fab-quota", server.JobParams{N: 2})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", status)
	}
	if env.Error == nil || env.Error.Code != server.CodeQuotaExceeded {
		t.Fatalf("over-quota submit: error %+v, want code %s", env.Error, server.CodeQuotaExceeded)
	}

	// The gold tenant's override admits two.
	for i, n := range []int{3, 4} {
		if status, _ = httpSubmit(t, ts.URL, "gold", "fab-quota", server.JobParams{N: n}); status != http.StatusAccepted {
			t.Fatalf("gold submit %d: status %d, want 202", i, status)
		}
	}
	if status, _ = httpSubmit(t, ts.URL, "gold", "fab-quota", server.JobParams{N: 5}); status != http.StatusTooManyRequests {
		t.Fatalf("gold over-quota submit: status %d, want 429", status)
	}
	if got := c.Metrics().Get(mJobsQuotaRejected); got != 2 {
		t.Fatalf("quota_rejected = %d, want 2", got)
	}

	// A worker joins; the waiting jobs drain; t1's slot frees.
	url, stop := newWorker(t, "")
	defer stop()
	c.Register("w", url)
	if v := awaitDone(t, c, firstID); v.ID != firstID {
		t.Fatal("wrong job")
	}
	status, env = httpSubmit(t, ts.URL, "t1", "fab-quota", server.JobParams{N: 1})
	if status != http.StatusOK || env.Job == nil || !env.Job.Cached {
		t.Fatalf("post-drain resubmit: status %d cached=%v, want 200 from cache", status, env.Job != nil && env.Job.Cached)
	}
}

// TestCoordinatorStreaming pins the coordinator's ndjson ?wait: with a
// sweep half-gated, keep-alive frames carry live point progress before
// the final merged envelope arrives.
func TestCoordinatorStreaming(t *testing.T) {
	const points = 6
	release := make(chan struct{})
	registerSweep("fab-stream", points, func(ctx context.Context, ps experiments.PointSpec) (experiments.PointResult, error) {
		if ps.Index >= points/2 {
			select {
			case <-release:
			case <-ctx.Done():
				return experiments.PointResult{}, ctx.Err()
			}
		}
		return experiments.PointResult{Index: ps.Index, Cycles: int64(1000 + ps.Index)}, nil
	})
	url, stop := newWorker(t, "")
	defer stop()
	c, err := New(Config{
		Experiments:      []experiments.Experiment{syntheticExperiment("fab-stream")},
		RetryBackoff:     5 * time.Millisecond,
		ProgressInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", url)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	_, env := httpSubmit(t, ts.URL, "", "fab-stream", server.JobParams{N: 2})
	if env.Job == nil {
		t.Fatal("submit returned no job")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+env.Job.ID+"?wait=10s", nil)
	req.Header.Set(server.VersionHeader, server.APIVersion)
	req.Header.Set("Accept", server.NDJSONContentType)
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(release)
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != server.NDJSONContentType {
		t.Fatalf("Content-Type = %q", ct)
	}

	var frames []server.Envelope
	var sawPartial bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "\n") || line == "" {
			t.Fatalf("frame not a single line: %q", line)
		}
		var f server.Envelope
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		if f.Progress != nil && f.Progress.PointsDone > 0 && f.Progress.PointsDone < f.Progress.PointsTotal {
			sawPartial = true
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want keep-alives plus a final envelope", len(frames))
	}
	if !sawPartial {
		t.Fatal("no keep-alive frame carried mid-sweep progress (0 < done < total)")
	}
	final := frames[len(frames)-1]
	if final.Job == nil || final.Job.State != server.StateDone || final.Error != nil {
		t.Fatalf("final frame not a done job: %+v", final)
	}
	if want := expectedRender(t, "fab-stream", server.JobParams{N: 2}); !jsonEqualCompact(t, final.Result, want) {
		t.Fatal("streamed final result differs from single-node run")
	}
}

// jsonEqualCompact compares two JSON payloads structurally (streamed
// frames are compacted; cache bytes are indented).
func jsonEqualCompact(t *testing.T, a, b []byte) bool {
	t.Helper()
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		t.Fatalf("bad JSON %q: %v", a, err)
	}
	if err := json.Compact(&cb, b); err != nil {
		t.Fatalf("bad JSON %q: %v", b, err)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// TestEnlistHeartbeats pins the worker-side membership loop against a
// real coordinator endpoint: registration appears, LastSeen advances,
// and cancelling the context stops the loop.
func TestEnlistHeartbeats(t *testing.T) {
	c, err := New(Config{Experiments: []experiments.Experiment{syntheticExperiment("fab-enlist")}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Enlist(ctx, EnlistConfig{
			Coordinator: ts.URL, Name: "hb", Advertise: "http://hb:1", Interval: 10 * time.Millisecond,
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	var first time.Time
	for {
		if ws := c.Workers(); len(ws) == 1 && ws[0].Alive {
			first = ws[0].LastSeen
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never enlisted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		if ws := c.Workers(); ws[0].LastSeen.After(first) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never advanced LastSeen")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Enlist returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Enlist did not stop on cancel")
	}
}

// TestCacheProbeEndpoint pins the shared result-index protocol: the
// coordinator serves cached bytes verbatim by content address and 404s
// on misses.
func TestCacheProbeEndpoint(t *testing.T) {
	registerSweep("fab-probe", 2, nil)
	url, stop := newWorker(t, "")
	defer stop()
	c, err := New(Config{
		Experiments:  []experiments.Experiment{syntheticExperiment("fab-probe")},
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Register("w", url)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	p := server.JobParams{N: 9}
	v, err := c.Submit("", "fab-probe", p)
	if err != nil {
		t.Fatal(err)
	}
	v = awaitDone(t, c, v.ID)

	resp, err := http.Get(ts.URL + "/v1/cache/" + v.Key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, []byte(v.Result)) {
		t.Fatalf("cache probe: status %d, bytes match %v", resp.StatusCode, bytes.Equal(got, []byte(v.Result)))
	}

	resp, err = http.Get(ts.URL + "/v1/cache/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing key: status %d, want 404", resp.StatusCode)
	}
}
