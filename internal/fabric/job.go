package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
	"repro/internal/fabric/journal"
	"repro/internal/server"
)

// fjob is the coordinator's record of one accepted job. It mirrors the
// server's job just closely enough to render the same JobView, so a
// client cannot tell a coordinator from a server by response shape.
type fjob struct {
	id         string
	experiment string
	params     server.JobParams
	key        string // render key of the merged result
	tenant     string

	state   server.State
	cached  bool
	errMsg  string
	errCode string
	result  []byte

	created  time.Time
	started  time.Time
	finished time.Time

	pointsDone  atomic.Int64
	pointsTotal atomic.Int64

	// jdone marks point indexes whose point_completed journal record
	// already exists, either written this incarnation or replayed from a
	// previous one — the idempotence fence that keeps a re-driven sweep
	// from journaling (and thus counting) the same completion twice.
	// Guarded by Coordinator.mu.
	jdone map[int]bool

	// Failure forensics for the repro bundle: the lowest-index failed
	// point's spec, plus the worker's raw error (failDetail) and typed
	// code, free of the "worker http://..." framing that would make the
	// bundle key depend on topology. Written once before the job turns
	// terminal; repro holds the marshaled bundle.
	failSpec   *experiments.PointSpec
	failDetail string
	failCode   string
	repro      []byte

	done chan struct{}
}

func (j *fjob) view(withResult bool) server.JobView {
	v := server.JobView{
		ID:         j.id,
		Experiment: j.experiment,
		Params:     j.params,
		Key:        j.key,
		State:      j.state,
		Cached:     j.cached,
		Error:      j.errMsg,
		ErrorCode:  j.errCode,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult && j.state == server.StateDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

func (j *fjob) progress() *server.Progress {
	total := j.pointsTotal.Load()
	if total == 0 {
		return nil
	}
	return &server.Progress{PointsDone: int(j.pointsDone.Load()), PointsTotal: int(total)}
}

// fabricError carries a typed API code through the scheduler, so a
// job's failure reports the same code a single server would have used.
// detail preserves the worker's own message before the scheduler wraps
// it with dispatch framing — repro bundles want the portable half.
type fabricError struct {
	code   string
	detail string
	err    error
}

func (e *fabricError) Error() string { return e.err.Error() }
func (e *fabricError) Unwrap() error { return e.err }

func codeOf(err error) string {
	var fe *fabricError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &fe):
		return fe.code
	case errors.Is(err, context.Canceled):
		return server.CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return server.CodeTimeout
	default:
		return server.CodeExperimentFailed
	}
}

// Submit accepts one job for a tenant ("" = anonymous). The submission
// path mirrors the server's: resolve defaults, derive the content
// address, answer from the cache when the merged result already exists,
// otherwise start the distributed run.
func (c *Coordinator) Submit(tenant, experiment string, p server.JobParams) (server.JobView, error) {
	if !c.exps[experiment] {
		return server.JobView{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, experiment)
	}
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return server.JobView{}, err
	}
	jobKey, err := server.JobKey(experiment, p)
	if err != nil {
		return server.JobView{}, err
	}
	key := server.RenderKey(jobKey, "json")

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		c.metrics.Inc(mJobsRejected)
		return server.JobView{}, ErrShuttingDown
	}
	if q := c.quota(tenant); q > 0 && c.tenants[tenant] >= q {
		c.metrics.Inc(mJobsQuotaRejected)
		return server.JobView{}, fmt.Errorf("%w: tenant %q has %d jobs in flight (quota %d)",
			ErrQuotaExceeded, tenant, c.tenants[tenant], q)
	}
	c.metrics.Inc(mJobsSubmitted)
	j := &fjob{
		id:         fmt.Sprintf("f%d", c.nextID),
		experiment: experiment,
		params:     p,
		key:        key,
		tenant:     tenant,
		state:      server.StateQueued,
		created:    time.Now(),
		jdone:      make(map[int]bool),
		done:       make(chan struct{}),
	}
	c.nextID++
	c.jobs[j.id] = j
	c.order = append(c.order, j)

	if val, ok := c.cache.Get(key); ok {
		j.cached = true
		c.finishLocked(j, val, nil)
		c.metrics.Inc(mJobsCacheHits)
		return j.view(true), nil
	}
	// Journal the acceptance before the run starts: a job either never
	// existed or is recoverable — there is no window where work is in
	// flight for a job a restart would not know about. Cache-answered
	// jobs are deliberately not journaled; resubmission hits the cache
	// again.
	if raw, err := json.Marshal(p); err == nil {
		c.jappend(journal.Record{Type: journal.TypeJobAccepted, Job: j.id,
			Tenant: tenant, Experiment: experiment, Params: raw, Key: key})
	}
	c.tenants[tenant]++
	c.wg.Add(1)
	go c.runJob(j)
	return j.view(true), nil
}

// Job returns the view of a submitted job.
func (c *Coordinator) Job(id string) (server.JobView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return server.JobView{}, false
	}
	return j.view(true), true
}

// Jobs returns every job in submission order, without result payloads.
func (c *Coordinator) Jobs() []server.JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]server.JobView, len(c.order))
	for i, j := range c.order {
		out[i] = j.view(false)
	}
	return out
}

// Await blocks until the job finishes, the timeout elapses, or cancel
// fires, then returns the current view.
func (c *Coordinator) Await(id string, timeout time.Duration, cancel <-chan struct{}) (server.JobView, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return server.JobView{}, false
	}
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-cancel:
		}
	}
	return c.Job(id)
}

// runJob drives one job to completion: decomposable sweeps shard
// point-by-point across the fleet; anything else ships whole to one
// worker.
func (c *Coordinator) runJob(j *fjob) {
	defer func() {
		c.mu.Lock()
		c.tenants[j.tenant]--
		if c.tenants[j.tenant] <= 0 {
			delete(c.tenants, j.tenant)
		}
		c.mu.Unlock()
		c.wg.Done()
	}()
	c.mu.Lock()
	j.state = server.StateRunning
	j.started = time.Now()
	c.mu.Unlock()

	var val []byte
	var err error
	if specs, ok := experiments.Decompose(j.experiment, j.params.RunConfig()); ok {
		val, err = c.runSharded(j, specs)
	} else {
		c.metrics.Inc(mJobsForwarded)
		val, err = c.forwardJob(j)
	}
	if err == nil {
		// Degrade on a failed write exactly as the server does: the merged
		// result is in hand, only the shared copy is lost. The merged
		// record goes down after the Put — it is recovery's licence to
		// forget the job, so the result must already be addressable.
		_ = c.cache.Put(j.key, val)
		c.jappend(journal.Record{Type: journal.TypeJobMerged, Job: j.id, Key: j.key})
	} else {
		rec := journal.Record{Type: journal.TypeJobFailed, Job: j.id,
			Error: err.Error(), Code: codeOf(err)}
		if b, rerr := c.buildRepro(j, err); rerr == nil {
			j.repro = b
			rec.Repro = b
		}
		c.jappend(rec)
	}
	c.mu.Lock()
	c.finishLocked(j, val, err)
	c.mu.Unlock()
}

// runSharded runs a decomposed sweep: every point dispatched across the
// fleet (bounded by MaxInflight), results merged in index order, with
// the pool's lowest-index-error rule — when points fail, the job
// reports the failure of the lowest-index one, independent of dispatch
// interleaving.
func (c *Coordinator) runSharded(j *fjob, specs []experiments.PointSpec) ([]byte, error) {
	j.pointsTotal.Store(int64(len(specs)))
	results := make([]experiments.PointResult, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, c.cfg.MaxInflight)
	var wg sync.WaitGroup
	for i := range specs {
		if c.runCtx.Err() != nil {
			errs[i] = c.runCtx.Err()
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			res, err := c.runPoint(j, i, specs[i])
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res
			j.pointsDone.Add(1)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			// Record the failing point for the repro bundle before the job
			// turns terminal: the spec pins the exact point, the detail and
			// code pin the failure free of dispatch framing.
			sp := specs[i]
			j.failSpec = &sp
			j.failDetail, j.failCode = e.Error(), codeOf(e)
			var fe *fabricError
			if errors.As(e, &fe) && fe.detail != "" {
				j.failDetail, j.failCode = fe.detail, fe.code
			}
			return nil, fmt.Errorf("point %d: %w", i, e)
		}
	}
	merged, err := experiments.MergePoints(j.experiment, j.params.RunConfig(), results)
	if err != nil {
		return nil, err
	}
	return server.RenderJSON(merged)
}

// runPoint resolves one spec to its result: the coordinator's own index
// first, then dispatch along the key's ring candidates until a worker
// answers, the attempt budget runs out, or the error is terminal.
//
// Every real dispatch is bracketed by journal records — point_assigned
// (stamped with this incarnation's epoch) before the RPC, then exactly
// one of point_completed / point_retried / point_failed after it — so
// at any instant the log's open assignments are precisely the in-flight
// leases, and a crash leaves nothing uncountable. Cache-answered points
// write no records at all: no lease was ever issued for them.
func (c *Coordinator) runPoint(j *fjob, idx int, spec experiments.PointSpec) (experiments.PointResult, error) {
	key, err := canon.PointKey(spec)
	if err != nil {
		return experiments.PointResult{}, &fabricError{code: server.CodeBadRequest, err: err}
	}
	if val, ok := c.cache.Get(key); ok {
		var res experiments.PointResult
		if err := json.Unmarshal(val, &res); err == nil {
			c.metrics.Inc(mCacheHits)
			return res, nil
		}
	}
	backoff := c.cfg.RetryBackoff
	var lastErr error = errNoWorkers
	// attempt advances only on a real dispatch: an empty fleet (workers
	// still booting, or re-enlisting after a coordinator restart) must
	// not burn the budget.
	for attempt := 0; attempt < c.cfg.MaxPointAttempts; {
		urls, wake := c.candidates(key)
		if len(urls) == 0 {
			select {
			case <-wake:
			case <-time.After(backoff):
				backoff = nextBackoff(backoff)
			case <-c.runCtx.Done():
				return experiments.PointResult{}, c.runCtx.Err()
			}
			continue
		}
		url := urls[attempt%len(urls)]
		attempt++
		c.metrics.Inc(mPointsAssigned)
		c.jappend(journal.Record{Type: journal.TypePointAssigned, Job: j.id,
			Index: idx, Key: key, Epoch: c.epoch})
		res, cached, err := c.shipPoint(url, key, spec)
		if err == nil {
			c.metrics.Inc(mPointsCompleted)
			if cached {
				c.metrics.Inc(mCacheRemoteHits)
			}
			if val, merr := json.Marshal(res); merr == nil {
				_ = c.cache.Put(key, val)
			}
			// Close the lease after the result is addressable, and only
			// once per point ever — a replayed completion that re-ran
			// because its cached bytes were lost must not double-count.
			c.mu.Lock()
			first := !j.jdone[idx]
			j.jdone[idx] = true
			c.mu.Unlock()
			if first {
				c.jappend(journal.Record{Type: journal.TypePointCompleted, Job: j.id, Index: idx, Key: key})
			} else {
				c.jappend(journal.Record{Type: journal.TypePointRetried, Job: j.id, Index: idx})
			}
			return res, nil
		}
		var fe *fabricError
		if errors.As(err, &fe) && terminalCode(fe.code) {
			c.metrics.Inc(mPointsFailed)
			c.jappend(journal.Record{Type: journal.TypePointFailed, Job: j.id,
				Index: idx, Error: err.Error(), Code: fe.code})
			return experiments.PointResult{}, err
		}
		// The lease died — worker unreachable, saturated, or draining.
		// Reassign to the next ring candidate after a breather.
		c.metrics.Inc(mPointsRetried)
		c.jappend(journal.Record{Type: journal.TypePointRetried, Job: j.id, Index: idx})
		lastErr = err
		select {
		case <-time.After(backoff):
		case <-c.runCtx.Done():
			return experiments.PointResult{}, c.runCtx.Err()
		}
		backoff = nextBackoff(backoff)
	}
	return experiments.PointResult{}, fmt.Errorf("point %s undeliverable after %d attempts: %w",
		key[:12], c.cfg.MaxPointAttempts, lastErr)
}

func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > time.Second {
		d = time.Second
	}
	return d
}

// terminalCode reports whether a worker's error code means the point
// itself is bad — retrying it elsewhere would fail identically.
func terminalCode(code string) bool {
	switch code {
	case server.CodeQueueFull, server.CodeShuttingDown:
		return false // load shedding: another worker (or a later try) can serve
	case "":
		return false // no typed code = transport-level trouble
	default:
		return true
	}
}

// shipPoint performs one point dispatch RPC. The error is a
// *fabricError carrying the worker's typed code when the worker
// answered with one, or an untyped transport error when it did not.
func (c *Coordinator) shipPoint(workerURL, key string, spec experiments.PointSpec) (experiments.PointResult, bool, error) {
	if err := c.faults.Fail(SiteAssign); err != nil {
		return experiments.PointResult{}, false, fmt.Errorf("dispatch to %s: %w", workerURL, err)
	}
	body, err := json.Marshal(map[string]interface{}{"key": key, "point": spec})
	if err != nil {
		return experiments.PointResult{}, false, &fabricError{code: server.CodeBadRequest, err: err}
	}
	req, err := http.NewRequestWithContext(c.runCtx, "POST", workerURL+"/v1/points", bytes.NewReader(body))
	if err != nil {
		return experiments.PointResult{}, false, &fabricError{code: server.CodeBadRequest, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.VersionHeader, server.APIVersion)
	resp, err := c.client.Do(req)
	if err != nil {
		return experiments.PointResult{}, false, fmt.Errorf("dispatch to %s: %w", workerURL, err)
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return experiments.PointResult{}, false, fmt.Errorf("dispatch to %s: bad envelope: %w", workerURL, err)
	}
	if resp.StatusCode != http.StatusOK || env.Point == nil {
		code, msg := "", fmt.Sprintf("status %d", resp.StatusCode)
		if env.Error != nil {
			code, msg = env.Error.Code, env.Error.Message
		}
		if !terminalCode(code) {
			return experiments.PointResult{}, false, fmt.Errorf("dispatch to %s: %s", workerURL, msg)
		}
		return experiments.PointResult{}, false, &fabricError{code: code, detail: msg,
			err: fmt.Errorf("worker %s: %s", workerURL, msg)}
	}
	return *env.Point, env.Cached, nil
}

// forwardJob ships a non-decomposable job whole to one worker (chosen
// by the job's content address, so identical jobs land on the same
// worker and coalesce there) and relays the result.
func (c *Coordinator) forwardJob(j *fjob) ([]byte, error) {
	backoff := c.cfg.RetryBackoff
	var lastErr error = errNoWorkers
	// As in runPoint: attempt advances only on a real dispatch, so an
	// empty fleet never burns the budget.
	for attempt := 0; attempt < c.cfg.MaxPointAttempts; {
		urls, wake := c.candidates(j.key)
		if len(urls) == 0 {
			select {
			case <-wake:
			case <-time.After(backoff):
				backoff = nextBackoff(backoff)
			case <-c.runCtx.Done():
				return nil, c.runCtx.Err()
			}
			continue
		}
		url := urls[attempt%len(urls)]
		attempt++
		val, err := c.forwardOnce(url, j)
		if err == nil {
			return val, nil
		}
		var fe *fabricError
		if errors.As(err, &fe) && terminalCode(fe.code) {
			return nil, err
		}
		lastErr = err
		select {
		case <-time.After(backoff):
		case <-c.runCtx.Done():
			return nil, c.runCtx.Err()
		}
		backoff = nextBackoff(backoff)
	}
	return nil, fmt.Errorf("job %s undeliverable after %d attempts: %w", j.id, c.cfg.MaxPointAttempts, lastErr)
}

// forwardOnce submits the job to one worker and long-polls it to
// completion. The relayed result is re-rendered through the canonical
// formatting so its bytes match a direct single-node run exactly.
func (c *Coordinator) forwardOnce(workerURL string, j *fjob) ([]byte, error) {
	body, _ := json.Marshal(map[string]interface{}{"experiment": j.experiment, "params": j.params})
	env, status, err := c.doEnvelope("POST", workerURL+"/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	if env.Error != nil && status != http.StatusOK && status != http.StatusAccepted {
		if terminalCode(env.Error.Code) {
			return nil, &fabricError{code: env.Error.Code, detail: env.Error.Message,
				err: fmt.Errorf("worker %s: %s", workerURL, env.Error.Message)}
		}
		return nil, fmt.Errorf("worker %s refused job: %s", workerURL, env.Error.Message)
	}
	if env.Job == nil {
		return nil, fmt.Errorf("worker %s: job response without a job", workerURL)
	}
	for env.Job.State != server.StateDone && env.Job.State != server.StateFailed {
		if c.runCtx.Err() != nil {
			return nil, c.runCtx.Err()
		}
		env, _, err = c.doEnvelope("GET", workerURL+"/v1/jobs/"+env.Job.ID+"?wait=5s", nil)
		if err != nil {
			return nil, err
		}
		if env.Job == nil {
			return nil, fmt.Errorf("worker %s: poll response without a job", workerURL)
		}
	}
	if env.Job.State == server.StateFailed {
		code := env.Job.ErrorCode
		if code == "" {
			code = server.CodeExperimentFailed
		}
		return nil, &fabricError{code: code, detail: env.Job.Error,
			err: fmt.Errorf("worker %s: %s", workerURL, env.Job.Error)}
	}
	return normalizeResult(env.Result)
}

// doEnvelope performs one current-version API request and decodes the
// envelope. Transport errors come back untyped (retryable).
func (c *Coordinator) doEnvelope(method, url string, body []byte) (server.Envelope, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(c.runCtx, method, url, rd)
	if err != nil {
		return server.Envelope{}, 0, &fabricError{code: server.CodeBadRequest, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(server.VersionHeader, server.APIVersion)
	resp, err := c.client.Do(req)
	if err != nil {
		return server.Envelope{}, 0, err
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return server.Envelope{}, resp.StatusCode, fmt.Errorf("bad envelope from %s: %w", url, err)
	}
	return env, resp.StatusCode, nil
}

// normalizeResult re-renders relayed result bytes in the canonical
// cache format (two-space indent, trailing newline). A result embedded
// in a response envelope was re-indented relative to its position in
// that envelope; normalizing restores the exact bytes RenderJSON
// produces, preserving the byte-identity and shared-cache contracts.
func normalizeResult(raw json.RawMessage) ([]byte, error) {
	if len(raw) == 0 {
		return nil, errors.New("forwarded job finished without result bytes")
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, raw); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := json.Indent(&out, compact.Bytes(), "", "  "); err != nil {
		return nil, err
	}
	out.WriteByte('\n')
	return out.Bytes(), nil
}

// buildRepro assembles the deterministic repro bundle for a job that is
// about to turn terminal-failed: the resolved params, the failing
// point's spec and content address when the sweep pinned one, and the
// coordinator's fault-injection state — everything cascade-sim -repro
// needs to replay the failure bit-for-bit, nothing tied to the fleet
// topology the failure happened on.
func (c *Coordinator) buildRepro(j *fjob, err error) ([]byte, error) {
	b := server.ReproBundle{
		Schema:     canon.ReproSchema,
		Job:        j.id,
		Experiment: j.experiment,
		Params:     j.params,
		JobKey:     j.key,
		Error:      err.Error(),
		ErrorCode:  codeOf(err),
	}
	var fe *fabricError
	if errors.As(err, &fe) && fe.detail != "" {
		b.Error, b.ErrorCode = fe.detail, fe.code
	}
	if j.failSpec != nil {
		sp := *j.failSpec
		b.Point = &sp
		if key, kerr := canon.PointKey(sp); kerr == nil {
			b.PointKey = key
		}
		if j.failDetail != "" {
			b.Error, b.ErrorCode = j.failDetail, j.failCode
		}
	}
	if c.cfg.FaultSpec != "" {
		b.Faults = &server.ReproFaults{Spec: c.cfg.FaultSpec, Seed: c.cfg.FaultSeed,
			Fired: server.FiredCounts(c.faults, FaultSites())}
	}
	if _, err := b.DeriveKey(); err != nil {
		return nil, err
	}
	return json.Marshal(b)
}

// Repro returns the raw repro bundle of a terminal-failed job.
func (c *Coordinator) Repro(id string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, &fabricError{code: server.CodeNotFound, err: fmt.Errorf("unknown job %q", id)}
	}
	if j.state != server.StateFailed {
		return nil, &fabricError{code: server.CodeBadRequest,
			err: fmt.Errorf("job %q is %s; repro bundles exist only for failed jobs", id, j.state)}
	}
	if len(j.repro) == 0 {
		return nil, &fabricError{code: server.CodeNotFound,
			err: fmt.Errorf("job %q failed without a repro bundle", id)}
	}
	return j.repro, nil
}

// finishLocked moves a job to its terminal state and wakes waiters.
// Callers must hold c.mu.
func (c *Coordinator) finishLocked(j *fjob, val []byte, err error) {
	j.finished = time.Now()
	if err != nil {
		j.state = server.StateFailed
		j.errMsg = err.Error()
		j.errCode = codeOf(err)
		c.metrics.Inc(mJobsFailed)
	} else {
		j.state = server.StateDone
		j.result = val
		c.metrics.Inc(mJobsCompleted)
	}
	close(j.done)
}
