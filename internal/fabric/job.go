package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/experiments"
	"repro/internal/fabric/journal"
	"repro/internal/server"
)

// fjob is the coordinator's record of one accepted job. It mirrors the
// server's job just closely enough to render the same JobView, so a
// client cannot tell a coordinator from a server by response shape.
type fjob struct {
	id         string
	experiment string
	params     server.JobParams
	key        string // render key of the merged result
	tenant     string

	state   server.State
	cached  bool
	errMsg  string
	errCode string
	result  []byte

	created  time.Time
	started  time.Time
	finished time.Time

	pointsDone  atomic.Int64
	pointsTotal atomic.Int64

	// jdone marks point indexes whose point_completed journal record
	// already exists, either written this incarnation or replayed from a
	// previous one — the idempotence fence that keeps a re-driven sweep
	// from journaling (and thus counting) the same completion twice.
	// Guarded by Coordinator.mu.
	jdone map[int]bool

	// Failure forensics for the repro bundle: the lowest-index failed
	// point's spec, plus the worker's raw error (failDetail) and typed
	// code, free of the "worker http://..." framing that would make the
	// bundle key depend on topology. Written once before the job turns
	// terminal; repro holds the marshaled bundle.
	failSpec   *experiments.PointSpec
	failDetail string
	failCode   string
	repro      []byte

	done chan struct{}
}

func (j *fjob) view(withResult bool) server.JobView {
	v := server.JobView{
		ID:         j.id,
		Experiment: j.experiment,
		Params:     j.params,
		Key:        j.key,
		State:      j.state,
		Cached:     j.cached,
		Error:      j.errMsg,
		ErrorCode:  j.errCode,
		Created:    j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult && j.state == server.StateDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

func (j *fjob) progress() *server.Progress {
	total := j.pointsTotal.Load()
	if total == 0 {
		return nil
	}
	return &server.Progress{PointsDone: int(j.pointsDone.Load()), PointsTotal: int(total)}
}

// fabricError carries a typed API code through the scheduler, so a
// job's failure reports the same code a single server would have used.
// detail preserves the worker's own message before the scheduler wraps
// it with dispatch framing — repro bundles want the portable half.
type fabricError struct {
	code   string
	detail string
	err    error
}

func (e *fabricError) Error() string { return e.err.Error() }
func (e *fabricError) Unwrap() error { return e.err }

func codeOf(err error) string {
	var fe *fabricError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &fe):
		return fe.code
	case errors.Is(err, context.Canceled):
		return server.CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return server.CodeTimeout
	default:
		return server.CodeExperimentFailed
	}
}

// Submit accepts one job for a tenant ("" = anonymous). The submission
// path mirrors the server's: resolve defaults, derive the content
// address, answer from the cache when the merged result already exists,
// otherwise start the distributed run.
func (c *Coordinator) Submit(tenant, experiment string, p server.JobParams) (server.JobView, error) {
	if !c.exps[experiment] {
		return server.JobView{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, experiment)
	}
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return server.JobView{}, err
	}
	jobKey, err := server.JobKey(experiment, p)
	if err != nil {
		return server.JobView{}, err
	}
	key := server.RenderKey(jobKey, "json")

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		c.metrics.Inc(mJobsRejected)
		return server.JobView{}, ErrShuttingDown
	}
	if q := c.quota(tenant); q > 0 && c.tenants[tenant] >= q {
		c.metrics.Inc(mJobsQuotaRejected)
		return server.JobView{}, fmt.Errorf("%w: tenant %q has %d jobs in flight (quota %d)",
			ErrQuotaExceeded, tenant, c.tenants[tenant], q)
	}
	c.metrics.Inc(mJobsSubmitted)
	j := &fjob{
		id:         fmt.Sprintf("f%d", c.nextID),
		experiment: experiment,
		params:     p,
		key:        key,
		tenant:     tenant,
		state:      server.StateQueued,
		created:    time.Now(),
		jdone:      make(map[int]bool),
		done:       make(chan struct{}),
	}
	c.nextID++
	c.jobs[j.id] = j
	c.order = append(c.order, j)

	if val, ok := c.cache.Get(key); ok {
		j.cached = true
		c.finishLocked(j, val, nil)
		c.metrics.Inc(mJobsCacheHits)
		return j.view(true), nil
	}
	// Journal the acceptance before the run starts: a job either never
	// existed or is recoverable — there is no window where work is in
	// flight for a job a restart would not know about. Cache-answered
	// jobs are deliberately not journaled; resubmission hits the cache
	// again.
	if raw, err := json.Marshal(p); err == nil {
		c.jappend(journal.Record{Type: journal.TypeJobAccepted, Job: j.id,
			Tenant: tenant, Experiment: experiment, Params: raw, Key: key})
	}
	c.tenants[tenant]++
	c.wg.Add(1)
	go c.runJob(j)
	return j.view(true), nil
}

// Job returns the view of a submitted job.
func (c *Coordinator) Job(id string) (server.JobView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return server.JobView{}, false
	}
	return j.view(true), true
}

// Jobs returns every job in submission order, without result payloads.
func (c *Coordinator) Jobs() []server.JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]server.JobView, len(c.order))
	for i, j := range c.order {
		out[i] = j.view(false)
	}
	return out
}

// Await blocks until the job finishes, the timeout elapses, or cancel
// fires, then returns the current view.
func (c *Coordinator) Await(id string, timeout time.Duration, cancel <-chan struct{}) (server.JobView, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return server.JobView{}, false
	}
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-cancel:
		}
	}
	return c.Job(id)
}

// runJob drives one job to completion: decomposable sweeps shard
// point-by-point across the fleet; anything else ships whole to one
// worker.
func (c *Coordinator) runJob(j *fjob) {
	defer func() {
		c.mu.Lock()
		c.tenants[j.tenant]--
		if c.tenants[j.tenant] <= 0 {
			delete(c.tenants, j.tenant)
		}
		c.mu.Unlock()
		c.wg.Done()
	}()
	c.mu.Lock()
	j.state = server.StateRunning
	j.started = time.Now()
	c.mu.Unlock()

	var val []byte
	var err error
	if specs, ok := experiments.Decompose(j.experiment, j.params.RunConfig()); ok {
		val, err = c.runSharded(j, specs)
	} else {
		c.metrics.Inc(mJobsForwarded)
		val, err = c.forwardJob(j)
	}
	if err == nil {
		// Degrade on a failed write exactly as the server does: the merged
		// result is in hand, only the shared copy is lost. The merged
		// record goes down after the Put — it is recovery's licence to
		// forget the job, so the result must already be addressable.
		_ = c.cache.Put(j.key, val)
		c.jappend(journal.Record{Type: journal.TypeJobMerged, Job: j.id, Key: j.key})
	} else {
		rec := journal.Record{Type: journal.TypeJobFailed, Job: j.id,
			Error: err.Error(), Code: codeOf(err)}
		if b, rerr := c.buildRepro(j, err); rerr == nil {
			j.repro = b
			rec.Repro = b
		}
		c.jappend(rec)
	}
	c.mu.Lock()
	c.finishLocked(j, val, err)
	c.mu.Unlock()
}

// runSharded runs a decomposed sweep: points are carved into batched
// leases (size per batch.go), dispatched across the fleet by up to
// MaxInflight concurrent dispatchers, and merged in index order with
// the pool's lowest-index-error rule — when points fail, the job
// reports the failure of the lowest-index one, independent of dispatch
// interleaving.
func (c *Coordinator) runSharded(j *fjob, specs []experiments.PointSpec) ([]byte, error) {
	j.pointsTotal.Store(int64(len(specs)))
	results := make([]experiments.PointResult, len(specs))
	errs := make([]error, len(specs))
	var cursor int64
	dispatchers := c.cfg.MaxInflight
	if dispatchers > len(specs) {
		dispatchers = len(specs)
	}
	var wg sync.WaitGroup
	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Lease size is re-read per lease, so the adaptive tuner's
				// estimate from early leases shapes later ones mid-job.
				size := c.tuner.size(c.cfg.Batch)
				c.metrics.Set(mBatchSize, int64(size))
				lo := int(atomic.AddInt64(&cursor, int64(size))) - size
				if lo >= len(specs) {
					return
				}
				hi := lo + size
				if hi > len(specs) {
					hi = len(specs)
				}
				c.runLease(j, specs, results, errs, lo, hi)
			}
		}()
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			// Record the failing point for the repro bundle before the job
			// turns terminal: the spec pins the exact point, the detail and
			// code pin the failure free of dispatch framing.
			sp := specs[i]
			j.failSpec = &sp
			j.failDetail, j.failCode = e.Error(), codeOf(e)
			var fe *fabricError
			if errors.As(e, &fe) && fe.detail != "" {
				j.failDetail, j.failCode = fe.detail, fe.code
			}
			return nil, fmt.Errorf("point %d: %w", i, e)
		}
	}
	merged, err := experiments.MergePoints(j.experiment, j.params.RunConfig(), results)
	if err != nil {
		return nil, err
	}
	return server.RenderJSON(merged)
}

// leaseItem is one point riding a batched lease.
type leaseItem struct {
	idx  int
	key  string
	spec experiments.PointSpec
}

// runLease resolves specs[lo:hi] to results: the coordinator's own
// index first, then batched dispatch along the first open point's ring
// candidates until every point retires, its attempt budget runs out, or
// its error is terminal. A retry re-ships only the unfinished remainder
// — points whose outcomes arrived before a worker died are closed and
// never re-dispatched.
//
// Every shipped point is bracketed by journal records exactly as
// unbatched dispatch was — point_assigned (stamped with this
// incarnation's epoch) before the RPC, then exactly one of
// point_completed / point_retried / point_failed per assignment — so at
// any instant the log's open assignments are precisely the in-flight
// leases, a crash leaves nothing uncountable, and the conservation
// identity (metrics.go) holds at any batch size. Cache-answered points
// write no records at all: no lease was ever issued for them.
func (c *Coordinator) runLease(j *fjob, specs []experiments.PointSpec, results []experiments.PointResult, errs []error, lo, hi int) {
	var todo []leaseItem
	for idx := lo; idx < hi; idx++ {
		if err := c.runCtx.Err(); err != nil {
			errs[idx] = err
			continue
		}
		key, err := canon.PointKey(specs[idx])
		if err != nil {
			errs[idx] = &fabricError{code: server.CodeBadRequest, err: err}
			continue
		}
		if val, ok := c.cache.Get(key); ok {
			var res experiments.PointResult
			if jerr := json.Unmarshal(val, &res); jerr == nil {
				c.metrics.Inc(mCacheHits)
				results[idx] = res
				j.pointsDone.Add(1)
				continue
			}
		}
		todo = append(todo, leaseItem{idx: idx, key: key, spec: specs[idx]})
	}

	attempts := make(map[int]int, len(todo))
	backoff := c.cfg.RetryBackoff
	rot := 0
	for len(todo) > 0 {
		if err := c.runCtx.Err(); err != nil {
			for _, it := range todo {
				errs[it.idx] = err
			}
			return
		}
		urls, wake := c.candidates(todo[0].key)
		if len(urls) == 0 {
			select {
			case <-wake:
			case <-time.After(backoff):
				backoff = nextBackoff(backoff)
			case <-c.runCtx.Done():
				for _, it := range todo {
					errs[it.idx] = c.runCtx.Err()
				}
				return
			}
			continue
		}
		url := urls[rot%len(urls)]
		rot++
		c.metrics.Inc(mBatchesDispatched)
		shipped := todo
		for _, it := range shipped {
			attempts[it.idx]++
			c.metrics.Inc(mPointsAssigned)
			c.jappend(journal.Record{Type: journal.TypePointAssigned, Job: j.id,
				Index: it.idx, Key: it.key, Epoch: c.epoch})
		}
		// done marks leases closed by an outcome this round — completed or
		// terminally failed; anything still open afterwards is the
		// remainder, journaled retried and re-shipped.
		done := make(map[int]bool, len(shipped))
		err := c.shipBatch(url, shipped, func(pos int, o server.PointOutcome) {
			if pos < 0 || pos >= len(shipped) || done[shipped[pos].idx] {
				return
			}
			it := shipped[pos]
			switch {
			case o.Error == nil && o.Point != nil:
				done[it.idx] = true
				results[it.idx] = *o.Point
				c.completePoint(j, it, *o.Point, o.Cached)
			case o.Error != nil && terminalCode(o.Error.Code):
				done[it.idx] = true
				ferr := &fabricError{code: o.Error.Code, detail: o.Error.Message,
					err: fmt.Errorf("worker %s: %s", url, o.Error.Message)}
				c.metrics.Inc(mPointsFailed)
				c.jappend(journal.Record{Type: journal.TypePointFailed, Job: j.id,
					Index: it.idx, Error: ferr.Error(), Code: o.Error.Code})
				errs[it.idx] = ferr
				// A malformed or shed outcome (non-terminal error, or a frame
				// with neither result nor error) leaves the lease open; the
				// remainder pass below retries it.
			}
		})
		if err != nil {
			// A batch-level terminal error — the worker refused the request
			// in a way a retry elsewhere would reproduce — fails every open
			// lease identically.
			var fe *fabricError
			if errors.As(err, &fe) && terminalCode(fe.code) {
				for _, it := range shipped {
					if done[it.idx] {
						continue
					}
					done[it.idx] = true
					c.metrics.Inc(mPointsFailed)
					c.jappend(journal.Record{Type: journal.TypePointFailed, Job: j.id,
						Index: it.idx, Error: err.Error(), Code: fe.code})
					errs[it.idx] = err
				}
			}
		}
		var rest []leaseItem
		for _, it := range shipped {
			if done[it.idx] {
				continue
			}
			c.metrics.Inc(mPointsRetried)
			c.jappend(journal.Record{Type: journal.TypePointRetried, Job: j.id, Index: it.idx})
			if attempts[it.idx] >= c.cfg.MaxPointAttempts {
				cause := err
				if cause == nil {
					cause = errors.New("worker shed the point")
				}
				errs[it.idx] = fmt.Errorf("point %s undeliverable after %d attempts: %w",
					it.key[:12], attempts[it.idx], cause)
				continue
			}
			rest = append(rest, it)
		}
		todo = rest
		if len(todo) == 0 {
			return
		}
		select {
		case <-time.After(backoff):
		case <-c.runCtx.Done():
			for _, it := range todo {
				errs[it.idx] = c.runCtx.Err()
			}
			return
		}
		backoff = nextBackoff(backoff)
	}
}

// completePoint closes one successful lease: the result becomes
// addressable, the journal closes the assignment (only once per point
// ever — a replayed completion that re-ran because its cached bytes
// were lost must not double-count), and job progress advances by one
// point — which is what keeps ?wait progress per-point under batching.
func (c *Coordinator) completePoint(j *fjob, it leaseItem, res experiments.PointResult, cached bool) {
	c.metrics.Inc(mPointsCompleted)
	if cached {
		c.metrics.Inc(mCacheRemoteHits)
	}
	if val, merr := json.Marshal(res); merr == nil {
		_ = c.cache.Put(it.key, val)
	}
	c.mu.Lock()
	first := !j.jdone[it.idx]
	j.jdone[it.idx] = true
	c.mu.Unlock()
	if first {
		c.jappend(journal.Record{Type: journal.TypePointCompleted, Job: j.id, Index: it.idx, Key: it.key})
	} else {
		c.jappend(journal.Record{Type: journal.TypePointRetried, Job: j.id, Index: it.idx})
	}
	j.pointsDone.Add(1)
}

func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > time.Second {
		d = time.Second
	}
	return d
}

// terminalCode reports whether a worker's error code means the point
// itself is bad — retrying it elsewhere would fail identically.
func terminalCode(code string) bool {
	switch code {
	case server.CodeQueueFull, server.CodeShuttingDown:
		return false // load shedding: another worker (or a later try) can serve
	case "":
		return false // no typed code = transport-level trouble
	default:
		return true
	}
}

// shipBatch performs one batched lease dispatch: every item in one RPC,
// outcomes streamed back per point (the coordinator negotiates ndjson;
// a plain single-envelope reply with outcomes is accepted too).
// onOutcome fires once per received outcome, in arrival order, while
// the stream is still open — this is what advances job progress and
// closes leases point by point. The returned error is a *fabricError
// carrying the worker's typed code when the worker answered with one,
// or an untyped transport error when it did not; either way, outcomes
// already delivered stand — only the remainder is the caller's to
// retry.
func (c *Coordinator) shipBatch(workerURL string, items []leaseItem, onOutcome func(pos int, o server.PointOutcome)) error {
	if err := c.faults.Fail(SiteAssign); err != nil {
		return fmt.Errorf("dispatch to %s: %w", workerURL, err)
	}
	wire := make([]map[string]interface{}, len(items))
	for i, it := range items {
		wire[i] = map[string]interface{}{"key": it.key, "point": it.spec}
	}
	body, err := json.Marshal(map[string]interface{}{"points": wire})
	if err != nil {
		return &fabricError{code: server.CodeBadRequest, err: err}
	}
	req, err := http.NewRequestWithContext(c.runCtx, "POST", workerURL+"/v1/points", bytes.NewReader(body))
	if err != nil {
		return &fabricError{code: server.CodeBadRequest, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", server.NDJSONContentType)
	req.Header.Set(server.VersionHeader, server.APIVersion)
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("dispatch to %s: %w", workerURL, err)
	}
	defer resp.Body.Close()

	if !strings.Contains(resp.Header.Get("Content-Type"), server.NDJSONContentType) {
		// Single-envelope reply: a refusal (shedding, draining, bad
		// request), or a worker that answered the batch unstreamed.
		var env server.Envelope
		if derr := json.NewDecoder(resp.Body).Decode(&env); derr != nil {
			return fmt.Errorf("dispatch to %s: bad envelope: %w", workerURL, derr)
		}
		if resp.StatusCode != http.StatusOK || len(env.Outcomes) == 0 {
			code, msg := "", fmt.Sprintf("status %d", resp.StatusCode)
			if env.Error != nil {
				code, msg = env.Error.Code, env.Error.Message
			}
			if !terminalCode(code) {
				return fmt.Errorf("dispatch to %s: %s", workerURL, msg)
			}
			return &fabricError{code: code, detail: msg,
				err: fmt.Errorf("worker %s: %s", workerURL, msg)}
		}
		for _, o := range env.Outcomes {
			onOutcome(o.Index, o)
		}
		return nil
	}

	// Streamed outcomes: one envelope frame per retired point. Frame
	// arrival times feed the adaptive batch tuner — the gaps estimate
	// point cost, the lead-in estimates RPC overhead.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var first, last time.Time
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var env server.Envelope
		if derr := json.Unmarshal(line, &env); derr != nil {
			return fmt.Errorf("dispatch to %s: bad frame: %w", workerURL, derr)
		}
		if env.Error != nil && len(env.Outcomes) == 0 {
			if terminalCode(env.Error.Code) {
				return &fabricError{code: env.Error.Code, detail: env.Error.Message,
					err: fmt.Errorf("worker %s: %s", workerURL, env.Error.Message)}
			}
			return fmt.Errorf("dispatch to %s: %s", workerURL, env.Error.Message)
		}
		for _, o := range env.Outcomes {
			now := time.Now()
			if first.IsZero() {
				first = now
			}
			last = now
			n++
			onOutcome(o.Index, o)
		}
	}
	c.tuner.observeStream(start, first, last, n)
	if serr := sc.Err(); serr != nil {
		return fmt.Errorf("dispatch to %s: stream died after %d outcomes: %w", workerURL, n, serr)
	}
	return nil
}

// forwardJob ships a non-decomposable job whole to one worker (chosen
// by the job's content address, so identical jobs land on the same
// worker and coalesce there) and relays the result.
func (c *Coordinator) forwardJob(j *fjob) ([]byte, error) {
	backoff := c.cfg.RetryBackoff
	var lastErr error = errNoWorkers
	// As in runPoint: attempt advances only on a real dispatch, so an
	// empty fleet never burns the budget.
	for attempt := 0; attempt < c.cfg.MaxPointAttempts; {
		urls, wake := c.candidates(j.key)
		if len(urls) == 0 {
			select {
			case <-wake:
			case <-time.After(backoff):
				backoff = nextBackoff(backoff)
			case <-c.runCtx.Done():
				return nil, c.runCtx.Err()
			}
			continue
		}
		url := urls[attempt%len(urls)]
		attempt++
		val, err := c.forwardOnce(url, j)
		if err == nil {
			return val, nil
		}
		var fe *fabricError
		if errors.As(err, &fe) && terminalCode(fe.code) {
			return nil, err
		}
		lastErr = err
		select {
		case <-time.After(backoff):
		case <-c.runCtx.Done():
			return nil, c.runCtx.Err()
		}
		backoff = nextBackoff(backoff)
	}
	return nil, fmt.Errorf("job %s undeliverable after %d attempts: %w", j.id, c.cfg.MaxPointAttempts, lastErr)
}

// forwardOnce submits the job to one worker and long-polls it to
// completion. The relayed result is re-rendered through the canonical
// formatting so its bytes match a direct single-node run exactly.
func (c *Coordinator) forwardOnce(workerURL string, j *fjob) ([]byte, error) {
	body, _ := json.Marshal(map[string]interface{}{"experiment": j.experiment, "params": j.params})
	env, status, err := c.doEnvelope("POST", workerURL+"/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	if env.Error != nil && status != http.StatusOK && status != http.StatusAccepted {
		if terminalCode(env.Error.Code) {
			return nil, &fabricError{code: env.Error.Code, detail: env.Error.Message,
				err: fmt.Errorf("worker %s: %s", workerURL, env.Error.Message)}
		}
		return nil, fmt.Errorf("worker %s refused job: %s", workerURL, env.Error.Message)
	}
	if env.Job == nil {
		return nil, fmt.Errorf("worker %s: job response without a job", workerURL)
	}
	for env.Job.State != server.StateDone && env.Job.State != server.StateFailed {
		if c.runCtx.Err() != nil {
			return nil, c.runCtx.Err()
		}
		env, _, err = c.doEnvelope("GET", workerURL+"/v1/jobs/"+env.Job.ID+"?wait=5s", nil)
		if err != nil {
			return nil, err
		}
		if env.Job == nil {
			return nil, fmt.Errorf("worker %s: poll response without a job", workerURL)
		}
	}
	if env.Job.State == server.StateFailed {
		code := env.Job.ErrorCode
		if code == "" {
			code = server.CodeExperimentFailed
		}
		return nil, &fabricError{code: code, detail: env.Job.Error,
			err: fmt.Errorf("worker %s: %s", workerURL, env.Job.Error)}
	}
	return normalizeResult(env.Result)
}

// doEnvelope performs one current-version API request and decodes the
// envelope. Transport errors come back untyped (retryable).
func (c *Coordinator) doEnvelope(method, url string, body []byte) (server.Envelope, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(c.runCtx, method, url, rd)
	if err != nil {
		return server.Envelope{}, 0, &fabricError{code: server.CodeBadRequest, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(server.VersionHeader, server.APIVersion)
	resp, err := c.client.Do(req)
	if err != nil {
		return server.Envelope{}, 0, err
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return server.Envelope{}, resp.StatusCode, fmt.Errorf("bad envelope from %s: %w", url, err)
	}
	return env, resp.StatusCode, nil
}

// normalizeResult re-renders relayed result bytes in the canonical
// cache format (two-space indent, trailing newline). A result embedded
// in a response envelope was re-indented relative to its position in
// that envelope; normalizing restores the exact bytes RenderJSON
// produces, preserving the byte-identity and shared-cache contracts.
func normalizeResult(raw json.RawMessage) ([]byte, error) {
	if len(raw) == 0 {
		return nil, errors.New("forwarded job finished without result bytes")
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, raw); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := json.Indent(&out, compact.Bytes(), "", "  "); err != nil {
		return nil, err
	}
	out.WriteByte('\n')
	return out.Bytes(), nil
}

// buildRepro assembles the deterministic repro bundle for a job that is
// about to turn terminal-failed: the resolved params, the failing
// point's spec and content address when the sweep pinned one, and the
// coordinator's fault-injection state — everything cascade-sim -repro
// needs to replay the failure bit-for-bit, nothing tied to the fleet
// topology the failure happened on.
func (c *Coordinator) buildRepro(j *fjob, err error) ([]byte, error) {
	b := server.ReproBundle{
		Schema:     canon.ReproSchema,
		Job:        j.id,
		Experiment: j.experiment,
		Params:     j.params,
		JobKey:     j.key,
		Error:      err.Error(),
		ErrorCode:  codeOf(err),
	}
	var fe *fabricError
	if errors.As(err, &fe) && fe.detail != "" {
		b.Error, b.ErrorCode = fe.detail, fe.code
	}
	if j.failSpec != nil {
		sp := *j.failSpec
		b.Point = &sp
		if key, kerr := canon.PointKey(sp); kerr == nil {
			b.PointKey = key
		}
		if j.failDetail != "" {
			b.Error, b.ErrorCode = j.failDetail, j.failCode
		}
	}
	if c.cfg.FaultSpec != "" {
		b.Faults = &server.ReproFaults{Spec: c.cfg.FaultSpec, Seed: c.cfg.FaultSeed,
			Fired: server.FiredCounts(c.faults, FaultSites())}
	}
	if _, err := b.DeriveKey(); err != nil {
		return nil, err
	}
	return json.Marshal(b)
}

// Repro returns the raw repro bundle of a terminal-failed job.
func (c *Coordinator) Repro(id string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, &fabricError{code: server.CodeNotFound, err: fmt.Errorf("unknown job %q", id)}
	}
	if j.state != server.StateFailed {
		return nil, &fabricError{code: server.CodeBadRequest,
			err: fmt.Errorf("job %q is %s; repro bundles exist only for failed jobs", id, j.state)}
	}
	if len(j.repro) == 0 {
		return nil, &fabricError{code: server.CodeNotFound,
			err: fmt.Errorf("job %q failed without a repro bundle", id)}
	}
	return j.repro, nil
}

// finishLocked moves a job to its terminal state and wakes waiters.
// Callers must hold c.mu.
func (c *Coordinator) finishLocked(j *fjob, val []byte, err error) {
	j.finished = time.Now()
	if err != nil {
		j.state = server.StateFailed
		j.errMsg = err.Error()
		j.errCode = codeOf(err)
		c.metrics.Inc(mJobsFailed)
	} else {
		j.state = server.StateDone
		j.result = val
		c.metrics.Inc(mJobsCompleted)
	}
	close(j.done)
}
