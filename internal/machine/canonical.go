package machine

import "repro/internal/canon"

// CanonicalBytes returns the configuration's canonical serialization, the
// machine half of a simulation point's content-addressed cache key (see
// internal/server). Two configurations with identical observable
// semantics — however they were constructed — produce identical bytes;
// any change to a field that can alter simulated results produces
// different bytes.
//
// The Engine field is normalized out before encoding: the fast and
// reference engines produce bit-identical simulated results (the
// differential tests in internal/cascade assert this), so a result
// computed on either engine may satisfy a request for the other.
func (c Config) CanonicalBytes() ([]byte, error) {
	c.Engine = EngineFast
	return canon.JSON(c)
}
