package machine

import (
	"encoding/json"

	"repro/internal/canon"
)

// CanonicalBytes returns the configuration's canonical serialization, the
// machine half of a simulation point's content-addressed cache key (see
// internal/server). Two configurations with identical observable
// semantics — however they were constructed — produce identical bytes;
// any change to a field that can alter simulated results produces
// different bytes.
//
// The Engine field is normalized out before encoding: the fast and
// reference engines produce bit-identical simulated results (the
// differential tests in internal/cascade assert this), so a result
// computed on either engine may satisfy a request for the other.
//
// The Coalesce knob is normalized the same way unless it is CoalesceOff:
// Auto and On both mean "the engine may coalesce", and coalescing — like
// the engine choice — cannot change simulated results. Off is kept
// distinct because the knob exists to diagnose suspected coalescing bugs,
// and a diagnostic no-coalescing run must never be answered from a cache
// entry computed with coalescing on. Eliding the normalized value (rather
// than encoding it) also keeps every pre-knob cache key valid: a config
// that does not exercise the knob serializes to exactly the bytes it did
// before the knob existed, which the golden-key tests in internal/server
// pin down.
//
// The Parallel knob is elided when off for the same reason, but with the
// opposite polarity to Coalesce: ParallelOff is the default serial
// behaviour every existing key was computed under, so off disappears
// (keeping pre-knob golden keys valid) while ParallelOn is kept distinct
// so a diagnostic serial run is never answered from a parallel-computed
// entry, nor vice versa.
func (c Config) CanonicalBytes() ([]byte, error) {
	c.Engine = EngineFast
	m, err := canon.Map(c)
	if err != nil {
		return nil, err
	}
	if c.Coalesce != CoalesceOff {
		delete(m, "Coalesce")
	}
	if c.Parallel == ParallelOff {
		delete(m, "Parallel")
	}
	// CheckpointEvery only adds observation points; the simulated results
	// are identical at any cadence, so it never splits the cache key (and
	// eliding it keeps every pre-knob golden key valid).
	delete(m, "CheckpointEvery")
	return json.Marshal(m)
}
