package machine

import "repro/internal/cache"

// OverlapCost combines the latencies of a group of accesses issued close
// together (the references of one loop iteration) under a bounded
// memory-level-parallelism model.
//
// Both paper machines have non-blocking caches that allow up to four
// outstanding requests to L2 and memory. We model this as: the serial
// portion of every access (its L1 lookup) is paid in full, while the miss
// penalties overlap in windows of maxOutstanding. The resulting stall is
//
//	max(largest single penalty, ceil(total penalty / maxOutstanding))
//
// which reduces to full serialization when maxOutstanding is 1 and to the
// single penalty when only one access misses.
func OverlapCost(results []cache.Result, maxOutstanding int) int64 {
	if maxOutstanding < 1 {
		panic("machine: OverlapCost with maxOutstanding < 1")
	}
	var serial, totalPenalty, maxPenalty int64
	for _, r := range results {
		serial += r.Cycles - r.MissPenalty
		totalPenalty += r.MissPenalty
		if r.MissPenalty > maxPenalty {
			maxPenalty = r.MissPenalty
		}
	}
	if totalPenalty == 0 {
		return serial
	}
	overlapped := (totalPenalty + int64(maxOutstanding) - 1) / int64(maxOutstanding)
	if overlapped < maxPenalty {
		overlapped = maxPenalty
	}
	return serial + overlapped
}
