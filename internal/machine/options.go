package machine

// Option adjusts a Config at construction time. New applies options in
// order after copying the base configuration, so call sites compose
// knobs without poking struct fields:
//
//	m, err := machine.New(machine.PentiumPro(4),
//	    machine.WithParallel(machine.ParallelOn),
//	    machine.WithCheckpointEvery(1<<16))
//
// The functions mirror the value-receiver With* methods on Config (which
// remain for building a Config ahead of construction); both routes
// produce identical configurations and therefore identical canonical
// cache keys.
type Option func(*Config)

// WithEngine selects the simulation engine.
func WithEngine(e Engine) Option { return func(c *Config) { c.Engine = e } }

// WithCoalesce selects the run-coalescing mode.
func WithCoalesce(mode Coalesce) Option { return func(c *Config) { c.Coalesce = mode } }

// WithParallel selects the host-parallel simulation mode.
func WithParallel(mode Parallel) Option { return func(c *Config) { c.Parallel = mode } }

// WithProcs sets the processor count.
func WithProcs(p int) Option { return func(c *Config) { c.Procs = p } }

// WithVictim configures a victim buffer of the given capacity and hit
// latency (entries 0 disables it).
func WithVictim(entries int, latency int64) Option {
	return func(c *Config) { c.VictimEntries = entries; c.VictimLatency = latency }
}

// WithCheckpointEvery asks checkpoint-aware run drivers to capture a
// machine-state checkpoint each time n iterations complete (see
// Config.CheckpointEvery). n <= 0 restores the default (no cadence).
func WithCheckpointEvery(n int) Option { return func(c *Config) { c.CheckpointEvery = n } }
