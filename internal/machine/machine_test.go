package machine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memsim"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range Presets() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestTable1Parameters(t *testing.T) {
	pp := PentiumPro(4)
	if pp.L1.Size != 8*1024 || pp.L1.Assoc != 2 || pp.L1.LineSize != 32 || pp.L1.HitLatency != 3 {
		t.Errorf("PentiumPro L1 = %+v", pp.L1)
	}
	if pp.L2.Size != 512*1024 || pp.L2.Assoc != 4 || pp.L2.LineSize != 32 || pp.L2.HitLatency != 7 {
		t.Errorf("PentiumPro L2 = %+v", pp.L2)
	}
	if pp.MemLatency != 58 || pp.TransferCycles != 120 || pp.CompilerPrefetch.Enabled {
		t.Errorf("PentiumPro mem/transfer/prefetch = %d/%d/%v",
			pp.MemLatency, pp.TransferCycles, pp.CompilerPrefetch.Enabled)
	}

	r10k := R10000(8)
	if r10k.L1.Size != 32*1024 || r10k.L1.Assoc != 2 || r10k.L1.LineSize != 32 || r10k.L1.HitLatency != 3 {
		t.Errorf("R10000 L1 = %+v", r10k.L1)
	}
	if r10k.L2.Size != 2*1024*1024 || r10k.L2.Assoc != 2 || r10k.L2.LineSize != 128 || r10k.L2.HitLatency != 6 {
		t.Errorf("R10000 L2 = %+v", r10k.L2)
	}
	if r10k.MemLatency < 100 || r10k.MemLatency > 200 {
		t.Errorf("R10000 mem latency %d outside paper's 100-200 range", r10k.MemLatency)
	}
	if r10k.TransferCycles != 500 || !r10k.CompilerPrefetch.Enabled {
		t.Errorf("R10000 transfer/prefetch = %d/%v", r10k.TransferCycles, r10k.CompilerPrefetch.Enabled)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		func() Config { c := PentiumPro(0); return c }(),
		func() Config { c := PentiumPro(4); c.L1.Size = 100; return c }(),
		func() Config { c := PentiumPro(4); c.MemLatency = 0; return c }(),
		func() Config { c := PentiumPro(4); c.MaxOutstanding = 0; return c }(),
		func() Config { c := PentiumPro(4); c.TransferCycles = -1; return c }(),
		func() Config {
			c := R10000(8)
			c.CompilerPrefetch.Distance = 0
			return c
		}(),
		func() Config { c := R10000(8); c.L1.LineSize = 64; c.L2.LineSize = 96; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestWithProcs(t *testing.T) {
	cfg := PentiumPro(4).WithProcs(2)
	if cfg.Procs != 2 {
		t.Errorf("Procs = %d, want 2", cfg.Procs)
	}
	if PentiumPro(4).Procs != 4 {
		t.Error("WithProcs mutated the original")
	}
}

func TestNewMachine(t *testing.T) {
	m := MustNew(PentiumPro(4))
	if m.Procs() != 4 {
		t.Fatalf("Procs = %d, want 4", m.Procs())
	}
	for i := 0; i < 4; i++ {
		if m.Proc(i).ID() != i {
			t.Errorf("Proc(%d).ID = %d", i, m.Proc(i).ID())
		}
		if m.Proc(i).Machine() != m {
			t.Errorf("Proc(%d).Machine mismatch", i)
		}
	}
	if _, err := New(PentiumPro(0)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMachineAccessAndCoherence(t *testing.T) {
	m := MustNew(PentiumPro(2))
	p0, p1 := m.Proc(0), m.Proc(1)
	addr := memsim.Addr(0x10000)
	p0.Access(addr, 8, true)
	if p0.Hierarchy().Probe(addr) != cache.Modified {
		t.Error("p0 should hold M")
	}
	p1.Access(addr, 8, false)
	if p0.Hierarchy().Probe(addr) != cache.Shared {
		t.Error("p0 should be downgraded to S after p1's read")
	}
	if m.Bus().Stats().CacheToCache != 1 {
		t.Errorf("CacheToCache = %d, want 1", m.Bus().Stats().CacheToCache)
	}
}

func TestAggregateStats(t *testing.T) {
	m := MustNew(PentiumPro(2))
	m.Proc(0).Access(0x0, 8, false)
	m.Proc(1).Access(0x10000, 8, false)
	if got := m.L1Stats().Accesses; got != 2 {
		t.Errorf("aggregate L1 accesses = %d, want 2", got)
	}
	if got := m.L2Stats().Misses; got != 2 {
		t.Errorf("aggregate L2 misses = %d, want 2", got)
	}
}

func TestResetCachesAndStats(t *testing.T) {
	m := MustNew(PentiumPro(2))
	m.Proc(0).Access(0x0, 8, true)
	m.ResetStats()
	if m.L1Stats().Accesses != 0 {
		t.Error("stats survive ResetStats")
	}
	if m.Proc(0).Hierarchy().Probe(0x0) == cache.Invalid {
		t.Error("ResetStats must keep cache contents")
	}
	m.ResetCaches()
	if m.Proc(0).Hierarchy().Probe(0x0) != cache.Invalid {
		t.Error("ResetCaches must clear contents")
	}
}

func TestDistributeLines(t *testing.T) {
	m := MustNew(PentiumPro(4))
	const bytes = 4 * 1024
	m.DistributeLines([]AddrRange{{Base: 0x100000, Bytes: bytes}})
	// Every line must be Modified in exactly one cache, round-robin.
	lines := bytes / m.Config().L2.LineSize
	found := 0
	for i := 0; i < lines; i++ {
		addr := memsim.Addr(0x100000 + i*m.Config().L2.LineSize)
		owners := 0
		for p := 0; p < m.Procs(); p++ {
			if m.Proc(p).Hierarchy().Probe(addr) == cache.Modified {
				owners++
			}
		}
		if owners > 1 {
			t.Fatalf("line %s owned by %d processors", addr, owners)
		}
		found += owners
	}
	if found != lines {
		t.Errorf("distributed lines resident = %d, want %d", found, lines)
	}
	// Stats must have been cleared by DistributeLines.
	if m.L1Stats().Accesses != 0 {
		t.Error("DistributeLines left warm-up traffic in the stats")
	}
}

func TestProcessorPrefetch(t *testing.T) {
	m := MustNew(PentiumPro(1))
	if !m.Proc(0).Prefetch(0x4000) {
		t.Error("first prefetch should fetch")
	}
	r := m.Proc(0).Access(0x4000, 8, false)
	if r.Level != cache.LevelL1 {
		t.Errorf("level after prefetch = %v, want L1", r.Level)
	}
}

func TestOverlapCost(t *testing.T) {
	res := func(cycles, penalty int64) cache.Result {
		return cache.Result{Cycles: cycles, MissPenalty: penalty}
	}
	cases := []struct {
		name string
		in   []cache.Result
		max  int
		want int64
	}{
		{"all hits", []cache.Result{res(3, 0), res(3, 0)}, 4, 6},
		{"one miss", []cache.Result{res(68, 65)}, 4, 68},
		{"two misses overlap fully", []cache.Result{res(68, 65), res(68, 65)}, 4, 3 + 3 + 65},
		{"serialized when max=1", []cache.Result{res(68, 65), res(68, 65)}, 1, 136},
		{"five misses exceed window", []cache.Result{res(68, 65), res(68, 65), res(68, 65), res(68, 65), res(68, 65)}, 4,
			5*3 + (5*65+3)/4},
		{"empty", nil, 4, 0},
	}
	for _, c := range cases {
		if got := OverlapCost(c.in, c.max); got != c.want {
			t.Errorf("%s: OverlapCost = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestOverlapCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OverlapCost with maxOutstanding 0 should panic")
		}
	}()
	OverlapCost(nil, 0)
}

func TestProcessorString(t *testing.T) {
	m := MustNew(PentiumPro(2))
	if got := m.Proc(1).String(); got != "PentiumPro.cpu1" {
		t.Errorf("String = %q", got)
	}
}
