package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/memsim"
)

// TestOverlapCostMonotonicInWindow: widening the overlap window never
// increases the cost, and serialization (window 1) equals the plain sum.
func TestOverlapCostMonotonicInWindow(t *testing.T) {
	f := func(raw []uint8) bool {
		var results []cache.Result
		var sum int64
		for _, r := range raw {
			pen := int64(r) % 70
			cycles := pen + 3
			results = append(results, cache.Result{Cycles: cycles, MissPenalty: pen})
			sum += cycles
		}
		if OverlapCost(results, 1) != sum {
			return false
		}
		prev := OverlapCost(results, 1)
		for w := 2; w <= 8; w++ {
			cur := OverlapCost(results, w)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOverlapCostLowerBound: the cost never drops below the serial part
// plus the largest single penalty.
func TestOverlapCostLowerBound(t *testing.T) {
	results := []cache.Result{
		{Cycles: 68, MissPenalty: 65},
		{Cycles: 10, MissPenalty: 7},
		{Cycles: 3, MissPenalty: 0},
	}
	got := OverlapCost(results, 100)
	want := int64(3+3+3) + 65 // serial parts + max penalty
	if got != want {
		t.Errorf("OverlapCost = %d, want %d", got, want)
	}
}

func TestDistributeLinesMultipleRanges(t *testing.T) {
	m := MustNew(PentiumPro(2))
	m.DistributeLines([]AddrRange{
		{Base: 0x100000, Bytes: 1024},
		{Base: 0x200000, Bytes: 2048},
	})
	resident := 0
	for _, r := range []AddrRange{{0x100000, 1024}, {0x200000, 2048}} {
		for off := 0; off < r.Bytes; off += 32 {
			addr := r.Base + memsim.Addr(off)
			for p := 0; p < m.Procs(); p++ {
				if m.Proc(p).Hierarchy().Probe(addr) == cache.Modified {
					resident++
				}
			}
		}
	}
	if resident != (1024+2048)/32 {
		t.Errorf("resident lines = %d, want %d", resident, (1024+2048)/32)
	}
}

func TestStoreBufferedConfig(t *testing.T) {
	for _, cfg := range Presets() {
		if !cfg.StoreBuffered {
			t.Errorf("%s: store buffering should be on (both machines have write buffers)", cfg.Name)
		}
		if cfg.MaxOutstanding != 1 {
			t.Errorf("%s: presets model demand misses serially; got %d", cfg.Name, cfg.MaxOutstanding)
		}
	}
}

func TestWriteLatencyWithStoreBuffer(t *testing.T) {
	cfg := PentiumPro(1)
	m := MustNew(cfg)
	// Warm the page translation so only the store path is measured.
	m.Proc(0).Access(0x9100, 8, false)
	// Cold write: full coherence work happens but only L1 issue latency is
	// charged.
	r := m.Proc(0).Access(0x9000, 8, true)
	if r.Cycles != cfg.L1.HitLatency {
		t.Errorf("buffered store cost = %d, want %d", r.Cycles, cfg.L1.HitLatency)
	}
	if r.Level != cache.LevelMem {
		t.Errorf("store level = %v, want mem (allocation still happened)", r.Level)
	}
	if m.Proc(0).Hierarchy().Probe(0x9000) != cache.Modified {
		t.Error("store did not install the line Modified")
	}
	if m.L1Stats().WriteMisses != 1 {
		t.Errorf("write miss not counted: %+v", m.L1Stats())
	}
}
