package machine

import (
	"strings"
	"testing"

	"repro/internal/memsim"
)

// metricsMachine is a small two-processor machine with every optional
// stat-bearing component enabled (TLB and victim buffer).
func metricsMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := PentiumPro(2).WithVictim(4, 2)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// metricsChurn produces cross-processor traffic that exercises caches,
// TLB, victim buffer, and bus.
func metricsChurn(m *Machine) {
	for i := 0; i < 50; i++ {
		a := memsim.Addr(0x10000 + i*4096)
		m.Proc(0).Access(a, 8, true)
		m.Proc(1).Access(a, 8, true) // invalidations + c2c traffic
	}
	// Thrash one L1 set so the victim buffer sees inserts.
	for i := 0; i < 20; i++ {
		for _, b := range []memsim.Addr{0x80000, 0x80000 + 8192, 0x80000 + 16384} {
			m.Proc(0).Access(b, 8, false)
		}
	}
}

func TestMachineMetricsRegistryShape(t *testing.T) {
	m := metricsMachine(t)
	s := m.Metrics().Snapshot()
	for _, name := range []string{
		"p0.l1.misses", "p0.l2.accesses", "p0.tlb.misses", "p0.victim.inserts",
		"p1.l1.misses", "bus.mem_fetches", "bus.invalidations_out",
	} {
		if _, ok := s[name]; !ok {
			t.Errorf("registry snapshot missing %q; have %d names", name, len(s))
		}
	}
	for name := range s {
		if strings.HasPrefix(name, "p2.") {
			t.Errorf("unexpected third processor metric %q", name)
		}
	}
}

// TestMachineResetStatsSweepsEverything is the generic leak sweep: after
// ResetStats, every metric registered by any component of the machine must
// read zero. This is the machine-level regression net for the class of bug
// where one reset path misses a component (the victim-buffer leak).
func TestMachineResetStatsSweepsEverything(t *testing.T) {
	m := metricsMachine(t)
	metricsChurn(m)
	before := m.Metrics().Snapshot()
	for _, key := range []string{"p0.l1.misses", "p0.tlb.misses", "p0.victim.inserts", "bus.mem_fetches", "bus.invalidations_out"} {
		if before.Get(key) == 0 {
			t.Fatalf("churn produced no %s; test traffic too weak", key)
		}
	}
	m.ResetStats()
	after := m.Metrics().Snapshot()
	if !after.AllZero() {
		t.Errorf("counters survive ResetStats: %v", after.NonZero())
	}
	// Contents must be kept: a re-access of distributed data stays cheap.
	if m.Proc(0).Access(0x80000, 8, false).Level != 1 {
		t.Error("ResetStats dropped cache contents")
	}

	metricsChurn(m)
	m.ResetCaches()
	if s := m.Metrics().Snapshot(); !s.AllZero() {
		t.Errorf("counters survive ResetCaches: %v", s.NonZero())
	}
}

// TestLegacyStatsMatchRegistry pins the aggregate Stats accessors to the
// registry view, so the two reporting paths cannot drift.
func TestLegacyStatsMatchRegistry(t *testing.T) {
	m := metricsMachine(t)
	metricsChurn(m)
	s := m.Metrics().Snapshot()
	if got, want := s.Get("p0.l1.misses")+s.Get("p1.l1.misses"), m.L1Stats().Misses; got != want {
		t.Errorf("registry L1 misses = %d, L1Stats = %d", got, want)
	}
	if got, want := s.Get("p0.victim.inserts")+s.Get("p1.victim.inserts"), m.VictimStats().Inserts; got != want {
		t.Errorf("registry victim inserts = %d, VictimStats = %d", got, want)
	}
	if got, want := s.Get("bus.writebacks"), m.Bus().Stats().Writebacks; got != want {
		t.Errorf("registry bus writebacks = %d, Bus().Stats() = %d", got, want)
	}
	if got, want := s.Get("p0.tlb.accesses")+s.Get("p1.tlb.accesses"), m.TLBStats().Accesses; got != want {
		t.Errorf("registry TLB accesses = %d, TLBStats = %d", got, want)
	}
}
