package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memsim"
	"repro/internal/metrics"
)

// Machine is a simulated shared-memory multiprocessor.
type Machine struct {
	cfg   Config
	bus   *coherence.Bus
	procs []*Processor
	reg   *metrics.Registry
}

// New builds a machine from cfg. It returns an error (rather than
// panicking) because configurations can come from CLI flags.
//
// Every stat-bearing component is registered in the machine's metrics
// registry at construction: processor i's hierarchy components under
// "p<i>.<component>" (l1, l2, tlb, victim) and the bus under "bus". All
// statistics resets route through that one registry, so a component's
// counters cannot survive a reset the rest of the machine observed.
func New(cfg Config, opts ...Option) (*Machine, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bus := coherence.NewBus(cfg.MemLatency, cfg.C2CLatency, cfg.UpgradeLatency, cfg.L2.LineSize)
	m := &Machine{cfg: cfg, bus: bus, reg: metrics.NewRegistry()}
	for i := 0; i < cfg.Procs; i++ {
		h := cache.NewHierarchy(cfg.L1, cfg.L2, bus.Port(i))
		h.StoreBuffered = cfg.StoreBuffered
		h.FastPath = cfg.Engine == EngineFast
		h.Coalesce = cfg.CoalesceEnabled()
		h.TLB = cache.NewTLB(cfg.TLB)
		if cfg.VictimEntries > 0 {
			h.EnableVictimBuffer(cfg.VictimEntries, cfg.VictimLatency)
		}
		bus.Attach(i, h)
		m.procs = append(m.procs, &Processor{id: i, m: m, h: h})
		for _, s := range h.StatSources() {
			m.reg.Register(fmt.Sprintf("p%d.%s", i, s.Name), s)
		}
	}
	m.reg.Register("bus", bus)
	return m, nil
}

// MustNew is New for known-good configurations (the presets).
func MustNew(cfg Config, opts ...Option) *Machine {
	m, err := New(cfg, opts...)
	if err != nil {
		panic("machine: " + err.Error())
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Procs returns the number of processors.
func (m *Machine) Procs() int { return len(m.procs) }

// Proc returns processor i.
func (m *Machine) Proc(i int) *Processor { return m.procs[i] }

// Bus returns the coherence bus (for statistics).
func (m *Machine) Bus() *coherence.Bus { return m.bus }

// Metrics returns the machine's metrics registry: every cache level, TLB,
// victim buffer, and the bus report there, and run drivers (the cascade
// runner) add their own counters and phase timers to it.
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// ResetCaches empties every processor's hierarchy and zeroes every
// registered statistic (bus, run-driver counters included).
func (m *Machine) ResetCaches() {
	for _, p := range m.procs {
		p.h.Reset()
	}
	m.reg.ResetStats()
}

// ResetStats zeroes every registered statistic without disturbing cache
// contents, so that measurements exclude warm-up traffic. This is the
// measured-region boundary: it routes through the metrics registry, which
// enumerates every stat-bearing component exactly once.
func (m *Machine) ResetStats() {
	m.reg.ResetStats()
}

// EnableClassification turns on miss classification on every cache. Opt-in
// because the shadow structures cost memory proportional to footprint.
func (m *Machine) EnableClassification() {
	for _, p := range m.procs {
		p.h.L1.EnableClassification()
		p.h.L2.EnableClassification()
	}
}

// L1Stats returns the sum of all processors' L1 statistics.
func (m *Machine) L1Stats() cache.Stats {
	var s cache.Stats
	for _, p := range m.procs {
		s.Add(p.h.L1.Stats())
	}
	return s
}

// TLBStats returns the sum of all processors' TLB statistics (zero when
// the machine models no TLB).
func (m *Machine) TLBStats() cache.TLBStats {
	var s cache.TLBStats
	for _, p := range m.procs {
		if t := p.h.TLB; t != nil {
			st := t.Stats()
			s.Accesses += st.Accesses
			s.Misses += st.Misses
		}
	}
	return s
}

// VictimStats returns the sum of all processors' victim-buffer counters.
func (m *Machine) VictimStats() cache.VictimStats {
	var s cache.VictimStats
	for _, p := range m.procs {
		st := p.h.VictimStats()
		s.Hits += st.Hits
		s.Inserts += st.Inserts
	}
	return s
}

// L2Stats returns the sum of all processors' L2 statistics.
func (m *Machine) L2Stats() cache.Stats {
	var s cache.Stats
	for _, p := range m.procs {
		s.Add(p.h.L2.Stats())
	}
	return s
}

// DistributeLines simulates the effect of the parallel section that
// precedes an unparallelized loop: the loop's data ends up spread across
// the processors' caches, dirty. Lines of the given byte ranges are
// written by processors round-robin at line granularity. Statistics are
// reset afterwards so measurements start clean.
func (m *Machine) DistributeLines(ranges []AddrRange) {
	lineSize := memsim.Addr(m.cfg.L2.LineSize)
	i := 0
	for _, r := range ranges {
		for a := r.Base.Line(int(lineSize)); a < r.Base+memsim.Addr(r.Bytes); a += lineSize {
			p := m.procs[i%len(m.procs)]
			p.h.Access(a, 1, true)
			i++
		}
	}
	m.ResetStats()
}

// AddrRange is a byte range of simulated addresses.
type AddrRange struct {
	Base  memsim.Addr
	Bytes int
}

// AccessObserver receives every demand access a processor performs, in
// program order. Observers are used to capture address traces; they see
// the access before any timing aggregation.
type AccessObserver func(addr memsim.Addr, size int, write bool)

// Processor is one CPU of the machine. It owns a private hierarchy; timing
// accumulation is the caller's job (the cascade runner models time
// explicitly), so Processor exposes per-access costs rather than a clock.
type Processor struct {
	id       int
	m        *Machine
	h        *cache.Hierarchy
	observer AccessObserver
}

// SetObserver installs (or, with nil, removes) an access observer.
func (p *Processor) SetObserver(o AccessObserver) { p.observer = o }

// Observed reports whether an access observer is installed. Coalesced
// execution paths retire accesses without surfacing them individually, so
// they must stay off while anything wants to see every access.
func (p *Processor) Observed() bool { return p.observer != nil }

// ID returns the processor's index.
func (p *Processor) ID() int { return p.id }

// Hierarchy exposes the private caches (for statistics and tests).
func (p *Processor) Hierarchy() *cache.Hierarchy { return p.h }

// Machine returns the owning machine.
func (p *Processor) Machine() *Machine { return p.m }

// Access performs a demand access and returns its timing result.
func (p *Processor) Access(addr memsim.Addr, size int, write bool) cache.Result {
	if p.observer != nil {
		p.observer(addr, size, write)
	}
	return p.h.Access(addr, size, write)
}

// Prefetch installs the line containing addr without demand cost, modelling
// a prefetch instruction. It reports whether a memory fetch occurred.
func (p *Processor) Prefetch(addr memsim.Addr) bool {
	return p.h.PrefetchLine(addr)
}

// String implements fmt.Stringer.
func (p *Processor) String() string {
	return fmt.Sprintf("%s.cpu%d", p.m.cfg.Name, p.id)
}
