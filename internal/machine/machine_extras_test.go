package machine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memsim"
)

func TestEnableClassificationAggregates(t *testing.T) {
	m := MustNew(PentiumPro(2))
	m.EnableClassification()
	// Conflict pattern on proc 0: three lines, one L1 set (way size 4KB).
	for i := 0; i < 20; i++ {
		for _, a := range []memsim.Addr{0x0, 0x1000, 0x2000} {
			m.Proc(0).Access(a, 8, false)
		}
	}
	s := m.L1Stats()
	if s.Compulsory+s.Capacity+s.Conflict != s.Misses {
		t.Errorf("classification partition broken: %+v", s)
	}
	if s.Conflict == 0 {
		t.Error("conflict pattern produced no conflict misses")
	}
}

func TestTLBStatsAggregate(t *testing.T) {
	m := MustNew(R10000(2))
	m.Proc(0).Access(0x10000, 8, false)
	m.Proc(1).Access(0x90000, 8, false)
	s := m.TLBStats()
	if s.Accesses != 2 || s.Misses != 2 {
		t.Errorf("TLB stats = %+v", s)
	}
	// Machines without a TLB report zeros.
	cfg := PentiumPro(1)
	cfg.TLB = cache.TLBConfig{}
	m2 := MustNew(cfg)
	m2.Proc(0).Access(0x0, 8, false)
	if m2.TLBStats() != (cache.TLBStats{}) {
		t.Error("TLB-less machine reported stats")
	}
}

func TestVictimStatsAggregate(t *testing.T) {
	cfg := PentiumPro(1).WithVictim(4, 2)
	m := MustNew(cfg)
	// Thrash one L1 set so evictions land in the buffer and return.
	for i := 0; i < 10; i++ {
		for _, a := range []memsim.Addr{0x0, 0x1000, 0x2000} {
			m.Proc(0).Access(a, 8, false)
		}
	}
	s := m.VictimStats()
	if s.Inserts == 0 || s.Hits == 0 {
		t.Errorf("victim stats = %+v", s)
	}
	if MustNew(PentiumPro(1)).VictimStats() != (cache.VictimStats{}) {
		t.Error("victimless machine reported stats")
	}
}

func TestObserverSeesAccesses(t *testing.T) {
	m := MustNew(PentiumPro(1))
	var got []memsim.Addr
	m.Proc(0).SetObserver(func(addr memsim.Addr, size int, write bool) {
		got = append(got, addr)
	})
	m.Proc(0).Access(0x100, 8, false)
	m.Proc(0).Access(0x200, 8, true)
	m.Proc(0).SetObserver(nil)
	m.Proc(0).Access(0x300, 8, false)
	if len(got) != 2 || got[0] != 0x100 || got[1] != 0x200 {
		t.Errorf("observed = %v", got)
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(PentiumPro(0))
}

func TestValidateRejectsBadTLB(t *testing.T) {
	cfg := PentiumPro(2)
	cfg.TLB = cache.TLBConfig{Entries: 7, Assoc: 1, PageSize: 4096}
	if err := cfg.Validate(); err == nil {
		t.Error("bad TLB config accepted")
	}
}
